// Figure 12: V2S/S2V (4:8 Vertica:Spark) vs HDFS read/write against a
// second, equally-sized 4-node HDFS cluster that is NOT co-located with
// Spark (a direct apples-to-apples transfer comparison). Paper: HDFS
// read is ~30% faster than V2S (2240 partitions, no consistency work,
// no per-row hashing); HDFS write is about the same as S2V — the key
// result that Vertica can serve as Spark's durable store.

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Figure 12: V2S/S2V vs HDFS read/write",
              "Fig. 12 — HDFS read ~30% faster than V2S; HDFS write ~= "
              "S2V");

  FabricOptions options;
  options.with_hdfs = true;
  options.hdfs_nodes = 4;  // the second 4:8 cluster of Section 4.7.2
  Fabric fabric(options);
  const int real_rows = static_cast<int>(options.real_rows);

  // Stage the same D1 data in both systems.
  double s2v = SaveViaS2V(fabric, D1Schema(), D1Rows(real_rows), "d1",
                          128);
  FABRIC_CHECK_OK(fabric.hdfs()->PutFileForTest("/d1", D1Schema(),
                                                D1Rows(real_rows)));

  double v2s = LoadViaV2S(fabric, "d1", 32);

  double hdfs_read = fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()
                  ->Read()
                  .Format("parquet")
                  .Option("path", "/d1")
                  .Load(driver);
    FABRIC_CHECK_OK(df.status());
    std::printf("(HDFS file has %d blocks -> %d read partitions)\n",
                df->NumPartitions(), df->NumPartitions());
    FABRIC_CHECK_OK(df->Materialize(driver).status());
  });

  double hdfs_write = fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()->CreateDataFrame(D1Schema(),
                                              D1Rows(real_rows), 128);
    FABRIC_CHECK_OK(df.status());
    FABRIC_CHECK_OK(df->Write()
                        .Format("parquet")
                        .Option("path", "/out")
                        .Mode(spark::SaveMode::kOverwrite)
                        .Save(driver));
  });

  std::printf("%-14s %10s %10s\n", "direction", "Vertica", "HDFS");
  std::printf("%-14s %8.0f s %8.0f s   (HDFS/Vertica = %.2f)\n",
              "read (load)", v2s, hdfs_read, hdfs_read / v2s);
  std::printf("%-14s %8.0f s %8.0f s   (HDFS/Vertica = %.2f)\n",
              "write (save)", s2v, hdfs_write, hdfs_write / s2v);
  BenchReport report("fig12_hdfs");
  report.AddSample(fabric, {{"v2s_seconds", v2s},
                            {"hdfs_read_seconds", hdfs_read},
                            {"s2v_seconds", s2v},
                            {"hdfs_write_seconds", hdfs_write}});
  return 0;
}
