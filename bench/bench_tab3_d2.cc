// Table 3: dataset D2 (tweet_id + tweet_text, 1.46B rows, same 140 GB
// raw size as D1). Paper: V2S 378 s (faster than D1's ~490 s — string
// data inflates less on the JDBC wire), S2V 386 s (slower than D1's
// 252 s — 14.6x more rows cost per-row Avro/COPY overhead).

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Table 3: dataset D2 (1.46B twitter rows)",
              "Tab. 3 — V2S 378 s, S2V 386 s; compare D1 (V2S ~490 s, "
              "S2V 252 s)");

  BenchReport report("tab3_d2");
  // D1 reference point on the same harness.
  {
    FabricOptions options;
    Fabric fabric(options);
    double s2v = SaveViaS2V(fabric, D1Schema(),
                            D1Rows(static_cast<int>(options.real_rows)),
                            "d1", 128);
    double v2s = LoadViaV2S(fabric, "d1", 32);
    std::printf("%-10s %12s %12s\n", "dataset", "V2S (s)", "S2V (s)");
    std::printf("%-10s %12.0f %12.0f\n", "D1", v2s, s2v);
    report.AddSample(fabric, {{"dataset", 1},
                              {"v2s_seconds", v2s},
                              {"s2v_seconds", s2v}});
  }
  {
    FabricOptions options;
    options.paper_rows = 1.46e9;
    options.real_rows = 50000;  // ~90 B rows: keep real bytes moderate
    Fabric fabric(options);
    double s2v = SaveViaS2V(fabric, D2Schema(),
                            D2Rows(static_cast<int>(options.real_rows)),
                            "d2", 128);
    double v2s = LoadViaV2S(fabric, "d2", 32);
    std::printf("%-10s %12.0f %12.0f\n", "D2", v2s, s2v);
    report.AddSample(fabric, {{"dataset", 2},
                              {"v2s_seconds", v2s},
                              {"s2v_seconds", s2v}});
  }
  return 0;
}
