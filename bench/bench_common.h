#ifndef FABRIC_BENCH_BENCH_COMMON_H_
#define FABRIC_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks (Section 4). Each
// bench binary builds a fresh fabric per measurement: a Vertica cluster,
// a Spark cluster (2x the Vertica nodes, Section 4.1's ratio) and
// optionally an HDFS cluster, all on one simulated network. Workloads
// carry a data_scale so a few tens of thousands of real rows stand in
// for the paper's 100M-1.46B rows; reported seconds are virtual time.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/jdbc_source.h"
#include "common/cost_model.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "hdfs/hdfs.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::bench {

// Default down-scaling: one real row stands in for this many paper rows.
inline constexpr double kDefaultRealRows = 20000;

struct FabricOptions {
  int vertica_nodes = 4;
  int spark_workers = 8;  // the paper's 2x ratio
  double paper_rows = 100e6;
  double real_rows = kDefaultRealRows;
  CostModel cost;  // data_scale is derived below
  bool with_hdfs = false;
  int hdfs_nodes = 4;
  // Tuple Mover knobs for the Vertica cluster (bench_tm contrasts the
  // managed and unmanaged storage paths).
  vertica::TupleMoverConfig tuple_mover;
  // Pipeline-compilation toggles (bench_pipeline contrasts the compiled
  // vectorized paths against the row-at-a-time interpreters they
  // replace; virtual time is identical, host wall-clock is not).
  bool compile_pipelines = true;
  bool fuse_map_stages = true;
  // Named resource pools for the workload manager (bench_concurrency
  // contrasts pooled admission against the legacy flat semaphore).
  // Empty = WM off.
  vertica::wm::WorkloadConfig workload;
  // Per-node client session cap (0 keeps the database default).
  int max_client_sessions = 0;
  // Spark per-task hash-operator memory budget, bytes (0 = unlimited;
  // see SparkCluster::Options::task_memory_bytes).
  double spark_task_memory_bytes = 0;
};

// One self-contained simulated fabric.
class Fabric {
 public:
  explicit Fabric(FabricOptions options) : options_(options) {
    options_.cost.data_scale =
        options_.paper_rows / options_.real_rows;
    engine_ = std::make_unique<sim::Engine>();
    // Metrics-only tracer: benches want the counters in BENCH_*.json but
    // must not materialize multi-million-event traces.
    tracer_ = std::make_unique<obs::Tracer>(
        [engine = engine_.get()] { return engine->now(); },
        obs::Tracer::Options{.capture_events = false});
    install_.emplace(tracer_.get());
    network_ = std::make_unique<net::Network>(engine_.get());
    vertica::Database::Options vopts;
    vopts.num_nodes = options_.vertica_nodes;
    vopts.cost = options_.cost;
    vopts.tuple_mover = options_.tuple_mover;
    vopts.compile_pipelines = options_.compile_pipelines;
    vopts.workload = options_.workload;
    if (options_.max_client_sessions > 0) {
      vopts.max_client_sessions = options_.max_client_sessions;
    }
    db_ = std::make_unique<vertica::Database>(engine_.get(),
                                              network_.get(), vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = options_.spark_workers;
    sopts.cost = options_.cost;
    sopts.fuse_map_stages = options_.fuse_map_stages;
    sopts.task_memory_bytes = options_.spark_task_memory_bytes;
    cluster_ = std::make_unique<spark::SparkCluster>(engine_.get(),
                                                     network_.get(), sopts);
    session_ = std::make_unique<spark::SparkSession>(cluster_.get());
    connector::RegisterVerticaSource(session_.get(), db_.get());
    baselines::RegisterJdbcSource(session_.get(), db_.get());
    if (options_.with_hdfs) {
      hdfs_ = std::make_unique<hdfs::HdfsCluster>(
          engine_.get(), network_.get(),
          hdfs::HdfsCluster::Options{options_.hdfs_nodes, options_.cost});
      hdfs::RegisterHdfsSource(session_.get(), hdfs_.get());
    }
  }

  sim::Engine* engine() { return engine_.get(); }
  obs::Tracer* tracer() { return tracer_.get(); }
  net::Network* network() { return network_.get(); }
  vertica::Database* db() { return db_.get(); }
  spark::SparkCluster* cluster() { return cluster_.get(); }
  spark::SparkSession* spark() { return session_.get(); }
  hdfs::HdfsCluster* hdfs() { return hdfs_.get(); }
  const FabricOptions& options() const { return options_; }
  double data_scale() const { return options_.cost.data_scale; }

  // Runs `body` as the Spark driver and returns the virtual seconds it
  // took. Aborts the bench on simulation failure. Host wall-clock spent
  // executing the simulation is accumulated separately (host_wall_ms) —
  // it tracks the engine's real CPU cost, which the vectorized scan path
  // exists to shrink, and never feeds back into virtual time.
  double RunTimed(const std::function<void(sim::Process&)>& body) {
    double elapsed = -1;
    auto wall_start = std::chrono::steady_clock::now();
    engine_->Spawn("bench-driver", [&](sim::Process& driver) {
      double start = driver.Now();
      body(driver);
      elapsed = driver.Now() - start;
    });
    Status status = engine_->Run();
    host_wall_ms_ +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    FABRIC_CHECK(status.ok()) << status.ToString();
    FABRIC_CHECK(elapsed >= 0) << "driver did not finish";
    return elapsed;
  }

  // Host milliseconds spent inside RunTimed so far.
  double host_wall_ms() const { return host_wall_ms_; }

 private:
  FabricOptions options_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<obs::Tracer> tracer_;
  // Declared after tracer_ so uninstall happens before the tracer dies.
  std::optional<obs::ScopedTracer> install_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<vertica::Database> db_;
  std::unique_ptr<spark::SparkCluster> cluster_;
  std::unique_ptr<spark::SparkSession> session_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
  double host_wall_ms_ = 0;
};

// ------------------------------------------------------------- datasets

// Dataset D1 (Section 4.1): `cols` float columns of uniform [0,1) values.
// The paper's D1 is 100 cols x 100M rows (~140 GB csv / 80 GB binary).
inline storage::Schema D1Schema(int cols = 100) {
  std::vector<storage::ColumnDef> defs;
  for (int c = 0; c < cols; ++c) {
    defs.push_back({StrCat("c", c), storage::DataType::kFloat64});
  }
  return storage::Schema(std::move(defs));
}

inline std::vector<storage::Row> D1Rows(int real_rows, int cols = 100,
                                        uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<storage::Row> rows;
  rows.reserve(real_rows);
  for (int i = 0; i < real_rows; ++i) {
    storage::Row row;
    row.reserve(cols);
    for (int c = 0; c < cols; ++c) {
      row.push_back(storage::Value::Float64(rng.NextDouble()));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Dataset D2 (Section 4.1): tweet_id (long) + tweet_text (~90 B string);
// 1.46B rows at paper scale.
inline storage::Schema D2Schema() {
  return storage::Schema({{"tweet_id", storage::DataType::kInt64},
                          {"tweet_text", storage::DataType::kVarchar}});
}

inline std::vector<storage::Row> D2Rows(int real_rows, uint64_t seed = 43) {
  Rng rng(seed);
  std::vector<storage::Row> rows;
  rows.reserve(real_rows);
  for (int i = 0; i < real_rows; ++i) {
    rows.push_back(
        {storage::Value::Int64(static_cast<int64_t>(rng.NextUint64())),
         storage::Value::Varchar(
             rng.NextString(60 + static_cast<int>(rng.NextUint64(60))))});
  }
  return rows;
}

// ------------------------------------------------------------- actions

// Saves rows into Vertica via S2V (the experiments stage their data this
// way, Section 4.1) and returns the virtual duration.
inline double SaveViaS2V(Fabric& fabric, const storage::Schema& schema,
                         std::vector<storage::Row> rows,
                         const std::string& table, int partitions) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()->CreateDataFrame(schema, std::move(rows),
                                              partitions);
    FABRIC_CHECK_OK(df.status());
    FABRIC_CHECK_OK(df->Write()
                        .Format(connector::kVerticaSourceName)
                        .Option("table", table)
                        .Option("numpartitions", partitions)
                        .Mode(spark::SaveMode::kOverwrite)
                        .Save(driver));
  });
}

// Loads `table` into Spark via V2S (full materialization at the workers,
// like the paper's load measurements) and returns the duration.
inline double LoadViaV2S(Fabric& fabric, const std::string& table,
                         int partitions) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()
                  ->Read()
                  .Format(connector::kVerticaSourceName)
                  .Option("table", table)
                  .Option("numpartitions", partitions)
                  .Load(driver);
    FABRIC_CHECK_OK(df.status());
    auto rows = df->Materialize(driver);
    FABRIC_CHECK_OK(rows.status());
  });
}

// -------------------------------------------------------------- output

// Machine-readable companion to the stdout tables: one JSON record per
// measurement, each carrying the fabric's full metrics snapshot (the
// counters/gauges/histograms the obs layer accumulated during the run).
// Written to BENCH_<name>.json in the working directory on destruction.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { Write(); }

  // Records one measurement. Call after the fabric ran its workload and
  // before it is destroyed; `fields` become top-level JSON keys. Every
  // sample also carries the host wall-clock the simulation burned
  // (`wall_ms`) and the host-side scan throughput derived from it
  // (`host_rows_scanned_per_sec`, at paper scale) — the knobs the
  // vectorized scan engine moves, reported alongside the virtual-time
  // figures it must not move.
  void AddSample(Fabric& fabric,
                 std::vector<std::pair<std::string, double>> fields) {
    double wall_ms = fabric.host_wall_ms();
    fields.emplace_back("wall_ms", wall_ms);
    double rows_scanned =
        fabric.tracer()->metrics().counter("vertica.rows_scanned");
    fields.emplace_back("host_rows_scanned_per_sec",
                        wall_ms > 0 ? rows_scanned / (wall_ms / 1000.0)
                                    : 0);
    std::string json = "{";
    for (const auto& [key, value] : fields) {
      json += obs::JsonString(key);
      json += ":";
      json += obs::JsonNumber(value);
      json += ",";
    }
    json += "\"metrics\":";
    json += fabric.tracer()->metrics().ToJson();
    json += "}";
    samples_.push_back(std::move(json));
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = StrCat("BENCH_", name_, ".json");
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return;
    }
    std::fprintf(file, "{\"bench\":%s,\"samples\":[\n",
                 obs::JsonString(name_).c_str());
    for (size_t i = 0; i < samples_.size(); ++i) {
      std::fprintf(file, "%s%s\n", samples_[i].c_str(),
                   i + 1 < samples_.size() ? "," : "");
    }
    std::fprintf(file, "]}\n");
    std::fclose(file);
    std::printf("wrote %s (%zu samples)\n", path.c_str(), samples_.size());
  }

 private:
  std::string name_;
  std::vector<std::string> samples_;
  bool written_ = false;
};

inline void PrintHeader(const std::string& title,
                        const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper_reference.c_str());
  std::printf("(virtual seconds from the simulated 2x-1GbE fabric; see\n");
  std::printf(" DESIGN.md for the substitution and calibration story)\n");
  std::printf("==============================================================\n");
}

}  // namespace fabric::bench

#endif  // FABRIC_BENCH_BENCH_COMMON_H_
