// Figure 9: data dimensionality. Same 10,000M cells as 100 cols x 100M
// rows (the D1 baseline) vs 1 col x 10,000M rows. Paper: the 1-column
// variant takes far longer — per-row overheads (JDBC encode on V2S;
// Avro encode + COPY parse/unpack on S2V) dominate when the cell count
// is spread over 100x more rows.

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Figure 9: data shape (same cells, different rows/cols)",
              "Fig. 9 — 1 col x 10000M rows takes several times longer "
              "than 100 cols x 100M rows");

  struct Shape {
    int cols;
    double paper_rows;
    const char* label;
  };
  const Shape kShapes[] = {{100, 100e6, "100 cols x 100M rows"},
                           {1, 10000e6, "1 col   x 10000M rows"}};
  BenchReport report("fig9_shape");
  std::printf("%-26s %12s %12s\n", "shape", "V2S@32 (s)", "S2V@128 (s)");
  for (const Shape& shape : kShapes) {
    FabricOptions options;
    options.paper_rows = shape.paper_rows;
    // Keep real cells manageable for the 1-col variant.
    options.real_rows = shape.cols == 1 ? 200000 : kDefaultRealRows;
    Fabric fabric(options);
    double s2v = SaveViaS2V(
        fabric, D1Schema(shape.cols),
        D1Rows(static_cast<int>(options.real_rows), shape.cols), "d1",
        128);
    double v2s = LoadViaV2S(fabric, "d1", 32);
    std::printf("%-26s %12.0f %12.0f\n", shape.label, v2s, s2v);
    report.AddSample(fabric, {{"cols", static_cast<double>(shape.cols)},
                              {"paper_rows", shape.paper_rows},
                              {"v2s_seconds", v2s},
                              {"s2v_seconds", s2v}});
  }
  return 0;
}
