// Shuffle vs. aggregate pushdown: the same distributed GROUP BY over a
// V2S scan, once with the aggregation pushed into Vertica (the scan
// returns finished group rows, no shuffle) and once computed Spark-side
// through the shuffle service. Not a paper figure — the paper's
// connector (Section 3.2) predates aggregate pushdown — but it
// quantifies the design argument: when the grouping collapses many rows
// into few groups, shipping group rows beats shipping the table; when
// the grouping barely reduces, the two paths converge because the data
// crosses the wire either way.

#include "bench/bench_common.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

// CREATE + batched INSERTs through SQL so the table is segmented by the
// grouping column — the covering condition the pushdown planner needs.
void FillGroupedTable(Fabric& fabric, int rows, int groups) {
  fabric.RunTimed([&](sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver,
                      "CREATE TABLE t (k INTEGER, v FLOAT) "
                      "SEGMENTED BY HASH(k) ALL NODES")
            .status());
    constexpr int kBatch = 500;
    for (int base = 0; base < rows; base += kBatch) {
      std::string values;
      for (int i = base; i < std::min(rows, base + kBatch); ++i) {
        values += StrCat(i > base ? ", " : "", "(", i % groups, ", ",
                         (i % 1000) / 4.0, ")");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT INTO t VALUES ", values))
              .status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

double RunGroupBy(Fabric& fabric, bool pushdown, int expected_groups) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()
                  ->Read()
                  .Format(connector::kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 16)
                  .Option("aggregate_pushdown", pushdown ? "true" : "false")
                  .Load(driver);
    FABRIC_CHECK_OK(df.status());
    auto agg = df->GroupBy({"k"})->Agg(
        {spark::AggCount(), spark::AggSum("v"), spark::AggAvg("v")});
    FABRIC_CHECK_OK(agg.status());
    auto rows = agg->Collect(driver);
    FABRIC_CHECK_OK(rows.status());
    FABRIC_CHECK(static_cast<int>(rows->size()) == expected_groups)
        << rows->size() << " groups, expected " << expected_groups;
  });
}

}  // namespace

int main() {
  PrintHeader("Distributed GROUP BY: aggregate pushdown vs. shuffle",
              "V2S aggregate pushdown (extends Section 3.2's predicate "
              "pushdown to whole GROUP BYs)");

  BenchReport report("shuffle");
  constexpr int kRows = 20000;

  std::printf("%-10s %-10s %12s %16s %14s\n", "groups", "path",
              "query (s)", "shuffle bytes", "agg pushed");
  for (int groups : {8, 64, 2048}) {
    for (bool pushdown : {true, false}) {
      FabricOptions options;
      Fabric fabric(options);
      FillGroupedTable(fabric, kRows, groups);
      double seconds = RunGroupBy(fabric, pushdown, groups);
      double shuffle_bytes =
          fabric.tracer()->metrics().counter("spark.shuffle.bytes");
      double pushed =
          fabric.tracer()->metrics().counter("v2s.agg_pushdowns");
      std::printf("%-10d %-10s %12.3f %16.0f %14.0f\n", groups,
                  pushdown ? "pushdown" : "shuffle", seconds,
                  shuffle_bytes, pushed);
      report.AddSample(fabric,
                       {{"groups", static_cast<double>(groups)},
                        {"pushdown", pushdown ? 1.0 : 0.0},
                        {"query_seconds", seconds},
                        {"shuffle_bytes", shuffle_bytes},
                        {"agg_pushdowns", pushed}});
    }
  }
  return 0;
}
