// Table 4: S2V vs Vertica's native parallel bulk load (the COPY
// command). The input file is pre-split into 4..128 parts distributed
// round-robin onto the nodes' local disks; one COPY runs per part.
// Paper: best COPY time 238 s (8 parts, 2 per node); S2V's best (252 s
// @128 partitions) is ~6% slower — competitive, but it needs more
// parallelism to get there.

#include "bench/bench_common.h"

#include "baselines/native_copy.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Table 4: S2V vs native parallel COPY",
              "Tab. 4 — COPY best 238 s (8 splits); S2V best 252 s "
              "(~6% slower)");

  // S2V reference (best setting from Figure 6).
  double s2v_best;
  {
    FabricOptions options;
    Fabric fabric(options);
    s2v_best = SaveViaS2V(fabric, D1Schema(),
                          D1Rows(static_cast<int>(options.real_rows)),
                          "d1", 128);
  }

  BenchReport report("tab4_copy");
  std::printf("%-10s %14s\n", "splits", "COPY time (s)");
  double copy_best = -1;
  int best_splits = 0;
  for (int splits : {4, 8, 16, 32, 64, 128}) {
    FabricOptions options;
    Fabric fabric(options);
    fabric.RunTimed([&](sim::Process& driver) {
      auto session = fabric.db()->Connect(driver, 0, nullptr);
      FABRIC_CHECK_OK(session.status());
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("CREATE TABLE d1 (",
                                       D1Schema().ToDdlBody(), ")"))
              .status());
      FABRIC_CHECK_OK((*session)->Close(driver));
    });
    // Split the file into equal parts.
    auto rows = D1Rows(static_cast<int>(options.real_rows));
    std::vector<std::vector<storage::Row>> parts(splits);
    for (size_t i = 0; i < rows.size(); ++i) {
      parts[i % splits].push_back(std::move(rows[i]));
    }
    double elapsed = fabric.RunTimed([&](sim::Process& driver) {
      auto result =
          baselines::RunParallelCopy(driver, fabric.db(), "d1", parts);
      FABRIC_CHECK_OK(result.status());
    });
    std::printf("%-10d %14.0f\n", splits, elapsed);
    report.AddSample(fabric, {{"splits", static_cast<double>(splits)},
                              {"copy_seconds", elapsed}});
    if (copy_best < 0 || elapsed < copy_best) {
      copy_best = elapsed;
      best_splits = splits;
    }
  }
  std::printf("\nbest COPY: %.0f s (%d splits); best S2V: %.0f s "
              "(128 partitions); S2V/COPY = %.2f\n",
              copy_best, best_splits, s2v_best, s2v_best / copy_best);
  return 0;
}
