// Joins: what co-sorted, co-segmented projections buy. A fact/dim join
// with a GROUP BY is timed three ways — hash join over the super
// projections (no physical design), hash join pinned to the sorted
// projection pair (same layouts, strategy forced), and the planner's
// automatic pick, a co-located merge join with no hash table and no
// reshuffle. The merge-over-hash speedup on identical layouts is the
// headline number and must clear 1.15x. A final experiment replays the
// captured workload through the database designer and confirms its
// proposed layouts flip the planner to the merge join on their own.

#include "bench/bench_common.h"

namespace {

using fabric::StrCat;
using fabric::bench::BenchReport;
using fabric::bench::Fabric;
using fabric::bench::FabricOptions;

constexpr int kFactRows = 4000;
constexpr int kDimRows = 200;
constexpr int kQueryReps = 8;

const char* kRegions[] = {"east", "west", "north", "south",
                          "centre", "apac", "emea", "latam"};

const char* kJoinQuery =
    "SELECT region, COUNT(*), SUM(amount) FROM fact JOIN dim "
    "ON cust = cust_id GROUP BY region ORDER BY region";

void LoadTables(Fabric& fabric) {
  fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK((*session)
                        ->Execute(driver,
                                  "CREATE TABLE fact (id INTEGER, "
                                  "cust INTEGER, amount FLOAT) "
                                  "SEGMENTED BY HASH(id) ALL NODES")
                        .status());
    FABRIC_CHECK_OK((*session)
                        ->Execute(driver,
                                  "CREATE TABLE dim (cust_id INTEGER, "
                                  "region VARCHAR) "
                                  "SEGMENTED BY HASH(cust_id) ALL NODES")
                        .status());
    fabric::Rng rng(7);
    for (int base = 0; base < kFactRows; base += 100) {
      std::string values;
      for (int i = base; i < base + 100; ++i) {
        values += StrCat(values.empty() ? "" : ", ", "(", i, ", ",
                         rng.NextUint64(kDimRows), ", ",
                         rng.NextUint64(97), ".5)");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT /*+ DIRECT */ INTO fact "
                                       "VALUES ",
                                       values))
              .status());
    }
    std::string values;
    for (int i = 0; i < kDimRows; ++i) {
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", '",
                       kRegions[i % 8], "')");
    }
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver, StrCat("INSERT INTO dim VALUES ", values))
            .status());
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

// Times kQueryReps runs of the join. `strategy` pins the join strategy
// ("" = automatic); `pin_supers` pins both scans to the super
// projections so the no-design baseline survives later CREATEs.
double TimeJoin(Fabric& fabric, const std::string& strategy,
                bool pin_supers) {
  return fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    if (!strategy.empty()) (*session)->set_forced_join_strategy(strategy);
    if (pin_supers) {
      (*session)->set_forced_projection("fact", "");
      (*session)->set_forced_projection("dim", "");
    }
    for (int rep = 0; rep < kQueryReps; ++rep) {
      auto result = (*session)->Execute(driver, kJoinQuery);
      FABRIC_CHECK_OK(result.status());
      FABRIC_CHECK(result->rows.size() == 8)
          << "expected 8 regions, got " << result->rows.size();
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

}  // namespace

int main() {
  fabric::bench::PrintHeader(
      "merge joins on co-sorted projections vs hash joins",
      "Section 3.1 (projections) + the workload-driven designer");
  BenchReport report("join");

  FabricOptions options;
  options.tuple_mover.enabled = false;
  Fabric fabric(options);
  LoadTables(fabric);

  // No physical design: the only choice is a hash join over the supers.
  double super_hash_s = TimeJoin(fabric, "", false);

  // Co-sorted, co-segmented pair on the join key.
  fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK((*session)
                        ->Execute(driver,
                                  "CREATE PROJECTION fact_by_cust AS "
                                  "SELECT cust, amount FROM fact "
                                  "ORDER BY cust SEGMENTED BY HASH(cust)")
                        .status());
    FABRIC_CHECK_OK((*session)
                        ->Execute(driver,
                                  "CREATE PROJECTION dim_by_cust AS "
                                  "SELECT cust_id, region FROM dim "
                                  "ORDER BY cust_id "
                                  "SEGMENTED BY HASH(cust_id)")
                        .status());
    FABRIC_CHECK_OK((*session)->Close(driver));
  });

  // Same sorted layouts, strategy pinned to hash vs the automatic merge.
  double sorted_hash_s = TimeJoin(fabric, "hash", false);
  double merge_s = TimeJoin(fabric, "", false);

  double merges =
      fabric.tracer()->metrics().counter("vertica.merge_joins");
  FABRIC_CHECK(merges >= kQueryReps)
      << "planner never chose the merge join (merge_joins=" << merges
      << ")";
  double speedup = sorted_hash_s / merge_s;
  FABRIC_CHECK(speedup >= 1.15)
      << "merge join under 1.15x over hash on the same layouts: "
      << speedup << "x";

  std::printf("%-36s %14s\n", "plan", "join+agg (s)");
  std::printf("%-36s %14.4f\n", "hash join, super projections",
              super_hash_s / kQueryReps);
  std::printf("%-36s %14.4f\n", "hash join, sorted projections",
              sorted_hash_s / kQueryReps);
  std::printf("%-36s %14.4f\n", "merge join (co-located)",
              merge_s / kQueryReps);
  std::printf("\nmerge-over-hash speedup (same layouts) = %.2fx\n",
              speedup);
  std::printf("merge vs no physical design           = %.2fx\n\n",
              super_hash_s / merge_s);
  report.AddSample(
      fabric,
      {{"super_hash_join_seconds", super_hash_s / kQueryReps},
       {"sorted_hash_join_seconds", sorted_hash_s / kQueryReps},
       {"merge_join_seconds", merge_s / kQueryReps},
       {"merge_over_hash_speedup", speedup},
       {"merge_over_super_speedup", super_hash_s / merge_s},
       {"merge_joins", merges}});

  // --- the designer closes the loop ------------------------------------
  // A fresh cluster, the same workload run over the supers only; the
  // designer replays the captured history and its adopted proposals must
  // flip the planner to the merge join without any hand-written DDL.
  {
    Fabric fresh(options);
    LoadTables(fresh);
    fresh.RunTimed([&](fabric::sim::Process& driver) {
      auto session = fresh.db()->Connect(driver, 0, nullptr);
      FABRIC_CHECK_OK(session.status());
      for (int rep = 0; rep < 3; ++rep) {
        FABRIC_CHECK_OK((*session)->Execute(driver, kJoinQuery).status());
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, "SELECT DESIGN_PROPOSALS(0.8, 4)")
              .status());
      auto proposals = (*session)->Execute(
          driver, "SELECT ddl FROM v_monitor.design_proposals");
      FABRIC_CHECK_OK(proposals.status());
      FABRIC_CHECK(!proposals->rows.empty())
          << "designer proposed nothing for the join workload";
      for (const auto& row : proposals->rows) {
        FABRIC_CHECK_OK(
            (*session)->Execute(driver, row[0].varchar_value()).status());
      }
      FABRIC_CHECK_OK((*session)->Close(driver));
    });
    double merge_before =
        fresh.tracer()->metrics().counter("vertica.merge_joins");
    double designed_s = TimeJoin(fresh, "", false);
    double merge_after =
        fresh.tracer()->metrics().counter("vertica.merge_joins");
    FABRIC_CHECK(merge_after - merge_before >= kQueryReps)
        << "adopted proposals did not flip the planner to merge joins";
    std::printf("designer-adopted layouts: join+agg %.4f s/query, "
                "%d/%d queries merged\n\n",
                designed_s / kQueryReps,
                static_cast<int>(merge_after - merge_before), kQueryReps);
    report.AddSample(
        fresh, {{"designed_join_seconds", designed_s / kQueryReps},
                {"designed_merge_joins", merge_after - merge_before}});
  }
  return 0;
}
