// Figure 10: load into Spark — V2S vs Spark's JDBC DefaultSource, with
// and without a pushed-down 5% selectivity filter. The JDBC source needs
// an integer partition column with known min/max (we add `part_key` in
// [0,100)), and issues every query through a single Vertica node.
// Paper: with pushdown both are similar (Vertica does the filtering);
// without pushdown V2S is ~4x faster (locality + all nodes serving).

#include "bench/bench_common.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

// D1 plus the integer helper column JDBC needs for parallelism.
storage::Schema D1JdbcSchema() {
  std::vector<storage::ColumnDef> defs;
  defs.push_back({"part_key", storage::DataType::kInt64});
  for (int c = 0; c < 100; ++c) {
    defs.push_back({StrCat("c", c), storage::DataType::kFloat64});
  }
  return storage::Schema(std::move(defs));
}

std::vector<storage::Row> D1JdbcRows(int real_rows) {
  Rng rng(42);
  std::vector<storage::Row> rows;
  for (int i = 0; i < real_rows; ++i) {
    storage::Row row;
    row.push_back(storage::Value::Int64(
        static_cast<int64_t>(rng.NextUint64(100))));
    for (int c = 0; c < 100; ++c) {
      row.push_back(storage::Value::Float64(rng.NextDouble()));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double LoadV2S(Fabric& fabric, bool pushdown) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()
                  ->Read()
                  .Format(connector::kVerticaSourceName)
                  .Option("table", "d1")
                  .Option("numpartitions", 32)
                  .Load(driver);
    FABRIC_CHECK_OK(df.status());
    spark::DataFrame frame = *df;
    if (pushdown) {
      frame = frame.Filter(spark::ColumnPredicate{
          "part_key", spark::ColumnPredicate::Op::kLt,
          storage::Value::Int64(5)});
    }
    FABRIC_CHECK_OK(frame.Materialize(driver).status());
  });
}

double LoadJdbc(Fabric& fabric, bool pushdown) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()
                  ->Read()
                  .Format(baselines::kJdbcSourceName)
                  .Option("dbtable", "d1")
                  .Option("host", fabric.db()->node_address(0))
                  .Option("partitioncolumn", "part_key")
                  .Option("lowerbound", 0)
                  .Option("upperbound", 100)
                  .Option("numpartitions", 32)
                  .Load(driver);
    FABRIC_CHECK_OK(df.status());
    spark::DataFrame frame = *df;
    if (pushdown) {
      frame = frame.Filter(spark::ColumnPredicate{
          "part_key", spark::ColumnPredicate::Op::kLt,
          storage::Value::Int64(5)});
    }
    FABRIC_CHECK_OK(frame.Materialize(driver).status());
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 10: V2S vs JDBC DefaultSource load (5% filter)",
              "Fig. 10 — with pushdown: similar; without: V2S ~4x "
              "faster");

  FabricOptions options;
  Fabric fabric(options);
  SaveViaS2V(fabric, D1JdbcSchema(),
             D1JdbcRows(static_cast<int>(options.real_rows)), "d1", 128);

  double v2s_push = LoadV2S(fabric, /*pushdown=*/true);
  double jdbc_push = LoadJdbc(fabric, /*pushdown=*/true);
  double v2s_full = LoadV2S(fabric, /*pushdown=*/false);
  double jdbc_full = LoadJdbc(fabric, /*pushdown=*/false);

  std::printf("%-28s %10s %10s\n", "variant", "V2S (s)", "JDBC (s)");
  std::printf("%-28s %10.0f %10.0f\n", "with pushdown (5% rows)",
              v2s_push, jdbc_push);
  std::printf("%-28s %10.0f %10.0f\n", "without pushdown (all rows)",
              v2s_full, jdbc_full);
  std::printf("speedup without pushdown: %.1fx\n", jdbc_full / v2s_full);
  BenchReport report("fig10_jdbc_load");
  report.AddSample(fabric, {{"v2s_pushdown_seconds", v2s_push},
                            {"jdbc_pushdown_seconds", jdbc_push},
                            {"v2s_full_seconds", v2s_full},
                            {"jdbc_full_seconds", jdbc_full}});
  return 0;
}
