// Figure 11: save into Vertica — S2V vs Spark's JDBC DefaultSource at
// tiny sizes (1 / 1K / 10K rows of D1, unscaled: real rows are paper
// rows here). Paper: the 1-row case exposes overheads (S2V ~5 s for its
// bookkeeping tables vs ~3 s for JDBC); beyond that S2V's COPY path wins
// decisively (the paper stopped JDBC at 1M rows after 3 hours; S2V took
// 19 s). The 1M-row S2V point is reproduced at scale.

#include "bench/bench_common.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

double SaveJdbc(Fabric& fabric, const storage::Schema& schema,
                std::vector<storage::Row> rows, const std::string& table) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = fabric.spark()->CreateDataFrame(
        schema, std::move(rows),
        std::max(1, static_cast<int>(
                        std::min<size_t>(4, rows.size()))));
    FABRIC_CHECK_OK(df.status());
    FABRIC_CHECK_OK(df->Write()
                        .Format(baselines::kJdbcSourceName)
                        .Option("dbtable", table)
                        .Option("host", fabric.db()->node_address(0))
                        .Mode(spark::SaveMode::kOverwrite)
                        .Save(driver));
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 11: S2V vs JDBC DefaultSource save (small sizes)",
              "Fig. 11 — 1 row: S2V ~5 s vs JDBC ~3 s; 10K rows: S2V "
              "far ahead; 1M rows: S2V 19 s, JDBC >3 h");

  BenchReport report("fig11_jdbc_save");
  const int kRows[] = {1, 1000, 10000};
  std::printf("%-10s %12s %12s\n", "rows", "S2V (s)", "JDBC (s)");
  for (int rows : kRows) {
    // Unscaled: these sizes are small enough to run 1:1.
    FabricOptions options;
    options.paper_rows = rows;
    options.real_rows = rows;
    int partitions = std::min(rows, 4);

    Fabric s2v_fabric(options);
    double s2v = SaveViaS2V(s2v_fabric, D1Schema(), D1Rows(rows), "t",
                            partitions);
    Fabric jdbc_fabric(options);
    double jdbc =
        SaveJdbc(jdbc_fabric, D1Schema(), D1Rows(rows), "t");
    std::printf("%-10d %12.1f %12.1f\n", rows, s2v, jdbc);
    report.AddSample(s2v_fabric, {{"rows", static_cast<double>(rows)},
                                  {"s2v_seconds", s2v},
                                  {"jdbc_seconds", jdbc}});
  }

  // The 1M-row S2V point (Figure 7's first point, quoted in the Fig. 11
  // discussion; JDBC exceeded 3 hours there and was stopped).
  {
    FabricOptions options;
    options.paper_rows = 1e6;
    Fabric fabric(options);
    double s2v = SaveViaS2V(fabric, D1Schema(),
                            D1Rows(static_cast<int>(options.real_rows)),
                            "t", 128);
    std::printf("%-10s %12.1f %12s\n", "1M", s2v, ">3h (paper)");
    report.AddSample(fabric, {{"rows", 1e6}, {"s2v_seconds", s2v}});
  }
  return 0;
}
