// Projections: what an extra physical layout buys. A GROUP BY over a
// wide fact table is timed twice — once pinned to the super projection
// (full width, insertion order, hash aggregation) and once through the
// planner's pick, a narrow projection sorted on the grouping key (RLE
// region column, merge-style aggregation). The speedup is the headline
// number. A second experiment kills a node mid-ingest and verifies the
// recovery path converges every projection's buddy copies, fingerprint
// by fingerprint.

#include "bench/bench_common.h"

#include "storage/segment_store.h"

namespace {

using fabric::StrCat;
using fabric::bench::BenchReport;
using fabric::bench::Fabric;
using fabric::bench::FabricOptions;
using fabric::vertica::NodeState;

constexpr int kRealRows = 4000;
constexpr int kQueryReps = 8;

const char* kRegions[] = {"east", "west", "north", "south",
                          "centre", "apac", "emea", "latam"};

void LoadFact(Fabric& fabric) {
  fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK((*session)
                        ->Execute(driver,
                                  "CREATE TABLE fact (id INTEGER, "
                                  "region VARCHAR, amount FLOAT, "
                                  "aux1 FLOAT, aux2 FLOAT) "
                                  "SEGMENTED BY HASH(id) ALL NODES")
                        .status());
    fabric::Rng rng(7);
    for (int base = 0; base < kRealRows; base += 100) {
      std::string values;
      for (int i = base; i < base + 100; ++i) {
        values += StrCat(values.empty() ? "" : ", ", "(", i, ", '",
                         kRegions[rng.NextUint64(8)], "', ",
                         rng.NextUint64(97), ".5, ", rng.NextUint64(11),
                         ".25, ", rng.NextUint64(13), ".75)");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT /*+ DIRECT */ INTO fact "
                                       "VALUES ",
                                       values))
              .status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

// Times kQueryReps runs of the aggregate with the planner pinned to
// `forced` ("" = super projection, "-" = automatic).
double TimeGroupBy(Fabric& fabric, const std::string& forced) {
  return fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    if (forced != "-") (*session)->set_forced_projection(forced);
    for (int rep = 0; rep < kQueryReps; ++rep) {
      auto result = (*session)->Execute(
          driver,
          "SELECT region, COUNT(*), SUM(amount) FROM fact "
          "GROUP BY region ORDER BY region");
      FABRIC_CHECK_OK(result.status());
      FABRIC_CHECK(result->rows.size() == 8)
          << "expected 8 groups, got " << result->rows.size();
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

// Primary/buddy fingerprint convergence for every copy of `name`'s
// projection storage.
bool ProjectionConverged(Fabric& fabric, const std::string& name) {
  auto set = fabric.db()->GetProjectionStorage(name);
  FABRIC_CHECK_OK(set.status());
  if ((*set)->buddy.empty()) return true;
  for (size_t s = 0; s < (*set)->per_node.size(); ++s) {
    if ((*set)->per_node[s]->ContentFingerprint() !=
        (*set)->buddy[s]->ContentFingerprint()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  fabric::bench::PrintHeader(
      "projections: sorted narrow layouts vs the super projection",
      "Section 3.1 (projections as Vertica's physical design)");
  BenchReport report("projection");

  // --- GROUP BY: super projection vs sorted projection ----------------
  {
    FabricOptions options;
    options.tuple_mover.enabled = false;
    Fabric fabric(options);
    LoadFact(fabric);
    fabric.RunTimed([&](fabric::sim::Process& driver) {
      auto session = fabric.db()->Connect(driver, 0, nullptr);
      FABRIC_CHECK_OK(session.status());
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver,
                        // Sorted on the grouping key, segmented on the
                        // high-cardinality id so the ring stays even (8
                        // regions would skew a HASH(region) ring).
                        "CREATE PROJECTION fact_by_region AS SELECT "
                        "region, amount, id FROM fact ORDER BY region "
                        "SEGMENTED BY HASH(id)")
              .status());
      FABRIC_CHECK_OK((*session)->Close(driver));
    });

    double super_s = TimeGroupBy(fabric, "");
    double proj_s = TimeGroupBy(fabric, "-");  // automatic: the planner
    double scans = fabric.tracer()->metrics().counter(
        "vertica.projection_scans{fact_by_region}");
    FABRIC_CHECK(scans >= kQueryReps)
        << "planner never chose the projection (scans=" << scans << ")";

    std::printf("%-28s %14s\n", "layout", "group-by (s)");
    std::printf("%-28s %14.4f\n", "super projection (hash)",
                super_s / kQueryReps);
    std::printf("%-28s %14.4f\n", "fact_by_region (merge)",
                proj_s / kQueryReps);
    std::printf("\nsorted-projection speedup = %.2fx\n\n",
                super_s / proj_s);
    report.AddSample(fabric,
                     {{"super_group_by_seconds", super_s / kQueryReps},
                      {"projection_group_by_seconds", proj_s / kQueryReps},
                      {"speedup", super_s / proj_s},
                      {"projection_scans", scans}});
  }

  // --- node kill / recovery convergence -------------------------------
  {
    FabricOptions options;
    options.tuple_mover.enabled = false;
    Fabric fabric(options);
    LoadFact(fabric);
    double recovered = fabric.RunTimed([&](fabric::sim::Process& driver) {
      auto session = fabric.db()->Connect(driver, 0, nullptr);
      FABRIC_CHECK_OK(session.status());
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver,
                        // Sorted on the grouping key, segmented on the
                        // high-cardinality id so the ring stays even (8
                        // regions would skew a HASH(region) ring).
                        "CREATE PROJECTION fact_by_region AS SELECT "
                        "region, amount, id FROM fact ORDER BY region "
                        "SEGMENTED BY HASH(id)")
              .status());
      FABRIC_CHECK_OK(fabric.db()->KillNode(2));
      // Writes while the node is down: its copies fall behind on the
      // table and on every projection.
      for (int b = 0; b < 10; ++b) {
        std::string values;
        for (int i = 0; i < 50; ++i) {
          int id = 100000 + b * 50 + i;
          values += StrCat(values.empty() ? "" : ", ", "(", id, ", '",
                           kRegions[id % 8], "', 1.5, 2.25, 3.75)");
        }
        FABRIC_CHECK_OK(
            (*session)
                ->Execute(driver,
                          StrCat("INSERT INTO fact VALUES ", values))
                .status());
      }
      FABRIC_CHECK_OK(fabric.db()->RestartNode(2));
      FABRIC_CHECK_OK(
          fabric.db()->WaitForNodeState(driver, 2, NodeState::kUp));
      FABRIC_CHECK_OK((*session)->Close(driver));
    });
    bool converged = ProjectionConverged(fabric, "fact_by_region");
    FABRIC_CHECK(converged)
        << "projection buddy copies diverged after recovery";
    std::printf("node kill + recovery: projection copies converged in "
                "%.3f s (incl. downtime writes)\n",
                recovered);
    report.AddSample(
        fabric,
        {{"recovery_seconds", recovered},
         {"projection_converged", converged ? 1.0 : 0.0},
         {"recoveries",
          fabric.tracer()->metrics().counter("ksafety.recoveries")}});
  }
  return 0;
}
