// Pipeline compilation sweep: the same GROUP BY query over a
// (filter selectivity x group count x expression depth) grid, run on two
// fabrics — pipelines compiled vs the row-at-a-time interpreter. Virtual
// time is required to be identical (the compiler charges through the
// same cost model); what moves is the host CPU the simulation burns to
// evaluate the query, reported as wall milliseconds per mode and their
// ratio. Companion to the bench_micro BM_Predicate*/BM_Select* kernels.

#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"

namespace {

using fabric::Rng;
using fabric::StrCat;
using fabric::bench::BenchReport;
using fabric::bench::Fabric;
using fabric::bench::FabricOptions;
using fabric::bench::PrintHeader;

constexpr int kRealRows = 2000;
constexpr int kQueryReps = 6;

// A depth-d arithmetic chain over the scanned columns — each level adds
// a multiply and an add the evaluator must walk per row (interpreter) or
// per lane (compiled).
std::string DeepExpr(int depth) {
  std::string expr = "score";
  for (int d = 0; d < depth; ++d) {
    expr = StrCat("(", expr, " * 1.01 + 0.003)");
  }
  return expr;
}

std::string SweepQuery(int depth, double selectivity) {
  return StrCat("SELECT g, COUNT(*) AS c, SUM(", DeepExpr(depth),
                ") AS s, MIN(id) AS mn, MAX(", DeepExpr(depth),
                ") AS mx FROM t WHERE score < ", selectivity,
                " GROUP BY g");
}

// CREATE + batched INSERTs through SQL. score is uniform [0,1), so a
// `score < s` filter keeps an s-fraction of the rows; g cycles through
// `groups` distinct values.
void FillTable(Fabric& fabric, int groups) {
  fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver,
                      "CREATE TABLE t (id INTEGER, g INTEGER, "
                      "score FLOAT) SEGMENTED BY HASH(id) ALL NODES")
            .status());
    Rng rng(7);
    constexpr int kBatch = 500;
    for (int base = 0; base < kRealRows; base += kBatch) {
      std::string values;
      for (int i = base; i < std::min(kRealRows, base + kBatch); ++i) {
        values += StrCat(i > base ? ", " : "", "(", i, ", ", i % groups,
                         ", ", rng.NextDouble(), ")");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT INTO t VALUES ", values))
              .status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

struct ModeResult {
  double virtual_seconds = 0;
  double query_wall_ms = 0;
  double compiled_count = 0;
};

ModeResult RunMode(BenchReport& report, bool compiled, int depth,
                   double selectivity, int groups) {
  FabricOptions options;
  options.compile_pipelines = compiled;
  Fabric fabric(options);
  FillTable(fabric, groups);
  const std::string sql = SweepQuery(depth, selectivity);
  ModeResult result;
  double wall_before = fabric.host_wall_ms();
  result.virtual_seconds = fabric.RunTimed([&](fabric::sim::Process& d) {
    auto session = fabric.db()->Connect(d, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    for (int rep = 0; rep < kQueryReps; ++rep) {
      auto rows = (*session)->Execute(d, sql);
      FABRIC_CHECK_OK(rows.status());
      // One output row per group that survived the filter.
      FABRIC_CHECK(!rows->rows.empty() &&
                   static_cast<int>(rows->rows.size()) <= groups);
    }
    FABRIC_CHECK_OK((*session)->Close(d));
  });
  result.query_wall_ms = fabric.host_wall_ms() - wall_before;
  result.compiled_count =
      fabric.tracer()->metrics().counter("sql.compiled_pipelines");
  FABRIC_CHECK(compiled ? result.compiled_count >= kQueryReps
                        : result.compiled_count == 0)
      << "unexpected sql.compiled_pipelines = " << result.compiled_count;
  report.AddSample(fabric,
                   {{"compiled", compiled ? 1.0 : 0.0},
                    {"depth", static_cast<double>(depth)},
                    {"selectivity", selectivity},
                    {"groups", static_cast<double>(groups)},
                    {"virtual_seconds", result.virtual_seconds},
                    {"query_wall_ms", result.query_wall_ms}});
  return result;
}

}  // namespace

int main() {
  PrintHeader(
      "Pipeline compilation sweep: compiled kernels vs row interpreter",
      "executor hot path (no paper figure; host-CPU companion to "
      "Section 4's virtual-time results)");
  BenchReport report("pipeline");

  std::printf("%-6s %-5s %-7s %14s %14s %9s %11s\n", "depth", "sel",
              "groups", "interp_ms", "compiled_ms", "speedup",
              "virtual_s");
  double best = 0, worst = 1e9;
  double log_sum = 0;
  int cells = 0;
  for (int depth : {1, 4, 8}) {
    for (double selectivity : {0.1, 0.5, 0.9}) {
      for (int groups : {1, 16, 256}) {
        ModeResult interp =
            RunMode(report, false, depth, selectivity, groups);
        ModeResult comp = RunMode(report, true, depth, selectivity, groups);
        // The compiled path must not move virtual time at all.
        FABRIC_CHECK(interp.virtual_seconds == comp.virtual_seconds)
            << "virtual time diverged: " << interp.virtual_seconds
            << " vs " << comp.virtual_seconds;
        double speedup = comp.query_wall_ms > 0
                             ? interp.query_wall_ms / comp.query_wall_ms
                             : 0;
        best = std::max(best, speedup);
        worst = std::min(worst, speedup);
        log_sum += std::log(std::max(speedup, 1e-9));
        ++cells;
        std::printf("%-6d %-5.1f %-7d %14.2f %14.2f %8.2fx %11.4f\n",
                    depth, selectivity, groups, interp.query_wall_ms,
                    comp.query_wall_ms, speedup, comp.virtual_seconds);
      }
    }
  }
  std::printf(
      "geomean speedup %.2fx, best %.2fx, worst %.2fx "
      "(host wall; virtual time identical by construction)\n",
      std::exp(log_sum / cells), best, worst);
  return 0;
}
