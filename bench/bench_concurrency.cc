// Workload management under mixed-tenant concurrency. A BigBench-style
// mix of query classes — short dashboard SQL, V2S grouped aggregates,
// S2V loads — is driven as thousands of concurrent logical sessions
// (wm::Multiplexer) against one fabric, each class tagged to its own
// resource pool. Four configurations sweep the admission story:
//
//   wm off            legacy flat semaphore (the pre-WM database)
//   wm on             etl/dashboard/adhoc pools with priorities,
//                     budgets and cascade-to-general borrowing
//   wm on + spill     tiny per-query grants: every GROUP BY runs over
//                     budget and completes by spilling (results are
//                     byte-identical; only the disk traffic moves)
//   wm on + kill/tm   a node dies and rejoins mid-run under aggressive
//                     Tuple Mover service, with the per-node session
//                     cap low enough that the connector's typed
//                     MAX_CLIENT_SESSIONS backoff fires
//
// Reported per pool: completed/failed sessions, p50/p99 virtual
// latency, throughput, and the Jain fairness index across the pool's
// tenants. BENCH_concurrency.json carries every sample plus the full
// metrics snapshot (wm.* / sql.agg_spills / connector.session_backoffs).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "connector/failover.h"
#include "vertica/wm/multiplexer.h"

namespace {

using fabric::Status;
using fabric::StrCat;
using fabric::bench::Fabric;
using fabric::bench::FabricOptions;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;
using fabric::vertica::wm::Multiplexer;
using fabric::vertica::wm::PoolConfig;
using fabric::vertica::wm::WorkloadConfig;

constexpr int kTenantsPerPool = 4;

// The three-pool topology every WM-on configuration uses. Capacities are
// per node and deliberately small relative to the session count, so the
// admission queues (not the lane pool) shape the run.
WorkloadConfig ThreePools(double query_memory) {
  WorkloadConfig config;
  PoolConfig general;
  general.name = "general";
  general.max_concurrency = 4;
  general.memory_budget = 64 << 20;
  config.pools.push_back(general);
  PoolConfig etl;
  etl.name = "etl";
  etl.cascade_to = "general";
  etl.priority = 0;
  etl.max_concurrency = 2;
  etl.memory_budget = 32 << 20;
  etl.query_memory = query_memory;
  config.pools.push_back(etl);
  PoolConfig dashboard;
  dashboard.name = "dashboard";
  dashboard.cascade_to = "general";
  dashboard.priority = 10;
  dashboard.max_concurrency = 4;
  dashboard.memory_budget = 16 << 20;
  dashboard.query_memory = query_memory;
  config.pools.push_back(dashboard);
  PoolConfig adhoc;
  adhoc.name = "adhoc";
  adhoc.cascade_to = "general";
  adhoc.priority = 5;
  adhoc.max_concurrency = 2;
  adhoc.memory_budget = 16 << 20;
  adhoc.query_memory = query_memory;
  adhoc.queue_timeout = 600;  // generous; typed timeouts still possible
  config.pools.push_back(adhoc);
  return config;
}

// Aggressive Tuple Mover service (the storage-management load the
// kill/tm configuration adds on top of the query mix).
fabric::vertica::TupleMoverConfig BusyTm() {
  fabric::vertica::TupleMoverConfig tm;
  tm.moveout_interval = 0.05;
  tm.mergeout_interval = 0.1;
  tm.strata_min_containers = 2;
  tm.ahm_interval = 0.25;
  tm.retention_epochs = 8;
  return tm;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

// Jain fairness index over per-tenant completion counts: 1 when every
// tenant of the pool got the same share, 1/n when one tenant starved
// the rest.
double JainIndex(const std::vector<int64_t>& per_tenant) {
  double sum = 0, sum_sq = 0;
  for (int64_t x : per_tenant) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (sum_sq == 0) return 0;
  return sum * sum / (static_cast<double>(per_tenant.size()) * sum_sq);
}

// Per-class outcome accumulators, indexed by logical session id within
// the class. The sim engine interleaves lane processes cooperatively,
// so plain vectors are safe.
struct ClassStats {
  std::string name;
  std::string pool;
  int sessions = 0;
  std::vector<double> latencies;              // completed only
  std::vector<int64_t> tenant_completed;      // kTenantsPerPool entries
  int failed = 0;

  void Finish(int tenant, double latency) {
    latencies.push_back(latency);
    tenant_completed[tenant] += 1;
  }
};

struct BenchConfig {
  const char* label;
  bool wm = false;
  double query_memory = 0;   // 0 = derived; tiny forces spilling
  bool kill_and_tm = false;  // node kill + restart + busy Tuple Mover
};

struct ConfigResult {
  double makespan = 0;
  int peak_concurrent = 0;
  std::vector<ClassStats> classes;
};

// Stages the shared fact table the dashboard and adhoc classes query.
void StageFacts(Fabric& fabric, fabric::sim::Process& driver) {
  auto session = fabric.db()->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver,
                    "CREATE TABLE facts (region INTEGER, item INTEGER, "
                    "sales INTEGER) SEGMENTED BY HASH(region) ALL NODES")
          .status());
  std::string values;
  for (int i = 0; i < 240; ++i) {
    values += StrCat(i ? ", " : "", "(", i % 12, ", ", i, ", ",
                     (i * 37) % 1000, ")");
  }
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver, StrCat("INSERT INTO facts VALUES ", values))
          .status());
  FABRIC_CHECK_OK((*session)->Close(driver));
}

ConfigResult RunConfig(Fabric& fabric, const BenchConfig& config,
                       int sessions_per_class, int lanes) {
  ConfigResult result;
  auto make_class = [](const char* name, const char* pool) {
    ClassStats cls;
    cls.name = name;
    cls.pool = pool;
    return cls;
  };
  result.classes.push_back(make_class("short-sql", "dashboard"));
  result.classes.push_back(make_class("v2s-agg", "adhoc"));
  result.classes.push_back(make_class("s2v-load", "etl"));
  for (ClassStats& cls : result.classes) {
    cls.sessions = sessions_per_class;
    cls.tenant_completed.assign(kTenantsPerPool, 0);
  }

  fabric.RunTimed(
      [&](fabric::sim::Process& driver) { StageFacts(fabric, driver); });

  Schema load_schema(
      {{"id", DataType::kInt64}, {"val", DataType::kInt64}});

  result.makespan = fabric.RunTimed([&](fabric::sim::Process& driver) {
    Multiplexer mux(fabric.engine(),
                    Multiplexer::Options{.lanes = lanes, .name = "bench"});
    // All sessions arrive within a short burst window: the backlog this
    // builds is what "concurrent" means here, and what the admission
    // queues have to drain fairly.
    constexpr double kArrivalSpread = 0.25;
    for (int cls = 0; cls < 3; ++cls) {
      ClassStats* stats = &result.classes[cls];
      for (int i = 0; i < sessions_per_class; ++i) {
        Multiplexer::SessionSpec spec;
        spec.start =
            kArrivalSpread * i / std::max(1, sessions_per_class);
        double start = spec.start;
        int tenant = i % kTenantsPerPool;
        spec.body = [&fabric, &load_schema, cls, stats, tenant, start, i](
                        fabric::sim::Process& self, int, int) -> Status {
          Status status;
          if (cls == 0) {
            // Short dashboard SQL: one grouped aggregate over the
            // shared fact table, entry node spread across the ring.
            auto session = fabric::connector::ConnectWithFailover(
                self, fabric.db(), i % fabric.db()->num_nodes(), nullptr);
            if (!session.ok()) {
              status = session.status();
            } else {
              (*session)->set_resource_pool("dashboard");
              status = (*session)
                           ->Execute(self,
                                     "SELECT region, COUNT(*), SUM(sales) "
                                     "FROM facts GROUP BY region")
                           .status();
              Status closed = (*session)->Close(self);
              if (status.ok()) status = closed;
            }
          } else if (cls == 1) {
            // V2S grouped aggregate: the grouping covers the
            // segmentation column, so the aggregate pushes down and
            // runs under the adhoc pool inside Vertica.
            auto df = fabric.spark()
                          ->Read()
                          .Format(fabric::connector::kVerticaSourceName)
                          .Option("table", "facts")
                          .Option("numpartitions", 2)
                          .Option("resource_pool", "adhoc")
                          .Load(self);
            status = df.status();
            if (status.ok()) {
              auto grouped = df->GroupBy({"region"});
              status = grouped.status();
              if (status.ok()) {
                auto agg = grouped->Agg({fabric::spark::AggCount(),
                                         fabric::spark::AggSum("sales")});
                status = agg.status();
                if (status.ok()) status = agg->Collect(self).status();
              }
            }
          } else {
            // S2V load: a small partitioned save into a per-session
            // table, staged and committed under the etl pool.
            std::vector<Row> rows;
            for (int r = 0; r < 40; ++r) {
              rows.push_back({Value::Int64(r), Value::Int64(i * 100 + r)});
            }
            auto df = fabric.spark()->CreateDataFrame(load_schema,
                                                      std::move(rows), 2);
            status = df.status();
            if (status.ok()) {
              status = df->Write()
                           .Format(fabric::connector::kVerticaSourceName)
                           .Option("table", StrCat("load_", i))
                           .Option("numpartitions", 2)
                           .Option("resource_pool", "etl")
                           .Mode(fabric::spark::SaveMode::kOverwrite)
                           .Save(self);
            }
          }
          if (status.ok()) {
            stats->Finish(tenant, self.Now() - start);
          } else {
            ++stats->failed;
          }
          // The multiplexer aborts errored sessions; outcomes are
          // already recorded, so the lane itself always reports OK
          // (unless the process was killed with the node).
          return self.CheckAlive();
        };
        mux.AddSession(std::move(spec));
      }
    }
    mux.Launch();
    if (config.kill_and_tm) {
      fabric.engine()->Spawn("killer", [&](fabric::sim::Process& self) {
        if (!self.Sleep(1.0).ok()) return;
        FABRIC_CHECK_OK(fabric.db()->KillNode(1));
        if (!self.Sleep(5.0).ok()) return;
        FABRIC_CHECK_OK(fabric.db()->RestartNode(1));
      });
    }
    FABRIC_CHECK_OK(mux.Join(driver));
    result.peak_concurrent = mux.stats().peak_concurrent;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fabric::bench;

  int sessions_per_class = 400;  // 1200 logical sessions per config
  int lanes = 96;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions_per_class = std::max(1, std::atoi(argv[++i]) / 3);
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lanes = std::max(1, std::atoi(argv[++i]));
    }
  }

  PrintHeader(
      "Workload management: mixed tenants under admission control",
      "production-concurrency substrate (Section 2.2's resource "
      "manager; not a paper figure)");
  std::printf("%d logical sessions per config (%d per class), %d lanes\n\n",
              3 * sessions_per_class, sessions_per_class, lanes);

  BenchReport report("concurrency");

  const BenchConfig kConfigs[] = {
      {"wm off", false, 0, false},
      {"wm on", true, 0, false},
      {"wm on + spill", true, 400, false},
      {"wm on + kill/tm", true, 0, true},
  };

  for (int c = 0; c < 4; ++c) {
    const BenchConfig& config = kConfigs[c];
    FabricOptions options;
    if (config.wm) options.workload = ThreePools(config.query_memory);
    if (config.kill_and_tm) {
      options.tuple_mover = BusyTm();
      // Low session cap: parallel S2V/V2S task connections brush it,
      // exercising the connector's typed MAX_CLIENT_SESSIONS backoff.
      options.max_client_sessions = 48;
    }
    Fabric fabric(options);
    ConfigResult result =
        RunConfig(fabric, config, sessions_per_class, lanes);

    std::printf("--- %-18s makespan %.2fs, peak %d concurrent sessions\n",
                config.label, result.makespan, result.peak_concurrent);
    std::printf("%-10s %-10s %6s %6s %6s %9s %9s %8s %6s\n", "class",
                "pool", "done", "fail", "p50", "p99", "thru/s", "jain",
                "spill");
    const auto& metrics = fabric.tracer()->metrics();
    for (size_t k = 0; k < result.classes.size(); ++k) {
      const ClassStats& cls = result.classes[k];
      double p50 = Percentile(cls.latencies, 0.50);
      double p99 = Percentile(cls.latencies, 0.99);
      double throughput = result.makespan > 0
                              ? cls.latencies.size() / result.makespan
                              : 0;
      double jain = JainIndex(cls.tenant_completed);
      // Per-pool spill counts from the pool status rows (WM on only).
      double pool_spills = 0;
      auto* wm = fabric.db()->workload_manager();
      if (wm != nullptr) {
        for (const auto& row : wm->PoolStatusRows()) {
          if (row.pool == cls.pool) {
            pool_spills += static_cast<double>(row.spills);
          }
        }
      }
      std::printf("%-10s %-10s %6zu %6d %6.2f %9.2f %9.1f %8.3f %6.0f\n",
                  cls.name.c_str(), cls.pool.c_str(),
                  cls.latencies.size(), cls.failed, p50, p99, throughput,
                  jain, pool_spills);
      report.AddSample(
          fabric,
          {{"config", static_cast<double>(c)},
           {"wm", config.wm ? 1.0 : 0.0},
           {"kill_and_tm", config.kill_and_tm ? 1.0 : 0.0},
           {"query_memory", config.query_memory},
           {"class", static_cast<double>(k)},
           {"sessions", static_cast<double>(cls.sessions)},
           {"completed", static_cast<double>(cls.latencies.size())},
           {"failed", static_cast<double>(cls.failed)},
           {"p50_s", p50},
           {"p99_s", p99},
           {"throughput_per_s", throughput},
           {"jain", jain},
           {"pool_spills", pool_spills},
           {"makespan_s", result.makespan},
           {"peak_concurrent",
            static_cast<double>(result.peak_concurrent)}});
    }
    std::printf(
        "    wm timeouts %.0f, spills %.0f (%.0f bytes), "
        "session backoffs %.0f\n\n",
        metrics.counter("wm.queue_timeouts"), metrics.counter("wm.spills"),
        metrics.counter("wm.spill_bytes"),
        metrics.counter("connector.session_backoffs"));
  }
  return 0;
}
