// K-safety: recovery time and degraded-mode throughput. Not a paper
// figure — the paper's production clusters run k=1 (Section 4.1), and
// this bench characterizes what that buys: how long a restarted node
// takes to catch up as a function of how much data was written while it
// was down, and what a node loss costs a V2S load served from buddies.

#include "bench/bench_common.h"

#include "vertica/ksafety/ksafety.h"

namespace {

fabric::storage::Schema ScoreSchema() {
  return fabric::storage::Schema(
      {{"id", fabric::storage::DataType::kInt64},
       {"score", fabric::storage::DataType::kFloat64}});
}

std::vector<fabric::storage::Row> ScoreRows(int n) {
  std::vector<fabric::storage::Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({fabric::storage::Value::Int64(i),
                    fabric::storage::Value::Float64(i * 0.5)});
  }
  return rows;
}

}  // namespace

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("K-safety: recovery catch-up and degraded loads",
              "k=1 buddy segments; recovery pulls the missed delta "
              "from the buddies");

  BenchReport report("ksafety");

  // --- recovery time vs. data written while the node was down ---------
  std::printf("%-18s %14s %16s\n", "rows while down", "recovery (s)",
              "recovery bytes");
  for (int rows_while_down : {0, 2000, 5000, 10000}) {
    FabricOptions options;
    Fabric fabric(options);
    SaveViaS2V(fabric, ScoreSchema(), ScoreRows(5000), "t", 16);

    double recovery_seconds = -1;
    fabric.RunTimed([&](sim::Process& driver) {
      FABRIC_CHECK_OK(fabric.db()->KillNode(1));
      auto session = fabric.db()->Connect(driver, 0, nullptr);
      FABRIC_CHECK_OK(session.status());
      constexpr int kBatch = 500;
      for (int base = 0; base < rows_while_down; base += kBatch) {
        std::string values;
        for (int i = 0; i < kBatch; ++i) {
          values += StrCat(i ? ", " : "", "(", 100000 + base + i, ", ",
                           (base + i) % 10, ".25)");
        }
        FABRIC_CHECK_OK(
            (*session)
                ->Execute(driver, StrCat("INSERT INTO t VALUES ", values))
                .status());
      }
      FABRIC_CHECK_OK((*session)->Close(driver));
      double start = driver.Now();
      FABRIC_CHECK_OK(fabric.db()->RestartNode(1));
      FABRIC_CHECK_OK(fabric.db()->WaitForNodeState(
          driver, 1, vertica::NodeState::kUp));
      recovery_seconds = driver.Now() - start;
    });
    double bytes =
        fabric.tracer()->metrics().counter("ksafety.recovery_bytes");
    std::printf("%-18d %14.3f %16.0f\n", rows_while_down,
                recovery_seconds, bytes);
    report.AddSample(fabric,
                     {{"rows_while_down",
                       static_cast<double>(rows_while_down)},
                      {"recovery_seconds", recovery_seconds},
                      {"recovery_bytes", bytes}});
  }

  // --- V2S load: healthy vs. degraded (one node down) -----------------
  std::printf("\n%-18s %14s\n", "cluster", "V2S load (s)");
  double healthy = 0, degraded = 0;
  {
    FabricOptions options;
    Fabric fabric(options);
    SaveViaS2V(fabric, ScoreSchema(), ScoreRows(10000), "t", 16);
    healthy = LoadViaV2S(fabric, "t", 16);
    std::printf("%-18s %14.2f\n", "4/4 nodes up", healthy);
    report.AddSample(fabric, {{"nodes_up", 4}, {"load_seconds", healthy}});
  }
  {
    FabricOptions options;
    Fabric fabric(options);
    SaveViaS2V(fabric, ScoreSchema(), ScoreRows(10000), "t", 16);
    fabric.RunTimed([&](sim::Process& driver) {
      FABRIC_CHECK_OK(fabric.db()->KillNode(2));
    });
    degraded = LoadViaV2S(fabric, "t", 16);
    std::printf("%-18s %14.2f\n", "3/4 nodes up", degraded);
    report.AddSample(fabric,
                     {{"nodes_up", 3},
                      {"load_seconds", degraded},
                      {"scan_reroutes",
                       fabric.tracer()->metrics().counter(
                           "ksafety.scan_reroutes")}});
  }
  std::printf("\ndegraded/healthy load time = %.2fx\n",
              degraded / healthy);
  return 0;
}
