// Microbenchmarks (google-benchmark) for the fabric's hot paths: ring
// hashing, columnar encodings, the Avro batch codec, SQL parsing, the
// flow simulator's re-rating step, and the vectorized scan engine
// (predicate kernels on encoded data vs the decode-then-filter
// baseline). These measure real host CPU (not virtual time) — the code
// the simulation actually executes.

#include <algorithm>
#include <variant>

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "exec/pipeline.h"
#include "vertica/pipeline.h"
#include "vertica/sql_eval.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/avro.h"
#include "net/network.h"
#include "sim/engine.h"
#include "storage/column_cursor.h"
#include "storage/encoding.h"
#include "storage/scan_kernels.h"
#include "storage/schema.h"
#include "storage/segment_store.h"
#include "vertica/sql_parser.h"

namespace fabric {
namespace {

void BM_RingHashRow(benchmark::State& state) {
  int cols = static_cast<int>(state.range(0));
  Rng rng(1);
  storage::Row row;
  std::vector<int> indices;
  for (int c = 0; c < cols; ++c) {
    row.push_back(storage::Value::Float64(rng.NextDouble()));
    indices.push_back(c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::RowSegmentationHash(row, indices));
  }
}
BENCHMARK(BM_RingHashRow)->Arg(2)->Arg(10)->Arg(100);

void BM_EncodeColumn(benchmark::State& state) {
  auto encoding = static_cast<storage::Encoding>(state.range(0));
  Rng rng(2);
  std::vector<storage::Value> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(storage::Value::Int64(rng.NextInt64(0, 15)));
  }
  for (auto _ : state) {
    auto chunk =
        storage::EncodeColumnAs(storage::DataType::kInt64, encoding,
                                values);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EncodeColumn)
    ->Arg(static_cast<int>(storage::Encoding::kPlain))
    ->Arg(static_cast<int>(storage::Encoding::kRle))
    ->Arg(static_cast<int>(storage::Encoding::kDictionary));

void BM_DecodeColumn(benchmark::State& state) {
  Rng rng(3);
  std::vector<storage::Value> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(storage::Value::Float64(rng.NextDouble()));
  }
  auto chunk = storage::EncodeColumn(storage::DataType::kFloat64, values);
  for (auto _ : state) {
    auto decoded = storage::DecodeColumn(*chunk);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DecodeColumn);

void BM_AvroBatchRoundTrip(benchmark::State& state) {
  int cols = static_cast<int>(state.range(0));
  std::vector<storage::ColumnDef> defs;
  for (int c = 0; c < cols; ++c) {
    defs.push_back({StrCat("c", c), storage::DataType::kFloat64});
  }
  storage::Schema schema(std::move(defs));
  Rng rng(4);
  std::vector<storage::Row> rows;
  for (int i = 0; i < 256; ++i) {
    storage::Row row;
    for (int c = 0; c < cols; ++c) {
      row.push_back(storage::Value::Float64(rng.NextDouble()));
    }
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    std::string encoded = connector::AvroEncodeBatch(schema, rows);
    auto decoded = connector::AvroDecodeBatch(schema, encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AvroBatchRoundTrip)->Arg(2)->Arg(100);

void BM_SqlParse(benchmark::State& state) {
  const char* sql =
      "SELECT c0, c1, COUNT(*) AS n FROM d1 WHERE HASH(c0, c1) >= "
      "-9223372036854775808 AND HASH(c0, c1) < 42 AND c5 > 0.5 "
      "GROUP BY c0, c1 ORDER BY n DESC LIMIT 100 AT EPOCH 7";
  for (auto _ : state) {
    auto statement = vertica::sql::Parse(sql);
    benchmark::DoNotOptimize(statement);
  }
}
BENCHMARK(BM_SqlParse);

// ------------------------------------------------ vectorized scan engine

// Column data shaped for the requested encoding: long runs for RLE,
// shuffled low-cardinality for dictionary, full-range random for plain
// (so the auto-chooser in EncodeColumn would pick the same encoding).
std::vector<storage::Value> ScanBenchValues(storage::Encoding encoding,
                                            int rows) {
  Rng rng(7);
  std::vector<storage::Value> values;
  values.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    int64_t v;
    switch (encoding) {
      case storage::Encoding::kRle:
        v = (i / 256) % 16;
        break;
      case storage::Encoding::kDictionary:
        v = rng.NextInt64(0, 15);
        break;
      default:
        v = rng.NextInt64(0, int64_t{1} << 30);
        break;
    }
    values.push_back(storage::Value::Int64(v));
  }
  return values;
}

constexpr int kScanRows = 4096;

// `c < 8` evaluated by the predicate kernels on the encoded form: once
// per run (RLE), once per distinct value (dictionary), tight loop
// (plain). Compare with BM_FilterDecodeBaseline on the same chunk.
void BM_FilterEncodedKernel(benchmark::State& state) {
  auto encoding = static_cast<storage::Encoding>(state.range(0));
  auto chunk =
      storage::EncodeColumnAs(storage::DataType::kInt64, encoding,
                              ScanBenchValues(encoding, kScanRows));
  FABRIC_CHECK_OK(chunk.status());
  storage::CompareTerm term;
  term.op = storage::CompareOp::kLt;
  term.number = 8;
  for (auto _ : state) {
    storage::ColumnCursor cursor;
    FABRIC_CHECK_OK(cursor.Open(&*chunk));
    storage::ColumnBatch batch;
    storage::SelectionVector sel;
    size_t matched = 0;
    while (true) {
      auto more = cursor.Next(&batch);
      FABRIC_CHECK_OK(more.status());
      if (!*more) break;
      sel.resize(batch.length);
      for (uint32_t i = 0; i < batch.length; ++i) sel[i] = batch.base + i;
      storage::FilterCompare(term, cursor, batch, &sel);
      matched += sel.size();
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_FilterEncodedKernel)
    ->Arg(static_cast<int>(storage::Encoding::kPlain))
    ->Arg(static_cast<int>(storage::Encoding::kRle))
    ->Arg(static_cast<int>(storage::Encoding::kDictionary));

// The pre-engine scan path: decode every row to a boxed Value, then
// filter with Value::Compare. Kept compiled as the baseline the engine's
// >= 3x throughput claim is measured against.
void BM_FilterDecodeBaseline(benchmark::State& state) {
  auto encoding = static_cast<storage::Encoding>(state.range(0));
  auto chunk =
      storage::EncodeColumnAs(storage::DataType::kInt64, encoding,
                              ScanBenchValues(encoding, kScanRows));
  FABRIC_CHECK_OK(chunk.status());
  storage::Value literal = storage::Value::Int64(8);
  for (auto _ : state) {
    auto decoded = storage::DecodeColumn(*chunk);
    FABRIC_CHECK_OK(decoded.status());
    size_t matched = 0;
    for (const storage::Value& v : *decoded) {
      if (v.is_null()) continue;
      auto c = v.Compare(literal);
      if (c.ok() && *c < 0) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_FilterDecodeBaseline)
    ->Arg(static_cast<int>(storage::Encoding::kPlain))
    ->Arg(static_cast<int>(storage::Encoding::kRle))
    ->Arg(static_cast<int>(storage::Encoding::kDictionary));

// Late materialization: filter to ~1/16 of an RLE column, then gather
// only the survivors into rows (boxing once per run).
void BM_GatherSelected(benchmark::State& state) {
  auto chunk = storage::EncodeColumnAs(
      storage::DataType::kInt64, storage::Encoding::kRle,
      ScanBenchValues(storage::Encoding::kRle, kScanRows));
  FABRIC_CHECK_OK(chunk.status());
  storage::CompareTerm term;
  term.op = storage::CompareOp::kEq;
  term.number = 3;
  for (auto _ : state) {
    storage::ColumnCursor cursor;
    FABRIC_CHECK_OK(cursor.Open(&*chunk));
    storage::ColumnBatch batch;
    storage::SelectionVector sel;
    std::vector<storage::Row> out;
    while (true) {
      auto more = cursor.Next(&batch);
      FABRIC_CHECK_OK(more.status());
      if (!*more) break;
      sel.resize(batch.length);
      for (uint32_t i = 0; i < batch.length; ++i) sel[i] = batch.base + i;
      storage::FilterCompare(term, cursor, batch, &sel);
      size_t out_base = out.size();
      out.resize(out_base + sel.size(), storage::Row(1));
      storage::GatherColumn(cursor, batch, sel, 0, &out, out_base);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_GatherSelected);

// Whole-store filtered scan (SegmentStore::Scan): container pruning,
// kernels, selection-vector materialization — per column encoding.
void BM_SegmentStoreScan(benchmark::State& state) {
  auto encoding = static_cast<storage::Encoding>(state.range(0));
  storage::Schema schema({{"c0", storage::DataType::kInt64},
                          {"c1", storage::DataType::kFloat64}});
  std::vector<storage::Value> keys = ScanBenchValues(encoding, kScanRows);
  Rng rng(8);
  std::vector<storage::Row> rows;
  rows.reserve(kScanRows);
  for (int i = 0; i < kScanRows; ++i) {
    rows.push_back({keys[i], storage::Value::Float64(rng.NextDouble())});
  }
  storage::SegmentStore store(schema);
  FABRIC_CHECK_OK(store.InsertPendingDirect(1, std::move(rows)));
  store.CommitTxn(1, 1);
  storage::ScanPredicate predicate;
  predicate.compares.push_back(
      {0, storage::CompareOp::kLt, false, 8, ""});
  storage::ScanSpec spec;
  spec.as_of = 1;
  spec.predicate = &predicate;
  for (auto _ : state) {
    storage::ScanStats stats;
    auto out = store.Scan(spec, &stats);
    FABRIC_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_SegmentStoreScan)
    ->Arg(static_cast<int>(storage::Encoding::kPlain))
    ->Arg(static_cast<int>(storage::Encoding::kRle))
    ->Arg(static_cast<int>(storage::Encoding::kDictionary));

void BM_FlowRerate(benchmark::State& state) {
  // Measures the water-filling recompute triggered by flow churn with N
  // concurrent flows across shared links.
  int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(&engine);
    net::LinkId shared = network.AddLink("shared", 1e9);
    for (int i = 0; i < flows; ++i) {
      net::LinkId own = network.AddLink("own", 1e8);
      engine.Spawn("f", [&network, own, shared](sim::Process& self) {
        (void)network.Transfer(self, {own, shared}, 1e6);
      });
    }
    Status status = engine.Run();
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowRerate)->Arg(8)->Arg(64)->Arg(256);

// --------------------------------------------------- pipeline compiler

// The interpreter-residual hot path both ways: a depth-d arithmetic
// predicate evaluated per row through the SQL interpreter vs lowered
// once into exec kernels and run over 1024-row blocks. The arg is the
// expression depth (extra multiply-add levels around the column).
storage::Schema PipelineSchema() {
  return storage::Schema({{"id", storage::DataType::kInt64},
                          {"score", storage::DataType::kFloat64},
                          {"name", storage::DataType::kVarchar}});
}

std::vector<storage::Row> PipelineRows(int n) {
  Rng rng(11);
  std::vector<storage::Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({storage::Value::Int64(i),
                    storage::Value::Float64(rng.NextDouble()),
                    storage::Value::Varchar(rng.NextString(8))});
  }
  return rows;
}

std::string DeepPredicateSql(int depth) {
  std::string expr = "score";
  for (int d = 0; d < depth; ++d) {
    expr = StrCat("(", expr, " * 1.01 + 0.003)");
  }
  return StrCat(expr, " < 0.7 AND id % 5 <> 0");
}

void BM_PredicateInterpreted(benchmark::State& state) {
  const storage::Schema schema = PipelineSchema();
  const auto rows = PipelineRows(4096);
  auto expr = vertica::sql::ParseExpression(
      DeepPredicateSql(static_cast<int>(state.range(0))));
  FABRIC_CHECK_OK(expr.status());
  for (auto _ : state) {
    size_t kept = 0;
    for (const storage::Row& row : rows) {
      vertica::sql::EvalContext context;
      context.schema = &schema;
      context.row = &row;
      auto match = vertica::sql::EvalPredicate(**expr, context);
      FABRIC_CHECK_OK(match.status());
      kept += *match ? 1 : 0;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_PredicateInterpreted)->Arg(1)->Arg(4)->Arg(8);

void BM_PredicateCompiled(benchmark::State& state) {
  const storage::Schema schema = PipelineSchema();
  const auto rows = PipelineRows(4096);
  auto expr = vertica::sql::ParseExpression(
      DeepPredicateSql(static_cast<int>(state.range(0))));
  FABRIC_CHECK_OK(expr.status());
  auto program = vertica::LowerExpr(**expr, schema);
  FABRIC_CHECK(program.has_value()) << "predicate did not compile";
  exec::EvalState eval_state;
  std::vector<uint32_t> active(exec::kBlockRows);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    size_t kept = 0;
    for (size_t base = 0; base < rows.size(); base += exec::kBlockRows) {
      size_t block = std::min(rows.size() - base, exec::kBlockRows);
      active.resize(block);
      for (size_t i = 0; i < block; ++i) {
        active[i] = static_cast<uint32_t>(i);
      }
      bool handled =
          exec::RunFilter(*program, rows.data() + base, block, active,
                          &eval_state, &out);
      FABRIC_CHECK(handled) << "compiled predicate bailed";
      kept += out.size();
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_PredicateCompiled)->Arg(1)->Arg(4)->Arg(8);

// A full interpreter-residual SELECT body (filter + projected
// expressions) the two ways the executor runs it.
constexpr const char* kSelectSql =
    "SELECT id * 2 + 1, score / 2.5, UPPER(name), LENGTH(name) "
    "FROM t WHERE score < 0.7 AND id % 5 <> 0";

void BM_SelectInterpreted(benchmark::State& state) {
  const storage::Schema schema = PipelineSchema();
  const auto rows = PipelineRows(4096);
  auto statement = vertica::sql::Parse(kSelectSql);
  FABRIC_CHECK_OK(statement.status());
  const auto& select = std::get<vertica::sql::SelectStmt>(*statement);
  for (auto _ : state) {
    std::vector<storage::Row> out;
    for (const storage::Row& row : rows) {
      vertica::sql::EvalContext context;
      context.schema = &schema;
      context.row = &row;
      auto match = vertica::sql::EvalPredicate(*select.where, context);
      FABRIC_CHECK_OK(match.status());
      if (!*match) continue;
      storage::Row projected;
      for (const auto& item : select.items) {
        auto value = vertica::sql::Eval(*item.expr, context);
        FABRIC_CHECK_OK(value.status());
        projected.push_back(*std::move(value));
      }
      out.push_back(std::move(projected));
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_SelectInterpreted);

void BM_SelectCompiled(benchmark::State& state) {
  const storage::Schema schema = PipelineSchema();
  const auto rows = PipelineRows(4096);
  auto statement = vertica::sql::Parse(kSelectSql);
  FABRIC_CHECK_OK(statement.status());
  const auto& select = std::get<vertica::sql::SelectStmt>(*statement);
  auto compiled =
      vertica::LowerSelect(select, schema, nullptr, nullptr);
  FABRIC_CHECK(compiled.has_value()) << "select did not compile";
  for (auto _ : state) {
    auto out = exec::RunCompiledSelect(compiled->select, rows);
    FABRIC_CHECK(out.has_value()) << "compiled select bailed";
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_SelectCompiled);

}  // namespace
}  // namespace fabric

BENCHMARK_MAIN();
