// Microbenchmarks (google-benchmark) for the fabric's hot paths: ring
// hashing, columnar encodings, the Avro batch codec, SQL parsing and the
// flow simulator's re-rating step. These measure real host CPU (not
// virtual time) — the code the simulation actually executes.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/avro.h"
#include "net/network.h"
#include "sim/engine.h"
#include "storage/encoding.h"
#include "storage/schema.h"
#include "vertica/sql_parser.h"

namespace fabric {
namespace {

void BM_RingHashRow(benchmark::State& state) {
  int cols = static_cast<int>(state.range(0));
  Rng rng(1);
  storage::Row row;
  std::vector<int> indices;
  for (int c = 0; c < cols; ++c) {
    row.push_back(storage::Value::Float64(rng.NextDouble()));
    indices.push_back(c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::RowSegmentationHash(row, indices));
  }
}
BENCHMARK(BM_RingHashRow)->Arg(2)->Arg(10)->Arg(100);

void BM_EncodeColumn(benchmark::State& state) {
  auto encoding = static_cast<storage::Encoding>(state.range(0));
  Rng rng(2);
  std::vector<storage::Value> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(storage::Value::Int64(rng.NextInt64(0, 15)));
  }
  for (auto _ : state) {
    auto chunk =
        storage::EncodeColumnAs(storage::DataType::kInt64, encoding,
                                values);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EncodeColumn)
    ->Arg(static_cast<int>(storage::Encoding::kPlain))
    ->Arg(static_cast<int>(storage::Encoding::kRle))
    ->Arg(static_cast<int>(storage::Encoding::kDictionary));

void BM_DecodeColumn(benchmark::State& state) {
  Rng rng(3);
  std::vector<storage::Value> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(storage::Value::Float64(rng.NextDouble()));
  }
  auto chunk = storage::EncodeColumn(storage::DataType::kFloat64, values);
  for (auto _ : state) {
    auto decoded = storage::DecodeColumn(*chunk);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DecodeColumn);

void BM_AvroBatchRoundTrip(benchmark::State& state) {
  int cols = static_cast<int>(state.range(0));
  std::vector<storage::ColumnDef> defs;
  for (int c = 0; c < cols; ++c) {
    defs.push_back({StrCat("c", c), storage::DataType::kFloat64});
  }
  storage::Schema schema(std::move(defs));
  Rng rng(4);
  std::vector<storage::Row> rows;
  for (int i = 0; i < 256; ++i) {
    storage::Row row;
    for (int c = 0; c < cols; ++c) {
      row.push_back(storage::Value::Float64(rng.NextDouble()));
    }
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    std::string encoded = connector::AvroEncodeBatch(schema, rows);
    auto decoded = connector::AvroDecodeBatch(schema, encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AvroBatchRoundTrip)->Arg(2)->Arg(100);

void BM_SqlParse(benchmark::State& state) {
  const char* sql =
      "SELECT c0, c1, COUNT(*) AS n FROM d1 WHERE HASH(c0, c1) >= "
      "-9223372036854775808 AND HASH(c0, c1) < 42 AND c5 > 0.5 "
      "GROUP BY c0, c1 ORDER BY n DESC LIMIT 100 AT EPOCH 7";
  for (auto _ : state) {
    auto statement = vertica::sql::Parse(sql);
    benchmark::DoNotOptimize(statement);
  }
}
BENCHMARK(BM_SqlParse);

void BM_FlowRerate(benchmark::State& state) {
  // Measures the water-filling recompute triggered by flow churn with N
  // concurrent flows across shared links.
  int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(&engine);
    net::LinkId shared = network.AddLink("shared", 1e9);
    for (int i = 0; i < flows; ++i) {
      net::LinkId own = network.AddLink("own", 1e8);
      engine.Spawn("f", [&network, own, shared](sim::Process& self) {
        (void)network.Transfer(self, {own, shared}, 1e6);
      });
    }
    Status status = engine.Run();
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowRerate)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace fabric

BENCHMARK_MAIN();
