// Figure 8: cluster scalability. Clusters 2:4, 4:8 and 8:16
// (Vertica:Spark) with the data scaled along (100M/200M/400M rows), so
// data per node is constant; partitions scale with the cluster (V2S
// 16/32/64, S2V 64/128/256). Paper: slight (<10%) degradation per
// doubling — near-flat scaling.

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Figure 8: cluster scaling at fixed data per node",
              "Fig. 8 — <10% degradation per doubling of cluster + data");

  struct Config {
    int vertica, spark, v2s_parts, s2v_parts;
    double paper_rows;
  };
  const Config kConfigs[] = {{2, 4, 16, 64, 100e6},
                             {4, 8, 32, 128, 200e6},
                             {8, 16, 64, 256, 400e6}};
  BenchReport report("fig8_clusterscale");
  std::printf("%-10s %-10s %12s %12s\n", "cluster", "rows", "V2S (s)",
              "S2V (s)");
  for (const Config& config : kConfigs) {
    FabricOptions options;
    options.vertica_nodes = config.vertica;
    options.spark_workers = config.spark;
    options.paper_rows = config.paper_rows;
    Fabric fabric(options);
    double s2v = SaveViaS2V(fabric, D1Schema(),
                            D1Rows(static_cast<int>(options.real_rows)),
                            "d1", config.s2v_parts);
    double v2s = LoadViaV2S(fabric, "d1", config.v2s_parts);
    std::printf("%d:%-8d %-10s %12.0f %12.0f\n", config.vertica,
                config.spark, HumanCount(config.paper_rows).c_str(), v2s,
                s2v);
    report.AddSample(fabric,
                     {{"vertica_nodes", static_cast<double>(config.vertica)},
                      {"spark_workers", static_cast<double>(config.spark)},
                      {"paper_rows", config.paper_rows},
                      {"v2s_seconds", v2s},
                      {"s2v_seconds", s2v}});
  }
  return 0;
}
