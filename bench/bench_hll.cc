// Approximate distinct counting across the fabric: the same
// per-group COUNT DISTINCT answered three ways at growing simulated
// cardinalities —
//   pushed-sketch    V2S aggregate pushdown; Vertica's
//                    APPROXIMATE_COUNT_DISTINCT UDx runs inside the
//                    scan and only finished group rows cross the wire,
//   shuffled-sketch  Spark-side HLL aggregation; map-side combine
//                    merges partial sketches so the shuffle carries one
//                    register array per (group, map partition),
//   shuffled-exact   exact distinct via two shuffles (dedup on (k, v),
//                    then count) — the wire carries every distinct row.
// The sketch paths' wire cost is bounded by #groups x sketch size and
// never grows with the cardinality; the exact path's grows linearly.
// Register-max merging makes the two sketch paths byte-identical, which
// the bench checks before timing anything.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/hll.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

constexpr int kRealRows = 10000;
constexpr int kGroups = 8;
constexpr int kPrecision = 12;

// CREATE + batched INSERTs through SQL so the table is segmented by the
// grouping column (the pushdown covering condition). Every row carries
// a distinct v, so the table's real cardinality is kRealRows and its
// simulated cardinality is kRealRows x data_scale.
void FillDistinctTable(Fabric& fabric) {
  fabric.RunTimed([&](sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver,
                      "CREATE TABLE t (k INTEGER, v INTEGER) "
                      "SEGMENTED BY HASH(k) ALL NODES")
            .status());
    constexpr int kBatch = 500;
    for (int base = 0; base < kRealRows; base += kBatch) {
      std::string values;
      for (int i = base; i < std::min(kRealRows, base + kBatch); ++i) {
        values += StrCat(i > base ? ", " : "", "(", i % kGroups, ", ",
                         i, ")");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT INTO t VALUES ", values))
              .status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

Result<spark::DataFrame> LoadV2S(Fabric& fabric, sim::Process& driver,
                                 bool pushdown) {
  return fabric.spark()
      ->Read()
      .Format(connector::kVerticaSourceName)
      .Option("table", "t")
      .Option("numpartitions", 16)
      .Option("aggregate_pushdown", pushdown ? "true" : "false")
      .Load(driver);
}

// Canonical rendering of the result rows so the sketch paths' promised
// byte-identity is checked, not assumed.
std::string Rendered(std::vector<storage::Row> rows) {
  std::vector<std::string> lines;
  for (const storage::Row& row : rows) {
    std::string line;
    for (const storage::Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (std::string& line : lines) out += line + "\n";
  return out;
}

// GroupBy(k).Agg(APPROXIMATE_COUNT_DISTINCT(v)) through the sketch
// paths; `pushdown` picks V2S-pushed vs Spark-shuffled.
double RunSketch(Fabric& fabric, bool pushdown, std::string* rendered) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = LoadV2S(fabric, driver, pushdown);
    FABRIC_CHECK_OK(df.status());
    auto agg = df->GroupBy({"k"})->Agg(
        {spark::AggApproxCountDistinct("v", kPrecision)});
    FABRIC_CHECK_OK(agg.status());
    auto rows = agg->Collect(driver);
    FABRIC_CHECK_OK(rows.status());
    FABRIC_CHECK(static_cast<int>(rows->size()) == kGroups)
        << rows->size() << " groups, expected " << kGroups;
    *rendered = Rendered(std::move(*rows));
  });
}

// Exact distinct: dedup on (k, v) through one shuffle, then count the
// surviving rows per k through a second. Every distinct row crosses the
// wire — this is the path the sketch exists to avoid.
double RunExact(Fabric& fabric) {
  return fabric.RunTimed([&](sim::Process& driver) {
    auto df = LoadV2S(fabric, driver, /*pushdown=*/false);
    FABRIC_CHECK_OK(df.status());
    auto dedup = df->GroupBy({"k", "v"})->Agg({spark::AggCount()});
    FABRIC_CHECK_OK(dedup.status());
    auto counts = dedup->GroupBy({"k"})->Agg({spark::AggCount()});
    FABRIC_CHECK_OK(counts.status());
    auto rows = counts->Collect(driver);
    FABRIC_CHECK_OK(rows.status());
    FABRIC_CHECK(static_cast<int>(rows->size()) == kGroups)
        << rows->size() << " groups, expected " << kGroups;
  });
}

}  // namespace

int main() {
  PrintHeader(
      "APPROXIMATE_COUNT_DISTINCT: pushed sketch vs. shuffled sketch "
      "vs. exact distinct shuffle",
      "mergeable HLL sketches over the Section 3.2 connector (sketch "
      "wire cost is O(groups), exact distinct is O(cardinality))");

  BenchReport report("hll");
  // One serialized sketch: "HLL1:<pp>:" + 2 hex chars per register.
  const double sketch_bytes = static_cast<double>(
      (*hll::Sketch::Create(kPrecision)).Serialize().size());

  std::printf("%-14s %-16s %12s %16s %16s\n", "cardinality", "path",
              "query (s)", "wire bytes", "vs exact");
  for (double cardinality : {1e4, 1e6, 1e8}) {
    FabricOptions options;
    options.real_rows = kRealRows;
    options.paper_rows = cardinality;  // every real row is distinct

    double seconds[3];    // pushed-sketch, shuffled-sketch, shuffled-exact
    double wire_bytes[3];
    std::string pushed_rows, shuffled_rows;
    // The exact-path fabric outlives the loop so its metrics snapshot
    // (the expensive run) lands in the report sample.
    std::unique_ptr<Fabric> kept;
    for (int path = 0; path < 3; ++path) {
      // Destroy the previous fabric before constructing the next:
      // ScopedTracer installs nest, so the new fabric's tracer must not
      // be installed while the old one is still registered.
      kept.reset();
      kept = std::make_unique<Fabric>(options);
      Fabric& fabric = *kept;
      FillDistinctTable(fabric);
      switch (path) {
        case 0:
          seconds[0] = RunSketch(fabric, /*pushdown=*/true, &pushed_rows);
          // The pushdown elides the shuffle; what crosses the wire per
          // group is at most one sketch (it is actually the finished
          // 8-byte estimate — the sketch size is the honest upper bound
          // for a consumer that wants the mergeable state, as S2V's
          // HLL_SKETCH writers do).
          wire_bytes[0] = kGroups * sketch_bytes;
          FABRIC_CHECK(
              fabric.tracer()->metrics().counter("v2s.agg_pushdowns") > 0)
              << "aggregate pushdown did not engage";
          FABRIC_CHECK(
              fabric.tracer()->metrics().counter("spark.shuffle.bytes") ==
              0)
              << "pushed path still shuffled";
          break;
        case 1:
          seconds[1] =
              RunSketch(fabric, /*pushdown=*/false, &shuffled_rows);
          wire_bytes[1] =
              fabric.tracer()->metrics().counter("spark.shuffle.bytes");
          break;
        case 2:
          seconds[2] = RunExact(fabric);
          wire_bytes[2] =
              fabric.tracer()->metrics().counter("spark.shuffle.bytes");
          break;
      }
    }
    FABRIC_CHECK(pushed_rows == shuffled_rows)
        << "pushed and shuffled sketch estimates diverged";

    const char* names[3] = {"pushed-sketch", "shuffled-sketch",
                            "shuffled-exact"};
    for (int path = 0; path < 3; ++path) {
      std::printf("%-14.0f %-16s %12.3f %16.0f %15.1fx\n", cardinality,
                  names[path], seconds[path], wire_bytes[path],
                  wire_bytes[2] / wire_bytes[path]);
    }
    report.AddSample(
        *kept,
        {{"cardinality", cardinality},
         {"groups", static_cast<double>(kGroups)},
         {"precision", static_cast<double>(kPrecision)},
         {"sketch_bytes", sketch_bytes},
         {"pushed_sketch_seconds", seconds[0]},
         {"shuffled_sketch_seconds", seconds[1]},
         {"shuffled_exact_seconds", seconds[2]},
         {"pushed_sketch_wire_bytes", wire_bytes[0]},
         {"shuffled_sketch_wire_bytes", wire_bytes[1]},
         {"shuffled_exact_wire_bytes", wire_bytes[2]},
         {"exact_over_pushed_wire_ratio", wire_bytes[2] / wire_bytes[0]}});
  }
  return 0;
}
