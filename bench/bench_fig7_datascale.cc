// Figure 7: execution time vs number of rows (1M .. 1000M, log-log),
// dataset D1, V2S at 32 partitions and S2V at 128 (the best settings
// from Figure 6). Paper: both linear in the data size; S2V slower than
// V2S at small sizes (fixed transactional overheads; S2V takes ~19 s at
// 1M rows), converging and then edging ahead at large sizes.

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Figure 7: execution time vs data size (log-log linear)",
              "Fig. 7 — linear scaling; S2V ~19 s at 1M rows; curves "
              "cross at large sizes");

  BenchReport report("fig7_datascale");
  const double kPaperRows[] = {1e6, 10e6, 100e6, 1000e6};
  std::printf("%-12s %12s %12s\n", "rows", "V2S@32 (s)", "S2V@128 (s)");
  for (double paper_rows : kPaperRows) {
    FabricOptions options;
    options.paper_rows = paper_rows;
    Fabric fabric(options);
    double s2v = SaveViaS2V(fabric, D1Schema(),
                            D1Rows(static_cast<int>(options.real_rows)),
                            "d1", 128);
    double v2s = LoadViaV2S(fabric, "d1", 32);
    std::printf("%-12s %12.0f %12.0f\n",
                HumanCount(paper_rows).c_str(), v2s, s2v);
    report.AddSample(fabric, {{"paper_rows", paper_rows},
                              {"v2s_seconds", v2s},
                              {"s2v_seconds", s2v}});
  }
  return 0;
}
