// Figure 6: V2S and S2V execution time while varying the number of Spark
// partitions (4 .. 256) on the 4:8 cluster with dataset D1 (100 float
// columns x 100M rows). Paper headline points: V2S 497 s @32 / 475 s
// @128; S2V 252 s @128; both curves bowl-shaped.

#include "bench/bench_common.h"

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Figure 6: execution time vs number of partitions",
              "Fig. 6 — V2S best 475 s @128 (497 s @32), S2V best 252 s "
              "@128; bowl shape");

  BenchReport report("fig6_partitions");
  const int kPartitions[] = {4, 8, 16, 32, 64, 128, 256};
  std::printf("%-12s %12s %12s\n", "partitions", "V2S (s)", "S2V (s)");
  for (int partitions : kPartitions) {
    // Fresh fabric per point (runs are independent, like the paper's
    // averaged trials).
    FabricOptions options;
    Fabric s2v_fabric(options);
    double s2v_seconds =
        SaveViaS2V(s2v_fabric, D1Schema(),
                   D1Rows(static_cast<int>(options.real_rows)), "d1",
                   partitions);

    // V2S reads the table the save produced (same fabric, same data).
    double v2s_seconds = LoadViaV2S(s2v_fabric, "d1", partitions);

    std::printf("%-12d %12.0f %12.0f\n", partitions, v2s_seconds,
                s2v_seconds);
    report.AddSample(s2v_fabric,
                     {{"partitions", static_cast<double>(partitions)},
                      {"v2s_seconds", v2s_seconds},
                      {"s2v_seconds", s2v_seconds}});
  }
  return 0;
}
