// Table 2: CPU% and outbound-network MBps of a single Vertica node over
// the first 300 seconds of V2S with 4 vs 32 partitions. Paper: with 4
// partitions, steady state ~5% CPU / ~38 MBps (network unsaturated);
// with 32 partitions, ~20% CPU / ~120 MBps (network saturated).

#include "bench/bench_common.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

void RunTrace(BenchReport& report, int partitions) {
  FabricOptions options;
  Fabric fabric(options);
  SaveViaS2V(fabric, D1Schema(),
             D1Rows(static_cast<int>(options.real_rows)), "d1", 128);

  // Sample node 0 every 10 virtual seconds during the load: windowed
  // averages from the link byte counters (the CPU "link" carries
  // microseconds of work), like sar/iostat would report.
  struct Sample {
    double t, cpu_pct, mbps;
  };
  auto samples = std::make_shared<std::vector<Sample>>();
  const net::Host& node = fabric.db()->node_host(0);
  auto last_cpu = std::make_shared<double>(
      fabric.network()->LinkBytesCarried(node.cpu));
  auto last_net = std::make_shared<double>(
      fabric.network()->LinkBytesCarried(node.ext_egress));
  int cores = fabric.options().cost.vertica_cores;
  for (int i = 1; i <= 30; ++i) {
    double t = fabric.engine()->now() + i * 10.0;
    fabric.engine()->ScheduleAt(t, [&fabric, samples, i, node, last_cpu,
                                    last_net, cores] {
      double cpu = fabric.network()->LinkBytesCarried(node.cpu);
      double net_bytes =
          fabric.network()->LinkBytesCarried(node.ext_egress);
      samples->push_back(
          {i * 10.0,
           (cpu - *last_cpu) / 1e6 / 10.0 / cores * 100.0,
           (net_bytes - *last_net) / 10.0 / 1e6});
      *last_cpu = cpu;
      *last_net = net_bytes;
    });
  }
  LoadViaV2S(fabric, "d1", partitions);

  std::printf("\nV2S with %d partitions — Vertica node 1, first 300 s:\n",
              partitions);
  std::printf("%-10s %10s %14s\n", "t (s)", "CPU (%)", "net out (MBps)");
  double cpu_sum = 0, net_sum = 0;
  int steady = 0;
  for (const Sample& s : *samples) {
    std::printf("%-10.0f %10.1f %14.1f\n", s.t, s.cpu_pct, s.mbps);
    if (s.t >= 60) {  // steady state after the initial ramp
      cpu_sum += s.cpu_pct;
      net_sum += s.mbps;
      ++steady;
    }
  }
  if (steady > 0) {
    std::printf("steady state (t>=60s): CPU %.1f%%, network %.1f MBps\n",
                cpu_sum / steady, net_sum / steady);
    report.AddSample(fabric,
                     {{"partitions", static_cast<double>(partitions)},
                      {"steady_cpu_pct", cpu_sum / steady},
                      {"steady_net_mbps", net_sum / steady}});
  }
}

}  // namespace

int main() {
  PrintHeader("Table 2: Vertica node resources during V2S",
              "Tab. 2 — 4 partitions: ~5% CPU / ~38 MBps; 32 partitions: "
              "~20% CPU / ~120 MBps (saturated)");
  fabric::bench::BenchReport report("tab2_resources");
  RunTrace(report, 4);
  RunTrace(report, 32);
  return 0;
}
