// Tuple Mover: what background storage management buys and costs. Two
// experiments, both contrasting the service on vs off:
//
//  1. Sustained trickle ingest (WOS path): throughput of a back-to-back
//     INSERT stream, plus where the storage ends up — with the TM off
//     the WOS grows without bound; with it on, moveout drains the WOS
//     (stalling the writer at the hard cap when it must) and mergeout
//     keeps the ROS container count flat.
//
//  2. Scan latency vs container count: many small DIRECT loads fragment
//     the ROS; each container opened costs CPU on the scan path, so the
//     same SELECT gets slower as containers pile up. Mergeout folds them
//     back down and the scan recovers.

#include "bench/bench_common.h"

#include "storage/segment_store.h"
#include "vertica/tm/tuple_mover.h"

namespace {

using fabric::StrCat;
using fabric::bench::Fabric;
using fabric::bench::FabricOptions;

// Aggressive service intervals so short bench runs see many passes.
fabric::vertica::TupleMoverConfig FastTm() {
  fabric::vertica::TupleMoverConfig tm;
  tm.moveout_interval = 0.05;
  tm.mergeout_interval = 0.1;
  tm.strata_min_containers = 2;
  tm.ahm_interval = 0.25;
  tm.retention_epochs = 8;
  return tm;
}

fabric::vertica::TupleMoverConfig TmOff() {
  fabric::vertica::TupleMoverConfig tm;
  tm.enabled = false;
  return tm;
}

// Worst-case storage state across every copy of `table`.
struct StorageShape {
  int max_wos_batches = 0;
  int max_ros_containers = 0;
};

StorageShape ShapeOf(Fabric& fabric, const std::string& table) {
  StorageShape shape;
  auto storage = fabric.db()->GetStorage(table);
  FABRIC_CHECK_OK(storage.status());
  auto visit = [&shape](const fabric::storage::SegmentStore* store) {
    shape.max_wos_batches =
        std::max(shape.max_wos_batches, store->num_wos_batches());
    shape.max_ros_containers =
        std::max(shape.max_ros_containers, store->num_ros_containers());
  };
  for (const auto& store : (*storage)->per_node) visit(store.get());
  for (const auto& store : (*storage)->buddy) {
    if (store != nullptr) visit(store.get());
  }
  return shape;
}

// Trickle-ingests `batches` x `rows_per_batch` over one persistent
// session and returns the virtual seconds the stream took.
double TrickleIngest(Fabric& fabric, int batches, int rows_per_batch) {
  return fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver,
                      "CREATE TABLE trickle (id INTEGER, score FLOAT) "
                      "SEGMENTED BY HASH(id) ALL NODES")
            .status());
    int next_id = 0;
    for (int b = 0; b < batches; ++b) {
      std::string values;
      for (int i = 0; i < rows_per_batch; ++i, ++next_id) {
        values += StrCat(i ? ", " : "", "(", next_id, ", ",
                         next_id % 9, ".25)");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver,
                        StrCat("INSERT INTO trickle VALUES ", values))
              .status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
}

// Loads `loads` small DIRECT batches into `frag` (each lands as its own
// ROS container per copy), then times the same full scan `reps` times and
// returns the mean latency.
double FragmentThenScan(Fabric& fabric, int loads, int rows_per_load,
                        double settle_seconds, double* scan_seconds) {
  double load_seconds = fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    FABRIC_CHECK_OK(
        (*session)
            ->Execute(driver,
                      "CREATE TABLE frag (id INTEGER, score FLOAT) "
                      "SEGMENTED BY HASH(id) ALL NODES")
            .status());
    int next_id = 0;
    for (int b = 0; b < loads; ++b) {
      std::string values;
      for (int i = 0; i < rows_per_load; ++i, ++next_id) {
        values += StrCat(i ? ", " : "", "(", next_id, ", ",
                         next_id % 9, ".25)");
      }
      FABRIC_CHECK_OK(
          (*session)
              ->Execute(driver, StrCat("INSERT /*+ DIRECT */ INTO frag "
                                       "VALUES ",
                                       values))
              .status());
    }
    if (settle_seconds > 0) {
      FABRIC_CHECK_OK(driver.Sleep(settle_seconds));
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  });
  *scan_seconds = fabric.RunTimed([&](fabric::sim::Process& driver) {
    auto session = fabric.db()->Connect(driver, 0, nullptr);
    FABRIC_CHECK_OK(session.status());
    for (int rep = 0; rep < 3; ++rep) {
      auto scanned = (*session)->Execute(
          driver, "SELECT COUNT(*) FROM frag WHERE score >= 0");
      FABRIC_CHECK_OK(scanned.status());
    }
    FABRIC_CHECK_OK((*session)->Close(driver));
  }) / 3.0;
  return load_seconds;
}

}  // namespace

int main() {
  using namespace fabric;
  using namespace fabric::bench;

  PrintHeader("Tuple Mover: sustained ingest and scan vs fragmentation",
              "Vertica's moveout/mergeout/AHM service (not a paper "
              "figure; the storage management the loads in Section 4 "
              "lean on)");

  BenchReport report("tm");

  // --- sustained trickle ingest: TM off vs on -------------------------
  constexpr int kBatches = 80;
  constexpr int kRowsPerBatch = 50;
  std::printf("%-14s %12s %14s %10s %12s %12s\n", "tuple mover",
              "ingest (s)", "rows/s (virt)", "wos max", "ros max",
              "stall (ms)");
  struct IngestConfig {
    const char* label;
    fabric::vertica::TupleMoverConfig tm;
  };
  // The capped variant forces backpressure: a hard cap the trickle
  // stream overruns, drained by a deliberately sluggish moveout.
  fabric::vertica::TupleMoverConfig capped = FastTm();
  capped.wos_hard_cap_batches = 2;
  capped.moveout_interval = 4.0;
  const IngestConfig kConfigs[] = {
      {"off", TmOff()}, {"on", FastTm()}, {"on (capped)", capped}};
  double ingest_off = 0, ingest_on = 0;
  for (const IngestConfig& config : kConfigs) {
    FabricOptions options;
    options.tuple_mover = config.tm;
    Fabric fabric(options);
    double seconds = TrickleIngest(fabric, kBatches, kRowsPerBatch);
    if (config.tm.enabled && config.tm.wos_hard_cap_batches > 2) {
      ingest_on = seconds;
    } else if (!config.tm.enabled) {
      ingest_off = seconds;
    }
    StorageShape shape = ShapeOf(fabric, "trickle");
    double paper_rows =
        kBatches * kRowsPerBatch * fabric.data_scale();
    double stall_ms =
        fabric.tracer()->metrics().counter("vertica.wos_stall_ms");
    std::printf("%-14s %12.3f %14.0f %10d %12d %12.1f\n", config.label,
                seconds, paper_rows / seconds, shape.max_wos_batches,
                shape.max_ros_containers, stall_ms);
    report.AddSample(
        fabric,
        {{"tm_enabled", config.tm.enabled ? 1.0 : 0.0},
         {"wos_hard_cap",
          static_cast<double>(config.tm.wos_hard_cap_batches)},
         {"ingest_seconds", seconds},
         {"ingest_paper_rows_per_sec", paper_rows / seconds},
         {"max_wos_batches", static_cast<double>(shape.max_wos_batches)},
         {"max_ros_containers",
          static_cast<double>(shape.max_ros_containers)},
         {"wos_stall_ms", stall_ms}});
  }
  std::printf("ingest slowdown with TM on = %.2fx\n\n",
              ingest_on / ingest_off);

  // --- scan latency vs container count --------------------------------
  // Scale 1 for this experiment: the per-container open cost is a real
  // (unscaled) quantity, so the fragmentation penalty shows at its true
  // magnitude instead of vanishing under scaled per-byte scan costs.
  constexpr int kLoads = 96;
  constexpr int kRowsPerLoad = 25;
  std::printf("%-22s %12s %14s\n", "storage state", "containers",
              "scan (s)");
  double scan_frag = 0, scan_merged = 0;
  int containers_frag = 0, containers_merged = 0;
  {
    FabricOptions options;
    options.paper_rows = options.real_rows;  // data_scale = 1
    options.tuple_mover = TmOff();
    Fabric fabric(options);
    FragmentThenScan(fabric, kLoads, kRowsPerLoad, 0.0, &scan_frag);
    containers_frag = ShapeOf(fabric, "frag").max_ros_containers;
    std::printf("%-22s %12d %14.4f\n", "fragmented (TM off)",
                containers_frag, scan_frag);
    report.AddSample(fabric,
                     {{"tm_enabled", 0.0},
                      {"ros_containers",
                       static_cast<double>(containers_frag)},
                      {"scan_seconds", scan_frag}});
  }
  {
    FabricOptions options;
    options.paper_rows = options.real_rows;  // data_scale = 1
    options.tuple_mover = FastTm();
    Fabric fabric(options);
    // Idle long enough after the loads for every armed mergeout pass.
    FragmentThenScan(fabric, kLoads, kRowsPerLoad, 5.0, &scan_merged);
    containers_merged = ShapeOf(fabric, "frag").max_ros_containers;
    std::printf("%-22s %12d %14.4f\n", "merged (TM on)",
                containers_merged, scan_merged);
    report.AddSample(fabric,
                     {{"tm_enabled", 1.0},
                      {"ros_containers",
                       static_cast<double>(containers_merged)},
                      {"scan_seconds", scan_merged}});
  }
  std::printf("\nmergeout: %d -> %d containers, scan %.2fx faster\n",
              containers_frag, containers_merged,
              scan_frag / scan_merged);
  return 0;
}
