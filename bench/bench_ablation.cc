// Ablations for the design choices DESIGN.md calls out, plus the
// paper's Section 5 future-work variants:
//
//  1. V2S locality targeting ON vs OFF (same hash-range queries, wrong
//     node): quantifies the intra-Vertica shuffle the hash-ring design
//     eliminates.
//  2. S2V pre-hashing ON vs OFF (Section 5): aligning each save task
//     with one Vertica segment removes intra-Vertica routing on writes.
//  3. S2V vs the two-stage (Spark-Redshift-style) save through an HDFS
//     landing zone (Sections 5/6): the extra full copy costs real time.

#include "baselines/two_stage.h"
#include "bench/bench_common.h"

namespace {

using namespace fabric;
using namespace fabric::bench;

double InternalBytes(Fabric& fabric) {
  double total = 0;
  for (int n = 0; n < fabric.db()->num_nodes(); ++n) {
    total += fabric.network()->LinkBytesCarried(
        fabric.db()->node_host(n).int_egress);
  }
  return total;
}

}  // namespace

int main() {
  PrintHeader("Ablations: locality, pre-hash, two-stage",
              "Sec. 3.1.2 (locality), Sec. 5 (pre-hash, 2-stage)");
  BenchReport report("ablation");

  // ---------------- 1. V2S locality on/off
  {
    std::printf("\n[1] V2S locality-aware node targeting (D1, 32 parts)\n");
    std::printf("%-22s %10s %18s\n", "variant", "time (s)",
                "intra-Vertica bytes");
    for (bool locality : {true, false}) {
      FabricOptions options;
      Fabric fabric(options);
      SaveViaS2V(fabric, D1Schema(),
                 D1Rows(static_cast<int>(options.real_rows)), "d1", 128);
      double before = InternalBytes(fabric);
      double elapsed = fabric.RunTimed([&](sim::Process& driver) {
        auto df = fabric.spark()
                      ->Read()
                      .Format(connector::kVerticaSourceName)
                      .Option("table", "d1")
                      .Option("numpartitions", 32)
                      .Option("locality", locality ? "true" : "false")
                      .Load(driver);
        FABRIC_CHECK_OK(df.status());
        FABRIC_CHECK_OK(df->Materialize(driver).status());
      });
      std::printf("%-22s %10.0f %18s\n",
                  locality ? "locality (paper)" : "misaligned (ablated)",
                  elapsed,
                  HumanBytes(InternalBytes(fabric) - before).c_str());
      report.AddSample(fabric,
                       {{"v2s_locality", locality ? 1.0 : 0.0},
                        {"seconds", elapsed},
                        {"intra_vertica_bytes",
                         InternalBytes(fabric) - before}});
    }
  }

  // ---------------- 2. S2V pre-hash on/off
  {
    std::printf("\n[2] S2V pre-hashed DataFrame (Sec. 5 future work; D1, "
                "128 parts)\n");
    std::printf("%-22s %10s %18s\n", "variant", "time (s)",
                "intra-Vertica bytes");
    for (bool prehash : {false, true}) {
      FabricOptions options;
      Fabric fabric(options);
      double before = InternalBytes(fabric);
      double elapsed = fabric.RunTimed([&](sim::Process& driver) {
        auto df = fabric.spark()->CreateDataFrame(
            D1Schema(), D1Rows(static_cast<int>(options.real_rows)), 128);
        FABRIC_CHECK_OK(df.status());
        FABRIC_CHECK_OK(df->Write()
                            .Format(connector::kVerticaSourceName)
                            .Option("table", "d1")
                            .Option("numpartitions", 128)
                            .Option("prehash", prehash ? "true" : "false")
                            .Mode(spark::SaveMode::kOverwrite)
                            .Save(driver));
      });
      std::printf("%-22s %10.0f %18s\n",
                  prehash ? "pre-hashed (Sec. 5)" : "baseline S2V",
                  elapsed,
                  HumanBytes(InternalBytes(fabric) - before).c_str());
      report.AddSample(fabric,
                       {{"s2v_prehash", prehash ? 1.0 : 0.0},
                        {"seconds", elapsed},
                        {"intra_vertica_bytes",
                         InternalBytes(fabric) - before}});
    }
  }

  // ---------------- 3. S2V vs two-stage through HDFS
  {
    std::printf("\n[3] single-stage S2V vs two-stage via HDFS landing "
                "zone (D1)\n");
    FabricOptions options;
    options.with_hdfs = true;
    Fabric fabric(options);
    const int real_rows = static_cast<int>(options.real_rows);
    double s2v = SaveViaS2V(fabric, D1Schema(), D1Rows(real_rows),
                            "direct_t", 128);
    baselines::TwoStageTiming timing;
    fabric.RunTimed([&](sim::Process& driver) {
      auto df = fabric.spark()->CreateDataFrame(D1Schema(),
                                                D1Rows(real_rows), 128);
      FABRIC_CHECK_OK(df.status());
      auto result = baselines::TwoStageSave(driver, fabric.spark(),
                                            fabric.hdfs(), fabric.db(),
                                            *df, "/landing", "staged_t");
      FABRIC_CHECK_OK(result.status());
      timing = *result;
    });
    std::printf("%-28s %10.0f s\n", "S2V (single stage)", s2v);
    std::printf("%-28s %10.0f s  (stage1 %.0f + stage2 %.0f)\n",
                "two-stage via HDFS", timing.total(), timing.stage1_write,
                timing.stage2_load);
    report.AddSample(fabric, {{"s2v_seconds", s2v},
                              {"two_stage_seconds", timing.total()},
                              {"stage1_seconds", timing.stage1_write},
                              {"stage2_seconds", timing.stage2_load}});
  }
  return 0;
}
