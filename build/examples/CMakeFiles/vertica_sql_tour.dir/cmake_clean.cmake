file(REMOVE_RECURSE
  "CMakeFiles/vertica_sql_tour.dir/vertica_sql_tour.cpp.o"
  "CMakeFiles/vertica_sql_tour.dir/vertica_sql_tour.cpp.o.d"
  "vertica_sql_tour"
  "vertica_sql_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertica_sql_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
