# Empty compiler generated dependencies file for vertica_sql_tour.
# This may be replaced when dependencies are built.
