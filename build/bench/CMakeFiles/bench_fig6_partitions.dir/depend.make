# Empty dependencies file for bench_fig6_partitions.
# This may be replaced when dependencies are built.
