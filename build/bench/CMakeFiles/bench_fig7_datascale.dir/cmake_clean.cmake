file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_datascale.dir/bench_fig7_datascale.cc.o"
  "CMakeFiles/bench_fig7_datascale.dir/bench_fig7_datascale.cc.o.d"
  "bench_fig7_datascale"
  "bench_fig7_datascale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_datascale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
