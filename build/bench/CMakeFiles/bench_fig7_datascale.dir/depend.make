# Empty dependencies file for bench_fig7_datascale.
# This may be replaced when dependencies are built.
