# Empty dependencies file for bench_fig11_jdbc_save.
# This may be replaced when dependencies are built.
