file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_jdbc_save.dir/bench_fig11_jdbc_save.cc.o"
  "CMakeFiles/bench_fig11_jdbc_save.dir/bench_fig11_jdbc_save.cc.o.d"
  "bench_fig11_jdbc_save"
  "bench_fig11_jdbc_save.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_jdbc_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
