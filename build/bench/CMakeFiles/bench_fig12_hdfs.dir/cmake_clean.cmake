file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hdfs.dir/bench_fig12_hdfs.cc.o"
  "CMakeFiles/bench_fig12_hdfs.dir/bench_fig12_hdfs.cc.o.d"
  "bench_fig12_hdfs"
  "bench_fig12_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
