# Empty dependencies file for bench_fig12_hdfs.
# This may be replaced when dependencies are built.
