# Empty dependencies file for bench_tab3_d2.
# This may be replaced when dependencies are built.
