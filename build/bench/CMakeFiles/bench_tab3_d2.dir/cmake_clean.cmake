file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_d2.dir/bench_tab3_d2.cc.o"
  "CMakeFiles/bench_tab3_d2.dir/bench_tab3_d2.cc.o.d"
  "bench_tab3_d2"
  "bench_tab3_d2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_d2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
