# Empty dependencies file for bench_fig10_jdbc_load.
# This may be replaced when dependencies are built.
