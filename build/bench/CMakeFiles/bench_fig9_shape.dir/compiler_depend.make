# Empty compiler generated dependencies file for bench_fig9_shape.
# This may be replaced when dependencies are built.
