file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_shape.dir/bench_fig9_shape.cc.o"
  "CMakeFiles/bench_fig9_shape.dir/bench_fig9_shape.cc.o.d"
  "bench_fig9_shape"
  "bench_fig9_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
