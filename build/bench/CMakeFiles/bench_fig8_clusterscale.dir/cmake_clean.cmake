file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_clusterscale.dir/bench_fig8_clusterscale.cc.o"
  "CMakeFiles/bench_fig8_clusterscale.dir/bench_fig8_clusterscale.cc.o.d"
  "bench_fig8_clusterscale"
  "bench_fig8_clusterscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_clusterscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
