# Empty dependencies file for bench_fig8_clusterscale.
# This may be replaced when dependencies are built.
