file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_copy.dir/bench_tab4_copy.cc.o"
  "CMakeFiles/bench_tab4_copy.dir/bench_tab4_copy.cc.o.d"
  "bench_tab4_copy"
  "bench_tab4_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
