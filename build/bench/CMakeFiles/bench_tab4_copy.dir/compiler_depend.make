# Empty compiler generated dependencies file for bench_tab4_copy.
# This may be replaced when dependencies are built.
