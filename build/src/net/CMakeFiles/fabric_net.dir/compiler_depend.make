# Empty compiler generated dependencies file for fabric_net.
# This may be replaced when dependencies are built.
