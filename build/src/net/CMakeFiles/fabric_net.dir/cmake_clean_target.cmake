file(REMOVE_RECURSE
  "libfabric_net.a"
)
