file(REMOVE_RECURSE
  "CMakeFiles/fabric_net.dir/host.cc.o"
  "CMakeFiles/fabric_net.dir/host.cc.o.d"
  "CMakeFiles/fabric_net.dir/network.cc.o"
  "CMakeFiles/fabric_net.dir/network.cc.o.d"
  "libfabric_net.a"
  "libfabric_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
