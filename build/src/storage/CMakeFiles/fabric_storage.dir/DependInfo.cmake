
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/encoding.cc" "src/storage/CMakeFiles/fabric_storage.dir/encoding.cc.o" "gcc" "src/storage/CMakeFiles/fabric_storage.dir/encoding.cc.o.d"
  "/root/repo/src/storage/profile.cc" "src/storage/CMakeFiles/fabric_storage.dir/profile.cc.o" "gcc" "src/storage/CMakeFiles/fabric_storage.dir/profile.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/fabric_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/fabric_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/segment_store.cc" "src/storage/CMakeFiles/fabric_storage.dir/segment_store.cc.o" "gcc" "src/storage/CMakeFiles/fabric_storage.dir/segment_store.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/fabric_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/fabric_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fabric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
