file(REMOVE_RECURSE
  "CMakeFiles/fabric_storage.dir/encoding.cc.o"
  "CMakeFiles/fabric_storage.dir/encoding.cc.o.d"
  "CMakeFiles/fabric_storage.dir/profile.cc.o"
  "CMakeFiles/fabric_storage.dir/profile.cc.o.d"
  "CMakeFiles/fabric_storage.dir/schema.cc.o"
  "CMakeFiles/fabric_storage.dir/schema.cc.o.d"
  "CMakeFiles/fabric_storage.dir/segment_store.cc.o"
  "CMakeFiles/fabric_storage.dir/segment_store.cc.o.d"
  "CMakeFiles/fabric_storage.dir/value.cc.o"
  "CMakeFiles/fabric_storage.dir/value.cc.o.d"
  "libfabric_storage.a"
  "libfabric_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
