# Empty dependencies file for fabric_storage.
# This may be replaced when dependencies are built.
