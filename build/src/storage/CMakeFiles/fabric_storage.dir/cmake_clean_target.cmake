file(REMOVE_RECURSE
  "libfabric_storage.a"
)
