file(REMOVE_RECURSE
  "libfabric_pmml.a"
)
