# Empty dependencies file for fabric_pmml.
# This may be replaced when dependencies are built.
