file(REMOVE_RECURSE
  "CMakeFiles/fabric_pmml.dir/model.cc.o"
  "CMakeFiles/fabric_pmml.dir/model.cc.o.d"
  "CMakeFiles/fabric_pmml.dir/xml.cc.o"
  "CMakeFiles/fabric_pmml.dir/xml.cc.o.d"
  "libfabric_pmml.a"
  "libfabric_pmml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_pmml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
