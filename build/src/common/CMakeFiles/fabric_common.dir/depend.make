# Empty dependencies file for fabric_common.
# This may be replaced when dependencies are built.
