file(REMOVE_RECURSE
  "libfabric_common.a"
)
