file(REMOVE_RECURSE
  "CMakeFiles/fabric_common.dir/csv.cc.o"
  "CMakeFiles/fabric_common.dir/csv.cc.o.d"
  "CMakeFiles/fabric_common.dir/hash.cc.o"
  "CMakeFiles/fabric_common.dir/hash.cc.o.d"
  "CMakeFiles/fabric_common.dir/logging.cc.o"
  "CMakeFiles/fabric_common.dir/logging.cc.o.d"
  "CMakeFiles/fabric_common.dir/random.cc.o"
  "CMakeFiles/fabric_common.dir/random.cc.o.d"
  "CMakeFiles/fabric_common.dir/status.cc.o"
  "CMakeFiles/fabric_common.dir/status.cc.o.d"
  "CMakeFiles/fabric_common.dir/string_util.cc.o"
  "CMakeFiles/fabric_common.dir/string_util.cc.o.d"
  "libfabric_common.a"
  "libfabric_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
