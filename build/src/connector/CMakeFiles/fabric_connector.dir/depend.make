# Empty dependencies file for fabric_connector.
# This may be replaced when dependencies are built.
