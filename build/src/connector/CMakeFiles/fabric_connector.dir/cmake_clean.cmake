file(REMOVE_RECURSE
  "CMakeFiles/fabric_connector.dir/avro.cc.o"
  "CMakeFiles/fabric_connector.dir/avro.cc.o.d"
  "CMakeFiles/fabric_connector.dir/default_source.cc.o"
  "CMakeFiles/fabric_connector.dir/default_source.cc.o.d"
  "CMakeFiles/fabric_connector.dir/model_deploy.cc.o"
  "CMakeFiles/fabric_connector.dir/model_deploy.cc.o.d"
  "CMakeFiles/fabric_connector.dir/s2v.cc.o"
  "CMakeFiles/fabric_connector.dir/s2v.cc.o.d"
  "CMakeFiles/fabric_connector.dir/v2s.cc.o"
  "CMakeFiles/fabric_connector.dir/v2s.cc.o.d"
  "libfabric_connector.a"
  "libfabric_connector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_connector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
