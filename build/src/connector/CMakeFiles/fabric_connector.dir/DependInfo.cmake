
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/connector/avro.cc" "src/connector/CMakeFiles/fabric_connector.dir/avro.cc.o" "gcc" "src/connector/CMakeFiles/fabric_connector.dir/avro.cc.o.d"
  "/root/repo/src/connector/default_source.cc" "src/connector/CMakeFiles/fabric_connector.dir/default_source.cc.o" "gcc" "src/connector/CMakeFiles/fabric_connector.dir/default_source.cc.o.d"
  "/root/repo/src/connector/model_deploy.cc" "src/connector/CMakeFiles/fabric_connector.dir/model_deploy.cc.o" "gcc" "src/connector/CMakeFiles/fabric_connector.dir/model_deploy.cc.o.d"
  "/root/repo/src/connector/s2v.cc" "src/connector/CMakeFiles/fabric_connector.dir/s2v.cc.o" "gcc" "src/connector/CMakeFiles/fabric_connector.dir/s2v.cc.o.d"
  "/root/repo/src/connector/v2s.cc" "src/connector/CMakeFiles/fabric_connector.dir/v2s.cc.o" "gcc" "src/connector/CMakeFiles/fabric_connector.dir/v2s.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spark/CMakeFiles/fabric_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/vertica/CMakeFiles/fabric_vertica.dir/DependInfo.cmake"
  "/root/repo/build/src/pmml/CMakeFiles/fabric_pmml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fabric_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fabric_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fabric_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fabric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
