file(REMOVE_RECURSE
  "libfabric_connector.a"
)
