# CMake generated Testfile for 
# Source directory: /root/repo/src/connector
# Build directory: /root/repo/build/src/connector
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
