file(REMOVE_RECURSE
  "CMakeFiles/fabric_vertica.dir/catalog.cc.o"
  "CMakeFiles/fabric_vertica.dir/catalog.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/copy_stream.cc.o"
  "CMakeFiles/fabric_vertica.dir/copy_stream.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/database.cc.o"
  "CMakeFiles/fabric_vertica.dir/database.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/dfs.cc.o"
  "CMakeFiles/fabric_vertica.dir/dfs.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/session.cc.o"
  "CMakeFiles/fabric_vertica.dir/session.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/sql_analyzer.cc.o"
  "CMakeFiles/fabric_vertica.dir/sql_analyzer.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/sql_ast.cc.o"
  "CMakeFiles/fabric_vertica.dir/sql_ast.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/sql_eval.cc.o"
  "CMakeFiles/fabric_vertica.dir/sql_eval.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/sql_lexer.cc.o"
  "CMakeFiles/fabric_vertica.dir/sql_lexer.cc.o.d"
  "CMakeFiles/fabric_vertica.dir/sql_parser.cc.o"
  "CMakeFiles/fabric_vertica.dir/sql_parser.cc.o.d"
  "libfabric_vertica.a"
  "libfabric_vertica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_vertica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
