# Empty dependencies file for fabric_vertica.
# This may be replaced when dependencies are built.
