file(REMOVE_RECURSE
  "libfabric_vertica.a"
)
