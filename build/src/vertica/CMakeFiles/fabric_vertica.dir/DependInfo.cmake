
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vertica/catalog.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/catalog.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/catalog.cc.o.d"
  "/root/repo/src/vertica/copy_stream.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/copy_stream.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/copy_stream.cc.o.d"
  "/root/repo/src/vertica/database.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/database.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/database.cc.o.d"
  "/root/repo/src/vertica/dfs.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/dfs.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/dfs.cc.o.d"
  "/root/repo/src/vertica/session.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/session.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/session.cc.o.d"
  "/root/repo/src/vertica/sql_analyzer.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_analyzer.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_analyzer.cc.o.d"
  "/root/repo/src/vertica/sql_ast.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_ast.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_ast.cc.o.d"
  "/root/repo/src/vertica/sql_eval.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_eval.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_eval.cc.o.d"
  "/root/repo/src/vertica/sql_lexer.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_lexer.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_lexer.cc.o.d"
  "/root/repo/src/vertica/sql_parser.cc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_parser.cc.o" "gcc" "src/vertica/CMakeFiles/fabric_vertica.dir/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/fabric_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fabric_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fabric_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fabric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
