# Empty compiler generated dependencies file for fabric_hdfs.
# This may be replaced when dependencies are built.
