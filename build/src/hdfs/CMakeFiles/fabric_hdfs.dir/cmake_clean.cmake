file(REMOVE_RECURSE
  "CMakeFiles/fabric_hdfs.dir/hdfs.cc.o"
  "CMakeFiles/fabric_hdfs.dir/hdfs.cc.o.d"
  "libfabric_hdfs.a"
  "libfabric_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
