file(REMOVE_RECURSE
  "libfabric_hdfs.a"
)
