file(REMOVE_RECURSE
  "libfabric_sim.a"
)
