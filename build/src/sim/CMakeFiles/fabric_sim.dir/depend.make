# Empty dependencies file for fabric_sim.
# This may be replaced when dependencies are built.
