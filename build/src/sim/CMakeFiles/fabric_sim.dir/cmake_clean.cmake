file(REMOVE_RECURSE
  "CMakeFiles/fabric_sim.dir/engine.cc.o"
  "CMakeFiles/fabric_sim.dir/engine.cc.o.d"
  "CMakeFiles/fabric_sim.dir/waitable.cc.o"
  "CMakeFiles/fabric_sim.dir/waitable.cc.o.d"
  "libfabric_sim.a"
  "libfabric_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
