# Empty dependencies file for fabric_spark.
# This may be replaced when dependencies are built.
