file(REMOVE_RECURSE
  "libfabric_spark.a"
)
