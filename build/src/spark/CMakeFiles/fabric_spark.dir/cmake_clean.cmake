file(REMOVE_RECURSE
  "CMakeFiles/fabric_spark.dir/cluster.cc.o"
  "CMakeFiles/fabric_spark.dir/cluster.cc.o.d"
  "CMakeFiles/fabric_spark.dir/dataframe.cc.o"
  "CMakeFiles/fabric_spark.dir/dataframe.cc.o.d"
  "CMakeFiles/fabric_spark.dir/types.cc.o"
  "CMakeFiles/fabric_spark.dir/types.cc.o.d"
  "libfabric_spark.a"
  "libfabric_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
