file(REMOVE_RECURSE
  "libfabric_mllib.a"
)
