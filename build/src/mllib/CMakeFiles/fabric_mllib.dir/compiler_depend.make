# Empty compiler generated dependencies file for fabric_mllib.
# This may be replaced when dependencies are built.
