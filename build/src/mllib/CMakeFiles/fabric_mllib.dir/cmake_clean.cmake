file(REMOVE_RECURSE
  "CMakeFiles/fabric_mllib.dir/mllib.cc.o"
  "CMakeFiles/fabric_mllib.dir/mllib.cc.o.d"
  "libfabric_mllib.a"
  "libfabric_mllib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_mllib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
