
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/jdbc_source.cc" "src/baselines/CMakeFiles/fabric_baselines.dir/jdbc_source.cc.o" "gcc" "src/baselines/CMakeFiles/fabric_baselines.dir/jdbc_source.cc.o.d"
  "/root/repo/src/baselines/native_copy.cc" "src/baselines/CMakeFiles/fabric_baselines.dir/native_copy.cc.o" "gcc" "src/baselines/CMakeFiles/fabric_baselines.dir/native_copy.cc.o.d"
  "/root/repo/src/baselines/two_stage.cc" "src/baselines/CMakeFiles/fabric_baselines.dir/two_stage.cc.o" "gcc" "src/baselines/CMakeFiles/fabric_baselines.dir/two_stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spark/CMakeFiles/fabric_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/vertica/CMakeFiles/fabric_vertica.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/fabric_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fabric_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fabric_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fabric_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fabric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
