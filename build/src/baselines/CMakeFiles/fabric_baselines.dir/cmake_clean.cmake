file(REMOVE_RECURSE
  "CMakeFiles/fabric_baselines.dir/jdbc_source.cc.o"
  "CMakeFiles/fabric_baselines.dir/jdbc_source.cc.o.d"
  "CMakeFiles/fabric_baselines.dir/native_copy.cc.o"
  "CMakeFiles/fabric_baselines.dir/native_copy.cc.o.d"
  "CMakeFiles/fabric_baselines.dir/two_stage.cc.o"
  "CMakeFiles/fabric_baselines.dir/two_stage.cc.o.d"
  "libfabric_baselines.a"
  "libfabric_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
