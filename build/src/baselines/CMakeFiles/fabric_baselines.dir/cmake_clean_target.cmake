file(REMOVE_RECURSE
  "libfabric_baselines.a"
)
