# Empty compiler generated dependencies file for fabric_baselines.
# This may be replaced when dependencies are built.
