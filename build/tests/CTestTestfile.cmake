# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vertica_test "/root/repo/build/tests/vertica_test")
set_tests_properties(vertica_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(spark_test "/root/repo/build/tests/spark_test")
set_tests_properties(spark_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(connector_test "/root/repo/build/tests/connector_test")
set_tests_properties(connector_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extension_test "/root/repo/build/tests/extension_test")
set_tests_properties(extension_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(determinism_test "/root/repo/build/tests/determinism_test")
set_tests_properties(determinism_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;fabric_add_test;/root/repo/tests/CMakeLists.txt;0;")
