# Empty compiler generated dependencies file for vertica_test.
# This may be replaced when dependencies are built.
