file(REMOVE_RECURSE
  "CMakeFiles/vertica_test.dir/vertica_test.cc.o"
  "CMakeFiles/vertica_test.dir/vertica_test.cc.o.d"
  "vertica_test"
  "vertica_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
