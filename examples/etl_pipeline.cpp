// ETL pipeline: Spark as an ETL engine for Vertica (the paper's S2V
// motivation), under fire.
//
// Raw click events live in HDFS as delimited text. Spark cleans and
// enriches them (drop malformed rows, derive a revenue column), then
// saves the result into Vertica with S2V — while a failure injector
// kills task attempts mid-flight and speculative execution races
// duplicates. The run then PROVES exactly-once delivery by comparing
// row counts and revenue sums computed independently on both sides, and
// shows the permanent job-status table a DBA would consult after a
// Spark outage.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "connector/s2v.h"
#include "hdfs/hdfs.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace {

using fabric::Rng;
using fabric::StrCat;
using fabric::connector::kVerticaSourceName;
using fabric::spark::SaveMode;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;

constexpr int kEvents = 40000;

void RunPipeline(fabric::sim::Process& driver,
                 fabric::vertica::Database* db,
                 fabric::spark::SparkSession* spark,
                 fabric::hdfs::HdfsCluster* hdfs, double* expected_revenue,
                 long long* expected_rows) {
  // --- Extract: read the raw events from HDFS (one partition/block).
  auto raw = spark->Read()
                 .Format("parquet")
                 .Option("path", "/raw/clicks")
                 .Load(driver);
  FABRIC_CHECK_OK(raw.status());
  std::printf("extract: %d HDFS blocks -> %d partitions\n",
              raw->NumPartitions(), raw->NumPartitions());

  // --- Transform: drop rows with a null price, derive revenue.
  Schema out_schema({{"user_id", DataType::kInt64},
                     {"item", DataType::kVarchar},
                     {"revenue", DataType::kFloat64}});
  auto cleaned =
      raw->Filter([](const Row& row) -> fabric::Result<bool> {
           return !row[2].is_null();  // price present
         })
          .Map(
              [](const Row& row) -> fabric::Result<Row> {
                double revenue =
                    row[2].float64_value() * row[3].int64_value();
                return Row{row[0], row[1], Value::Float64(revenue)};
              },
              out_schema);

  // --- Load: S2V with exactly-once semantics, 16 parallel tasks.
  double t0 = driver.Now();
  FABRIC_CHECK_OK(cleaned.Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "clicks")
                      .Option("host", db->node_address(0))
                      .Option("numpartitions", 16)
                      .Option("jobname", "etl_demo")
                      .Mode(SaveMode::kOverwrite)
                      .Save(driver));
  std::printf("load: S2V finished in %.2f virtual s (despite kills)\n",
              driver.Now() - t0);

  // --- Verify exactly-once: counts and sums agree on both sides.
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  auto totals = (*session)->Execute(
      driver, "SELECT COUNT(*) AS n, SUM(revenue) AS total FROM clicks");
  FABRIC_CHECK_OK(totals.status());
  long long n = totals->rows[0][0].int64_value();
  double revenue = totals->rows[0][1].float64_value();
  std::printf("verify: Vertica has %lld rows, revenue %.2f\n", n, revenue);
  std::printf("verify: Spark computed %lld rows, revenue %.2f\n",
              *expected_rows, *expected_revenue);
  FABRIC_CHECK(n == *expected_rows) << "row count mismatch!";
  FABRIC_CHECK(revenue > *expected_revenue - 1e-6 &&
               revenue < *expected_revenue + 1e-6)
      << "revenue mismatch!";
  std::printf("verify: EXACTLY-ONCE HOLDS\n");

  // --- The permanent job record survives everything.
  auto jobs = (*session)->Execute(
      driver, StrCat("SELECT job, failed_pct, finished FROM ",
                     fabric::connector::S2VRelation::kFinalStatusTable));
  FABRIC_CHECK_OK(jobs.status());
  for (const Row& row : jobs->rows) {
    std::printf("job status: job=%s failed_pct=%.3f finished=%s\n",
                row[0].varchar_value().c_str(), row[1].float64_value(),
                row[2].bool_value() ? "true" : "false");
  }
  FABRIC_CHECK_OK((*session)->Close(driver));
  (void)hdfs;
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);

  // Each real row stands in for 1000 paper-scale rows: the cost model
  // sees a ~1.2 GB extract, so HDFS splits it into ~19 blocks and the
  // transfer times are production-shaped.
  fabric::CostModel cost;
  cost.data_scale = 1000;

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  vertica_options.cost = cost;
  fabric::vertica::Database db(&engine, &network, vertica_options);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 8;
  spark_options.cost = cost;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  fabric::hdfs::HdfsCluster hdfs(
      &engine, &network,
      fabric::hdfs::HdfsCluster::Options{4, cluster.cost()});
  fabric::hdfs::RegisterHdfsSource(&spark, &hdfs);

  // Raw events; ~2% have a null price (malformed upstream records).
  Schema raw_schema({{"user_id", DataType::kInt64},
                     {"item", DataType::kVarchar},
                     {"price", DataType::kFloat64},
                     {"quantity", DataType::kInt64}});
  Rng rng(7);
  std::vector<Row> events;
  double expected_revenue = 0;
  long long expected_rows = 0;
  for (int i = 0; i < kEvents; ++i) {
    bool malformed = rng.NextBool(0.02);
    double price = 1.0 + rng.NextDouble() * 99.0;
    int64_t quantity = rng.NextInt64(1, 5);
    if (!malformed) {
      expected_revenue += price * static_cast<double>(quantity);
      ++expected_rows;
    }
    events.push_back({Value::Int64(rng.NextInt64(1, 5000)),
                      Value::Varchar(StrCat("item-", rng.NextUint64(200))),
                      malformed ? Value::Null() : Value::Float64(price),
                      Value::Int64(quantity)});
  }
  FABRIC_CHECK_OK(
      hdfs.PutFileForTest("/raw/clicks", raw_schema, std::move(events)));

  // The adversary: kill up to 5 task attempts at random points.
  fabric::spark::RandomFailureInjector injector(/*seed=*/99,
                                                /*kill_probability=*/0.35,
                                                /*typical_duration=*/3.0,
                                                /*max_kills=*/5);
  cluster.set_failure_injector(&injector);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    RunPipeline(driver, &db, &spark, &hdfs, &expected_revenue,
                &expected_rows);
  });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("kills injected: %d; total virtual time: %.2f s\n",
              injector.kills_planned(), engine.now());
  return 0;
}
