// The workload-driven database designer, end to end: run a join-heavy
// workload over the super projections, watch it land in
// v_monitor.query_requests, ask SELECT DESIGN_PROPOSALS(...) for
// layouts, adopt the proposed DDL, and re-run the workload — EXPLAIN
// now shows a co-located merge join and the virtual-time cost drops,
// while every answer stays byte-identical.

#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "net/network.h"
#include "sim/engine.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace {

using fabric::StrCat;
using fabric::storage::Row;

fabric::vertica::QueryResult Run(fabric::sim::Process& self,
                                 fabric::vertica::Session& session,
                                 const std::string& sql, bool print = true) {
  if (print) std::printf("\nvsql> %s\n", sql.c_str());
  auto result = session.Execute(self, sql);
  FABRIC_CHECK_OK(result.status());
  if (!print) return std::move(*result);
  if (result->schema.num_columns() > 0) {
    for (int c = 0; c < result->schema.num_columns(); ++c) {
      std::printf("%-26s", result->schema.column(c).name.c_str());
    }
    std::printf("\n");
    for (const Row& row : result->rows) {
      for (const auto& value : row) {
        std::printf("%-26s", value.ToDisplayString().c_str());
      }
      std::printf("\n");
    }
    std::printf("(%zu rows)\n", result->rows.size());
  } else {
    std::printf("OK\n");
  }
  return std::move(*result);
}

void Demo(fabric::sim::Process& self, fabric::vertica::Database* db,
          fabric::sim::Engine* engine) {
  auto session_or = db->Connect(self, 0, nullptr);
  FABRIC_CHECK_OK(session_or.status());
  fabric::vertica::Session& s = **session_or;

  std::printf("=== 1. A cluster with no physical design ===\n");
  Run(self, s,
      "CREATE TABLE fact (id INTEGER, cust INTEGER, amount FLOAT) "
      "SEGMENTED BY HASH(id) ALL NODES");
  Run(self, s,
      "CREATE TABLE dim (cust_id INTEGER, region VARCHAR) "
      "SEGMENTED BY HASH(cust_id) ALL NODES");
  static const char* kRegions[] = {"east", "west", "north", "south"};
  for (int base = 0; base < 1200; base += 100) {
    std::string values;
    for (int i = base; i < base + 100; ++i) {
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", ",
                       (i * 7) % 40, ", ", i % 13, ".5)");
    }
    Run(self, s, StrCat("INSERT INTO fact VALUES ", values), false);
  }
  std::string values;
  for (int i = 0; i < 40; ++i) {
    values += StrCat(values.empty() ? "" : ", ", "(", i, ", '",
                     kRegions[i % 4], "')");
  }
  Run(self, s, StrCat("INSERT INTO dim VALUES ", values), false);
  std::printf("loaded 1200 fact rows, 40 dim rows\n");

  std::printf("\n=== 2. The workload the designer will learn from ===\n");
  const std::vector<std::string> workload = {
      "SELECT region, SUM(amount) FROM fact JOIN dim ON cust = cust_id "
      "GROUP BY region ORDER BY region",
      "SELECT cust, COUNT(*) FROM fact GROUP BY cust ORDER BY cust "
      "LIMIT 5",
  };
  std::vector<std::vector<std::string>> before;
  double t0 = engine->now();
  for (int rep = 0; rep < 3; ++rep) {
    for (const std::string& q : workload) {
      auto result = Run(self, s, q, rep == 0);
      if (rep == 0) {
        std::vector<std::string> lines;
        for (const Row& row : result.rows) {
          std::string line;
          for (const auto& v : row) line += v.ToDisplayString() + "|";
          lines.push_back(line);
        }
        before.push_back(lines);
      }
    }
  }
  double undesigned_s = engine->now() - t0;
  Run(self, s, StrCat("EXPLAIN ", workload[0]));
  Run(self, s,
      "SELECT table_name, join_table, strategy "
      "FROM v_monitor.query_requests WHERE join_table <> ''");

  std::printf("\n=== 3. Ask the designer for a physical design ===\n");
  Run(self, s, "SELECT DESIGN_PROPOSALS(0.8, 4)");
  auto proposals =
      Run(self, s,
          "SELECT proposal_name, anchor_table, sort_columns, ddl "
          "FROM v_monitor.design_proposals ORDER BY proposal_name");

  std::printf("\n=== 4. Adopt every proposal ===\n");
  for (const Row& row : proposals.rows) {
    Run(self, s, row[3].varchar_value());
  }

  std::printf("\n=== 5. Same workload, new plans, same answers ===\n");
  t0 = engine->now();
  for (int rep = 0; rep < 3; ++rep) {
    size_t check = 0;
    for (const std::string& q : workload) {
      auto result = Run(self, s, q, false);
      if (rep == 0) {
        std::vector<std::string> lines;
        for (const Row& row : result.rows) {
          std::string line;
          for (const auto& v : row) line += v.ToDisplayString() + "|";
          lines.push_back(line);
        }
        FABRIC_CHECK(lines == before[check])
            << "adopting proposals changed an answer: " << q;
        ++check;
      }
    }
  }
  double designed_s = engine->now() - t0;
  Run(self, s, StrCat("EXPLAIN ", workload[0]));
  std::printf("\nanswers byte-identical before/after adoption\n");
  std::printf("workload virtual time: %.3f s undesigned -> %.3f s "
              "designed (%.2fx)\n",
              undesigned_s, designed_s, undesigned_s / designed_s);

  FABRIC_CHECK_OK(s.Close(self));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);
  fabric::vertica::Database::Options options;
  options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, options);
  engine.Spawn("designer",
               [&](fabric::sim::Process& self) { Demo(self, &db, &engine); });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("\ntotal virtual time: %.2f s\n", engine.now());
  return 0;
}
