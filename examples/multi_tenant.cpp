// Multi-tenant workload management walkthrough.
//
// Three tenants share one 4-node Vertica cluster through named resource
// pools:
//
//   etl        low priority, small concurrency — bulk S2V loads
//   dashboard  high priority, tight per-query memory — short SQL
//   adhoc      mid priority, cascades to general when full — V2S reads
//
// A burst of mixed traffic (SQL + V2S + S2V, driven as logical sessions
// over the wm::Multiplexer) hits all three pools at once. The dashboard
// pool's per-query grant is deliberately tiny, so its GROUP BYs run over
// budget and complete by spilling partitions to simulated local disk —
// with byte-identical results. Afterwards the example prints per-pool
// p99 latency, the spill counters, and the live
// v_monitor.resource_pool_status system table.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "connector/default_source.h"
#include "connector/failover.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"
#include "vertica/wm/multiplexer.h"
#include "vertica/wm/resource_pool.h"

namespace {

using fabric::Status;
using fabric::StrCat;
using fabric::connector::kVerticaSourceName;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;
using fabric::vertica::wm::Multiplexer;
using fabric::vertica::wm::PoolConfig;
using fabric::vertica::wm::WorkloadConfig;

constexpr int kSessionsPerPool = 24;

WorkloadConfig ThreeTenantPools() {
  WorkloadConfig config;
  PoolConfig general;
  general.name = "general";
  general.max_concurrency = 4;
  general.memory_budget = 64 << 20;
  config.pools.push_back(general);

  PoolConfig etl;
  etl.name = "etl";
  etl.cascade_to = "general";
  etl.priority = 0;
  etl.max_concurrency = 2;
  etl.memory_budget = 32 << 20;
  config.pools.push_back(etl);

  PoolConfig dashboard;
  dashboard.name = "dashboard";
  dashboard.cascade_to = "general";
  dashboard.priority = 10;
  dashboard.max_concurrency = 4;
  // Tiny per-query grant: the dashboard GROUP BY spills and still
  // returns byte-identical rows.
  dashboard.query_memory = 400;
  config.pools.push_back(dashboard);

  PoolConfig adhoc;
  adhoc.name = "adhoc";
  adhoc.cascade_to = "general";
  adhoc.priority = 5;
  adhoc.max_concurrency = 2;
  adhoc.memory_budget = 16 << 20;
  config.pools.push_back(adhoc);
  return config;
}

double P99(std::vector<double> latencies) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  size_t index =
      static_cast<size_t>(0.99 * (latencies.size() - 1) + 0.5);
  return latencies[std::min(index, latencies.size() - 1)];
}

void RunDemo(fabric::sim::Process& driver, fabric::vertica::Database* db,
             fabric::spark::SparkSession* spark,
             fabric::sim::Engine* engine) {
  // Stage the fact table the dashboard and adhoc tenants query.
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver,
                    "CREATE TABLE facts (region INTEGER, item INTEGER, "
                    "sales INTEGER) SEGMENTED BY HASH(region) ALL NODES")
          .status());
  std::string values;
  for (int i = 0; i < 240; ++i) {
    values += StrCat(i ? ", " : "", "(", i % 12, ", ", i, ", ",
                     (i * 37) % 1000, ")");
  }
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver, StrCat("INSERT INTO facts VALUES ", values))
          .status());
  FABRIC_CHECK_OK((*session)->Close(driver));

  // Mixed burst: kSessionsPerPool logical sessions per tenant, all
  // arriving inside half a virtual second.
  Schema load_schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  std::vector<std::vector<double>> latencies(3);
  Multiplexer mux(engine, Multiplexer::Options{.lanes = 24,
                                               .name = "tenants"});
  for (int tenant = 0; tenant < 3; ++tenant) {
    for (int i = 0; i < kSessionsPerPool; ++i) {
      Multiplexer::SessionSpec spec;
      spec.start = 0.5 * i / kSessionsPerPool;
      double start = spec.start;
      spec.body = [=, &latencies](fabric::sim::Process& self, int,
                                  int) -> Status {
        Status status;
        if (tenant == 0) {
          // dashboard: short SQL.
          auto s = fabric::connector::ConnectWithFailover(
              self, db, i % db->num_nodes(), nullptr);
          if (!s.ok()) {
            status = s.status();
          } else {
            (*s)->set_resource_pool("dashboard");
            status = (*s)->Execute(self,
                                   "SELECT region, COUNT(*), SUM(sales) "
                                   "FROM facts GROUP BY region")
                         .status();
            Status closed = (*s)->Close(self);
            if (status.ok()) status = closed;
          }
        } else if (tenant == 1) {
          // adhoc: V2S grouped aggregate (pushes into Vertica).
          auto df = spark->Read()
                        .Format(kVerticaSourceName)
                        .Option("table", "facts")
                        .Option("numpartitions", 2)
                        .Option("resource_pool", "adhoc")
                        .Load(self);
          status = df.status();
          if (status.ok()) {
            auto agg = df->GroupBy({"region"})->Agg(
                {fabric::spark::AggCount(),
                 fabric::spark::AggSum("sales")});
            status = agg.status();
            if (status.ok()) status = agg->Collect(self).status();
          }
        } else {
          // etl: S2V load into a per-session table.
          std::vector<Row> rows;
          for (int r = 0; r < 40; ++r) {
            rows.push_back({Value::Int64(r), Value::Int64(i * 100 + r)});
          }
          auto df = spark->CreateDataFrame(load_schema, std::move(rows), 2);
          status = df.status();
          if (status.ok()) {
            status = df->Write()
                         .Format(kVerticaSourceName)
                         .Option("table", StrCat("load_", i))
                         .Option("numpartitions", 2)
                         .Option("resource_pool", "etl")
                         .Mode(fabric::spark::SaveMode::kOverwrite)
                         .Save(self);
          }
        }
        FABRIC_CHECK_OK(status);
        latencies[tenant].push_back(self.Now() - start);
        return self.CheckAlive();
      };
      mux.AddSession(std::move(spec));
    }
  }
  double t0 = driver.Now();
  mux.Launch();
  FABRIC_CHECK_OK(mux.Join(driver));
  std::printf("%d sessions over 3 pools in %.2f virtual s (peak %d open)\n\n",
              mux.stats().sessions, driver.Now() - t0,
              mux.stats().peak_concurrent);

  const char* kPoolOfTenant[] = {"dashboard", "adhoc", "etl"};
  std::printf("%-10s %9s %9s\n", "pool", "sessions", "p99 (s)");
  for (int tenant = 0; tenant < 3; ++tenant) {
    std::printf("%-10s %9zu %9.2f\n", kPoolOfTenant[tenant],
                latencies[tenant].size(), P99(latencies[tenant]));
  }

  // Live pool telemetry, the same way a DBA would read it.
  session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  auto pools = (*session)->Execute(
      driver,
      "SELECT pool_name, SUM(running_query_count), SUM(admitted), "
      "SUM(borrowed), SUM(spills), SUM(spill_bytes) "
      "FROM v_monitor.resource_pool_status GROUP BY pool_name "
      "ORDER BY pool_name");
  FABRIC_CHECK_OK(pools.status());
  std::printf("\nv_monitor.resource_pool_status:\n");
  std::printf("%-10s %8s %9s %9s %7s %12s\n", "pool", "running",
              "admitted", "borrowed", "spills", "spill bytes");
  for (const Row& row : pools->rows) {
    // SUM() finalizes as FLOAT regardless of the input column type.
    std::printf("%-10s %8.0f %9.0f %9.0f %7.0f %12.0f\n",
                row[0].varchar_value().c_str(), row[1].float64_value(),
                row[2].float64_value(), row[3].float64_value(),
                row[4].float64_value(), row[5].float64_value());
  }
  FABRIC_CHECK_OK((*session)->Close(driver));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::obs::Tracer tracer([&engine] { return engine.now(); },
                             fabric::obs::Tracer::Options{
                                 .capture_events = false});
  fabric::obs::ScopedTracer install(&tracer);
  fabric::net::Network network(&engine);

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  vertica_options.workload = ThreeTenantPools();
  fabric::vertica::Database db(&engine, &network, vertica_options);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 8;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    RunDemo(driver, &db, &spark, &engine);
  });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("\nwm counters: spills=%.0f spill_bytes=%.0f queued=%.0f\n",
              tracer.metrics().counter("wm.spills"),
              tracer.metrics().counter("wm.spill_bytes"),
              tracer.metrics().counter("wm.queued"));
  std::printf("total virtual time: %.2f s\n", engine.now());
  return 0;
}
