// Observability tour: run an S2V save with a scripted mid-copy kill and
// dump the full structured trace as Chrome trace-event JSON.
//
// Open the output in chrome://tracing or https://ui.perfetto.dev to see
// the job/task spans, the kill, the retry, and the five S2V phases; the
// "metrics" key at the end carries every counter/gauge/histogram from
// the run. Re-running produces a byte-identical file — traces are
// deterministic artifacts, which is exactly what makes them testable
// (see tests/connector_test.cc's conformance suite).

#include <cstdio>
#include <fstream>

#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "s2v_trace.json";

  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, vertica_options);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 4;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  // Kill task 3's first attempt one virtual second in — mid-COPY — so
  // the trace shows a failed attempt span and the retried one.
  fabric::spark::ScriptedFailureInjector injector;
  injector.KillAttempt(/*task=*/3, /*attempt=*/0, /*after=*/1.0);
  cluster.set_failure_injector(&injector);

  // Everything that happens while this tracer is installed is recorded,
  // stamped with virtual time from the engine's clock.
  fabric::obs::Tracer tracer([&engine] { return engine.now(); });
  fabric::obs::ScopedTracer install(&tracer);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    fabric::storage::Schema schema(
        {{"id", fabric::storage::DataType::kInt64},
         {"v", fabric::storage::DataType::kFloat64}});
    std::vector<fabric::storage::Row> rows;
    for (int i = 0; i < 2000; ++i) {
      rows.push_back({fabric::storage::Value::Int64(i),
                      fabric::storage::Value::Float64(i * 0.5)});
    }
    auto df = spark.CreateDataFrame(schema, std::move(rows), 8);
    FABRIC_CHECK_OK(df.status());
    FABRIC_CHECK_OK(df->Write()
                        .Format(fabric::connector::kVerticaSourceName)
                        .Option("table", "events")
                        .Option("numpartitions", 8)
                        .Mode(fabric::spark::SaveMode::kOverwrite)
                        .Save(driver));
  });
  FABRIC_CHECK_OK(engine.Run());

  // Query the trace in-process...
  fabric::obs::TraceMatcher trace(tracer);
  std::printf("events: %zu | s2v commits: %zu | duplicates: %zu | "
              "kills planned: %zu\n",
              trace.count(),
              trace.Category("s2v").Name("phase1.commit").count(),
              trace.Category("s2v").Name("phase1.duplicate").count(),
              trace.Category("spark").Name("task.kill_planned").count());
  std::printf("promoted at t=%.2fs by partition %lld\n",
              trace.Category("s2v").Name("phase5.promote").only().time,
              static_cast<long long>(trace.Category("s2v")
                                         .Name("phase5.promote")
                                         .only()
                                         .IntAttr("partition")));

  // ...and export it for chrome://tracing.
  std::ofstream out(out_path);
  out << tracer.ToChromeTraceJson();
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s (load it in chrome://tracing)\n", out_path);
  return 0;
}
