// Quickstart: the Table 1 API end to end.
//
// Builds a 4-node Vertica database and an 8-worker Spark cluster in one
// simulated fabric, saves a DataFrame into Vertica with S2V (exactly-once
// bulk load), reads it back with V2S (locality-aware, epoch-consistent
// parallel load) with filter/column/count pushdown, and prints what
// happened — including the virtual wall-clock each step took.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace {

using fabric::Rng;
using fabric::StrCat;
using fabric::connector::kVerticaSourceName;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;

void RunQuickstart(fabric::sim::Process& driver,
                   fabric::vertica::Database* db,
                   fabric::spark::SparkSession* spark) {
  // 1. Some data on the Spark side: 50k (simulated) sensor readings.
  Schema schema({{"sensor_id", DataType::kInt64},
                 {"temperature", DataType::kFloat64},
                 {"status", DataType::kVarchar}});
  Rng rng(42);
  std::vector<Row> rows;
  for (int i = 0; i < 50000; ++i) {
    rows.push_back({Value::Int64(i % 1000),
                    Value::Float64(15.0 + rng.NextDouble() * 20.0),
                    Value::Varchar(rng.NextBool(0.95) ? "ok" : "alert")});
  }
  auto df = spark->CreateDataFrame(schema, std::move(rows), 32);
  FABRIC_CHECK_OK(df.status());

  // 2. SAVE: Spark -> Vertica, exactly once (Table 1's write API).
  double t0 = driver.Now();
  FABRIC_CHECK_OK(df->Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "readings")
                      .Option("host", db->node_address(0))
                      .Option("user", "dbadmin")
                      .Option("numpartitions", 32)
                      .Mode(fabric::spark::SaveMode::kOverwrite)
                      .Save(driver));
  std::printf("S2V: saved %d partitions into 'readings' in %.2f virtual s\n",
              df->NumPartitions(), driver.Now() - t0);

  // 3. LOAD: Vertica -> Spark (Table 1's read API), with pushdown.
  t0 = driver.Now();
  auto loaded = spark->Read()
                    .Format(kVerticaSourceName)
                    .Option("table", "readings")
                    .Option("host", db->node_address(0))
                    .Option("numpartitions", 16)
                    .Load(driver);
  FABRIC_CHECK_OK(loaded.status());
  auto count = loaded->Count(driver);  // COUNT(*) pushed into Vertica
  FABRIC_CHECK_OK(count.status());
  std::printf("V2S: COUNT(*) pushdown -> %lld rows in %.2f virtual s\n",
              static_cast<long long>(*count), driver.Now() - t0);

  t0 = driver.Now();
  fabric::spark::ColumnPredicate alerts{
      "status", fabric::spark::ColumnPredicate::Op::kEq,
      Value::Varchar("alert")};
  auto alert_rows = loaded->Filter(alerts)
                        .Select({"sensor_id", "temperature"})
                        .value()
                        .Collect(driver);
  FABRIC_CHECK_OK(alert_rows.status());
  std::printf(
      "V2S: filter+projection pushdown -> %zu alert rows in %.2f "
      "virtual s\n",
      alert_rows->size(), driver.Now() - t0);

  // 4. The same data is a first-class SQL table in Vertica.
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  auto grouped = (*session)->Execute(
      driver,
      "SELECT status, COUNT(*) AS n, AVG(temperature) AS mean_temp "
      "FROM readings GROUP BY status ORDER BY status");
  FABRIC_CHECK_OK(grouped.status());
  for (const Row& row : grouped->rows) {
    std::printf("SQL: status=%-6s n=%-6lld mean_temp=%.2f\n",
                row[0].varchar_value().c_str(),
                static_cast<long long>(row[1].int64_value()),
                row[2].float64_value());
  }
  FABRIC_CHECK_OK((*session)->Close(driver));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, vertica_options);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 8;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    RunQuickstart(driver, &db, &spark);
  });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("total virtual time: %.2f s\n", engine.now());
  return 0;
}
