// A guided SQL tour of the Vertica substrate on its own — no Spark
// involved. Shows the pieces the connector builds on: hash-ring
// segmentation visible in the system catalog, epoch snapshots (time
// travel), transactions with conditional updates (the S2V primitives),
// joins, views, aggregation, and hash-range queries that read one node.

#include <cstdio>

#include "common/string_util.h"
#include "net/network.h"
#include "sim/engine.h"
#include "vertica/database.h"
#include "vertica/session.h"
#include "vertica/sql_eval.h"

namespace {

using fabric::StrCat;
using fabric::storage::Row;

// Executes and pretty-prints one statement.
fabric::vertica::QueryResult Run(fabric::sim::Process& self,
                                 fabric::vertica::Session& session,
                                 const std::string& sql) {
  std::printf("\nvsql> %s\n", sql.c_str());
  auto result = session.Execute(self, sql);
  FABRIC_CHECK_OK(result.status());
  if (result->schema.num_columns() > 0) {
    for (int c = 0; c < result->schema.num_columns(); ++c) {
      std::printf("%-22s", result->schema.column(c).name.c_str());
    }
    std::printf("\n");
    for (const Row& row : result->rows) {
      for (const auto& value : row) {
        std::printf("%-22s", value.ToDisplayString().c_str());
      }
      std::printf("\n");
    }
    std::printf("(%zu rows)\n", result->rows.size());
  } else if (result->affected > 0) {
    std::printf("OK, %lld rows\n",
                static_cast<long long>(result->affected));
  } else {
    std::printf("OK\n");
  }
  return std::move(*result);
}

void Tour(fabric::sim::Process& self, fabric::vertica::Database* db) {
  auto session_or = db->Connect(self, 0, nullptr);
  FABRIC_CHECK_OK(session_or.status());
  fabric::vertica::Session& s = **session_or;

  std::printf("=== 1. DDL and segmentation ===\n");
  Run(self, s,
      "CREATE TABLE users (id INTEGER, name VARCHAR, region VARCHAR) "
      "SEGMENTED BY HASH(id) ALL NODES");
  Run(self, s,
      "CREATE TABLE orders (user_id INTEGER, amount FLOAT) "
      "SEGMENTED BY HASH(user_id) ALL NODES");
  Run(self, s,
      "SELECT node_name, segment_lower FROM v_catalog.segments "
      "WHERE table_name = 'users'");

  std::printf("\n=== 2. Data, joins, views ===\n");
  Run(self, s,
      "INSERT INTO users VALUES (1, 'ann', 'east'), (2, 'bo', 'west'), "
      "(3, 'cy', 'east'), (4, 'dee', 'west')");
  Run(self, s,
      "INSERT INTO orders VALUES (1, 19.99), (1, 5.00), (2, 42.00), "
      "(3, 8.25), (4, 120.00), (4, 3.50)");
  Run(self, s,
      "CREATE VIEW region_revenue AS SELECT region, SUM(amount) AS "
      "revenue FROM users JOIN orders ON id = user_id GROUP BY region");
  Run(self, s, "SELECT * FROM region_revenue ORDER BY revenue DESC");

  std::printf("\n=== 3. Epochs: consistent snapshots (what V2S uses) ===\n");
  auto epochs = Run(self, s, "SELECT current_epoch FROM v_catalog.epochs");
  int64_t snapshot = epochs.rows[0][0].int64_value();
  Run(self, s, "DELETE FROM orders WHERE amount < 10");
  Run(self, s, "SELECT COUNT(*) FROM orders");
  Run(self, s,
      StrCat("SELECT COUNT(*) FROM orders AT EPOCH ", snapshot));

  std::printf("\n=== 4. Transactions and conditional updates (the S2V "
              "primitives) ===\n");
  Run(self, s,
      "CREATE TABLE task_status (task INTEGER, done BOOLEAN) "
      "UNSEGMENTED ALL NODES");
  Run(self, s, "INSERT INTO task_status VALUES (0, FALSE)");
  Run(self, s, "BEGIN");
  auto first = Run(self, s,
                   "UPDATE task_status SET done = TRUE WHERE task = 0 "
                   "AND done = FALSE");
  std::printf("-- first conditional update matched %lld row(s)\n",
              static_cast<long long>(first.affected));
  Run(self, s, "COMMIT");
  auto duplicate = Run(self, s,
                       "UPDATE task_status SET done = TRUE WHERE task = 0 "
                       "AND done = FALSE");
  std::printf("-- duplicate matched %lld row(s): exactly-once guard\n",
              static_cast<long long>(duplicate.affected));

  std::printf("\n=== 5. Hash-range queries (one per V2S partition) ===\n");
  auto ranges = db->node_ranges();
  std::string where = StrCat(
      "HASH(id) >= ",
      fabric::vertica::sql::RingHashToSigned(ranges[0].lower), " AND ",
      "HASH(id) < ",
      fabric::vertica::sql::RingHashToSigned(ranges[0].upper));
  Run(self, s, StrCat("SELECT id, name FROM users WHERE ", where,
                      " AT EPOCH ", snapshot));
  std::printf("-- that query touched only %s\n",
              db->node_name(0).c_str());

  FABRIC_CHECK_OK(s.Close(self));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);
  fabric::vertica::Database::Options options;
  options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, options);
  engine.Spawn("vsql", [&](fabric::sim::Process& self) { Tour(self, &db); });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("\ntotal virtual time: %.2f s\n", engine.now());
  return 0;
}
