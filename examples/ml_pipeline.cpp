// The full analytics pipeline of Figure 1: V2S + MLlib + MD.
//
// A labeled dataset lives in Vertica. Spark loads it through V2S (one
// consistent epoch across all partition queries), trains a logistic
// regression with the mini-MLlib, exports it as PMML, deploys it into
// Vertica's internal DFS with DeployPMMLModel, and finally scores fresh
// rows *inside the database* with the PMMLPredict UDx — closing the loop
// without the data ever leaving Vertica for inference.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "connector/model_deploy.h"
#include "mllib/mllib.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace {

using fabric::Rng;
using fabric::StrCat;
using fabric::connector::kVerticaSourceName;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;

void RunPipeline(fabric::sim::Process& driver,
                 fabric::vertica::Database* db,
                 fabric::spark::SparkSession* spark) {
  // --- 0. Seed Vertica with labeled training data (an "IrisTable"-style
  //        fixture): label = whether 2*sepal - petal + noise > 1.
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver,
                    "CREATE TABLE iris (sepal FLOAT, petal FLOAT, "
                    "label FLOAT) SEGMENTED BY HASH(sepal, petal) ALL "
                    "NODES")
          .status());
  Rng rng(2024);
  std::string values;
  for (int i = 0; i < 2000; ++i) {
    double sepal = rng.NextDouble() * 4;
    double petal = rng.NextDouble() * 4;
    double noise = (rng.NextDouble() - 0.5) * 0.2;
    int label = 2 * sepal - petal + noise > 1.0 ? 1 : 0;
    if (i > 0) values += ", ";
    values += StrCat("(", sepal, ", ", petal, ", ", label, ")");
  }
  FABRIC_CHECK_OK(
      (*session)
          ->Execute(driver, StrCat("INSERT INTO iris VALUES ", values))
          .status());

  // --- 1. V2S: load the training table into Spark.
  double t0 = driver.Now();
  auto training = spark->Read()
                      .Format(kVerticaSourceName)
                      .Option("table", "iris")
                      .Option("host", db->node_address(0))
                      .Option("numpartitions", 16)
                      .Load(driver);
  FABRIC_CHECK_OK(training.status());
  std::printf("V2S: loaded training set (%d partitions) in %.2f s\n",
              training->NumPartitions(), driver.Now() - t0);

  // --- 2. Train in Spark MLlib.
  t0 = driver.Now();
  fabric::mllib::TrainConfig config;
  config.iterations = 600;
  config.learning_rate = 0.4;
  auto model = fabric::mllib::TrainLogisticRegression(
      driver, *training, {"sepal", "petal"}, "label", config);
  FABRIC_CHECK_OK(model.status());
  std::printf(
      "MLlib: logistic regression w=[%.3f, %.3f] b=%.3f in %.2f s\n",
      model->weights[0], model->weights[1], model->intercept,
      driver.Now() - t0);

  // --- 3. Export as PMML and deploy into Vertica (MD).
  fabric::pmml::PmmlModel pmml = model->ToPmml("iris_classifier");
  FABRIC_CHECK_OK(fabric::connector::DeployPmmlModel(
      driver, db, &spark->cluster()->driver_host(), pmml));
  auto deployed = fabric::connector::ListPmmlModels(driver, db);
  FABRIC_CHECK_OK(deployed.status());
  std::printf("MD: deployed models:");
  for (const std::string& name : *deployed) std::printf(" %s", name.c_str());
  std::printf("\n");

  // --- 4. In-database scoring with the PMMLPredict UDx (Section 3.3's
  //        SQL, adapted to this schema).
  auto scored = (*session)->Execute(
      driver,
      "SELECT label, COUNT(*) AS n, AVG(PMMLPredict(sepal, petal USING "
      "PARAMETERS model_name='iris_classifier')) AS mean_score "
      "FROM iris GROUP BY label ORDER BY label");
  FABRIC_CHECK_OK(scored.status());
  for (const Row& row : scored->rows) {
    std::printf(
        "score: label=%.0f rows=%lld mean in-database prediction=%.3f\n",
        row[0].float64_value(),
        static_cast<long long>(row[1].int64_value()),
        row[2].float64_value());
  }

  // Sanity: in-database predictions equal in-Spark predictions.
  auto spot = (*session)->Execute(
      driver,
      "SELECT sepal, petal, PMMLPredict(sepal, petal USING PARAMETERS "
      "model_name='iris_classifier') AS p FROM iris LIMIT 5");
  FABRIC_CHECK_OK(spot.status());
  for (const Row& row : spot->rows) {
    double spark_side = model->Predict(
        {row[0].float64_value(), row[1].float64_value()});
    double db_side = row[2].float64_value();
    FABRIC_CHECK(std::abs(spark_side - db_side) < 1e-9)
        << "prediction parity violated";
  }
  std::printf("parity: Spark-side and in-database predictions agree\n");
  FABRIC_CHECK_OK((*session)->Close(driver));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, vertica_options);
  fabric::connector::RegisterPmmlPredict(&db);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 8;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    RunPipeline(driver, &db, &spark);
  });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("total virtual time: %.2f s\n", engine.now());
  return 0;
}
