// Node failure walkthrough: kill a Vertica node mid-workload and watch
// the k=1 fabric absorb it.
//
// The cluster keeps k=1 buddy copies: segment s's second copy lives on
// the ring-successor node. This example saves data via S2V, kills a node
// while Spark is loading it back, shows the load finish byte-identically
// from the buddy copies, writes while the node is down, and then restarts
// it — recovery pulls only the missed delta before the node rejoins.

#include <cstdio>

#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/ksafety/ksafety.h"
#include "vertica/session.h"

namespace {

using fabric::StrCat;
using fabric::connector::kVerticaSourceName;
using fabric::storage::DataType;
using fabric::storage::Row;
using fabric::storage::Schema;
using fabric::storage::Value;
using fabric::vertica::NodeState;
using fabric::vertica::NodeStateName;

void PrintNodeStates(fabric::sim::Process& driver,
                     fabric::vertica::Database* db) {
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  auto nodes = (*session)->Execute(
      driver, "SELECT node_name, state FROM v_catalog.nodes");
  FABRIC_CHECK_OK(nodes.status());
  std::printf("  v_catalog.nodes:");
  for (const Row& row : nodes->rows) {
    std::printf("  %s=%s", row[0].varchar_value().c_str(),
                row[1].varchar_value().c_str());
  }
  std::printf("\n");
  FABRIC_CHECK_OK((*session)->Close(driver));
}

void RunDemo(fabric::sim::Process& driver, fabric::vertica::Database* db,
             fabric::spark::SparkSession* spark) {
  // Stage a table through S2V.
  Schema schema({{"id", DataType::kInt64}, {"score", DataType::kFloat64}});
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 0.25)});
  }
  auto df = spark->CreateDataFrame(schema, std::move(rows), 16);
  FABRIC_CHECK_OK(df.status());
  FABRIC_CHECK_OK(df->Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "readings")
                      .Option("numpartitions", 16)
                      .Mode(fabric::spark::SaveMode::kOverwrite)
                      .Save(driver));
  std::printf("[%6.2fs] staged 20000 rows into 'readings'\n", driver.Now());
  PrintNodeStates(driver, db);

  // Schedule a kill shortly after the next load starts, then load: the
  // partitions that targeted the dead node fail over to its buddy and
  // re-issue the same snapshot query there.
  fabric::vertica::ksafety::NodeFailureSchedule schedule;
  schedule.KillNode(2, driver.Now() + 0.1);
  schedule.Install(db);
  auto loaded = spark->Read()
                    .Format(kVerticaSourceName)
                    .Option("table", "readings")
                    .Option("numpartitions", 16)
                    .Load(driver);
  FABRIC_CHECK_OK(loaded.status());
  auto collected = loaded->Collect(driver);
  FABRIC_CHECK_OK(collected.status());
  std::printf(
      "[%6.2fs] node 2 died mid-load; V2S still returned %zu rows "
      "(%.0f partition failovers)\n",
      driver.Now(), collected->size(),
      fabric::obs::CurrentTracer()->metrics().counter(
          "v2s.scan_failovers"));
  PrintNodeStates(driver, db);

  // Writes while the node is down land on the surviving copies.
  auto session = db->Connect(driver, 0, nullptr);
  FABRIC_CHECK_OK(session.status());
  auto inserted = (*session)->Execute(
      driver, "INSERT INTO readings VALUES (90001, 1.0), (90002, 2.0)");
  FABRIC_CHECK_OK(inserted.status());
  auto updated = (*session)->Execute(
      driver, "UPDATE readings SET score = 0.0 WHERE id < 100");
  FABRIC_CHECK_OK(updated.status());
  std::printf(
      "[%6.2fs] wrote through the outage: +%lld rows, %lld updated\n",
      driver.Now(), static_cast<long long>(inserted->affected),
      static_cast<long long>(updated->affected));
  FABRIC_CHECK_OK((*session)->Close(driver));

  // Restart: the node pulls the delta it missed from the buddies, then
  // rejoins.
  double t0 = driver.Now();
  FABRIC_CHECK_OK(db->RestartNode(2));
  std::printf("[%6.2fs] node 2 restarting (state %s)\n", driver.Now(),
              std::string(NodeStateName(db->node_state(2))).c_str());
  FABRIC_CHECK_OK(db->WaitForNodeState(driver, 2, NodeState::kUp));
  std::printf(
      "[%6.2fs] node 2 recovered in %.2f virtual s (%.0f bytes pulled)\n",
      driver.Now(), driver.Now() - t0,
      fabric::obs::CurrentTracer()->metrics().counter(
          "ksafety.recovery_bytes"));
  PrintNodeStates(driver, db);

  auto check = db->Connect(driver, 2, nullptr);
  FABRIC_CHECK_OK(check.status());
  auto count =
      (*check)->Execute(driver, "SELECT COUNT(*) FROM readings");
  FABRIC_CHECK_OK(count.status());
  std::printf("[%6.2fs] node 2 serves again: COUNT(*) = %lld\n",
              driver.Now(),
              static_cast<long long>(count->rows[0][0].int64_value()));
  FABRIC_CHECK_OK((*check)->Close(driver));
}

}  // namespace

int main() {
  fabric::sim::Engine engine;
  fabric::net::Network network(&engine);
  fabric::obs::Tracer tracer([&engine] { return engine.now(); });
  fabric::obs::ScopedTracer install(&tracer);

  fabric::vertica::Database::Options vertica_options;
  vertica_options.num_nodes = 4;
  fabric::vertica::Database db(&engine, &network, vertica_options);

  fabric::spark::SparkCluster::Options spark_options;
  spark_options.num_workers = 8;
  fabric::spark::SparkCluster cluster(&engine, &network, spark_options);
  fabric::spark::SparkSession spark(&cluster);
  fabric::connector::RegisterVerticaSource(&spark, &db);

  engine.Spawn("driver", [&](fabric::sim::Process& driver) {
    RunDemo(driver, &db, &spark);
  });
  FABRIC_CHECK_OK(engine.Run());
  std::printf("total virtual time: %.2f s\n", engine.now());
  return 0;
}
