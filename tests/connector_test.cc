#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/jdbc_source.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/avro.h"
#include "connector/default_source.h"
#include "connector/s2v.h"
#include "connector/v2s.h"
#include "hdfs/hdfs.h"
#include "net/network.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::connector {
namespace {

using spark::ColumnPredicate;
using spark::DataFrame;
using spark::SaveMode;
using spark::SourceOptions;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64}, {"score", DataType::kFloat64}});
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 1.5)});
  }
  return rows;
}

// Multiset of ids, for exactly-once comparisons.
std::multiset<int64_t> IdsOf(const std::vector<Row>& rows) {
  std::multiset<int64_t> ids;
  for (const Row& row : rows) ids.insert(row[0].int64_value());
  return ids;
}

// The five-phase invariants every S2V save must leave in its trace, no
// matter where kills landed. Phase events are emitted at the durability
// point (not the client ack), so these hold even when an acknowledgement
// was lost mid-flight:
//  - success: exactly one durable COPY commit per partition (phase 1),
//    exactly one leader election winner (phase 3, the one-shot
//    `WHERE task = -1` update), every winner check resolved to the same
//    elected partition (phase 4 may repeat after a lost ack), and exactly
//    one durable promotion (phase 5) sequenced after all data commits;
//  - failure: zero promotions — a rejected save must never publish.
void ExpectS2VTraceConformance(const obs::Tracer& tracer, int partitions,
                               bool save_ok) {
  obs::TraceMatcher s2v = obs::TraceMatcher(tracer).Category("s2v");
  obs::TraceMatcher commits = s2v.Name("phase1.commit");
  obs::TraceMatcher promotes = s2v.Name("phase5.promote");
  if (!save_ok) {
    EXPECT_TRUE(promotes.empty())
        << "failed save published data:\n" << promotes.Describe();
    return;
  }
  for (int p = 0; p < partitions; ++p) {
    EXPECT_EQ(commits.WithAttr("partition", p).count(), 1u)
        << "partition " << p << " committed != once:\n"
        << commits.Describe();
  }
  EXPECT_EQ(commits.count(), static_cast<size_t>(partitions));
  obs::TraceMatcher elected = s2v.Name("phase3.elected");
  EXPECT_EQ(elected.count(), 1u) << elected.Describe();
  obs::TraceMatcher winners = s2v.Name("phase4.winner");
  ASSERT_GE(winners.count(), 1u);
  EXPECT_EQ(winners.DistinctIntAttr("partition"),
            std::vector<int64_t>{elected.only().IntAttr("partition")})
      << winners.Describe();
  EXPECT_EQ(promotes.count(), 1u) << promotes.Describe();
  EXPECT_TRUE(commits.StrictlyBefore(promotes))
      << "a COPY commit was sequenced after the promotion";
}

class ConnectorTest : public ::testing::Test {
 protected:
  ConnectorTest() : network_(&engine_) {
    vertica::Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<vertica::Database>(&engine_, &network_, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 8;
    sopts.cost.spark_slots_per_worker = 8;
    cluster_ = std::make_unique<spark::SparkCluster>(&engine_, &network_,
                                                     sopts);
    session_ = std::make_unique<spark::SparkSession>(cluster_.get());
    RegisterVerticaSource(session_.get(), db_.get());
    baselines::RegisterJdbcSource(session_.get(), db_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  // Saves `rows` through S2V and returns the save status.
  Status SaveRows(sim::Process& driver, const std::vector<Row>& rows,
                  const std::string& table, int partitions,
                  SaveMode mode = SaveMode::kOverwrite,
                  double tolerance = 0.0) {
    auto df = session_->CreateDataFrame(TestSchema(), rows, partitions);
    if (!df.ok()) return df.status();
    return df->Write()
        .Format(kVerticaSourceName)
        .Option("table", table)
        .Option("host", db_->node_address(0))
        .Option("numpartitions", partitions)
        .Option("failedrowstolerance", StrCat(tolerance))
        .Mode(mode)
        .Save(driver);
  }

  // Counts rows of `table` via SQL.
  int64_t TableCount(sim::Process& driver, const std::string& table) {
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    EXPECT_TRUE(session.ok());
    auto result = (*session)->Execute(
        driver, StrCat("SELECT COUNT(*) FROM ", table));
    EXPECT_TRUE(result.ok()) << result.status();
    int64_t count = result.ok() ? result->rows[0][0].int64_value() : -1;
    EXPECT_TRUE((*session)->Close(driver).ok());
    return count;
  }

  std::vector<Row> TableRows(sim::Process& driver,
                             const std::string& table) {
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    EXPECT_TRUE(session.ok());
    auto result =
        (*session)->Execute(driver, StrCat("SELECT * FROM ", table));
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE((*session)->Close(driver).ok());
    return result.ok() ? std::move(result->rows) : std::vector<Row>{};
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<vertica::Database> db_;
  std::unique_ptr<spark::SparkCluster> cluster_;
  std::unique_ptr<spark::SparkSession> session_;
};

TEST(AvroTest, RoundTripsBatches) {
  Schema schema({{"id", DataType::kInt64},
                 {"v", DataType::kFloat64},
                 {"s", DataType::kVarchar},
                 {"b", DataType::kBool}});
  std::vector<Row> rows = {
      {Value::Int64(1), Value::Float64(2.5), Value::Varchar("x"),
       Value::Bool(true)},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null()},
      {Value::Int64(-7), Value::Int64(3), Value::Varchar(""),
       Value::Bool(false)},  // int widened into float column
  };
  std::string encoded = AvroEncodeBatch(schema, rows);
  auto decoded = AvroDecodeBatch(schema, encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_TRUE((*decoded)[0][0].Equals(Value::Int64(1)));
  EXPECT_TRUE((*decoded)[1][2].is_null());
  EXPECT_TRUE((*decoded)[2][1].Equals(Value::Float64(3.0)));
  // Truncated data fails cleanly.
  EXPECT_FALSE(
      AvroDecodeBatch(schema, encoded.substr(0, encoded.size() - 3)).ok());
}

TEST_F(ConnectorTest, S2VOverwriteRoundTrip) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(500);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 16).ok());
    EXPECT_EQ(TableCount(driver, "t"), 500);
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
    // Temp tables cleaned up; the permanent job record remains.
    EXPECT_FALSE(db_->catalog().HasTable("t_stage_job1"));
    EXPECT_FALSE(db_->catalog().HasTable("s2v_task_status_job1"));
    EXPECT_TRUE(db_->catalog().HasTable(S2VRelation::kFinalStatusTable));
    EXPECT_EQ(TableCount(driver, S2VRelation::kFinalStatusTable), 1);
  });
}

TEST_F(ConnectorTest, S2VAppendAddsToExisting) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(100), "t", 8).ok());
    ASSERT_TRUE(
        SaveRows(driver, MakeRows(50), "t", 8, SaveMode::kAppend).ok());
    EXPECT_EQ(TableCount(driver, "t"), 150);
  });
}

TEST_F(ConnectorTest, S2VErrorIfExists) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(10), "t", 2).ok());
    Status again = SaveRows(driver, MakeRows(10), "t", 2,
                            SaveMode::kErrorIfExists);
    EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  });
}

TEST_F(ConnectorTest, S2VOverwriteReplacesAtomically) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(100), "t", 8).ok());
    ASSERT_TRUE(SaveRows(driver, MakeRows(30), "t", 8).ok());
    EXPECT_EQ(TableCount(driver, "t"), 30);
  });
}

TEST_F(ConnectorTest, S2VRejectedRowsWithinTolerance) {
  RunDriver([&](sim::Process& driver) {
    // A Map stage corrupts every 20th record (wrong arity), like bad raw
    // input in an ETL flow; the COPY path rejects those rows.
    auto df = session_->CreateDataFrame(TestSchema(), MakeRows(100), 4);
    ASSERT_TRUE(df.ok());
    DataFrame mapped = df->Map(
        [](const Row& row) -> Result<Row> {
          if (row[0].int64_value() % 20 == 7) return Row{row[0]};
          return row;
        },
        TestSchema());
    auto save = [&](const std::string& table, double tolerance) {
      return mapped.Write()
          .Format(kVerticaSourceName)
          .Option("table", table)
          .Option("numpartitions", 4)
          .Option("failedrowstolerance", StrCat(tolerance))
          .Mode(SaveMode::kOverwrite)
          .Save(driver);
    };
    // 5% rejected; tolerance 10% => success with 95 rows.
    ASSERT_TRUE(save("t", 0.10).ok());
    EXPECT_EQ(TableCount(driver, "t"), 95);
    // Tolerance 1% => the save fails and the target is untouched.
    Status failed = save("t2", 0.01);
    EXPECT_FALSE(failed.ok());
    EXPECT_FALSE(db_->catalog().HasTable("t2"));
  });
}

TEST_F(ConnectorTest, S2VExactlyOnceUnderScriptedKills) {
  // Kill several attempts at points chosen to land before, during and
  // after their COPY and commit. Retries must still produce exactly one
  // copy of the data.
  spark::ScriptedFailureInjector injector;
  injector.KillAttempt(0, 0, 0.05)   // before much happens
      .KillAttempt(1, 0, 1.0)        // mid-copy
      .KillAttempt(2, 0, 3.0)        // around commit time
      .KillAttempt(2, 1, 0.5)        // second attempt too
      .KillAttempt(5, 0, 2.0);
  cluster_->set_failure_injector(&injector);
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(400);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
  });
  ExpectS2VTraceConformance(tracer, /*partitions=*/8, /*save_ok=*/true);
  // The scripted kills are visible in the trace: every planned kill that
  // fired left a spark task.kill_planned record and a retried attempt.
  obs::TraceMatcher trace(tracer);
  EXPECT_GE(trace.Category("spark").Name("task.kill_planned").count(), 1u);
  EXPECT_GE(trace.Category("s2v").Name("phase1.duplicate").count() +
                tracer.metrics().counter("spark.attempts_failed"),
            1u);
}

// The central property: under randomized kills (any attempt, any time),
// a successful S2V save contains each source row exactly once, and a
// failed save leaves the target absent/untouched. Sweep seeds.
class S2VExactlyOncePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(S2VExactlyOncePropertyTest, KillsNeverDuplicateOrDrop) {
  sim::Engine engine;
  net::Network network(&engine);
  vertica::Database::Options vopts;
  vopts.num_nodes = 4;
  vertica::Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.cost.spark_slots_per_worker = 4;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession session(&cluster);
  RegisterVerticaSource(&session, &db);
  spark::RandomFailureInjector injector(GetParam(),
                                        /*kill_probability=*/0.5,
                                        /*typical_duration=*/4.0,
                                        /*max_kills=*/6);
  cluster.set_failure_injector(&injector);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  Status save_status;
  engine.Spawn("driver", [&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back({Value::Int64(i), Value::Float64(i * 0.25)});
    }
    auto df = session.CreateDataFrame(TestSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    Status saved = df->Write()
                       .Format(kVerticaSourceName)
                       .Option("table", "t")
                       .Option("numpartitions", 8)
                       .Mode(SaveMode::kOverwrite)
                       .Save(driver);
    save_status = saved;
    auto vsession = db.Connect(driver, 0, &cluster.driver_host());
    ASSERT_TRUE(vsession.ok());
    if (saved.ok()) {
      auto result = (*vsession)->Execute(driver, "SELECT * FROM t");
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(IdsOf(result->rows), IdsOf(rows)) << "data corrupted";
    } else {
      // Failed saves must leave no target table at all (overwrite mode
      // on a fresh name).
      EXPECT_FALSE(db.catalog().HasTable("t"));
    }
    ASSERT_TRUE((*vsession)->Close(driver).ok());
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;
  // Whatever this seed's kills did, the trace must show the five-phase
  // protocol was honored (and a failed save must promote nothing).
  ExpectS2VTraceConformance(tracer, /*partitions=*/8, save_status.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, S2VExactlyOncePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808, 909, 1010));

TEST_F(ConnectorTest, V2SLoadRoundTrip) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    EXPECT_EQ(df->NumPartitions(), 8);
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(IdsOf(*loaded), IdsOf(rows));
  });
}

TEST_F(ConnectorTest, V2SPartitionQueriesAreLocalAndDisjoint) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(200), "t", 8).ok());
    SourceOptions options;
    options.Set("table", "t").Set("numpartitions", 8);
    auto relation =
        V2SRelation::Create(driver, db_.get(), cluster_.get(), options);
    ASSERT_TRUE(relation.ok()) << relation.status();
    // 8 partitions over 4 nodes: two partitions per node, each wholly
    // local.
    std::map<int, int> per_node;
    for (int p = 0; p < 8; ++p) {
      ++per_node[(*relation)->PartitionTargetNode(p)];
    }
    EXPECT_EQ(per_node.size(), 4u);
    for (const auto& [node, count] : per_node) EXPECT_EQ(count, 2);
    // The queries carry hash ranges and the snapshot epoch.
    spark::PushDown push;
    std::string q0 = (*relation)->PartitionQuery(0, push);
    EXPECT_NE(q0.find("HASH(id, score) >= "), std::string::npos);
    EXPECT_NE(q0.find("AT EPOCH"), std::string::npos);

    // Zero internal shuffle during a full partitioned load.
    double before = 0;
    for (int n = 0; n < 4; ++n) {
      before += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(df->Collect(driver).ok());
    double after = 0;
    for (int n = 0; n < 4; ++n) {
      after += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    EXPECT_DOUBLE_EQ(after, before) << "V2S caused internal shuffling";
  });
}

TEST_F(ConnectorTest, V2SPushdownReducesTransfer) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(1000), "t", 8).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok());

    double before_filter = network_.LinkBytesCarried(
        cluster_->driver_host().ext_ingress);
    ColumnPredicate pred{"id", ColumnPredicate::Op::kLt, Value::Int64(50)};
    auto few = df->Filter(pred).Collect(driver);
    ASSERT_TRUE(few.ok());
    EXPECT_EQ(few->size(), 50u);
    double filtered_bytes = network_.LinkBytesCarried(
                                cluster_->driver_host().ext_ingress) -
                            before_filter;

    double before_full = network_.LinkBytesCarried(
        cluster_->driver_host().ext_ingress);
    ASSERT_TRUE(df->Collect(driver).ok());
    double full_bytes = network_.LinkBytesCarried(
                            cluster_->driver_host().ext_ingress) -
                        before_full;
    // 5% selectivity ⇒ far less driver ingress for the filtered load.
    EXPECT_LT(filtered_bytes, full_bytes * 0.2);

    // COUNT pushdown: no data rows move at all.
    double before_count = network_.LinkBytesCarried(
        cluster_->driver_host().ext_ingress);
    EXPECT_EQ(df->Count(driver).value(), 1000);
    double count_bytes = network_.LinkBytesCarried(
                             cluster_->driver_host().ext_ingress) -
                         before_count;
    EXPECT_LT(count_bytes, full_bytes * 0.01);
  });
}

// Same pushdown story as above, but asserted through the metrics layer:
// rows scanned inside Vertica, rows handed back to Spark, and result
// bytes on the wire, instead of inferring from link counters.
TEST_F(ConnectorTest, V2SPushdownReducesWorkInMetrics) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(1000), "t", 8).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok());

    struct Work {
      double rows_scanned, rows_returned, wire_bytes;
    };
    auto measure = [&](auto&& action) {
      const obs::Metrics& m = tracer.metrics();
      Work before{m.counter("vertica.rows_scanned"),
                  m.counter("v2s.rows_returned"),
                  m.counter("vertica.result_wire_bytes")};
      action();
      return Work{m.counter("vertica.rows_scanned") - before.rows_scanned,
                  m.counter("v2s.rows_returned") - before.rows_returned,
                  m.counter("vertica.result_wire_bytes") -
                      before.wire_bytes};
    };

    Work full = measure(
        [&] { ASSERT_TRUE(df->Collect(driver).ok()); });
    // A full load returns every row; each of the 8 partition queries
    // scans its node's whole segment (2 partitions per node).
    EXPECT_DOUBLE_EQ(full.rows_returned, 1000);
    EXPECT_DOUBLE_EQ(full.rows_scanned, 2000);
    EXPECT_GT(full.wire_bytes, 0);

    // Filter pushdown: the predicate runs inside the scan, so the same
    // rows are scanned but only matches are returned and shipped.
    ColumnPredicate pred{"id", ColumnPredicate::Op::kLt, Value::Int64(50)};
    Work filtered = measure(
        [&] { ASSERT_TRUE(df->Filter(pred).Collect(driver).ok()); });
    EXPECT_DOUBLE_EQ(filtered.rows_scanned, full.rows_scanned);
    EXPECT_DOUBLE_EQ(filtered.rows_returned, 50);
    EXPECT_LT(filtered.wire_bytes, full.wire_bytes * 0.2);

    // Projection pushdown: the cost model keeps every referenced column
    // on the wire and the segmentation hash references both columns of
    // this table, so the pruning shows in the pushed query itself — each
    // partition scan advertises a one-column required set instead of `*`.
    auto projected = df->Select({"id"});
    ASSERT_TRUE(projected.ok());
    Work narrow = measure(
        [&] { ASSERT_TRUE(projected->Collect(driver).ok()); });
    EXPECT_DOUBLE_EQ(narrow.rows_returned, 1000);
    EXPECT_LE(narrow.wire_bytes, full.wire_bytes);
    obs::TraceMatcher scans = obs::TraceMatcher(tracer)
                                  .Category("v2s")
                                  .Name("scan")
                                  .Phase(obs::Event::Phase::kBegin);
    EXPECT_EQ(scans.WithAttr("columns", 1).count(), 8u)
        << scans.Describe();
    EXPECT_GE(scans.WithAttr("filters", 1).count(), 8u)
        << "filter pushdown never reached the partition queries";

    // Count pushdown: one aggregate row per partition, near-zero wire.
    Work counted = measure(
        [&] { EXPECT_EQ(df->Count(driver).value(), 1000); });
    EXPECT_DOUBLE_EQ(counted.rows_returned, 8);
    EXPECT_LT(counted.wire_bytes, full.wire_bytes * 0.01);
    // Rebuilt: matchers are views into the event vector, which may have
    // reallocated while the count ran.
    EXPECT_EQ(obs::TraceMatcher(tracer)
                  .Category("v2s")
                  .Name("scan")
                  .Phase(obs::Event::Phase::kBegin)
                  .WithAttr("count_only", true)
                  .count(),
              8u);
  });
}

TEST_F(ConnectorTest, V2SSnapshotIsImmuneToConcurrentWrites) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(200);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok());
    // Mutate the table after load() resolved its epoch but before the
    // actual read jobs run.
    auto vsession = db_->Connect(driver, 1, &cluster_->driver_host());
    ASSERT_TRUE(vsession.ok());
    ASSERT_TRUE((*vsession)
                    ->Execute(driver,
                              "INSERT INTO t VALUES (9999, 1.0)")
                    .ok());
    ASSERT_TRUE(
        (*vsession)->Execute(driver, "DELETE FROM t WHERE id < 100").ok());
    ASSERT_TRUE((*vsession)->Close(driver).ok());
    // The load still sees the epoch-consistent snapshot.
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(IdsOf(*loaded), IdsOf(rows));
  });
}

TEST_F(ConnectorTest, V2SLoadsViewsViaSyntheticRanges) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(100), "t", 4).ok());
    auto vsession = db_->Connect(driver, 0, &cluster_->driver_host());
    ASSERT_TRUE(vsession.ok());
    ASSERT_TRUE((*vsession)
                    ->Execute(driver,
                              "CREATE VIEW big AS SELECT id FROM t WHERE "
                              "id >= 50")
                    .ok());
    ASSERT_TRUE((*vsession)->Close(driver).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "big")
                  .Option("numpartitions", 6)
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->size(), 50u);
    std::set<int64_t> ids;
    for (const Row& row : *loaded) ids.insert(row[0].int64_value());
    EXPECT_EQ(ids.size(), 50u);  // disjoint synthetic ranges
  });
}

TEST_F(ConnectorTest, V2STasksSurviveKillsViaRetry) {
  spark::ScriptedFailureInjector injector;
  injector.KillAttempt(1, 0, 0.3).KillAttempt(4, 0, 0.2);
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok());
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(IdsOf(*loaded), IdsOf(rows));
  });
}

TEST_F(ConnectorTest, JdbcLoadMatchesButShuffles) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(200);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());
    double before = 0;
    for (int n = 0; n < 4; ++n) {
      before += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    auto df = session_->Read()
                  .Format(baselines::kJdbcSourceName)
                  .Option("dbtable", "t")
                  .Option("partitioncolumn", "id")
                  .Option("lowerbound", 0)
                  .Option("upperbound", 200)
                  .Option("numpartitions", 8)
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(IdsOf(*loaded), IdsOf(rows));
    double after = 0;
    for (int n = 0; n < 4; ++n) {
      after += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    // Unlike V2S, the JDBC source's integer-range queries shuffle data
    // between Vertica nodes.
    EXPECT_GT(after, before);
  });
}

TEST_F(ConnectorTest, JdbcWithoutPartitionColumnIsSinglePartition) {
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(SaveRows(driver, MakeRows(50), "t", 4).ok());
    auto df = session_->Read()
                  .Format(baselines::kJdbcSourceName)
                  .Option("dbtable", "t")
                  .Load(driver);
    ASSERT_TRUE(df.ok());
    EXPECT_EQ(df->NumPartitions(), 1);
    EXPECT_EQ(df->Count(driver).value(), 50);
  });
}

TEST_F(ConnectorTest, JdbcSaveWritesRows) {
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TestSchema(), MakeRows(120), 4);
    ASSERT_TRUE(df.ok());
    Status saved = df->Write()
                       .Format(baselines::kJdbcSourceName)
                       .Option("dbtable", "jt")
                       .Mode(SaveMode::kOverwrite)
                       .Save(driver);
    ASSERT_TRUE(saved.ok()) << saved;
    EXPECT_EQ(TableCount(driver, "jt"), 120);
  });
}

TEST_F(ConnectorTest, HdfsRoundTripAndScan) {
  hdfs::HdfsCluster hdfs_cluster(
      &engine_, &network_,
      hdfs::HdfsCluster::Options{4, cluster_->cost()});
  hdfs::RegisterHdfsSource(session_.get(), &hdfs_cluster);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(250);
    ASSERT_TRUE(
        hdfs_cluster.PutFileForTest("/data/d1.csv", TestSchema(), rows)
            .ok());
    auto df = session_->Read()
                  .Format("parquet")
                  .Option("path", "/data/d1.csv")
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    auto loaded = df->Collect(driver);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(IdsOf(*loaded), IdsOf(rows));
    // Write back to HDFS.
    Status written = df->Write()
                         .Format("parquet")
                         .Option("path", "/out/copy")
                         .Mode(SaveMode::kOverwrite)
                         .Save(driver);
    ASSERT_TRUE(written.ok()) << written;
    // And on into Vertica: the full HDFS -> Spark -> Vertica pipeline.
    Status saved = df->Write()
                       .Format(kVerticaSourceName)
                       .Option("table", "from_hdfs")
                       .Option("numpartitions", 8)
                       .Mode(SaveMode::kOverwrite)
                       .Save(driver);
    ASSERT_TRUE(saved.ok()) << saved;
    EXPECT_EQ(TableCount(driver, "from_hdfs"), 250);
  });
}

}  // namespace
}  // namespace fabric::connector
