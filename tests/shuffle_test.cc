// Shuffle engine tests: hash repartitioning, distributed GroupBy/Agg and
// equi-joins through the shuffle service, exactly-once results under
// executor loss and flaky fetches (stage re-execution from lineage), and
// the V2S aggregate/LIMIT pushdown loop — the pushed and shuffled paths
// must return byte-identical rows.

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/hll.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"
#include "sim/engine.h"
#include "spark/cluster.h"
#include "spark/dataframe.h"
#include "spark/shuffle/shuffle.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::spark {
namespace {

using connector::kVerticaSourceName;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

// Canonical rendering of a row set: every column of every row as text,
// order-free. "Byte-identical" assertions compare these.
std::multiset<std::string> ContentsOf(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.insert(std::move(line));
  }
  return out;
}

// Seeds for the randomized suites; SHUFFLE_SEED (the CI matrix knob)
// adds one more.
std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("SHUFFLE_SEED");
}

Schema KvSchema() {
  return Schema({{"k", DataType::kVarchar}, {"v", DataType::kFloat64}});
}

// ------------------------------------------------ driver-local pipelines

class ShuffleTest : public ::testing::Test {
 protected:
  ShuffleTest() : network_(&engine_) {
    SparkCluster::Options options;
    options.num_workers = 4;
    options.cost.spark_slots_per_worker = 4;
    cluster_ = std::make_unique<SparkCluster>(&engine_, &network_, options);
    session_ = std::make_unique<SparkSession>(cluster_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<SparkCluster> cluster_;
  std::unique_ptr<SparkSession> session_;
};

TEST_F(ShuffleTest, RepartitionWidensThroughShuffle) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Varchar(StrCat("id", i)),
                      Value::Float64(i * 0.25)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 2);
    ASSERT_TRUE(df.ok());
    // An identity Filter keeps the plan from being driver-local data,
    // which Repartition would reslice in place without any shuffle.
    auto piped =
        df->Filter([](const Row&) -> Result<bool> { return true; });
    auto wide = piped.Repartition(8);
    ASSERT_TRUE(wide.ok()) << wide.status();
    EXPECT_EQ(wide->NumPartitions(), 8);
    auto collected = wide->Collect(driver);
    ASSERT_TRUE(collected.ok()) << collected.status();
    EXPECT_EQ(ContentsOf(*collected), ContentsOf(rows));
  });
  EXPECT_GT(tracer.metrics().counter("spark.shuffle.bytes"), 0.0);
  // One map output per upstream partition.
  EXPECT_EQ(tracer.metrics().counter("spark.shuffle.map_outputs"), 2.0);
}

TEST_F(ShuffleTest, GroupByAggMatchesReference) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = {
        {Value::Varchar("a"), Value::Float64(1.0)},
        {Value::Varchar("a"), Value::Null()},
        {Value::Varchar("b"), Value::Float64(2.5)},
        {Value::Null(), Value::Float64(3.0)},
        {Value::Varchar("b"), Value::Null()},
        {Value::Varchar("a"), Value::Float64(4.0)},
    };
    auto df = session_->CreateDataFrame(KvSchema(), rows, 3);
    ASSERT_TRUE(df.ok());
    auto grouped = df->GroupBy({"k"});
    ASSERT_TRUE(grouped.ok()) << grouped.status();
    auto agg = grouped->Agg({AggCount(), AggCount("v"), AggSum("v"),
                             AggAvg("v"), AggMin("v"), AggMax("v")});
    ASSERT_TRUE(agg.ok()) << agg.status();
    EXPECT_EQ(agg->schema().column(0).name, "k");
    EXPECT_EQ(agg->schema().column(1).name, "count(*)");
    EXPECT_EQ(agg->schema().column(2).name, "count(v)");
    EXPECT_EQ(agg->schema().column(3).name, "sum(v)");
    EXPECT_EQ(agg->schema().column(1).type, DataType::kInt64);
    EXPECT_EQ(agg->schema().column(3).type, DataType::kFloat64);

    auto result = agg->Collect(driver);
    ASSERT_TRUE(result.ok()) << result.status();
    // NULL keys form their own group; NULL inputs are skipped by every
    // aggregate except COUNT(*).
    std::multiset<std::string> expected = {
        "<null>|1|1|3|3|3|3|",
        "a|3|2|5|2.5|1|4|",
        "b|2|1|2.5|2.5|2.5|2.5|",
    };
    EXPECT_EQ(ContentsOf(*result), expected);
  });
}

TEST_F(ShuffleTest, GlobalAggregateEmitsExactlyOneRow) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 40; ++i) {
      rows.push_back({Value::Varchar("x"), Value::Float64(i)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 4);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok()) << agg.status();
    auto result = agg->Collect(driver);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0][0].int64_value(), 40);
    EXPECT_DOUBLE_EQ((*result)[0][1].float64_value(), 780.0);

    // The SQL convention survives an empty input: COUNT 0, SUM NULL.
    auto empty = session_->CreateDataFrame(KvSchema(), {}, 2);
    ASSERT_TRUE(empty.ok());
    auto empty_agg = empty->GroupBy({})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(empty_agg.ok());
    auto empty_result = empty_agg->Collect(driver);
    ASSERT_TRUE(empty_result.ok()) << empty_result.status();
    ASSERT_EQ(empty_result->size(), 1u);
    EXPECT_EQ((*empty_result)[0][0].int64_value(), 0);
    EXPECT_TRUE((*empty_result)[0][1].is_null());
  });
}

TEST_F(ShuffleTest, JoinMatchesNestedLoopReference) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> left = {
        {Value::Varchar("a"), Value::Float64(1)},
        {Value::Varchar("a"), Value::Float64(2)},
        {Value::Varchar("b"), Value::Float64(3)},
        {Value::Null(), Value::Float64(4)},
        {Value::Varchar("d"), Value::Float64(5)},
    };
    std::vector<Row> right = {
        {Value::Varchar("a"), Value::Int64(10)},
        {Value::Varchar("b"), Value::Int64(20)},
        {Value::Varchar("b"), Value::Int64(21)},
        {Value::Null(), Value::Int64(30)},
        {Value::Varchar("e"), Value::Int64(40)},
    };
    Schema right_schema({{"k", DataType::kVarchar},
                         {"w", DataType::kInt64}});
    auto ldf = session_->CreateDataFrame(KvSchema(), left, 3);
    auto rdf = session_->CreateDataFrame(right_schema, right, 2);
    ASSERT_TRUE(ldf.ok() && rdf.ok());
    auto joined = ldf->Join(*rdf, {"k"}, {"k"});
    ASSERT_TRUE(joined.ok()) << joined.status();
    // Right-side key collides with the left's and is suffixed.
    EXPECT_EQ(joined->schema().column(2).name, "k_r");

    auto result = joined->Collect(driver);
    ASSERT_TRUE(result.ok()) << result.status();
    // Inner equi-join semantics: NULL keys never match (SQL equality).
    std::vector<Row> expected;
    for (const Row& l : left) {
      if (l[0].is_null()) continue;
      for (const Row& r : right) {
        if (r[0].is_null()) continue;
        if (l[0].varchar_value() != r[0].varchar_value()) continue;
        Row out = l;
        out.insert(out.end(), r.begin(), r.end());
        expected.push_back(std::move(out));
      }
    }
    EXPECT_EQ(expected.size(), 4u);
    EXPECT_EQ(ContentsOf(*result), ContentsOf(expected));
  });
}

TEST_F(ShuffleTest, LimitCapsCollectAndCount) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Varchar(StrCat("r", i)), Value::Float64(i)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 4);
    ASSERT_TRUE(df.ok());
    auto limited = df->Limit(7);
    ASSERT_TRUE(limited.ok());
    EXPECT_EQ(limited->Collect(driver)->size(), 7u);
    EXPECT_EQ(limited->Count(driver).value(), 7);
    EXPECT_EQ(df->Limit(0)->Count(driver).value(), 0);
    EXPECT_EQ(df->Limit(1000)->Count(driver).value(), 100);
    EXPECT_FALSE(df->Limit(-1).ok());
  });
}

TEST_F(ShuffleTest, LostMapOutputsAreRecomputedBeforeTheNextAction) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 120; ++i) {
      rows.push_back(
          {Value::Varchar(StrCat("g", i % 9)), Value::Float64(i)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 6);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok());
    auto baseline = agg->Collect(driver);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    // Losing executors between actions drops their committed blocks; the
    // next action detects the missing maps up front and re-runs exactly
    // those from lineage — no fetch ever fails.
    cluster_->shuffle_manager()->KillExecutor(0);
    cluster_->shuffle_manager()->KillExecutor(1);
    EXPECT_GT(tracer.metrics().counter("spark.shuffle.map_outputs_lost"),
              0.0);
    auto again = agg->Collect(driver);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(ContentsOf(*again), ContentsOf(*baseline));
  });
  EXPECT_EQ(tracer.metrics().counter("spark.shuffle.fetch_failures"), 0.0);
  EXPECT_EQ(tracer.metrics().counter("spark.shuffle.stage_resubmits"), 0.0);
}

TEST_F(ShuffleTest, MidReduceExecutorLossResubmitsTheMapStage) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 4000; ++i) {
      rows.push_back(
          {Value::Varchar(StrCat("g", i % 31)), Value::Float64(i)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok());
    auto baseline = agg->Collect(driver);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    // Rebuild the lineage so nothing is cached, then kill executors the
    // moment reduce-side fetches start moving bytes: blocks vanish under
    // the running reduce stage, fetch retries exhaust, and the executor
    // answers with a map-stage resubmission.
    auto fresh = session_->CreateDataFrame(KvSchema(), rows, 8);
    ASSERT_TRUE(fresh.ok());
    auto fresh_agg = fresh->GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(fresh_agg.ok());
    // One clean run's worth of fetch traffic is on the counter already;
    // trigger a third of the way into the second run's fetches. The poll
    // quantum must undercut a single fetch transfer or the whole reduce
    // stage slips through between wakes.
    double baseline_bytes =
        tracer.metrics().counter("spark.shuffle.bytes");
    double threshold = baseline_bytes * (1.0 + 1.0 / 3.0);
    engine_.Spawn("executioner", [&, threshold](sim::Process& killer) {
      while (tracer.metrics().counter("spark.shuffle.bytes") < threshold) {
        if (!killer.Sleep(1e-7).ok()) return;
      }
      cluster_->shuffle_manager()->KillExecutor(0);
      cluster_->shuffle_manager()->KillExecutor(2);
    });
    auto disturbed = fresh_agg->Collect(driver);
    ASSERT_TRUE(disturbed.ok()) << disturbed.status();
    EXPECT_EQ(ContentsOf(*disturbed), ContentsOf(*baseline));
  });
  EXPECT_GT(tracer.metrics().counter("spark.shuffle.fetch_failures"), 0.0);
  EXPECT_GT(tracer.metrics().counter("spark.shuffle.stage_resubmits"), 0.0);
  obs::TraceMatcher resubmits =
      obs::TraceMatcher(tracer).Category("spark").Name("stage.resubmit");
  EXPECT_GT(resubmits.count(), 0u);
}

TEST_F(ShuffleTest, FlakyFetchesRetryAndRecover) {
  // A cluster whose every fetch attempt fails 20% of the time (seeded):
  // the per-fetch retry loop absorbs the transients without losing any
  // blocks or rows.
  sim::Engine engine;
  net::Network network(&engine);
  SparkCluster::Options options;
  options.num_workers = 4;
  options.cost.spark_slots_per_worker = 4;
  options.shuffle_flaky_fetch_rate = 0.2;
  options.shuffle_flaky_fetch_seed = 1234;
  options.shuffle_fetch_retries = 8;
  SparkCluster cluster(&engine, &network, options);
  SparkSession session(&cluster);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value::Varchar(StrCat("g", i % 13)),
                    Value::Float64(i * 0.5)});
  }
  engine.Spawn("driver", [&](sim::Process& driver) {
    auto df = session.CreateDataFrame(KvSchema(), rows, 6);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok());
    auto result = agg->Collect(driver);
    ASSERT_TRUE(result.ok()) << result.status();
    // Reference computed driver-side.
    std::map<std::string, std::pair<int64_t, double>> expected;
    for (const Row& row : rows) {
      auto& slot = expected[row[0].varchar_value()];
      slot.first += 1;
      slot.second += row[1].float64_value();
    }
    EXPECT_EQ(result->size(), expected.size());
    for (const Row& row : *result) {
      const auto& slot = expected.at(row[0].varchar_value());
      EXPECT_EQ(row[1].int64_value(), slot.first);
      EXPECT_DOUBLE_EQ(row[2].float64_value(), slot.second);
    }
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GT(tracer.metrics().counter("spark.shuffle.fetch_retries"), 0.0);
}

TEST_F(ShuffleTest, ShuffleTraceProtocolIsConsistent) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows;
    for (int i = 0; i < 60; ++i) {
      rows.push_back(
          {Value::Varchar(StrCat("g", i % 5)), Value::Float64(i)});
    }
    auto df = session_->CreateDataFrame(KvSchema(), rows, 4);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({"k"})->Agg({AggSum("v")});
    ASSERT_TRUE(agg.ok());
    ASSERT_TRUE(agg->Collect(driver).ok());
  });
  // Exactly one map stage span (begin + end), one commit event per
  // upstream partition, and the commit counter agrees with the trace.
  obs::TraceMatcher stages = obs::TraceMatcher(tracer)
                                 .Category("spark")
                                 .Name("stage")
                                 .Phase(obs::Event::Phase::kBegin);
  EXPECT_EQ(stages.count(), 1u);
  obs::TraceMatcher commits =
      obs::TraceMatcher(tracer).Category("spark").Name("shuffle.commit");
  EXPECT_EQ(commits.count(), 4u);
  EXPECT_EQ(tracer.metrics().counter("spark.shuffle.map_outputs"),
            static_cast<double>(commits.count()));
  EXPECT_GT(tracer.metrics().counter("spark.shuffle.bytes"), 0.0);
}

TEST_F(ShuffleTest, SeededKillScheduleGridIsExactlyOnce) {
  // The exactly-once grid: for every seed, a run disturbed by random
  // task kills plus scheduled executor losses must return byte-identical
  // rows to the undisturbed run.
  auto run_pipeline = [](sim::Engine* engine, SparkCluster* cluster,
                         std::multiset<std::string>* out) {
    SparkSession session(cluster);
    engine->Spawn("driver", [&session, out](sim::Process& driver) {
      std::vector<Row> facts;
      for (int i = 0; i < 600; ++i) {
        facts.push_back({Value::Varchar(StrCat("k", i % 17)),
                         Value::Float64(i * 0.125)});
      }
      std::vector<Row> dims;
      for (int i = 0; i < 17; i += 2) {
        dims.push_back({Value::Varchar(StrCat("k", i)),
                        Value::Int64(i * 100)});
      }
      Schema dim_schema({{"k", DataType::kVarchar},
                         {"tag", DataType::kInt64}});
      auto facts_df = session.CreateDataFrame(KvSchema(), facts, 6);
      auto dims_df = session.CreateDataFrame(dim_schema, dims, 2);
      ASSERT_TRUE(facts_df.ok() && dims_df.ok());
      auto agg =
          facts_df->GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
      ASSERT_TRUE(agg.ok());
      auto joined = agg->Join(*dims_df, {"k"}, {"k"});
      ASSERT_TRUE(joined.ok());
      auto rows = joined->Collect(driver);
      ASSERT_TRUE(rows.ok()) << rows.status();
      *out = ContentsOf(*rows);
    });
    Status status = engine->Run();
    ASSERT_TRUE(status.ok()) << status;
  };

  SparkCluster::Options options;
  options.num_workers = 4;
  options.cost.spark_slots_per_worker = 4;
  // Every injector kill could land on the same task, so the total kill
  // budget (below) stays under this failure cap: any seed exercises
  // recovery, never job abort.
  options.max_task_failures = 10;

  std::multiset<std::string> reference;
  {
    sim::Engine engine;
    net::Network network(&engine);
    SparkCluster cluster(&engine, &network, options);
    run_pipeline(&engine, &cluster, &reference);
  }
  ASSERT_FALSE(reference.empty());

  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    sim::Engine engine;
    net::Network network(&engine);
    SparkCluster cluster(&engine, &network, options);
    // Task-level adversary: randomly kills attempts mid-flight.
    RandomFailureInjector injector(seed, 0.2, 0.01, /*max_kills=*/6);
    cluster.set_failure_injector(&injector);
    // Executor-level adversary: drops whole block stores at seeded times
    // spread across the job's runtime.
    Rng rng(seed * 7919 + 1);
    for (int kill = 0; kill < 3; ++kill) {
      double when = 0.002 + rng.NextDouble() * 0.2;
      int worker =
          static_cast<int>(rng.NextInt64(0, options.num_workers - 1));
      engine.ScheduleAt(when, [&cluster, worker] {
        cluster.shuffle_manager()->KillExecutor(worker);
      });
    }
    std::multiset<std::string> disturbed;
    run_pipeline(&engine, &cluster, &disturbed);
    EXPECT_EQ(disturbed, reference)
        << "shuffle results diverged under seed " << seed;
  }
}

// ------------------------------------------------- V2S pushdown fixtures

class ShufflePushdownTest : public ::testing::Test {
 protected:
  ShufflePushdownTest() : network_(&engine_) {
    vertica::Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<vertica::Database>(&engine_, &network_, vopts);
    SparkCluster::Options sopts;
    sopts.num_workers = 4;
    sopts.cost.spark_slots_per_worker = 4;
    cluster_ = std::make_unique<SparkCluster>(&engine_, &network_, sopts);
    session_ = std::make_unique<SparkSession>(cluster_.get());
    connector::RegisterVerticaSource(session_.get(), db_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Result<vertica::QueryResult> Exec(sim::Process& driver,
                                    const std::string& sql) {
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    if (!session.ok()) return session.status();
    auto result = (*session)->Execute(driver, sql);
    Status closed = (*session)->Close(driver);
    if (result.ok() && !closed.ok()) return closed;
    return result;
  }

  vertica::QueryResult ExecOk(sim::Process& driver,
                              const std::string& sql) {
    auto result = Exec(driver, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(*result) : vertica::QueryResult{};
  }

  // Creates `table` segmented by `seg_column` and fills it with `rows`
  // of (k INTEGER, v FLOAT, tag INTEGER), NULLs where v < 0. DIRECT
  // inserts go straight to ROS: one container per batch per node.
  void FillTable(sim::Process& driver, const std::string& table,
                 const std::string& seg_column,
                 const std::vector<std::array<double, 3>>& rows,
                 int batch = 40, bool direct = false) {
    ExecOk(driver,
           StrCat("CREATE TABLE ", table,
                  " (k INTEGER, v FLOAT, tag INTEGER) SEGMENTED BY HASH(",
                  seg_column, ") ALL NODES"));
    for (size_t at = 0; at < rows.size(); at += batch) {
      std::string values;
      for (size_t i = at; i < std::min(rows.size(), at + batch); ++i) {
        values += StrCat(i > at ? ", " : "", "(",
                         static_cast<int64_t>(rows[i][0]), ", ");
        values += rows[i][1] < 0 ? "NULL" : StrCat(rows[i][1]);
        values += StrCat(", ", static_cast<int64_t>(rows[i][2]), ")");
      }
      ExecOk(driver, StrCat("INSERT ", direct ? "/*+ DIRECT */ " : "",
                            "INTO ", table, " VALUES ", values));
    }
  }

  Result<DataFrame> LoadV2S(sim::Process& driver, const std::string& table,
                            int partitions, bool aggregate_pushdown) {
    return session_->Read()
        .Format(kVerticaSourceName)
        .Option("table", table)
        .Option("host", db_->node_address(0))
        .Option("numpartitions", partitions)
        .Option("aggregate_pushdown", aggregate_pushdown ? "true" : "false")
        .Load(driver);
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<vertica::Database> db_;
  std::unique_ptr<SparkCluster> cluster_;
  std::unique_ptr<SparkSession> session_;
};

std::vector<std::array<double, 3>> SyntheticRows(int n, int key_domain,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<double, 3>> rows;
  for (int i = 0; i < n; ++i) {
    double k = static_cast<double>(rng.NextInt64(0, key_domain - 1));
    // ~1 in 6 NULL measures (encoded as negative).
    double v = rng.NextBool(1.0 / 6) ? -1.0
                                     : static_cast<double>(
                                           rng.NextInt64(0, 1000)) /
                                           4.0;
    double tag = static_cast<double>(i % 5);
    rows.push_back({k, v, tag});
  }
  return rows;
}

TEST_F(ShufflePushdownTest, AggregatePushdownMatchesShuffledExecution) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    // Fresh fabric per seed: each round owns its engine, database and
    // cluster.
    sim::Engine engine;
    net::Network network(&engine);
    vertica::Database::Options vopts;
    vopts.num_nodes = 4;
    vertica::Database db(&engine, &network, vopts);
    SparkCluster::Options sopts;
    sopts.num_workers = 4;
    sopts.cost.spark_slots_per_worker = 4;
    SparkCluster cluster(&engine, &network, sopts);
    SparkSession session(&cluster);
    connector::RegisterVerticaSource(&session, &db);
    obs::Tracer tracer([&engine] { return engine.now(); });
    obs::ScopedTracer install(&tracer);

    auto exec_ok = [&](sim::Process& driver, const std::string& sql) {
      auto connected = db.Connect(driver, 0, &cluster.driver_host());
      EXPECT_TRUE(connected.ok()) << connected.status();
      auto result = (*connected)->Execute(driver, sql);
      EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
      EXPECT_TRUE((*connected)->Close(driver).ok());
      return result.ok() ? std::move(*result) : vertica::QueryResult{};
    };
    auto load = [&](sim::Process& driver, bool aggregate_pushdown) {
      return session.Read()
          .Format(kVerticaSourceName)
          .Option("table", "t")
          .Option("host", db.node_address(0))
          .Option("numpartitions", 8)
          .Option("aggregate_pushdown",
                  aggregate_pushdown ? "true" : "false")
          .Load(driver);
    };

    engine.Spawn("driver", [&](sim::Process& driver) {
      exec_ok(driver,
              "CREATE TABLE t (k INTEGER, v FLOAT, tag INTEGER) "
              "SEGMENTED BY HASH(k) ALL NODES");
      const auto data = SyntheticRows(240, 9, seed);
      for (size_t at = 0; at < data.size(); at += 40) {
        std::string values;
        for (size_t i = at; i < std::min(data.size(), at + 40); ++i) {
          values += StrCat(i > at ? ", " : "", "(",
                           static_cast<int64_t>(data[i][0]), ", ");
          values += data[i][1] < 0 ? "NULL" : StrCat(data[i][1]);
          values += StrCat(", ", static_cast<int64_t>(data[i][2]), ")");
        }
        exec_ok(driver, StrCat("INSERT INTO t VALUES ", values));
      }

      // Grouping on the segmentation column: every group lives wholly in
      // one ring slice, so Vertica runs the whole GROUP BY.
      auto pushed_df = load(driver, true);
      ASSERT_TRUE(pushed_df.ok()) << pushed_df.status();
      auto pushed = pushed_df->GroupBy({"k"})->Agg(
          {AggCount(), AggCount("v"), AggSum("v"), AggAvg("v"),
           AggMin("v"), AggMax("v")});
      ASSERT_TRUE(pushed.ok()) << pushed.status();
      double before = tracer.metrics().counter("spark.shuffle.bytes");
      auto pushed_rows = pushed->Collect(driver);
      ASSERT_TRUE(pushed_rows.ok()) << pushed_rows.status();
      EXPECT_GT(tracer.metrics().counter("v2s.agg_pushdowns"), 0.0);
      // The shuffle is elided entirely.
      EXPECT_EQ(tracer.metrics().counter("spark.shuffle.bytes"), before);

      // Same plan with pushdown disabled: aggregates via the shuffle.
      auto shuffled_df = load(driver, false);
      ASSERT_TRUE(shuffled_df.ok()) << shuffled_df.status();
      auto shuffled = shuffled_df->GroupBy({"k"})->Agg(
          {AggCount(), AggCount("v"), AggSum("v"), AggAvg("v"),
           AggMin("v"), AggMax("v")});
      ASSERT_TRUE(shuffled.ok()) << shuffled.status();
      auto shuffled_rows = shuffled->Collect(driver);
      ASSERT_TRUE(shuffled_rows.ok()) << shuffled_rows.status();
      EXPECT_GT(tracer.metrics().counter("spark.shuffle.bytes"), before);

      EXPECT_EQ(ContentsOf(*pushed_rows), ContentsOf(*shuffled_rows))
          << "pushed and shuffled aggregation disagree";
      // And both agree with the server's own GROUP BY.
      auto reference = exec_ok(
          driver,
          "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), "
          "MAX(v) FROM t GROUP BY k");
      EXPECT_EQ(ContentsOf(*pushed_rows), ContentsOf(reference.rows));
    });
    Status status = engine.Run();
    ASSERT_TRUE(status.ok()) << status;
  }
}

TEST_F(ShufflePushdownTest, NonCoveringGroupingFallsBackToShuffle) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    FillTable(driver, "t", "k", SyntheticRows(200, 7, 5));
    // Grouping on `tag` does not cover the segmentation column `k`:
    // groups straddle partitions, pushdown would be unsound, and the
    // planner falls back to the Spark-side shuffle.
    auto df = LoadV2S(driver, "t", 8, true);
    ASSERT_TRUE(df.ok()) << df.status();
    auto agg = df->GroupBy({"tag"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok());
    auto rows = agg->Collect(driver);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(tracer.metrics().counter("v2s.agg_pushdowns"), 0.0);
    EXPECT_GT(tracer.metrics().counter("spark.shuffle.bytes"), 0.0);

    auto reference = ExecOk(
        driver, "SELECT tag, COUNT(*), SUM(v) FROM t GROUP BY tag");
    EXPECT_EQ(ContentsOf(*rows), ContentsOf(reference.rows));
  });
}

TEST_F(ShufflePushdownTest, FilterFusesBelowThePushedAggregate) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    FillTable(driver, "t", "k", SyntheticRows(200, 7, 6));
    auto df = LoadV2S(driver, "t", 8, true);
    ASSERT_TRUE(df.ok()) << df.status();
    ColumnPredicate pred;
    pred.column = "tag";
    pred.op = ColumnPredicate::Op::kGe;
    pred.literal = Value::Int64(2);
    auto agg =
        df->Filter(pred).GroupBy({"k"})->Agg({AggCount(), AggSum("v")});
    ASSERT_TRUE(agg.ok());
    auto rows = agg->Collect(driver);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_GT(tracer.metrics().counter("v2s.agg_pushdowns"), 0.0);

    auto reference = ExecOk(
        driver,
        "SELECT k, COUNT(*), SUM(v) FROM t WHERE tag >= 2 GROUP BY k");
    EXPECT_EQ(ContentsOf(*rows), ContentsOf(reference.rows));
  });
}

TEST(ShuffleLimitPushdownTest, LimitPushdownScansFewerRows) {
  // Own fabric with the Tuple Mover off: mergeout would fold the small
  // DIRECT containers into one per node, and a container is the scan's
  // early-exit granularity — one big container hides the savings.
  sim::Engine engine;
  net::Network network(&engine);
  vertica::Database::Options vopts;
  vopts.num_nodes = 4;
  vopts.tuple_mover.enabled = false;
  vertica::Database db(&engine, &network, vopts);
  SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.cost.spark_slots_per_worker = 4;
  SparkCluster cluster(&engine, &network, sopts);
  SparkSession session(&cluster);
  connector::RegisterVerticaSource(&session, &db);

  engine.Spawn("driver", [&](sim::Process& driver) {
    auto exec_ok = [&](const std::string& sql) {
      auto connected = db.Connect(driver, 0, &cluster.driver_host());
      ASSERT_TRUE(connected.ok()) << connected.status();
      auto result = (*connected)->Execute(driver, sql);
      EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
      EXPECT_TRUE((*connected)->Close(driver).ok());
    };
    auto load = [&]() {
      return session.Read()
          .Format(kVerticaSourceName)
          .Option("table", "t")
          .Option("host", db.node_address(0))
          .Option("numpartitions", 4)
          .Load(driver);
    };
    // Many small DIRECT batches => many small ROS containers per node,
    // so a capped scan has containers to skip.
    exec_ok(
        "CREATE TABLE t (k INTEGER, v FLOAT, tag INTEGER) "
        "SEGMENTED BY HASH(k) ALL NODES");
    const auto data = SyntheticRows(400, 11, 7);
    for (size_t at = 0; at < data.size(); at += 20) {
      std::string values;
      for (size_t i = at; i < std::min(data.size(), at + 20); ++i) {
        values += StrCat(i > at ? ", " : "", "(",
                         static_cast<int64_t>(data[i][0]), ", ");
        values += data[i][1] < 0 ? "NULL" : StrCat(data[i][1]);
        values += StrCat(", ", static_cast<int64_t>(data[i][2]), ")");
      }
      exec_ok(StrCat("INSERT /*+ DIRECT */ INTO t VALUES ", values));
    }

    double full_scanned = 0;
    {
      obs::Tracer tracer([&engine] { return engine.now(); });
      obs::ScopedTracer install(&tracer);
      auto df = load();
      ASSERT_TRUE(df.ok()) << df.status();
      auto rows = df->Collect(driver);
      ASSERT_TRUE(rows.ok()) << rows.status();
      EXPECT_EQ(rows->size(), 400u);
      full_scanned = tracer.metrics().counter("vertica.rows_scanned");
      ASSERT_GT(full_scanned, 0.0);
    }
    {
      obs::Tracer tracer([&engine] { return engine.now(); });
      obs::ScopedTracer install(&tracer);
      auto df = load();
      ASSERT_TRUE(df.ok()) << df.status();
      auto limited = df->Limit(5);
      ASSERT_TRUE(limited.ok());
      auto rows = limited->Collect(driver);
      ASSERT_TRUE(rows.ok()) << rows.status();
      EXPECT_EQ(rows->size(), 5u);
      EXPECT_GT(tracer.metrics().counter("v2s.limit_pushdowns"), 0.0);
      // The per-partition cap reaches the storage layer: the capped run
      // visits a fraction of the rows the full scan did. (Measured
      // before Count(), whose count-only probe scans everything.)
      double limited_scanned =
          tracer.metrics().counter("vertica.rows_scanned");
      EXPECT_LT(limited_scanned, full_scanned / 2)
          << "pushed LIMIT did not curtail the scan";
      EXPECT_EQ(limited->Count(driver).value(), 5);
    }
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;
}

// --------------------------------------------- approximate aggregation

// The same GroupBy(k).Agg(APPROXIMATE_COUNT_DISTINCT(v, 12)) returns the
// byte-identical estimate through every execution path: (a) the V2S
// aggregate pushdown, where Vertica's UDx computes the whole call and no
// shuffle runs; (b) the Spark-side sketch shuffle; and (c) the sketch
// shuffle disturbed by random task kills plus a mid-reduce executor loss
// (lineage re-execution). Register-max merging is commutative,
// associative and idempotent, so every re-execution order lands on the
// same registers — and the estimate is a deterministic function of the
// registers, so all three paths must agree to the byte.
TEST_F(ShufflePushdownTest, ApproxCountDistinctIdenticalAcrossPaths) {
  vertica::Database::Options vopts;
  vopts.num_nodes = 4;
  SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.cost.spark_slots_per_worker = 4;
  // The kill leg's whole budget stays under the failure cap: every seed
  // exercises recovery, never job abort.
  sopts.max_task_failures = 10;

  const std::vector<AggregateRequest> aggs = {
      AggCount(), AggApproxCountDistinct("v", 12)};

  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    const auto data = SyntheticRows(240, 9, seed);

    auto fill = [&](sim::Process& driver, vertica::Database& db,
                    SparkCluster& cluster) {
      auto exec = [&](const std::string& sql) {
        auto connected = db.Connect(driver, 0, &cluster.driver_host());
        ASSERT_TRUE(connected.ok()) << connected.status();
        auto result = (*connected)->Execute(driver, sql);
        EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
        EXPECT_TRUE((*connected)->Close(driver).ok());
      };
      exec(
          "CREATE TABLE t (k INTEGER, v FLOAT, tag INTEGER) "
          "SEGMENTED BY HASH(k) ALL NODES");
      for (size_t at = 0; at < data.size(); at += 40) {
        std::string values;
        for (size_t i = at; i < std::min(data.size(), at + 40); ++i) {
          values += StrCat(i > at ? ", " : "", "(",
                           static_cast<int64_t>(data[i][0]), ", ");
          values += data[i][1] < 0 ? "NULL" : StrCat(data[i][1]);
          values += StrCat(", ", static_cast<int64_t>(data[i][2]), ")");
        }
        exec(StrCat("INSERT INTO t VALUES ", values));
      }
    };
    auto load = [&](sim::Process& driver, SparkSession& session,
                    vertica::Database& db, bool aggregate_pushdown) {
      return session.Read()
          .Format(kVerticaSourceName)
          .Option("table", "t")
          .Option("host", db.node_address(0))
          .Option("numpartitions", 8)
          .Option("aggregate_pushdown",
                  aggregate_pushdown ? "true" : "false")
          .Load(driver);
    };

    std::multiset<std::string> pushed, shuffled, server, disturbed;
    {
      // Clean fabric: pushdown leg, shuffle leg, server reference.
      sim::Engine engine;
      net::Network network(&engine);
      vertica::Database db(&engine, &network, vopts);
      SparkCluster cluster(&engine, &network, sopts);
      SparkSession session(&cluster);
      connector::RegisterVerticaSource(&session, &db);
      obs::Tracer tracer([&engine] { return engine.now(); });
      obs::ScopedTracer install(&tracer);
      engine.Spawn("driver", [&](sim::Process& driver) {
        fill(driver, db, cluster);

        // (a) Grouping on the segmentation column: Vertica runs the
        // whole GROUP BY, including the sketch UDx; the shuffle is
        // elided entirely.
        auto pushed_df = load(driver, session, db, true);
        ASSERT_TRUE(pushed_df.ok()) << pushed_df.status();
        auto pushed_agg = pushed_df->GroupBy({"k"})->Agg(aggs);
        ASSERT_TRUE(pushed_agg.ok()) << pushed_agg.status();
        double before = tracer.metrics().counter("spark.shuffle.bytes");
        auto pushed_rows = pushed_agg->Collect(driver);
        ASSERT_TRUE(pushed_rows.ok()) << pushed_rows.status();
        EXPECT_GT(tracer.metrics().counter("v2s.agg_pushdowns"), 0.0);
        EXPECT_EQ(tracer.metrics().counter("spark.shuffle.bytes"), before);
        pushed = ContentsOf(*pushed_rows);

        // (b) Pushdown off: partial sketches cross the shuffle and the
        // reduce side merges registers.
        auto shuffled_df = load(driver, session, db, false);
        ASSERT_TRUE(shuffled_df.ok()) << shuffled_df.status();
        auto shuffled_agg = shuffled_df->GroupBy({"k"})->Agg(aggs);
        ASSERT_TRUE(shuffled_agg.ok()) << shuffled_agg.status();
        auto shuffled_rows = shuffled_agg->Collect(driver);
        ASSERT_TRUE(shuffled_rows.ok()) << shuffled_rows.status();
        EXPECT_GT(tracer.metrics().counter("spark.shuffle.bytes"), before);
        shuffled = ContentsOf(*shuffled_rows);

        // The server's own GROUP BY, same aggregate, same precision.
        auto connected = db.Connect(driver, 0, &cluster.driver_host());
        ASSERT_TRUE(connected.ok()) << connected.status();
        auto reference = (*connected)->Execute(
            driver,
            "SELECT k, COUNT(*), APPROXIMATE_COUNT_DISTINCT(v, 12) "
            "FROM t GROUP BY k");
        ASSERT_TRUE(reference.ok()) << reference.status();
        EXPECT_TRUE((*connected)->Close(driver).ok());
        server = ContentsOf(reference->rows);
      });
      Status status = engine.Run();
      ASSERT_TRUE(status.ok()) << status;
    }
    ASSERT_FALSE(pushed.empty());
    EXPECT_EQ(pushed, shuffled)
        << "pushed and shuffled sketch estimates disagree";
    EXPECT_EQ(pushed, server)
        << "connector and server estimates disagree";

    {
      // (c) Disturbed fabric: task-level adversary plus two executors
      // dropped as soon as reduce fetches start moving bytes.
      sim::Engine engine;
      net::Network network(&engine);
      vertica::Database db(&engine, &network, vopts);
      SparkCluster cluster(&engine, &network, sopts);
      SparkSession session(&cluster);
      connector::RegisterVerticaSource(&session, &db);
      obs::Tracer tracer([&engine] { return engine.now(); });
      obs::ScopedTracer install(&tracer);
      RandomFailureInjector injector(seed, 0.2, 0.01, /*max_kills=*/4);
      cluster.set_failure_injector(&injector);
      engine.Spawn("driver", [&](sim::Process& driver) {
        fill(driver, db, cluster);
        auto df = load(driver, session, db, false);
        ASSERT_TRUE(df.ok()) << df.status();
        auto agg = df->GroupBy({"k"})->Agg(aggs);
        ASSERT_TRUE(agg.ok()) << agg.status();
        engine.Spawn("executioner", [&](sim::Process& killer) {
          // The reduce fetch phase spans milliseconds of virtual time,
          // so a 0.1ms poll wakes well inside it; anything much finer
          // floods the event queue during the long scan phase before.
          while (tracer.metrics().counter("spark.shuffle.bytes") <= 0) {
            if (!killer.Sleep(1e-4).ok()) return;
          }
          cluster.shuffle_manager()->KillExecutor(0);
          cluster.shuffle_manager()->KillExecutor(2);
        });
        auto rows = agg->Collect(driver);
        ASSERT_TRUE(rows.ok()) << rows.status();
        disturbed = ContentsOf(*rows);
      });
      Status status = engine.Run();
      ASSERT_TRUE(status.ok()) << status;
      EXPECT_GT(tracer.metrics().counter("spark.shuffle.fetch_failures"),
                0.0);
    }
    EXPECT_EQ(disturbed, pushed)
        << "estimate diverged under executor loss + task kills";
  }
}

// Regression for the partial-row layout: aggregate partials are not
// fixed-width. A sketch partial is a single VARCHAR field — 128KiB of
// hex registers at precision 16 — while scalar aggregates carry four
// fields each. MergePartials walks per-call widths; the old layout
// assumed four scalar fields per call and read a wide sketch's partial
// row at the wrong offsets. Mixing scalar/sketch/scalar calls and then
// forcing the finished rows through one more shuffle (Repartition) pins
// both the combiner layout and wide-VARCHAR block transport.
TEST_F(ShuffleTest, WideSketchPartialsSurviveRepartitionBoundary) {
  RunDriver([&](sim::Process& driver) {
    const int kGroups = 5;
    const int kDistinct = 311;
    std::vector<hll::Sketch> refs;
    for (int g = 0; g < kGroups; ++g) {
      auto sketch = hll::Sketch::Create(16);
      ASSERT_TRUE(sketch.ok()) << sketch.status();
      refs.push_back(std::move(*sketch));
    }
    std::vector<Row> rows;
    for (int i = 0; i < 2000; ++i) {
      const int g = i % kGroups;
      Value v = Value::Float64((i % kDistinct) * 0.25);
      refs[g].AddHash(v.DistinctHash());
      rows.push_back({Value::Varchar(StrCat("g", g)), std::move(v)});
    }

    auto df = session_->CreateDataFrame(KvSchema(), rows, 6);
    ASSERT_TRUE(df.ok());
    auto agg = df->GroupBy({"k"})->Agg(
        {AggCount(), AggHllSketch("v", 16), AggSum("v")});
    ASSERT_TRUE(agg.ok()) << agg.status();
    auto repartitioned = agg->Repartition(3);
    ASSERT_TRUE(repartitioned.ok()) << repartitioned.status();
    auto collected = repartitioned->Collect(driver);
    ASSERT_TRUE(collected.ok()) << collected.status();
    ASSERT_EQ(collected->size(), static_cast<size_t>(kGroups));

    for (const Row& row : *collected) {
      ASSERT_EQ(row.size(), 4u);  // k, count(*), hll_sketch(v), sum(v)
      ASSERT_EQ(row[0].varchar_value().size(), 2u);
      const int g = row[0].varchar_value()[1] - '0';
      ASSERT_GE(g, 0);
      ASSERT_LT(g, kGroups);
      EXPECT_EQ(row[1].int64_value(), 2000 / kGroups);
      // The sketch that crossed two shuffles is byte-identical to the
      // one built locally from the same stream.
      EXPECT_EQ(row[2].varchar_value(), refs[g].Serialize());
      auto decoded = hll::Sketch::Deserialize(row[2].varchar_value());
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(decoded->Estimate(), refs[g].Estimate());
    }
  });
}

}  // namespace
}  // namespace fabric::spark
