// Projection subsystem tests: CREATE/DROP PROJECTION DDL, population
// from existing data, planner choice (EXPLAIN + projection_scans
// counter), write-path maintenance across INSERT/UPDATE/DELETE/COPY,
// AT EPOCH eligibility, the ContentFingerprint invariance the buddy
// convergence checks rely on, and a seeded chaos suite asserting
// byte-identical query results across all projections through random
// DML, node kills, and Tuple Mover on/off.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "storage/segment_store.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::vertica {
namespace {

using storage::DataType;
using storage::Encoding;
using storage::PhysicalDesign;
using storage::Row;
using storage::Schema;
using storage::Value;

std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("PROJECTION_SEED");
}

// Renders a result set to ordered lines (ORDER BY queries) for exact
// comparison.
std::vector<std::string> Lines(const QueryResult& result) {
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::string PlanText(const QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    out += row[0].varchar_value();
    out += "\n";
  }
  return out;
}

// ----------------------------------------------- fingerprint invariance

// Pins the property the per-projection convergence checks depend on:
// ContentFingerprint is a function of logical content only — insertion
// order, batch boundaries, sort order, and column encodings must not
// change it. (The fold over row hashes is commutative by construction;
// this is the regression test that keeps it so.)
TEST(ContentFingerprintTest, InvariantUnderRowOrderAndPhysicalDesign) {
  Schema schema({{"id", DataType::kInt64},
                 {"dim", DataType::kVarchar},
                 {"score", DataType::kFloat64}});
  std::vector<Row> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({Value::Int64(i), Value::Varchar(i % 3 ? "a" : "b"),
                    Value::Float64(i * 0.5)});
  }
  std::vector<Row> reversed(rows.rbegin(), rows.rend());

  // Plain store, one batch, insertion order, auto encodings.
  storage::SegmentStore plain(schema);
  ASSERT_TRUE(plain.InsertPendingDirect(1, rows).ok());
  plain.CommitTxn(1, 1);

  // Sorted store with forced encodings, reversed rows, two batches (one
  // ROS, one WOS), committed at the same epoch: the fingerprint hashes
  // each row with its commit epoch, so only the physical layout differs.
  PhysicalDesign design;
  design.sort_columns = {1, 0};  // dim, id
  design.encodings = {Encoding::kPlain, Encoding::kRle,
                      Encoding::kDictionary};
  storage::SegmentStore sorted(schema, design);
  std::vector<Row> first_half(reversed.begin(), reversed.begin() + 20);
  std::vector<Row> second_half(reversed.begin() + 20, reversed.end());
  ASSERT_TRUE(sorted.InsertPendingDirect(1, first_half).ok());
  ASSERT_TRUE(sorted.InsertPending(2, second_half).ok());
  sorted.CommitTxn(1, 1);
  sorted.CommitTxn(2, 1);

  EXPECT_EQ(plain.ContentFingerprint(), sorted.ContentFingerprint())
      << "fingerprint depends on physical layout, not logical content";

  // Sanity: different content gives a different fingerprint.
  storage::SegmentStore other(schema);
  std::vector<Row> fewer(rows.begin(), rows.end() - 1);
  ASSERT_TRUE(other.InsertPendingDirect(1, fewer).ok());
  other.CommitTxn(1, 1);
  EXPECT_NE(plain.ContentFingerprint(), other.ContentFingerprint());
}

// ------------------------------------------------------------- fixture

class ProjectionTest : public ::testing::Test {
 protected:
  ProjectionTest() { Recreate(/*tm_enabled=*/false); }

  void Recreate(bool tm_enabled) {
    db_.reset();
    network_.reset();
    engine_ = std::make_unique<sim::Engine>();
    network_ = std::make_unique<net::Network>(engine_.get());
    Database::Options vopts;
    vopts.num_nodes = 4;
    vopts.tuple_mover.enabled = tm_enabled;
    db_ = std::make_unique<Database>(engine_.get(), network_.get(), vopts);
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_->Spawn("driver", std::move(body));
    Status status = engine_->Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Result<QueryResult> Exec(sim::Process& driver, int node,
                           const std::string& sql) {
    auto session = db_->Connect(driver, node, nullptr);
    if (!session.ok()) return session.status();
    auto result = (*session)->Execute(driver, sql);
    Status closed = (*session)->Close(driver);
    if (result.ok() && !closed.ok()) return closed;
    return result;
  }

  QueryResult ExecOk(sim::Process& driver, int node,
                     const std::string& sql) {
    auto result = Exec(driver, node, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  // Executes `sql` with the planner pinned to `forced` ("" = super).
  QueryResult ExecForced(sim::Process& driver, int node,
                         const std::string& forced,
                         const std::string& sql) {
    auto session = db_->Connect(driver, node, nullptr);
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return QueryResult{};
    (*session)->set_forced_projection(forced);
    auto result = (*session)->Execute(driver, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    Status closed = (*session)->Close(driver);
    EXPECT_TRUE(closed.ok()) << closed;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  void LoadFixture(sim::Process& driver, int rows) {
    ExecOk(driver, 0,
           "CREATE TABLE sales (id INTEGER, region VARCHAR, "
           "amount FLOAT) SEGMENTED BY HASH(id) ALL NODES");
    static const char* kRegions[] = {"east", "west", "north", "south"};
    std::string values;
    for (int i = 0; i < rows; ++i) {
      if (i % 50 == 0 && !values.empty()) {
        ExecOk(driver, 0, StrCat("INSERT INTO sales VALUES ", values));
        values.clear();
      }
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", '",
                       kRegions[i % 4], "', ", i % 11, ".25)");
    }
    if (!values.empty()) {
      ExecOk(driver, 0, StrCat("INSERT INTO sales VALUES ", values));
    }
  }

  // Queries whose results must be identical through every layout.
  std::vector<std::string> EquivalenceQueries() const {
    return {
        "SELECT region, COUNT(*), SUM(amount) FROM sales "
        "GROUP BY region ORDER BY region",
        "SELECT region, amount FROM sales WHERE amount > 5.0 "
        "ORDER BY region, amount",
        "SELECT COUNT(*) FROM sales",
    };
  }

  // Asserts the named projection returns the same bytes as the super
  // projection for every equivalence query.
  void ExpectProjectionEquivalent(sim::Process& driver,
                                  const std::string& projection) {
    for (const std::string& q : EquivalenceQueries()) {
      SCOPED_TRACE(StrCat(projection, ": ", q));
      QueryResult super = ExecForced(driver, 0, "", q);
      QueryResult via = ExecForced(driver, 0, projection, q);
      EXPECT_EQ(Lines(super), Lines(via));
    }
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Database> db_;
};

// ------------------------------------------------------- DDL + planning

TEST_F(ProjectionTest, CreateProjectionPopulatesAndPlannerUsesIt) {
  obs::Tracer tracer([this] { return engine_->now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 200);
    ExecOk(driver, 0,
           "CREATE PROJECTION sales_by_region AS SELECT region, amount "
           "FROM sales ORDER BY region SEGMENTED BY HASH(region)");

    // Catalog row: sort order and creation-chosen encodings (the sorted
    // low-cardinality region column must be RLE).
    QueryResult cat = ExecOk(
        driver, 0,
        "SELECT projection_name, anchor_table, sort_columns, encodings, "
        "is_segmented FROM v_catalog.projections");
    ASSERT_EQ(cat.rows.size(), 1u);
    EXPECT_EQ(cat.rows[0][0].varchar_value(), "sales_by_region");
    EXPECT_EQ(cat.rows[0][1].varchar_value(), "sales");
    EXPECT_EQ(cat.rows[0][2].varchar_value(), "region");
    // region sorts first and is low-cardinality: RLE. amount repeats
    // (i % 11 values): dictionary.
    EXPECT_EQ(cat.rows[0][3].varchar_value(), "RLE,DICTIONARY");
    EXPECT_TRUE(cat.rows[0][4].bool_value());

    // Populated from existing data: per-copy rows add up to the table.
    QueryResult stor = ExecOk(
        driver, 0,
        "SELECT copy, SUM(rows) FROM v_monitor.projection_storage "
        "GROUP BY copy ORDER BY copy");
    ASSERT_EQ(stor.rows.size(), 2u);
    EXPECT_EQ(stor.rows[0][0].varchar_value(), "buddy");
    EXPECT_DOUBLE_EQ(stor.rows[0][1].float64_value(), 200.0);
    EXPECT_EQ(stor.rows[1][0].varchar_value(), "primary");
    EXPECT_DOUBLE_EQ(stor.rows[1][1].float64_value(), 200.0);

    // The planner picks the narrow sorted projection for a GROUP BY on
    // its sort prefix and reports merge-style aggregation.
    std::string plan = PlanText(ExecOk(
        driver, 0,
        "EXPLAIN SELECT region, SUM(amount) FROM sales GROUP BY region"));
    EXPECT_NE(plan.find("projection: sales_by_region"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("group-by strategy: merge (sorted)"),
              std::string::npos)
        << plan;

    // A star query cannot be served by the narrow projection.
    std::string star_plan =
        PlanText(ExecOk(driver, 0, "EXPLAIN SELECT * FROM sales"));
    EXPECT_NE(star_plan.find("projection: super"), std::string::npos)
        << star_plan;

    // Executing the aggregate goes through the projection (counter) and
    // returns the same bytes as the super projection.
    double before =
        tracer.metrics().counter("vertica.projection_scans{sales_by_region}");
    ExpectProjectionEquivalent(driver, "sales_by_region");
    QueryResult agg = ExecOk(
        driver, 0,
        "SELECT region, SUM(amount) FROM sales GROUP BY region "
        "ORDER BY region");
    ASSERT_EQ(agg.rows.size(), 4u);
    double after =
        tracer.metrics().counter("vertica.projection_scans{sales_by_region}");
    EXPECT_GT(after, before);
  });
}

TEST_F(ProjectionTest, AtEpochOlderThanProjectionFallsBackToSuper) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 60);
    storage::Epoch before = db_->current_epoch();
    ExecOk(driver, 0,
           "CREATE PROJECTION p_hist AS SELECT region, amount FROM sales "
           "ORDER BY region");
    ExecOk(driver, 0, "INSERT INTO sales VALUES (1000, 'east', 9.25)");

    // Historical read predating the projection: population collapsed the
    // anchor's history, so the planner must not serve it.
    std::string hist = PlanText(ExecOk(
        driver, 0,
        StrCat("EXPLAIN SELECT region, SUM(amount) FROM sales "
               "GROUP BY region AT EPOCH ",
               static_cast<int64_t>(before))));
    EXPECT_NE(hist.find("projection: super"), std::string::npos) << hist;
    QueryResult hist_rows = ExecOk(
        driver, 0,
        StrCat("SELECT COUNT(*) FROM sales AT EPOCH ",
               static_cast<int64_t>(before)));
    EXPECT_EQ(hist_rows.rows[0][0].int64_value(), 60);

    // Current reads may use it — and see the post-create insert.
    std::string now = PlanText(ExecOk(
        driver, 0,
        "EXPLAIN SELECT region, SUM(amount) FROM sales GROUP BY region"));
    EXPECT_NE(now.find("projection: p_hist"), std::string::npos) << now;
    QueryResult count = ExecForced(driver, 0, "p_hist",
                                   "SELECT COUNT(*) FROM sales");
    EXPECT_EQ(count.rows[0][0].int64_value(), 61);
  });
}

TEST_F(ProjectionTest, DropProjectionRemovesItFromPlanning) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 40);
    ExecOk(driver, 0,
           "CREATE PROJECTION p_tmp AS SELECT region, amount FROM sales "
           "ORDER BY region");
    std::string plan = PlanText(ExecOk(
        driver, 0,
        "EXPLAIN SELECT region, SUM(amount) FROM sales GROUP BY region"));
    EXPECT_NE(plan.find("projection: p_tmp"), std::string::npos) << plan;

    ExecOk(driver, 0, "DROP PROJECTION p_tmp");
    plan = PlanText(ExecOk(
        driver, 0,
        "EXPLAIN SELECT region, SUM(amount) FROM sales GROUP BY region"));
    EXPECT_NE(plan.find("projection: super"), std::string::npos) << plan;
    EXPECT_EQ(
        ExecOk(driver, 0, "SELECT projection_name FROM "
                          "v_catalog.projections").rows.size(),
        0u);
    // Idempotent with IF EXISTS; an error without.
    ExecOk(driver, 0, "DROP PROJECTION IF EXISTS p_tmp");
    auto missing = Exec(driver, 0, "DROP PROJECTION p_tmp");
    EXPECT_FALSE(missing.ok());

    // DROP TABLE cascades to its projections.
    ExecOk(driver, 0,
           "CREATE PROJECTION p_casc AS SELECT region FROM sales");
    ExecOk(driver, 0, "DROP TABLE sales");
    EXPECT_FALSE(db_->catalog().HasProjection("p_casc"));
  });
}

// -------------------------------------------------- write-path lockstep

TEST_F(ProjectionTest, DmlMaintainsEveryProjectionInLockstep) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 120);
    // Two extra layouts: a narrow segmented one and an unsegmented
    // (replicated) one.
    ExecOk(driver, 0,
           "CREATE PROJECTION p_seg AS SELECT region, amount FROM sales "
           "ORDER BY region SEGMENTED BY HASH(region)");
    ExecOk(driver, 0,
           "CREATE PROJECTION p_rep AS SELECT id, region, amount "
           "FROM sales ORDER BY region, id UNSEGMENTED");

    ExecOk(driver, 0,
           "INSERT INTO sales VALUES (500, 'east', 3.5), "
           "(501, 'west', 4.5), (502, 'north', 5.5)");
    QueryResult updated = ExecOk(
        driver, 0,
        "UPDATE sales SET amount = amount + 1.0 WHERE region = 'east'");
    EXPECT_GT(updated.affected, 0);
    QueryResult deleted = ExecOk(
        driver, 0, "DELETE FROM sales WHERE id % 7 = 3");
    EXPECT_GT(deleted.affected, 0);

    ExpectProjectionEquivalent(driver, "p_seg");
    ExpectProjectionEquivalent(driver, "p_rep");

    // An explicit transaction that aborts leaves projections untouched.
    auto session = db_->Connect(driver, 1, nullptr);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->Execute(driver, "BEGIN").ok());
    ASSERT_TRUE(
        (*session)->Execute(driver, "DELETE FROM sales WHERE id < 50").ok());
    ASSERT_TRUE((*session)->Execute(driver, "ROLLBACK").ok());
    ASSERT_TRUE((*session)->Close(driver).ok());
    ExpectProjectionEquivalent(driver, "p_seg");
    ExpectProjectionEquivalent(driver, "p_rep");

    // TRUNCATE empties every layout.
    ExecOk(driver, 0, "TRUNCATE TABLE sales");
    QueryResult empty = ExecForced(driver, 0, "p_seg",
                                   "SELECT COUNT(*) FROM sales");
    EXPECT_EQ(empty.rows[0][0].int64_value(), 0);
  });
}

// ----------------------------------------------------- chaos property

// Random DML + a mid-stream node kill/restart + Tuple Mover on/off:
// after recovery, every projection must answer byte-identically to the
// super projection, and every projection's buddy copies must hold the
// primary's fingerprint.
TEST_F(ProjectionTest, ChaosKeepsProjectionsConvergedAndEquivalent) {
  for (bool tm_enabled : {false, true}) {
    for (uint64_t seed : PropertySeeds()) {
      SCOPED_TRACE(StrCat("tm=", tm_enabled, " seed=", seed));
      Recreate(tm_enabled);
      RunDriver([&](sim::Process& driver) {
        LoadFixture(driver, 80);
        ExecOk(driver, 0,
               "CREATE PROJECTION p_seg AS SELECT region, amount "
               "FROM sales ORDER BY region SEGMENTED BY HASH(region)");
        ExecOk(driver, 0,
               "CREATE PROJECTION p_rep AS SELECT id, region, amount "
               "FROM sales ORDER BY region, id UNSEGMENTED");

        Rng rng(seed);
        // The console driver sits on a node the kill never touches.
        int victim = static_cast<int>(rng.NextUint64(3)) + 1;
        int next_id = 10000;
        bool killed = false;
        bool restarted = false;
        for (int step = 0; step < 40; ++step) {
          if (step == 12) {
            ASSERT_TRUE(db_->KillNode(victim).ok());
            killed = true;
          }
          if (step == 28) {
            ASSERT_TRUE(db_->RestartNode(victim).ok());
            restarted = true;
          }
          switch (rng.NextUint64(4)) {
            case 0:
            case 1: {
              std::string values;
              for (int i = 0; i < 5; ++i, ++next_id) {
                static const char* kRegions[] = {"east", "west", "north",
                                                 "south"};
                values += StrCat(i ? ", " : "", "(", next_id, ", '",
                                 kRegions[rng.NextUint64(4)], "', ",
                                 rng.NextUint64(9), ".75)");
              }
              ExecOk(driver, 0,
                     StrCat("INSERT INTO sales VALUES ", values));
              break;
            }
            case 2:
              ExecOk(driver, 0,
                     StrCat("UPDATE sales SET amount = amount + 0.5 "
                            "WHERE id % 13 = ",
                            rng.NextUint64(13)));
              break;
            default:
              ExecOk(driver, 0,
                     StrCat("DELETE FROM sales WHERE id % 17 = ",
                            rng.NextUint64(17)));
              break;
          }
          ASSERT_TRUE(driver.Sleep(0.05).ok());
        }
        ASSERT_TRUE(killed && restarted);
        ASSERT_TRUE(
            db_->WaitForNodeState(driver, victim, NodeState::kUp).ok());

        ExpectProjectionEquivalent(driver, "p_seg");
        ExpectProjectionEquivalent(driver, "p_rep");

        // Per-projection copy convergence after recovery.
        auto table = db_->GetStorage("sales");
        ASSERT_TRUE(table.ok());
        for (size_t s = 0; s < (*table)->per_node.size(); ++s) {
          EXPECT_EQ((*table)->per_node[s]->ContentFingerprint(),
                    (*table)->buddy[s]->ContentFingerprint())
              << "sales segment " << s;
        }
        auto seg = db_->GetProjectionStorage("p_seg");
        ASSERT_TRUE(seg.ok());
        ASSERT_EQ((*seg)->buddy.size(), (*seg)->per_node.size());
        for (size_t s = 0; s < (*seg)->per_node.size(); ++s) {
          EXPECT_EQ((*seg)->per_node[s]->ContentFingerprint(),
                    (*seg)->buddy[s]->ContentFingerprint())
              << "p_seg segment " << s;
        }
        auto rep = db_->GetProjectionStorage("p_rep");
        ASSERT_TRUE(rep.ok());
        for (size_t s = 1; s < (*rep)->per_node.size(); ++s) {
          EXPECT_EQ((*rep)->per_node[s]->ContentFingerprint(),
                    (*rep)->per_node[0]->ContentFingerprint())
              << "p_rep replica " << s;
        }
      });
    }
  }
}

}  // namespace
}  // namespace fabric::vertica
