#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::net {
namespace {

TEST(NetworkTest, SingleFlowUsesFullCapacity) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);  // 100 B/s
  double finished_at = -1;
  engine.Spawn("sender", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 500.0).ok());
    finished_at = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(finished_at, 5.0);
  EXPECT_DOUBLE_EQ(network.LinkBytesCarried(link), 500.0);
}

TEST(NetworkTest, TwoFlowsShareFairly) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  std::vector<double> finish(2, -1);
  for (int i = 0; i < 2; ++i) {
    engine.Spawn("sender", [&network, &finish, link, i](sim::Process& self) {
      ASSERT_TRUE(network.Transfer(self, {link}, 500.0).ok());
      finish[i] = self.Now();
    });
  }
  ASSERT_TRUE(engine.Run().ok());
  // Each gets 50 B/s for 500 B => both done at t=10.
  EXPECT_DOUBLE_EQ(finish[0], 10.0);
  EXPECT_DOUBLE_EQ(finish[1], 10.0);
}

TEST(NetworkTest, ShortFlowFreesBandwidthForLongFlow) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  double long_done = -1, short_done = -1;
  engine.Spawn("long", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 1000.0).ok());
    long_done = self.Now();
  });
  engine.Spawn("short", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 100.0).ok());
    short_done = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  // Shared at 50/50 until the short flow finishes (t=2, 100B), then the
  // long flow runs at 100 B/s for its remaining 900 B: 2 + 9 = 11.
  EXPECT_DOUBLE_EQ(short_done, 2.0);
  EXPECT_DOUBLE_EQ(long_done, 11.0);
}

TEST(NetworkTest, RateCapLimitsASingleFlow) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  double done = -1;
  engine.Spawn("capped", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 100.0, /*rate_cap=*/20.0).ok());
    done = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(NetworkTest, CappedFlowsLeaveHeadroomToOthers) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  double capped_done = -1, open_done = -1;
  engine.Spawn("capped", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 200.0, 20.0).ok());
    capped_done = self.Now();
  });
  engine.Spawn("open", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 400.0).ok());
    open_done = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  // Capped flow: 20 B/s for 200 B => 10 s. Open flow gets 80 B/s while the
  // capped flow is active: 400 B at 80 B/s => 5 s.
  EXPECT_DOUBLE_EQ(open_done, 5.0);
  EXPECT_DOUBLE_EQ(capped_done, 10.0);
}

TEST(NetworkTest, MultiLinkPathTakesMinimumShare) {
  sim::Engine engine;
  Network network(&engine);
  LinkId fast = network.AddLink("fast", 100.0);
  LinkId slow = network.AddLink("slow", 10.0);
  double done = -1;
  engine.Spawn("sender", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {fast, slow}, 100.0).ok());
    done = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST(NetworkTest, CrossTrafficCongestsSharedLink) {
  // Two flows share an ingress link but have distinct egress links: the
  // ingress is the bottleneck and both flows halve.
  sim::Engine engine;
  Network network(&engine);
  LinkId egress_a = network.AddLink("egress_a", 100.0);
  LinkId egress_b = network.AddLink("egress_b", 100.0);
  LinkId ingress = network.AddLink("ingress", 100.0);
  std::vector<double> finish(2, -1);
  engine.Spawn("a", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {egress_a, ingress}, 300.0).ok());
    finish[0] = self.Now();
  });
  engine.Spawn("b", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {egress_b, ingress}, 300.0).ok());
    finish[1] = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(finish[0], 6.0);
  EXPECT_DOUBLE_EQ(finish[1], 6.0);
}

TEST(NetworkTest, ZeroByteTransferIsInstant) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  engine.Spawn("sender", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 0.0).ok());
    EXPECT_DOUBLE_EQ(self.Now(), 0.0);
  });
  ASSERT_TRUE(engine.Run().ok());
}

TEST(NetworkTest, KilledSenderTearsDownFlow) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  Status observed;
  double other_done = -1;
  auto victim = engine.Spawn("victim", [&](sim::Process& self) {
    observed = network.Transfer(self, {link}, 10000.0);
  });
  engine.Spawn("survivor", [&](sim::Process& self) {
    ASSERT_TRUE(network.Transfer(self, {link}, 500.0).ok());
    other_done = self.Now();
  });
  engine.ScheduleAt(2.0, [&] { engine.Kill(*victim); });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(observed.code(), StatusCode::kCancelled);
  // Survivor: 50 B/s for 2 s (100 B), then full 100 B/s for remaining
  // 400 B => 2 + 4 = 6 s.
  EXPECT_DOUBLE_EQ(other_done, 6.0);
  EXPECT_EQ(network.num_active_flows(), 0);
}

TEST(NetworkTest, LinkTelemetryTracksRateAndFlows) {
  sim::Engine engine;
  Network network(&engine);
  LinkId link = network.AddLink("nic", 100.0);
  double mid_rate = -1;
  int mid_flows = -1;
  for (int i = 0; i < 4; ++i) {
    engine.Spawn("sender", [&network, link](sim::Process& self) {
      ASSERT_TRUE(network.Transfer(self, {link}, 400.0).ok());
    });
  }
  engine.ScheduleAt(1.0, [&] {
    mid_rate = network.LinkCurrentRate(link);
    mid_flows = network.LinkActiveFlows(link);
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(mid_rate, 100.0);  // saturated
  EXPECT_EQ(mid_flows, 4);
  EXPECT_DOUBLE_EQ(network.LinkBytesCarried(link), 1600.0);
}

// Property sweep over randomized flow sets: bytes are conserved (sum of
// carried bytes equals sum of flow sizes per traversed link), the link
// never exceeds capacity, and makespan is at least the lower bound
// total_bytes / capacity.
class NetworkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkPropertyTest, ConservationAndCapacity) {
  Rng rng(GetParam());
  sim::Engine engine;
  Network network(&engine);
  LinkId shared = network.AddLink("shared", 100.0);
  std::vector<LinkId> privates;
  for (int i = 0; i < 3; ++i) {
    privates.push_back(network.AddLink("private", 60.0));
  }
  double total_bytes = 0;
  int flows = 2 + static_cast<int>(rng.NextUint64(10));
  for (int i = 0; i < flows; ++i) {
    double bytes = 50.0 + static_cast<double>(rng.NextUint64(1000));
    double start = rng.NextDouble() * 5.0;
    LinkId private_link = privates[rng.NextUint64(privates.size())];
    total_bytes += bytes;
    engine.Spawn("sender", [&network, private_link, shared, bytes, start](
                               sim::Process& self) {
      ASSERT_TRUE(self.Sleep(start).ok());
      ASSERT_TRUE(
          network.Transfer(self, {private_link, shared}, bytes).ok());
    });
  }
  // Sample the shared link rate periodically to check the capacity bound.
  for (int t = 1; t <= 40; ++t) {
    engine.ScheduleAt(t * 0.5, [&network, shared] {
      EXPECT_LE(network.LinkCurrentRate(shared), 100.0 * (1 + 1e-9));
    });
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(network.LinkBytesCarried(shared), total_bytes, 1e-3);
  EXPECT_GE(engine.now(), total_bytes / 100.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fabric::net
