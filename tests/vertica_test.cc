#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "net/network.h"
#include "sim/engine.h"
#include "storage/schema.h"
#include "vertica/copy_stream.h"
#include "vertica/database.h"
#include "vertica/session.h"
#include "vertica/sql_eval.h"

namespace fabric::vertica {
namespace {

using storage::DataType;
using storage::Row;
using storage::Value;

// Harness: one Database on a fresh engine; test bodies run inside a
// spawned "client" process.
class VerticaTest : public ::testing::Test {
 protected:
  VerticaTest() : network_(&engine_) {
    Database::Options options;
    options.num_nodes = 4;
    db_ = std::make_unique<Database>(&engine_, &network_, options);
    client_ = net::AddHost(&network_, "client", 125e6, 0, 0);
  }

  // Runs `body` as a client process and drives the sim to completion.
  void RunClient(std::function<void(sim::Process&, Session&)> body,
                 int node = 0) {
    engine_.Spawn("client", [this, body, node](sim::Process& self) {
      auto session = db_->Connect(self, node, &client_);
      ASSERT_TRUE(session.ok()) << session.status();
      body(self, **session);
      ASSERT_TRUE((*session)->Close(self).ok());
    });
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  // Must-succeed Execute.
  static QueryResult Exec(sim::Process& self, Session& session,
                          const std::string& sql) {
    auto result = session.Execute(self, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    if (!result.ok()) return QueryResult{};
    return std::move(*result);
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<Database> db_;
  net::Host client_;
};

TEST_F(VerticaTest, CreateInsertSelectRoundTrip) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER, score FLOAT, name VARCHAR) "
         "SEGMENTED BY HASH(id) ALL NODES");
    QueryResult inserted = Exec(
        self, s,
        "INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, NULL, 'c')");
    EXPECT_EQ(inserted.affected, 3);
    QueryResult all = Exec(self, s, "SELECT * FROM t ORDER BY id");
    ASSERT_EQ(all.rows.size(), 3u);
    EXPECT_EQ(all.rows[0][0].int64_value(), 1);
    EXPECT_EQ(all.rows[2][2].varchar_value(), "c");
    EXPECT_TRUE(all.rows[2][1].is_null());
  });
}

TEST_F(VerticaTest, RowsAreSpreadAcrossNodes) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 200; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ")");
    }
    Exec(self, s, StrCat("INSERT INTO t VALUES ", values));
    // Every node should hold a nontrivial share.
    auto storage = db_->GetStorage("t");
    ASSERT_TRUE(storage.ok());
    for (int n = 0; n < db_->num_nodes(); ++n) {
      auto count =
          (*storage)->per_node[n]->CountVisible(db_->current_epoch());
      ASSERT_TRUE(count.ok());
      EXPECT_GT(*count, 20) << "node " << n;
    }
  });
}

TEST_F(VerticaTest, ProjectionFilterAndCount) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER, score FLOAT) "
         "SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 50; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ", ", i * 0.5, ")");
    }
    Exec(self, s, StrCat("INSERT INTO t VALUES ", values));
    QueryResult filtered =
        Exec(self, s, "SELECT id FROM t WHERE score >= 20 ORDER BY id");
    ASSERT_EQ(filtered.rows.size(), 10u);
    EXPECT_EQ(filtered.rows[0][0].int64_value(), 40);
    EXPECT_EQ(filtered.schema.num_columns(), 1);
    QueryResult count = Exec(self, s, "SELECT COUNT(*) FROM t");
    ASSERT_EQ(count.rows.size(), 1u);
    EXPECT_EQ(count.rows[0][0].int64_value(), 50);
  });
}

TEST_F(VerticaTest, GroupByAggregates) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE sales (region VARCHAR, amount FLOAT) "
         "SEGMENTED BY HASH(region, amount) ALL NODES");
    Exec(self, s,
         "INSERT INTO sales VALUES ('east', 10), ('east', 20), "
         "('west', 5), ('west', 7), ('west', 9)");
    QueryResult grouped = Exec(
        self, s,
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total, "
        "AVG(amount) AS mean, MIN(amount) AS lo, MAX(amount) AS hi "
        "FROM sales GROUP BY region ORDER BY region");
    ASSERT_EQ(grouped.rows.size(), 2u);
    EXPECT_EQ(grouped.rows[0][0].varchar_value(), "east");
    EXPECT_EQ(grouped.rows[0][1].int64_value(), 2);
    EXPECT_EQ(grouped.rows[0][2].float64_value(), 30.0);
    EXPECT_EQ(grouped.rows[1][3].float64_value(), 7.0);
    EXPECT_EQ(grouped.rows[1][4].float64_value(), 5.0);
    EXPECT_EQ(grouped.rows[1][5].float64_value(), 9.0);
  });
}

TEST_F(VerticaTest, HashRangeQueriesCoverTableDisjointly) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER, v FLOAT) "
         "SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 120; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ", ", i, ")");
    }
    Exec(self, s, StrCat("INSERT INTO t VALUES ", values));
    // Partition the ring into 8 and issue one range query per part, like
    // V2S does. The union must be exactly the table.
    auto ranges = EvenRingPartition(8);
    std::set<int64_t> seen;
    for (int p = 0; p < 8; ++p) {
      std::string where =
          StrCat("HASH(id) >= ", sql::RingHashToSigned(ranges[p].lower));
      if (ranges[p].upper != 0) {
        where += StrCat(" AND HASH(id) < ",
                        sql::RingHashToSigned(ranges[p].upper));
      }
      QueryResult part =
          Exec(self, s, StrCat("SELECT id FROM t WHERE ", where));
      for (const Row& row : part.rows) {
        auto [it, inserted] = seen.insert(row[0].int64_value());
        EXPECT_TRUE(inserted) << "row in two partitions";
      }
    }
    EXPECT_EQ(seen.size(), 120u);
  });
}

TEST_F(VerticaTest, LocalityQueryTouchesOneNodeOnly) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 100; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ")");
    }
    Exec(self, s, StrCat("INSERT INTO t VALUES ", values));
    double before[4];
    for (int n = 0; n < 4; ++n) {
      before[n] = network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    // Query node 2's segment from node 2: no internal traffic at all.
    auto ranges = db_->node_ranges();
    std::string where =
        StrCat("HASH(id) >= ", sql::RingHashToSigned(ranges[2].lower),
               " AND HASH(id) < ",
               sql::RingHashToSigned(ranges[2].upper));
    auto session2 = db_->Connect(self, 2, &client_);
    ASSERT_TRUE(session2.ok());
    QueryResult part =
        Exec(self, **session2, StrCat("SELECT id FROM t WHERE ", where));
    EXPECT_GT(part.rows.size(), 0u);
    for (int n = 0; n < 4; ++n) {
      EXPECT_DOUBLE_EQ(
          network_.LinkBytesCarried(db_->node_host(n).int_egress),
          before[n])
          << "internal shuffle from node " << n;
    }
    ASSERT_TRUE((*session2)->Close(self).ok());
  });
}

TEST_F(VerticaTest, NonLocalQueryShufflesInternally) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 100; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ")");
    }
    Exec(self, s, StrCat("INSERT INTO t VALUES ", values));
    // Full scan from node 0 pulls the other nodes' segments across the
    // internal fabric.
    Exec(self, s, "SELECT id FROM t");
    double shuffled = 0;
    for (int n = 1; n < 4; ++n) {
      shuffled += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    EXPECT_GT(shuffled, 0);
  });
}

TEST_F(VerticaTest, EpochSnapshotsGiveConsistentReads) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s, "INSERT INTO t VALUES (1), (2), (3)");
    int64_t epoch = static_cast<int64_t>(db_->current_epoch());
    Exec(self, s, "INSERT INTO t VALUES (4), (5)");
    Exec(self, s, "DELETE FROM t WHERE id = 1");
    // The old epoch still sees exactly the first three rows.
    QueryResult old_snapshot =
        Exec(self, s, StrCat("SELECT COUNT(*) FROM t AT EPOCH ", epoch));
    EXPECT_EQ(old_snapshot.rows[0][0].int64_value(), 3);
    QueryResult latest = Exec(self, s, "SELECT COUNT(*) FROM t");
    EXPECT_EQ(latest.rows[0][0].int64_value(), 4);
    // Future epochs are rejected.
    auto bad = s.Execute(self, "SELECT * FROM t AT EPOCH 999999");
    EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  });
}

TEST_F(VerticaTest, UpdateIsConditionalAndTransactional) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE status (id INTEGER, done BOOLEAN) "
         "UNSEGMENTED ALL NODES");
    Exec(self, s, "INSERT INTO status VALUES (7, FALSE)");
    // First conditional update wins...
    QueryResult first = Exec(
        self, s, "UPDATE status SET done = TRUE WHERE id = 7 AND done = FALSE");
    EXPECT_EQ(first.affected, 1);
    // ...the second (a duplicate task) matches nothing.
    QueryResult second = Exec(
        self, s, "UPDATE status SET done = TRUE WHERE id = 7 AND done = FALSE");
    EXPECT_EQ(second.affected, 0);
  });
}

TEST_F(VerticaTest, ExplicitTxnCommitAndRollback) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s, "BEGIN");
    Exec(self, s, "INSERT INTO t VALUES (1)");
    // Uncommitted data is visible to the writer...
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              1);
    Exec(self, s, "ROLLBACK");
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              0);
    Exec(self, s, "BEGIN");
    Exec(self, s, "INSERT INTO t VALUES (2)");
    Exec(self, s, "COMMIT");
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              1);
  });
}

TEST_F(VerticaTest, UncommittedRowsInvisibleToOtherSessions) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s, "BEGIN");
    Exec(self, s, "INSERT INTO t VALUES (1)");
    auto other = db_->Connect(self, 1, &client_);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(Exec(self, **other, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              0);
    Exec(self, s, "COMMIT");
    EXPECT_EQ(Exec(self, **other, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              1);
    ASSERT_TRUE((*other)->Close(self).ok());
  });
}

TEST_F(VerticaTest, WriteLocksSerializeConflictingTxns) {
  // Two concurrent clients race conditional updates on one row: exactly
  // one must win (the S2V leader-election primitive, Sec. 3.2.1).
  engine_.Spawn("setup", [this](sim::Process& self) {
    auto session = db_->Connect(self, 0, &client_);
    ASSERT_TRUE(session.ok());
    Exec(self, **session,
         "CREATE TABLE leader (task INTEGER) UNSEGMENTED ALL NODES");
    Exec(self, **session, "INSERT INTO leader VALUES (-1)");
    ASSERT_TRUE((*session)->Close(self).ok());
    int winners = 0;
    sim::Latch done(&engine_, 4);
    for (int task = 0; task < 4; ++task) {
      engine_.Spawn(StrCat("task", task), [this, task, &winners,
                                           &done](sim::Process& racer) {
        auto session = db_->Connect(racer, task % 4, &client_);
        ASSERT_TRUE(session.ok());
        auto result = (*session)->Execute(
            racer, StrCat("UPDATE leader SET task = ", task,
                          " WHERE task = -1"));
        ASSERT_TRUE(result.ok()) << result.status();
        if (result->affected == 1) ++winners;
        ASSERT_TRUE((*session)->Close(racer).ok());
        done.CountDown();
      });
    }
    ASSERT_TRUE(done.Await(self).ok());
    EXPECT_EQ(winners, 1);
  });
  ASSERT_TRUE(engine_.Run().ok());
}

TEST_F(VerticaTest, ViewsComputeAggregatesInsideVertica) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE sales (region VARCHAR, amount FLOAT) "
         "SEGMENTED BY HASH(region, amount) ALL NODES");
    Exec(self, s,
         "INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5)");
    Exec(self, s,
         "CREATE VIEW totals AS SELECT region, SUM(amount) AS total "
         "FROM sales GROUP BY region");
    QueryResult from_view = Exec(
        self, s, "SELECT region, total FROM totals WHERE total > 6 "
                 "ORDER BY region");
    ASSERT_EQ(from_view.rows.size(), 1u);
    EXPECT_EQ(from_view.rows[0][0].varchar_value(), "east");
    EXPECT_EQ(from_view.rows[0][1].float64_value(), 30.0);
  });
}

TEST_F(VerticaTest, InnerJoinHashAndNestedLoop) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE users (id INTEGER, name VARCHAR) "
         "SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s,
         "CREATE TABLE orders (user_id INTEGER, amount FLOAT) "
         "SEGMENTED BY HASH(user_id) ALL NODES");
    Exec(self, s,
         "INSERT INTO users VALUES (1, 'ann'), (2, 'bo'), (3, 'cy')");
    Exec(self, s,
         "INSERT INTO orders VALUES (1, 10), (1, 20), (3, 5), (9, 99)");
    // Equality join uses the hash-join path.
    QueryResult joined = Exec(
        self, s,
        "SELECT name, amount FROM users JOIN orders ON id = user_id "
        "ORDER BY name, amount");
    ASSERT_EQ(joined.rows.size(), 3u);
    EXPECT_EQ(joined.rows[0][0].varchar_value(), "ann");
    EXPECT_EQ(joined.rows[0][1].float64_value(), 10.0);
    EXPECT_EQ(joined.rows[2][0].varchar_value(), "cy");
    // Aggregation over a join.
    QueryResult totals = Exec(
        self, s,
        "SELECT name, SUM(amount) AS total FROM users JOIN orders ON "
        "id = user_id GROUP BY name ORDER BY name");
    ASSERT_EQ(totals.rows.size(), 2u);
    EXPECT_EQ(totals.rows[0][1].float64_value(), 30.0);
    // Non-equi join takes the nested-loop path.
    QueryResult theta = Exec(
        self, s,
        "SELECT name, amount FROM users JOIN orders ON id < user_id");
    EXPECT_EQ(theta.rows.size(), 5u);  // pairs with id < user_id
  });
}

TEST_F(VerticaTest, JoinColumnCollisionIsQualified) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s, "CREATE TABLE a (id INTEGER, v FLOAT)");
    Exec(self, s, "CREATE TABLE b (id INTEGER, w FLOAT)");
    Exec(self, s, "INSERT INTO a VALUES (1, 1.5)");
    Exec(self, s, "INSERT INTO b VALUES (1, 2.5)");
    QueryResult joined =
        Exec(self, s, "SELECT * FROM a JOIN b ON v < w");
    ASSERT_EQ(joined.rows.size(), 1u);
    ASSERT_EQ(joined.schema.num_columns(), 4);
    EXPECT_EQ(joined.schema.column(2).name, "b_id");
  });
}

TEST_F(VerticaTest, ViewOverJoinServesAggregates) {
  // The Section 3.1.1 story: a pre-defined view pushes a join (and here
  // an outer aggregation) into Vertica.
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s, "CREATE TABLE users (id INTEGER, region VARCHAR)");
    Exec(self, s, "CREATE TABLE orders (user_id INTEGER, amount FLOAT)");
    Exec(self, s,
         "INSERT INTO users VALUES (1, 'east'), (2, 'west'), (3, 'east')");
    Exec(self, s,
         "INSERT INTO orders VALUES (1, 10), (2, 20), (3, 30), (1, 40)");
    Exec(self, s,
         "CREATE VIEW user_orders AS SELECT region, amount FROM users "
         "JOIN orders ON id = user_id");
    QueryResult by_region = Exec(
        self, s,
        "SELECT region, SUM(amount) AS total FROM user_orders GROUP BY "
        "region ORDER BY region");
    ASSERT_EQ(by_region.rows.size(), 2u);
    EXPECT_EQ(by_region.rows[0][1].float64_value(), 80.0);  // east
    EXPECT_EQ(by_region.rows[1][1].float64_value(), 20.0);  // west
  });
}

TEST_F(VerticaTest, SystemCatalogExposesSegments) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    QueryResult nodes = Exec(self, s, "SELECT * FROM v_catalog.nodes");
    EXPECT_EQ(nodes.rows.size(), 4u);
    // Every node reports its k-safety state.
    QueryResult states =
        Exec(self, s, "SELECT state FROM v_catalog.nodes");
    for (const Row& row : states.rows) {
      EXPECT_EQ(row[0].varchar_value(), "UP");
    }
    QueryResult segments = Exec(
        self, s,
        "SELECT node_id, segment_lower, segment_upper, buddy_node_id "
        "FROM v_catalog.segments WHERE table_name = 't' ORDER BY node_id");
    ASSERT_EQ(segments.rows.size(), 4u);
    // k=1 buddy placement: the second copy lives on the ring successor.
    for (const Row& row : segments.rows) {
      EXPECT_EQ(row[3].int64_value(), (row[0].int64_value() + 1) % 4);
    }
    // Bounds chain: each segment's lower is the previous one's upper; the
    // final upper is NULL (wrap).
    for (int n = 1; n < 4; ++n) {
      EXPECT_EQ(segments.rows[n][1].int64_value(),
                segments.rows[n - 1][2].int64_value());
    }
    EXPECT_TRUE(segments.rows[3][2].is_null());
    QueryResult epochs = Exec(self, s, "SELECT * FROM v_catalog.epochs");
    EXPECT_EQ(epochs.rows[0][0].int64_value(),
              static_cast<int64_t>(db_->current_epoch()));
  });
}

TEST_F(VerticaTest, RenameSwapsTablesAtomically) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE staging (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s, "INSERT INTO staging VALUES (1), (2)");
    Exec(self, s, "ALTER TABLE staging RENAME TO target");
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM target").rows[0][0]
                  .int64_value(),
              2);
    auto gone = s.Execute(self, "SELECT * FROM staging");
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  });
}

TEST_F(VerticaTest, DropAndIfExists) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s, "CREATE TABLE t (id INTEGER)");
    Exec(self, s, "DROP TABLE t");
    EXPECT_FALSE(s.Execute(self, "DROP TABLE t").ok());
    Exec(self, s, "DROP TABLE IF EXISTS t");
    EXPECT_FALSE(s.Execute(self, "SELECT * FROM t").ok());
  });
}

TEST_F(VerticaTest, UnsegmentedTablesReplicateEverywhere) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s, "CREATE TABLE r (id INTEGER) UNSEGMENTED ALL NODES");
    Exec(self, s, "INSERT INTO r VALUES (1), (2)");
    auto storage = db_->GetStorage("r");
    ASSERT_TRUE(storage.ok());
    for (int n = 0; n < 4; ++n) {
      EXPECT_EQ(
          (*storage)->per_node[n]->CountVisible(db_->current_epoch())
              .value(),
          2);
    }
    // Reads are served locally: no internal traffic.
    double before = 0;
    for (int n = 0; n < 4; ++n) {
      before += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    Exec(self, s, "SELECT * FROM r");
    double after = 0;
    for (int n = 0; n < 4; ++n) {
      after += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    EXPECT_DOUBLE_EQ(after, before);
  });
}

TEST_F(VerticaTest, CopyStreamBulkLoadsAndRejects) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER, v FLOAT) "
         "SEGMENTED BY HASH(id) ALL NODES");
    auto stream = CopyStream::Open(self, &s, "t", CopyStream::Options{});
    ASSERT_TRUE(stream.ok()) << stream.status();
    std::vector<Row> batch;
    for (int i = 0; i < 40; ++i) {
      batch.push_back({Value::Int64(i), Value::Float64(i * 0.5)});
    }
    // Two malformed rows: wrong arity and wrong type.
    batch.push_back({Value::Int64(99)});
    batch.push_back({Value::Varchar("oops"), Value::Float64(1)});
    ASSERT_TRUE((*stream)->WriteBatch(self, batch).ok());
    auto result = (*stream)->Finish(self);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->loaded, 40);
    EXPECT_EQ(result->rejected, 2);
    EXPECT_EQ(result->rejected_sample.size(), 2u);
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              40);
    // Bulk loads land in ROS (DIRECT), not WOS.
    auto storage = db_->GetStorage("t");
    int ros = 0;
    for (int n = 0; n < 4; ++n) {
      ros += (*storage)->per_node[n]->num_ros_containers();
    }
    EXPECT_GT(ros, 0);
  });
}

TEST_F(VerticaTest, CopyStreamUnderExplicitTxnRollsBack) {
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    Exec(self, s, "BEGIN");
    auto stream = CopyStream::Open(self, &s, "t", CopyStream::Options{});
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE((*stream)->WriteBatch(self, {{Value::Int64(1)}}).ok());
    auto result = (*stream)->Finish(self);
    ASSERT_TRUE(result.ok());
    Exec(self, s, "ROLLBACK");
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              0);
  });
}

TEST_F(VerticaTest, AbandonedSessionRollsBackOpenTxn) {
  RunClient([this](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) ALL NODES");
    {
      auto doomed = db_->Connect(self, 1, &client_);
      ASSERT_TRUE(doomed.ok());
      Exec(self, **doomed, "BEGIN");
      Exec(self, **doomed, "INSERT INTO t VALUES (1)");
      // Session destroyed without COMMIT: server rolls back.
    }
    EXPECT_EQ(Exec(self, s, "SELECT COUNT(*) FROM t").rows[0][0]
                  .int64_value(),
              0);
  });
}

TEST_F(VerticaTest, SessionLimitEnforced) {
  Database::Options options;
  options.num_nodes = 1;
  options.max_client_sessions = 2;
  sim::Engine engine;
  net::Network network(&engine);
  Database db(&engine, &network, options);
  net::Host client = net::AddHost(&network, "client", 125e6, 0, 0);
  engine.Spawn("client", [&](sim::Process& self) {
    auto s1 = db.Connect(self, 0, &client);
    auto s2 = db.Connect(self, 0, &client);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    auto s3 = db.Connect(self, 0, &client);
    EXPECT_EQ(s3.status().code(), StatusCode::kResourceExhausted);
    (*s1)->Abandon();
    auto s4 = db.Connect(self, 0, &client);
    EXPECT_TRUE(s4.ok());
    (*s2)->Abandon();
    (*s4)->Abandon();
  });
  ASSERT_TRUE(engine.Run().ok());
}

TEST_F(VerticaTest, ScalarUdxCallableFromSql) {
  db_->RegisterScalarFunction(
      "PLUS_PARAM",
      [](const std::vector<Value>& args,
         const std::map<std::string, Value>& params) -> Result<Value> {
        double sum = 0;
        for (const Value& v : args) {
          FABRIC_ASSIGN_OR_RETURN(double d, v.AsDouble());
          sum += d;
        }
        auto it = params.find("offset");
        if (it != params.end()) {
          FABRIC_ASSIGN_OR_RETURN(double d, it->second.AsDouble());
          sum += d;
        }
        return Value::Float64(sum);
      });
  RunClient([](sim::Process& self, Session& s) {
    Exec(self, s,
         "CREATE TABLE t (a FLOAT, b FLOAT) SEGMENTED BY HASH(a) ALL NODES");
    Exec(self, s, "INSERT INTO t VALUES (1, 2), (3, 4)");
    QueryResult scored = Exec(
        self, s,
        "SELECT PLUS_PARAM(a, b USING PARAMETERS offset=10) AS v FROM t "
        "ORDER BY v");
    ASSERT_EQ(scored.rows.size(), 2u);
    EXPECT_EQ(scored.rows[0][0].float64_value(), 13.0);
    EXPECT_EQ(scored.rows[1][0].float64_value(), 17.0);
  });
}

TEST_F(VerticaTest, DfsStoresBlobs) {
  ASSERT_TRUE(db_->dfs().Put("/models/m1.pmml", "<PMML/>").ok());
  EXPECT_TRUE(db_->dfs().Exists("/models/m1.pmml"));
  EXPECT_EQ(db_->dfs().Get("/models/m1.pmml").value(), "<PMML/>");
  EXPECT_EQ(db_->dfs().List("/models/").size(), 1u);
  ASSERT_TRUE(db_->dfs().Delete("/models/m1.pmml").ok());
  EXPECT_FALSE(db_->dfs().Exists("/models/m1.pmml"));
}

// Property sweep: with any number of partition range-queries, V2S-style
// partitioned reads return each row exactly once, at any epoch, while
// concurrent inserts land in later epochs.
class PartitionedReadPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedReadPropertyTest, ExactlyOnceCoverage) {
  const int partitions = GetParam();
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options options;
  options.num_nodes = 4;
  Database db(&engine, &network, options);
  net::Host client = net::AddHost(&network, "client", 125e6, 0, 0);
  engine.Spawn("client", [&](sim::Process& self) {
    auto session = db.Connect(self, 0, &client);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(
        (*session)
            ->Execute(self,
                      "CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) "
                      "ALL NODES")
            .ok());
    std::string values;
    for (int i = 0; i < 333; ++i) {
      if (i > 0) values += ", ";
      values += StrCat("(", i, ")");
    }
    ASSERT_TRUE(
        (*session)->Execute(self, StrCat("INSERT INTO t VALUES ", values))
            .ok());
    int64_t epoch = static_cast<int64_t>(db.current_epoch());
    // Concurrent mutation after the snapshot.
    ASSERT_TRUE((*session)->Execute(self, "INSERT INTO t VALUES (1000)")
                    .ok());
    auto ranges = EvenRingPartition(partitions);
    std::multiset<int64_t> seen;
    for (int p = 0; p < partitions; ++p) {
      std::string where =
          StrCat("HASH(id) >= ", sql::RingHashToSigned(ranges[p].lower));
      if (ranges[p].upper != 0) {
        where += StrCat(" AND HASH(id) < ",
                        sql::RingHashToSigned(ranges[p].upper));
      }
      auto part = (*session)->Execute(
          self, StrCat("SELECT id FROM t WHERE ", where, " AT EPOCH ",
                       epoch));
      ASSERT_TRUE(part.ok()) << part.status();
      for (const Row& row : part->rows) {
        seen.insert(row[0].int64_value());
      }
    }
    ASSERT_EQ(seen.size(), 333u);
    for (int i = 0; i < 333; ++i) EXPECT_EQ(seen.count(i), 1u);
    EXPECT_EQ(seen.count(1000), 0u);
    ASSERT_TRUE((*session)->Close(self).ok());
  });
  ASSERT_TRUE(engine.Run().ok());
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionedReadPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace fabric::vertica
