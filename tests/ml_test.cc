#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "connector/default_source.h"
#include "connector/model_deploy.h"
#include "mllib/mllib.h"
#include "net/network.h"
#include "pmml/model.h"
#include "pmml/xml.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

TEST(XmlTest, RoundTripsDocument) {
  pmml::XmlElement root;
  root.name = "PMML";
  root.attributes["version"] = "4.1";
  auto child = std::make_unique<pmml::XmlElement>();
  child->name = "Array";
  child->attributes["n"] = "2";
  child->text = "1.5 <escaped> & \"quoted\"";
  root.children.push_back(std::move(child));
  std::string xml = root.ToString();
  auto parsed = pmml::ParseXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->name, "PMML");
  EXPECT_EQ((*parsed)->Attr("version"), "4.1");
  const pmml::XmlElement* array = (*parsed)->Child("Array");
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->text, "1.5 <escaped> & \"quoted\"");
}

TEST(XmlTest, ParsesPrologAndSelfClosing) {
  auto parsed = pmml::ParseXml(
      "<?xml version=\"1.0\"?>\n<a x='1'><b/><b y=\"2\"/></a>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->Children("b").size(), 2u);
  EXPECT_EQ((*parsed)->Children("b")[1]->Attr("y"), "2");
}

TEST(XmlTest, RejectsMalformed) {
  EXPECT_FALSE(pmml::ParseXml("<a><b></a>").ok());
  EXPECT_FALSE(pmml::ParseXml("<a").ok());
  EXPECT_FALSE(pmml::ParseXml("<a x=1></a>").ok());
  EXPECT_FALSE(pmml::ParseXml("<a></a><b></b>").ok());
}

TEST(PmmlTest, LinearRegressionRoundTrip) {
  pmml::PmmlModel model;
  model.kind = pmml::PmmlModel::Kind::kLinearRegression;
  model.name = "m1";
  model.feature_names = {"x1", "x2"};
  model.coefficients = {2.0, -0.5};
  model.intercept = 1.0;
  auto parsed = pmml::PmmlModel::FromXml(model.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, pmml::PmmlModel::Kind::kLinearRegression);
  EXPECT_EQ(parsed->name, "m1");
  EXPECT_EQ(parsed->feature_names, model.feature_names);
  EXPECT_DOUBLE_EQ(parsed->Evaluate({3.0, 2.0}).value(),
                   1.0 + 6.0 - 1.0);
}

TEST(PmmlTest, LogisticRegressionRoundTrip) {
  pmml::PmmlModel model;
  model.kind = pmml::PmmlModel::Kind::kLogisticRegression;
  model.name = "logit";
  model.feature_names = {"x"};
  model.coefficients = {1.0};
  model.intercept = 0.0;
  auto parsed = pmml::PmmlModel::FromXml(model.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, pmml::PmmlModel::Kind::kLogisticRegression);
  EXPECT_NEAR(parsed->Evaluate({0.0}).value(), 0.5, 1e-12);
  EXPECT_GT(parsed->Evaluate({5.0}).value(), 0.99);
}

TEST(PmmlTest, KMeansRoundTrip) {
  pmml::PmmlModel model;
  model.kind = pmml::PmmlModel::Kind::kKMeans;
  model.name = "km";
  model.feature_names = {"a", "b"};
  model.centers = {{0.0, 0.0}, {10.0, 10.0}};
  auto parsed = pmml::PmmlModel::FromXml(model.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->centers.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Evaluate({1.0, 1.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(parsed->Evaluate({9.0, 8.0}).value(), 1.0);
}

TEST(PmmlTest, EvaluateChecksArity) {
  pmml::PmmlModel model;
  model.kind = pmml::PmmlModel::Kind::kLinearRegression;
  model.feature_names = {"x"};
  model.coefficients = {1.0};
  EXPECT_FALSE(model.Evaluate({1.0, 2.0}).ok());
}

// ----------------------------------------------------- mllib on Spark

class MlTest : public ::testing::Test {
 protected:
  MlTest() : network_(&engine_) {
    vertica::Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<vertica::Database>(&engine_, &network_, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 4;
    cluster_ = std::make_unique<spark::SparkCluster>(&engine_, &network_,
                                                     sopts);
    session_ = std::make_unique<spark::SparkSession>(cluster_.get());
    connector::RegisterVerticaSource(session_.get(), db_.get());
    connector::RegisterPmmlPredict(db_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<vertica::Database> db_;
  std::unique_ptr<spark::SparkCluster> cluster_;
  std::unique_ptr<spark::SparkSession> session_;
};

TEST_F(MlTest, LinearRegressionLearnsLine) {
  RunDriver([&](sim::Process& driver) {
    // y = 2x + 1 with slight noise.
    Rng rng(7);
    std::vector<Row> rows;
    for (int i = 0; i < 200; ++i) {
      double x = rng.NextDouble() * 4 - 2;
      double y = 2 * x + 1 + (rng.NextDouble() - 0.5) * 0.01;
      rows.push_back({Value::Float64(x), Value::Float64(y)});
    }
    Schema schema({{"x", DataType::kFloat64}, {"y", DataType::kFloat64}});
    auto df = session_->CreateDataFrame(schema, rows, 4);
    ASSERT_TRUE(df.ok());
    mllib::TrainConfig config;
    config.iterations = 500;
    config.learning_rate = 0.3;
    auto model =
        mllib::TrainLinearRegression(driver, *df, {"x"}, "y", config);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_NEAR(model->weights[0], 2.0, 0.05);
    EXPECT_NEAR(model->intercept, 1.0, 0.05);
  });
}

TEST_F(MlTest, LogisticRegressionSeparatesClasses) {
  RunDriver([&](sim::Process& driver) {
    Rng rng(11);
    std::vector<Row> rows;
    for (int i = 0; i < 300; ++i) {
      double x = rng.NextDouble() * 8 - 4;
      double label = x > 0 ? 1.0 : 0.0;
      rows.push_back({Value::Float64(x), Value::Float64(label)});
    }
    Schema schema({{"x", DataType::kFloat64},
                   {"label", DataType::kFloat64}});
    auto df = session_->CreateDataFrame(schema, rows, 4);
    ASSERT_TRUE(df.ok());
    mllib::TrainConfig config;
    config.iterations = 400;
    config.learning_rate = 0.5;
    auto model = mllib::TrainLogisticRegression(driver, *df, {"x"},
                                                "label", config);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_GT(model->Predict({3.0}), 0.9);
    EXPECT_LT(model->Predict({-3.0}), 0.1);
  });
}

TEST_F(MlTest, KMeansFindsWellSeparatedClusters) {
  RunDriver([&](sim::Process& driver) {
    Rng rng(13);
    std::vector<Row> rows;
    for (int i = 0; i < 150; ++i) {
      double cx = (i % 3) * 10.0;
      rows.push_back({Value::Float64(cx + rng.NextDouble()),
                      Value::Float64(cx - rng.NextDouble())});
    }
    Schema schema({{"a", DataType::kFloat64}, {"b", DataType::kFloat64}});
    auto df = session_->CreateDataFrame(schema, rows, 4);
    ASSERT_TRUE(df.ok());
    auto model = mllib::TrainKMeans(driver, *df, {"a", "b"}, 3);
    ASSERT_TRUE(model.ok()) << model.status();
    // Three clusters near (0,0), (10,10), (20,20).
    std::set<int> assignments;
    assignments.insert(model->PredictCluster({0.5, -0.5}));
    assignments.insert(model->PredictCluster({10.5, 9.5}));
    assignments.insert(model->PredictCluster({20.5, 19.5}));
    EXPECT_EQ(assignments.size(), 3u);
  });
}

TEST_F(MlTest, DeployAndScoreInDatabase) {
  RunDriver([&](sim::Process& driver) {
    // Train in Spark, deploy to Vertica, score via SQL — the full MD
    // loop, with parity between in-Spark and in-database predictions.
    Rng rng(3);
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      double x1 = rng.NextDouble() * 2;
      double x2 = rng.NextDouble() * 2;
      double y = 3 * x1 - x2 + 0.5;
      rows.push_back({Value::Float64(x1), Value::Float64(x2),
                      Value::Float64(y)});
    }
    Schema schema({{"x1", DataType::kFloat64},
                   {"x2", DataType::kFloat64},
                   {"y", DataType::kFloat64}});
    auto df = session_->CreateDataFrame(schema, rows, 4);
    ASSERT_TRUE(df.ok());
    mllib::TrainConfig config;
    config.iterations = 800;
    config.learning_rate = 0.3;
    auto trained =
        mllib::TrainLinearRegression(driver, *df, {"x1", "x2"}, "y",
                                     config);
    ASSERT_TRUE(trained.ok());
    pmml::PmmlModel model = trained->ToPmml("regression");
    ASSERT_TRUE(connector::DeployPmmlModel(driver, db_.get(),
                                           &cluster_->driver_host(), model)
                    .ok());

    // Models are listed and retrievable.
    auto names = connector::ListPmmlModels(driver, db_.get());
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(*names, std::vector<std::string>{"regression"});
    auto fetched = connector::GetPmml(driver, db_.get(), "regression");
    ASSERT_TRUE(fetched.ok());

    // Put the feature table into Vertica and score it there.
    auto features = df->Select({"x1", "x2"});
    ASSERT_TRUE(features.ok());
    ASSERT_TRUE(features->Write()
                    .Format(connector::kVerticaSourceName)
                    .Option("table", "iris")
                    .Option("numpartitions", 4)
                    .Mode(spark::SaveMode::kOverwrite)
                    .Save(driver)
                    .ok());
    auto vsession = db_->Connect(driver, 0, &cluster_->driver_host());
    ASSERT_TRUE(vsession.ok());
    auto scored = (*vsession)->Execute(
        driver,
        "SELECT x1, x2, PMMLPredict(x1, x2 USING PARAMETERS "
        "model_name='regression') AS score FROM iris");
    ASSERT_TRUE(scored.ok()) << scored.status();
    ASSERT_EQ(scored->rows.size(), 100u);
    for (const Row& row : scored->rows) {
      double expected = trained->Predict(
          {row[0].float64_value(), row[1].float64_value()});
      EXPECT_NEAR(row[2].float64_value(), expected, 1e-9);
    }
    // Unknown model errors cleanly.
    auto missing = (*vsession)->Execute(
        driver,
        "SELECT PMMLPredict(x1 USING PARAMETERS model_name='nope') "
        "FROM iris");
    EXPECT_FALSE(missing.ok());
    ASSERT_TRUE((*vsession)->Close(driver).ok());
  });
}

TEST_F(MlTest, RedeployReplacesModel) {
  RunDriver([&](sim::Process& driver) {
    pmml::PmmlModel v1;
    v1.kind = pmml::PmmlModel::Kind::kLinearRegression;
    v1.name = "m";
    v1.feature_names = {"x"};
    v1.coefficients = {1.0};
    ASSERT_TRUE(connector::DeployPmmlModel(driver, db_.get(), nullptr, v1)
                    .ok());
    pmml::PmmlModel v2 = v1;
    v2.coefficients = {5.0};
    ASSERT_TRUE(connector::DeployPmmlModel(driver, db_.get(), nullptr, v2)
                    .ok());
    auto names = connector::ListPmmlModels(driver, db_.get());
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(names->size(), 1u);
    auto fetched = connector::GetPmml(driver, db_.get(), "m");
    ASSERT_TRUE(fetched.ok());
    EXPECT_DOUBLE_EQ(fetched->coefficients[0], 5.0);
  });
}

}  // namespace
}  // namespace fabric
