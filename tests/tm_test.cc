// Tuple Mover subsystem tests: WOS moveout and admission backpressure,
// strata-based mergeout, AHM advancement with delete purge and epoch GC,
// AT EPOCH semantics against the AHM, byte-identical results with the
// service on vs off under randomized DML/outage schedules, sustained-
// ingest boundedness, recovery convergence under divergent buddy
// compaction, and the v_monitor surfaces.

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/ksafety/ksafety.h"
#include "vertica/session.h"
#include "vertica/tm/tuple_mover.h"

namespace fabric::vertica {
namespace {

using connector::kVerticaSourceName;
using spark::DataFrame;
using spark::SaveMode;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64}, {"score", DataType::kFloat64}});
}

std::vector<Row> MakeRows(int begin, int count) {
  std::vector<Row> rows;
  for (int i = begin; i < begin + count; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 1.5)});
  }
  return rows;
}

// Full-content multiset for byte-identical result comparisons.
std::multiset<std::string> ContentsOf(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.insert(std::move(line));
  }
  return out;
}

// Seeds for the randomized suites; TM_SEED (the CI matrix knob, falling
// back to KSAFETY_SEED so both matrices exercise this suite) adds one.
std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("TM_SEED", "KSAFETY_SEED");
}

// An aggressive Tuple Mover configuration so short test workloads see
// moveout, mergeout and AHM passes many times over.
TupleMoverConfig AggressiveTm() {
  TupleMoverConfig tm;
  tm.moveout_interval = 0.02;
  tm.mergeout_interval = 0.05;
  tm.strata_min_containers = 2;
  tm.strata_max_fanin = 8;
  tm.ahm_interval = 0.1;
  tm.retention_epochs = 4;
  return tm;
}

class TmTest : public ::testing::Test {
 protected:
  void Build(const TupleMoverConfig& tm, int num_nodes = 4) {
    Database::Options vopts;
    vopts.num_nodes = num_nodes;
    vopts.tuple_mover = tm;
    network_ = std::make_unique<net::Network>(&engine_);
    db_ = std::make_unique<Database>(&engine_, network_.get(), vopts);
    tracer_ = std::make_unique<obs::Tracer>(
        [this] { return engine_.now(); });
    install_ = std::make_unique<obs::ScopedTracer>(tracer_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  QueryResult ExecOk(sim::Process& driver, int node,
                     const std::string& sql) {
    auto session = db_->Connect(driver, node, nullptr);
    FABRIC_CHECK(session.ok()) << session.status();
    auto result = (*session)->Execute(driver, sql);
    FABRIC_CHECK(result.ok()) << sql << ": " << result.status();
    FABRIC_CHECK((*session)->Close(driver).ok());
    return *std::move(result);
  }

  // Every store of `table` (primary and buddy copies alike).
  std::vector<storage::SegmentStore*> AllStores(const std::string& table) {
    auto storage = db_->GetStorage(table);
    FABRIC_CHECK(storage.ok()) << storage.status();
    std::vector<storage::SegmentStore*> out;
    for (auto& store : (*storage)->per_node) out.push_back(store.get());
    for (auto& store : (*storage)->buddy) {
      if (store != nullptr) out.push_back(store.get());
    }
    return out;
  }

  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ScopedTracer> install_;
};

// ------------------------------------------------------------- moveout

// A default-configured cluster drains its WOS without any opt-in: plain
// INSERTs land in the WOS and the background moveout empties it.
TEST_F(TmTest, DefaultClusterDrainsWosInBackground) {
  Build(TupleMoverConfig{});
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    for (int batch = 0; batch < 3; ++batch) {
      std::string values;
      for (int i = 0; i < 10; ++i) {
        int id = batch * 10 + i;
        values += StrCat(i ? ", " : "", "(", id, ", ", id, ".5)");
      }
      ExecOk(driver, batch % 4, StrCat("INSERT INTO t VALUES ", values));
    }
    QueryResult count = ExecOk(driver, 1, "SELECT COUNT(*) FROM t");
    EXPECT_EQ(count.rows[0][0].int64_value(), 30);
  });
  for (storage::SegmentStore* store : AllStores("t")) {
    EXPECT_EQ(store->num_wos_batches(), 0);
  }
  EXPECT_GT(tracer_->metrics().counter("tm.moveout_runs"), 0.0);
  EXPECT_EQ(tracer_->metrics().gauge("vertica.wos_batches"), 0.0);
  obs::TraceMatcher trace(*tracer_);
  EXPECT_FALSE(trace.Category("tm").Name("moveout").empty());
}

// The WOS hard cap stalls INSERT admission instead of letting the WOS
// grow without bound; moveout relief unblocks the writer and every row
// still lands exactly once.
TEST_F(TmTest, WosBackpressureStallsWritersAtHardCap) {
  TupleMoverConfig tm;
  tm.wos_hard_cap_batches = 2;
  tm.moveout_interval = 0.3;  // slow drain: the writer must outrun it
  Build(tm, /*num_nodes=*/1);
  RunDriver([&](sim::Process& driver) {
    // One persistent session: back-to-back autocommit INSERTs outpace the
    // slow moveout and pile committed batches up against the cap.
    auto session = db_->Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE(
        (*session)
            ->Execute(driver, "CREATE TABLE t (id INTEGER, score FLOAT)")
            .ok());
    for (int i = 0; i < 10; ++i) {
      auto inserted = (*session)->Execute(
          driver, StrCat("INSERT INTO t VALUES (", i, ", ", i, ".5)"));
      ASSERT_TRUE(inserted.ok()) << inserted.status();
    }
    auto count = (*session)->Execute(driver, "SELECT COUNT(*) FROM t");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->rows[0][0].int64_value(), 10);
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
  EXPECT_GT(tracer_->metrics().counter("vertica.wos_stall_ms"), 0.0);
  obs::TraceMatcher trace(*tracer_);
  EXPECT_FALSE(trace.Category("tm").Name("wos.stall").empty());
  for (storage::SegmentStore* store : AllStores("t")) {
    EXPECT_EQ(store->num_wos_batches(), 0);
  }
}

// ------------------------------------------------------------ mergeout

// Repeated small loads pile up ROS containers; mergeout folds them back
// down and the data survives byte-identically.
TEST_F(TmTest, MergeoutBoundsContainerCountUnderRepeatedLoads) {
  Build(AggressiveTm());
  std::multiset<std::string> before;
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    for (int batch = 0; batch < 12; ++batch) {
      std::string values;
      for (int i = 0; i < 8; ++i) {
        int id = batch * 8 + i;
        values += StrCat(i ? ", " : "", "(", id, ", ", id, ".5)");
      }
      ExecOk(driver, 0, StrCat("INSERT INTO t VALUES ", values));
    }
    before = ContentsOf(ExecOk(driver, 2, "SELECT * FROM t").rows);
    // Idle out so every armed mergeout pass completes.
    ASSERT_TRUE(driver.Sleep(2.0).ok());
    std::multiset<std::string> after =
        ContentsOf(ExecOk(driver, 1, "SELECT * FROM t").rows);
    EXPECT_EQ(before, after) << "mergeout changed query results";
  });
  EXPECT_EQ(before.size(), 96u);
  EXPECT_GT(tracer_->metrics().counter("tm.mergeout_runs"), 0.0);
  EXPECT_GT(tracer_->metrics().counter("tm.mergeout_bytes"), 0.0);
  for (storage::SegmentStore* store : AllStores("t")) {
    EXPECT_LE(store->num_ros_containers(), 4)
        << "mergeout left too many containers";
  }
}

// ------------------------------------------------- AHM, purge, AT EPOCH

// AT EPOCH below the AHM fails with a clean HISTORY_PURGED status; plain
// SELECT and AT EPOCH LATEST are provably unaffected by the purge.
TEST_F(TmTest, AtEpochBelowAhmFailsHistoryPurged) {
  Build(AggressiveTm());
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    for (int i = 0; i < 12; ++i) {
      ExecOk(driver, 0,
             StrCat("INSERT INTO t VALUES (", i, ", ", i, ".5)"));
    }
    std::multiset<std::string> before =
        ContentsOf(ExecOk(driver, 1, "SELECT * FROM t").rows);
    ASSERT_TRUE(driver.Sleep(2.0).ok());  // let the AHM catch up
    EXPECT_GT(db_->ahm(), 1u);
    // Historical read below the AHM: clean, typed failure.
    auto session = db_->Connect(driver, 2, nullptr);
    ASSERT_TRUE(session.ok());
    auto ancient = (*session)->Execute(driver,
                                       "SELECT * FROM t AT EPOCH 1");
    ASSERT_FALSE(ancient.ok());
    EXPECT_EQ(ancient.status().code(), StatusCode::kOutOfRange);
    EXPECT_NE(ancient.status().ToString().find("HISTORY_PURGED"),
              std::string::npos)
        << ancient.status();
    ASSERT_TRUE((*session)->Close(driver).ok());
    // Reads at or above the AHM are untouched.
    std::multiset<std::string> after =
        ContentsOf(ExecOk(driver, 3, "SELECT * FROM t").rows);
    EXPECT_EQ(before, after);
    std::multiset<std::string> latest = ContentsOf(
        ExecOk(driver, 0, "SELECT * FROM t AT EPOCH LATEST").rows);
    EXPECT_EQ(before, latest);
    // v_catalog.epochs surfaces the mark.
    QueryResult epochs = ExecOk(driver, 0,
                                "SELECT ahm_epoch FROM v_catalog.epochs");
    EXPECT_EQ(epochs.rows[0][0].int64_value(),
              static_cast<int64_t>(db_->ahm()));
  });
  EXPECT_GT(tracer_->metrics().counter("tm.ahm_advances"), 0.0);
}

// Purge physically reclaims rows whose deletes are ancient — container
// stats drop to zero deleted rows — while visible results are unchanged.
TEST_F(TmTest, PurgeReclaimsAncientDeletesWithoutChangingResults) {
  Build(AggressiveTm());
  std::multiset<std::string> before;
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    std::string values;
    for (int i = 0; i < 40; ++i) {
      values += StrCat(i ? ", " : "", "(", i, ", ", i, ".5)");
    }
    ExecOk(driver, 0, StrCat("INSERT INTO t VALUES ", values));
    QueryResult deleted =
        ExecOk(driver, 1, "DELETE FROM t WHERE id < 20");
    EXPECT_EQ(deleted.affected, 20);
    before = ContentsOf(ExecOk(driver, 2, "SELECT * FROM t").rows);
    EXPECT_EQ(before.size(), 20u);
    // Burn epochs past the retention window, then idle for the AHM tick.
    for (int i = 0; i < 8; ++i) {
      ExecOk(driver, 0,
             StrCat("INSERT INTO t VALUES (", 100 + i, ", 0.0)"));
    }
    ASSERT_TRUE(driver.Sleep(2.0).ok());
    std::multiset<std::string> after =
        ContentsOf(ExecOk(driver, 3, "SELECT * FROM t").rows);
    EXPECT_EQ(after.size(), 28u);
    for (const std::string& line : before) {
      EXPECT_EQ(after.count(line), 1u) << line;
    }
  });
  EXPECT_GE(tracer_->metrics().counter("tm.purged_rows"), 20.0);
  obs::TraceMatcher trace(*tracer_);
  EXPECT_FALSE(trace.Category("tm").Name("purge").empty());
  // The deleted rows are physically gone from every copy.
  for (storage::SegmentStore* store : AllStores("t")) {
    for (const storage::ContainerStats& stats : store->RosStats()) {
      EXPECT_EQ(stats.deleted_rows, 0)
          << "purge left delete-marked rows behind";
    }
    EXPECT_EQ(store->num_wos_batches(), 0);
  }
}

// --------------------------------------- TM on/off equivalence property

struct WorkloadResult {
  std::multiset<std::string> contents;
  int64_t count = 0;
};

// One randomized DML + node-outage schedule, identical statement stream
// regardless of Tuple Mover settings (fixed iteration count, not a
// virtual-time-bounded loop, so background-service timing cannot change
// what gets written).
WorkloadResult RunOutageWorkload(uint64_t seed, const TupleMoverConfig& tm,
                                 bool check_convergence) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  vopts.tuple_mover = tm;
  Database db(&engine, &network, vopts);

  ksafety::RandomOutageOptions options;
  options.horizon = 5.0;
  options.max_outages = 2;
  options.min_downtime = 0.5;
  options.max_downtime = 2.0;
  ksafety::NodeFailureSchedule schedule =
      ksafety::RandomNodeOutages(seed, 4, options);
  schedule.Install(&db);

  WorkloadResult result;
  engine.Spawn("driver", [&](sim::Process& driver) {
    std::set<int> victims;
    for (const ksafety::Outage& outage : schedule.outages()) {
      victims.insert(outage.node);
    }
    int safe_node = 0;
    while (victims.count(safe_node) > 0) ++safe_node;
    auto session = db.Connect(driver, safe_node, nullptr);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)
                    ->Execute(driver,
                              "CREATE TABLE t (id INTEGER, score FLOAT) "
                              "SEGMENTED BY HASH(id) ALL NODES")
                    .ok());
    int next_id = 0;
    for (int iter = 0; iter < 30; ++iter) {
      std::string values;
      for (int i = 0; i < 10; ++i, ++next_id) {
        values += StrCat(i ? ", " : "", "(", next_id, ", ",
                         next_id % 7, ".5)");
      }
      auto inserted = (*session)->Execute(
          driver, StrCat("INSERT INTO t VALUES ", values));
      ASSERT_TRUE(inserted.ok()) << inserted.status();
      if (iter % 4 == 3) {
        // Deterministic trailing-window delete over committed ids.
        int lo = (iter / 4) * 15;
        auto deleted = (*session)->Execute(
            driver, StrCat("DELETE FROM t WHERE id >= ", lo,
                           " AND id < ", lo + 5));
        ASSERT_TRUE(deleted.ok()) << deleted.status();
      }
      ASSERT_TRUE(driver.Sleep(0.2).ok());
    }
    // Idle past the outage horizon, then let every restart finish.
    while (driver.Now() < options.horizon + options.max_downtime) {
      ASSERT_TRUE(driver.Sleep(0.5).ok());
    }
    for (const ksafety::Outage& outage : schedule.outages()) {
      if (outage.restart_at >= 0) {
        ASSERT_TRUE(
            db.WaitForNodeState(driver, outage.node, NodeState::kUp).ok());
      }
    }
    ASSERT_TRUE((*session)->Close(driver).ok());
    EXPECT_FALSE(db.cluster_is_down());

    auto reader = db.Connect(driver, safe_node, nullptr);
    ASSERT_TRUE(reader.ok());
    auto all = (*reader)->Execute(driver, "SELECT * FROM t");
    ASSERT_TRUE(all.ok()) << all.status();
    result.contents = ContentsOf(all->rows);
    auto count = (*reader)->Execute(driver, "SELECT COUNT(*) FROM t");
    ASSERT_TRUE(count.ok());
    result.count = count->rows[0][0].int64_value();
    ASSERT_TRUE((*reader)->Close(driver).ok());

    if (check_convergence) {
      auto storage = db.GetStorage("t");
      ASSERT_TRUE(storage.ok());
      for (size_t s = 0; s < (*storage)->per_node.size(); ++s) {
        EXPECT_EQ((*storage)->per_node[s]->ContentFingerprint(),
                  (*storage)->buddy[s]->ContentFingerprint())
            << "segment " << s << " diverged (seed " << seed << ")";
      }
    }
  });
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status;
  return result;
}

// The Tuple Mover is pure storage management: the same randomized
// DML/outage schedule yields byte-identical query results whether the
// service runs aggressively or not at all — and with it on, buddy pairs
// still converge after recovery despite divergent compaction histories.
TEST(TmEquivalencePropertyTest, TmOnAndOffProduceByteIdenticalResults) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    TupleMoverConfig off;
    off.enabled = false;
    WorkloadResult plain = RunOutageWorkload(seed, off,
                                             /*check_convergence=*/false);
    WorkloadResult managed = RunOutageWorkload(seed, AggressiveTm(),
                                               /*check_convergence=*/true);
    EXPECT_EQ(plain.count, managed.count);
    EXPECT_EQ(plain.contents, managed.contents)
        << "Tuple Mover changed visible data (seed " << seed << ")";
    EXPECT_EQ(plain.count, 300 - 7 * 5);
  }
}

// ------------------------------------------------- sustained-ingest soak

// Back-to-back S2V appends: with the Tuple Mover on, WOS batch counts and
// ROS container counts stay bounded no matter how long ingest runs.
TEST(TmSoakTest, SustainedS2VIngestKeepsStorageBounded) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  vopts.tuple_mover = AggressiveTm();
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession spark_session(&cluster);
  connector::RegisterVerticaSource(&spark_session, &db);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  engine.Spawn("driver", [&](sim::Process& driver) {
    for (int save = 0; save < 6; ++save) {
      auto df = spark_session.CreateDataFrame(
          TestSchema(), MakeRows(save * 200, 200), 4);
      ASSERT_TRUE(df.ok());
      Status saved = df->Write()
                         .Format(kVerticaSourceName)
                         .Option("table", "t")
                         .Option("numpartitions", 4)
                         .Mode(SaveMode::kAppend)
                         .Save(driver);
      ASSERT_TRUE(saved.ok()) << saved;
    }
    ASSERT_TRUE(driver.Sleep(2.0).ok());  // drain every armed pass
    auto session = db.Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok());
    auto count = (*session)->Execute(driver, "SELECT COUNT(*) FROM t");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->rows[0][0].int64_value(), 1200);
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;

  auto storage = db.GetStorage("t");
  ASSERT_TRUE(storage.ok());
  std::vector<storage::SegmentStore*> stores;
  for (auto& s : (*storage)->per_node) stores.push_back(s.get());
  for (auto& s : (*storage)->buddy) {
    if (s != nullptr) stores.push_back(s.get());
  }
  for (storage::SegmentStore* store : stores) {
    EXPECT_EQ(store->num_wos_batches(), 0);
    EXPECT_LE(store->num_ros_containers(), 4)
        << "container count unbounded under sustained ingest";
  }
  EXPECT_GT(tracer.metrics().counter("tm.moveout_runs"), 0.0);
  EXPECT_GT(tracer.metrics().counter("tm.mergeout_runs"), 0.0);
  EXPECT_EQ(tracer.metrics().gauge("vertica.wos_batches"), 0.0);
}

// --------------------------------------------------- monitoring surfaces

TEST_F(TmTest, SystemTablesExposeTupleMoverAndContainerState) {
  Build(AggressiveTm());
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    for (int i = 0; i < 6; ++i) {
      ExecOk(driver, 0,
             StrCat("INSERT INTO t VALUES (", i, ", ", i, ".5)"));
    }
    ASSERT_TRUE(driver.Sleep(1.0).ok());

    QueryResult tm = ExecOk(driver, 1,
                            "SELECT * FROM v_monitor.tuple_mover");
    // One moveout + one mergeout row per node, plus the cluster AHM row.
    EXPECT_EQ(tm.rows.size(),
              static_cast<size_t>(2 * db_->num_nodes() + 1));
    int64_t total_runs = 0;
    for (const Row& row : tm.rows) {
      total_runs += row[3].int64_value();  // runs column
    }
    EXPECT_GT(total_runs, 0);

    QueryResult containers = ExecOk(
        driver, 2, "SELECT * FROM v_monitor.storage_containers");
    EXPECT_GT(containers.rows.size(), 0u);
    EXPECT_EQ(containers.schema.num_columns(), 11);
    int64_t total_rows = 0;
    for (const Row& row : containers.rows) {
      if (row[0].varchar_value() == "t" &&
          row[2].varchar_value() == "primary") {
        total_rows += row[4].int64_value();  // rows column
      }
    }
    EXPECT_EQ(total_rows, 6);
  });
}

// ----------------------------------------------------------- determinism

// The background service is part of the deterministic simulation: the
// same seed reproduces the same trace, byte for byte, with the TM
// running aggressively throughout.
TEST(TmDeterminismTest, TupleMoverRunsAreReproducible) {
  auto run = [] {
    sim::Engine engine;
    net::Network network(&engine);
    Database::Options vopts;
    vopts.num_nodes = 4;
    vopts.tuple_mover = AggressiveTm();
    Database db(&engine, &network, vopts);
    obs::Tracer tracer([&engine] { return engine.now(); });
    obs::ScopedTracer install(&tracer);
    engine.Spawn("driver", [&](sim::Process& driver) {
      auto session = db.Connect(driver, 0, nullptr);
      ASSERT_TRUE(session.ok());
      ASSERT_TRUE((*session)
                      ->Execute(driver,
                                "CREATE TABLE t (id INTEGER, score "
                                "FLOAT) SEGMENTED BY HASH(id) ALL NODES")
                      .ok());
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE((*session)
                        ->Execute(driver,
                                  StrCat("INSERT INTO t VALUES (", i,
                                         ", ", i, ".5)"))
                        .ok());
      }
      ASSERT_TRUE(
          (*session)->Execute(driver, "DELETE FROM t WHERE id < 5").ok());
      ASSERT_TRUE((*session)->Close(driver).ok());
    });
    Status status = engine.Run();
    EXPECT_TRUE(status.ok()) << status;
    return StrCat(engine.now(), "|", engine.steps(), "|",
                  tracer.ToChromeTraceJson());
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"tm\""), std::string::npos)
      << "trace is missing tuple-mover events";
}

}  // namespace
}  // namespace fabric::vertica
