#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::sim {
namespace {

TEST(EngineTest, EmptyRunCompletesAtTimeZero) {
  Engine engine;
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.now(), 0.0);
}

TEST(EngineTest, SleepAdvancesVirtualTime) {
  Engine engine;
  double woke_at = -1;
  engine.Spawn("sleeper", [&](Process& self) {
    ASSERT_TRUE(self.Sleep(3.5).ok());
    woke_at = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(woke_at, 3.5);
  EXPECT_DOUBLE_EQ(engine.now(), 3.5);
}

TEST(EngineTest, ProcessesInterleaveDeterministically) {
  Engine engine;
  std::vector<std::string> trace;
  engine.Spawn("a", [&](Process& self) {
    trace.push_back("a0");
    ASSERT_TRUE(self.Sleep(2).ok());
    trace.push_back("a2");
  });
  engine.Spawn("b", [&](Process& self) {
    trace.push_back("b0");
    ASSERT_TRUE(self.Sleep(1).ok());
    trace.push_back("b1");
    ASSERT_TRUE(self.Sleep(2).ok());
    trace.push_back("b3");
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "b1", "a2", "b3"}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(EngineTest, SameTimeEventsRunInSpawnOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn("p", [&order, i](Process&) { order.push_back(i); });
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, ScheduledCallbacksRunAtTheirTime) {
  Engine engine;
  std::vector<double> times;
  engine.ScheduleAt(2.0, [&] { times.push_back(engine.now()); });
  engine.ScheduleAt(1.0, [&] { times.push_back(engine.now()); });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EngineTest, CallbackCanSpawnProcess) {
  Engine engine;
  double spawned_ran_at = -1;
  engine.ScheduleAt(1.0, [&] {
    engine.Spawn("late", [&](Process& self) {
      ASSERT_TRUE(self.Sleep(1).ok());
      spawned_ran_at = self.Now();
    });
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(spawned_ran_at, 2.0);
}

TEST(EngineTest, NestedSpawnFromProcess) {
  Engine engine;
  double child_done = -1;
  engine.Spawn("parent", [&](Process& self) {
    ASSERT_TRUE(self.Sleep(1).ok());
    engine.Spawn("child", [&](Process& inner) {
      ASSERT_TRUE(inner.Sleep(2).ok());
      child_done = inner.Now();
    });
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(child_done, 3.0);
}

TEST(EngineTest, KillMakesSleepReturnCancelled) {
  Engine engine;
  Status observed;
  auto victim = engine.Spawn("victim", [&](Process& self) {
    observed = self.Sleep(100);
  });
  engine.ScheduleAt(5.0, [&] { engine.Kill(*victim); });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(observed.code(), StatusCode::kCancelled);
  // Killed at t=5, long before the sleep deadline.
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(EngineTest, KilledProcessFailsFutureBlockingCalls) {
  Engine engine;
  auto victim = engine.Spawn("victim", [&](Process& self) {
    EXPECT_EQ(self.Sleep(10).code(), StatusCode::kCancelled);
    EXPECT_EQ(self.Sleep(1).code(), StatusCode::kCancelled);
    EXPECT_EQ(self.CheckAlive().code(), StatusCode::kCancelled);
  });
  engine.ScheduleAt(1.0, [&] { engine.Kill(*victim); });
  ASSERT_TRUE(engine.Run().ok());
}

TEST(EngineTest, DeadlockIsDiagnosed) {
  Engine engine;
  Condition never(&engine);
  auto blocked = engine.Spawn("stuck", [&](Process& self) {
    // Nobody ever notifies; the run must report a deadlock rather than
    // hang. The engine destructor then kills the process.
    Status s = never.Wait(self);
    EXPECT_EQ(s.code(), StatusCode::kCancelled);
  });
  Status status = engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("stuck"), std::string::npos);
}

TEST(EngineTest, StepLimitAborts) {
  Engine engine;
  engine.set_max_steps(100);
  engine.Spawn("spinner", [&](Process& self) {
    while (self.Sleep(1).ok()) {
    }
  });
  Status status = engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Engine engine;
  Condition cond(&engine);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn("waiter", [&](Process& self) {
      ASSERT_TRUE(cond.Wait(self).ok());
      ++woke;
    });
  }
  engine.Spawn("notifier", [&](Process& self) {
    ASSERT_TRUE(self.Sleep(1).ok());
    cond.NotifyAll();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(woke, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(ConditionTest, NotifyOneWakesOldestWaiter) {
  Engine engine;
  Condition cond(&engine);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn("waiter", [&cond, &woke, i](Process& self) {
      ASSERT_TRUE(cond.Wait(self).ok());
      woke.push_back(i);
    });
  }
  engine.Spawn("notifier", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(self.Sleep(1).ok());
      cond.NotifyOne();
    }
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(ConditionTest, WaitUntilChecksPredicate) {
  Engine engine;
  Condition cond(&engine);
  int value = 0;
  double resumed_at = -1;
  engine.Spawn("consumer", [&](Process& self) {
    ASSERT_TRUE(cond.WaitUntil(self, [&] { return value >= 3; }).ok());
    resumed_at = self.Now();
  });
  engine.Spawn("producer", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(self.Sleep(1).ok());
      ++value;
      cond.NotifyAll();
    }
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(resumed_at, 3.0);
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Engine engine;
  Mutex mutex(&engine);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    engine.Spawn("worker", [&](Process& self) {
      ASSERT_TRUE(mutex.Lock(self).ok());
      ++in_critical;
      max_in_critical = std::max(max_in_critical, in_critical);
      ASSERT_TRUE(self.Sleep(1).ok());
      --in_critical;
      mutex.Unlock();
    });
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);  // serialized critical sections
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(&engine, 2);
  int active = 0;
  int max_active = 0;
  for (int i = 0; i < 6; ++i) {
    engine.Spawn("worker", [&](Process& self) {
      ASSERT_TRUE(sem.Acquire(self).ok());
      ++active;
      max_active = std::max(max_active, active);
      ASSERT_TRUE(self.Sleep(1).ok());
      --active;
      sem.Release();
    });
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(max_active, 2);
  // 6 unit jobs, 2 at a time => 3 virtual seconds.
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SemaphoreTest, TryAcquireDoesNotBlock) {
  Engine engine;
  Semaphore sem(&engine, 1);
  engine.Spawn("p", [&](Process&) {
    EXPECT_TRUE(sem.TryAcquire());
    EXPECT_FALSE(sem.TryAcquire());
    sem.Release();
    EXPECT_TRUE(sem.TryAcquire());
    sem.Release();
  });
  ASSERT_TRUE(engine.Run().ok());
}

TEST(LatchTest, AwaitBlocksUntilZero) {
  Engine engine;
  Latch latch(&engine, 3);
  double released_at = -1;
  engine.Spawn("joiner", [&](Process& self) {
    ASSERT_TRUE(latch.Await(self).ok());
    released_at = self.Now();
  });
  for (int i = 1; i <= 3; ++i) {
    engine.Spawn("worker", [&latch, i](Process& self) {
      ASSERT_TRUE(self.Sleep(i).ok());
      latch.CountDown();
    });
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(released_at, 3.0);
}

// Property sweep: a fork/join fleet of N sleepers always finishes at the
// max sleep, independent of N (scheduling is work-conserving and wakes are
// not lost).
class FleetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FleetPropertyTest, ForkJoinFinishesAtMax) {
  const int n = GetParam();
  Engine engine;
  Latch latch(&engine, n);
  for (int i = 1; i <= n; ++i) {
    engine.Spawn("w", [&latch, i](Process& self) {
      ASSERT_TRUE(self.Sleep(i * 0.5).ok());
      latch.CountDown();
    });
  }
  double done_at = -1;
  engine.Spawn("join", [&](Process& self) {
    ASSERT_TRUE(latch.Await(self).ok());
    done_at = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DOUBLE_EQ(done_at, n * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FleetPropertyTest,
                         ::testing::Values(1, 2, 8, 32, 100));

}  // namespace
}  // namespace fabric::sim
