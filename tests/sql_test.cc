#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "vertica/catalog.h"
#include "vertica/sql_analyzer.h"
#include "vertica/sql_ast.h"
#include "vertica/sql_eval.h"
#include "vertica/sql_parser.h"

namespace fabric::vertica::sql {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

// ------------------------------------------------------------------ lexer

TEST(ParserTest, SelectBasics) {
  auto statement = Parse("SELECT a, b AS bee, 42 FROM t WHERE a > 1");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& select = std::get<SelectStmt>(*statement);
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[0].expr->column, "a");
  EXPECT_EQ(select.items[1].alias, "bee");
  EXPECT_EQ(select.from, "t");
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->op, ">");
}

TEST(ParserTest, SelectStarAndClauses) {
  auto statement = Parse(
      "SELECT * FROM t WHERE x = 'it''s' GROUP BY g ORDER BY g DESC "
      "LIMIT 10 AT EPOCH 7");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& select = std::get<SelectStmt>(*statement);
  EXPECT_TRUE(select.items[0].star);
  EXPECT_EQ(select.group_by, std::vector<std::string>{"g"});
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.limit, 10);
  EXPECT_EQ(select.at_epoch, 7);
}

TEST(ParserTest, QualifiedSystemTableName) {
  auto statement = Parse("SELECT node_name FROM v_catalog.nodes");
  ASSERT_TRUE(statement.ok());
  EXPECT_EQ(std::get<SelectStmt>(*statement).from, "v_catalog.nodes");
}

TEST(ParserTest, KSafetyCatalogColumns) {
  // The k-safety columns (nodes.state, segments.buddy_node_id/_name)
  // are ordinary projections to the parser.
  auto nodes = Parse("SELECT node_name, state FROM v_catalog.nodes");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(std::get<SelectStmt>(*nodes).items.size(), 2u);
  auto segments = Parse(
      "SELECT buddy_node_id, buddy_node_name FROM v_catalog.segments "
      "WHERE table_name = 't' ORDER BY node_id");
  ASSERT_TRUE(segments.ok()) << segments.status();
  EXPECT_EQ(std::get<SelectStmt>(*segments).from, "v_catalog.segments");
}

TEST(ParserTest, HashRangePredicate) {
  auto statement = Parse(
      "SELECT * FROM t WHERE HASH(a, b) >= -100 AND HASH(a, b) < 200");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& select = std::get<SelectStmt>(*statement);
  EXPECT_EQ(select.where->op, "AND");
}

TEST(ParserTest, CreateTableSegmented) {
  auto statement = Parse(
      "CREATE TABLE t (id INTEGER, score FLOAT, name VARCHAR(80)) "
      "SEGMENTED BY HASH(id) ALL NODES");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& create = std::get<CreateTableStmt>(*statement);
  EXPECT_EQ(create.name, "t");
  ASSERT_EQ(create.columns.size(), 3u);
  EXPECT_EQ(create.columns[1].second, DataType::kFloat64);
  EXPECT_EQ(create.segmentation_columns,
            std::vector<std::string>{"id"});
}

TEST(ParserTest, CreateTableUnsegmentedAndIfNotExists) {
  auto statement = Parse(
      "CREATE TABLE IF NOT EXISTS t (id INTEGER) UNSEGMENTED ALL NODES");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& create = std::get<CreateTableStmt>(*statement);
  EXPECT_TRUE(create.if_not_exists);
  EXPECT_TRUE(create.unsegmented);
}

TEST(ParserTest, InnerJoin) {
  auto statement = Parse(
      "SELECT name, amount FROM users JOIN orders ON id = user_id "
      "WHERE amount > 10");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& select = std::get<SelectStmt>(*statement);
  EXPECT_EQ(select.from, "users");
  EXPECT_EQ(select.join, "orders");
  ASSERT_NE(select.join_on, nullptr);
  EXPECT_EQ(select.join_on->op, "=");
  // INNER JOIN spelling and round-tripping.
  auto inner = Parse("SELECT * FROM a INNER JOIN b ON x = y");
  ASSERT_TRUE(inner.ok()) << inner.status();
  EXPECT_EQ(std::get<SelectStmt>(*inner).join, "b");
  EXPECT_NE(std::get<SelectStmt>(*inner).ToSql().find("JOIN b ON"),
            std::string::npos);
}

TEST(ParserTest, JoinRequiresOn) {
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b WHERE x = 1").ok());
}

TEST(ParserTest, CreateView) {
  auto statement =
      Parse("CREATE VIEW v AS SELECT g, COUNT(*) AS n FROM t GROUP BY g");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& view = std::get<CreateViewStmt>(*statement);
  EXPECT_EQ(view.name, "v");
  EXPECT_EQ(view.select->group_by, std::vector<std::string>{"g"});
}

TEST(ParserTest, InsertValuesAndDirectHint) {
  auto statement = Parse(
      "INSERT /*+ DIRECT */ INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& insert = std::get<InsertStmt>(*statement);
  EXPECT_TRUE(insert.direct);
  EXPECT_EQ(insert.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_TRUE(insert.rows[1][1]->literal.is_null());
}

TEST(ParserTest, InsertSelect) {
  auto statement = Parse("INSERT INTO target SELECT * FROM staging");
  ASSERT_TRUE(statement.ok()) << statement.status();
  auto& insert = std::get<InsertStmt>(*statement);
  ASSERT_NE(insert.select, nullptr);
  EXPECT_EQ(insert.select->from, "staging");
}

TEST(ParserTest, UpdateDeleteTruncateRename) {
  auto update = Parse("UPDATE t SET done = TRUE WHERE id = 3 AND done = FALSE");
  ASSERT_TRUE(update.ok()) << update.status();
  EXPECT_EQ(std::get<UpdateStmt>(*update).assignments.size(), 1u);

  auto del = Parse("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(std::get<DeleteStmt>(*del).table, "t");

  auto truncate = Parse("TRUNCATE TABLE t");
  ASSERT_TRUE(truncate.ok());

  auto rename = Parse("ALTER TABLE s RENAME TO t");
  ASSERT_TRUE(rename.ok());
  EXPECT_EQ(std::get<RenameTableStmt>(*rename).to, "t");
}

TEST(ParserTest, TxnStatements) {
  EXPECT_EQ(std::get<TxnStmt>(*Parse("BEGIN")).kind, TxnStmt::Kind::kBegin);
  EXPECT_EQ(std::get<TxnStmt>(*Parse("COMMIT")).kind,
            TxnStmt::Kind::kCommit);
  EXPECT_EQ(std::get<TxnStmt>(*Parse("ROLLBACK")).kind,
            TxnStmt::Kind::kRollback);
}

TEST(ParserTest, UsingParameters) {
  auto expr = ParseExpression(
      "PMMLPredict(a, b USING PARAMETERS model_name='m1', k=3)");
  ASSERT_TRUE(expr.ok()) << expr.status();
  EXPECT_EQ((*expr)->function, "PMMLPREDICT");
  EXPECT_EQ((*expr)->args.size(), 2u);
  EXPECT_EQ((*expr)->parameters.at("model_name").varchar_value(), "m1");
  EXPECT_EQ((*expr)->parameters.at("k").int64_value(), 3);
}

TEST(ParserTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("SELEC 1").ok());
  EXPECT_FALSE(Parse("SELECT 1 extra garbage ,").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parse("SELECT 'unterminated").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto expr = ParseExpression("a + b * 2 < 10 OR NOT c = 1 AND d IS NULL");
  ASSERT_TRUE(expr.ok()) << expr.status();
  // Rendered SQL shows the tree shape.
  EXPECT_EQ((*expr)->ToSql(),
            "(((a + (b * 2)) < 10) OR ((NOT (c = 1)) AND (d IS NULL)))");
}

TEST(ParserTest, ToSqlRoundTrips) {
  const char* exprs[] = {
      "((a + 1) * 2)", "(HASH(a, b) >= -5)", "(x || 'suffix')",
      "((a IS NOT NULL) AND (b <> 3))"};
  for (const char* text : exprs) {
    auto parsed = ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto reparsed = ParseExpression((*parsed)->ToSql());
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->ToSql();
    EXPECT_EQ((*parsed)->ToSql(), (*reparsed)->ToSql());
  }
}

// ------------------------------------------------------------------ eval

class EvalTest : public ::testing::Test {
 protected:
  EvalTest()
      : schema_({{"a", DataType::kInt64},
                 {"b", DataType::kFloat64},
                 {"s", DataType::kVarchar},
                 {"flag", DataType::kBool}}),
        row_({Value::Int64(6), Value::Float64(2.5), Value::Varchar("hi"),
              Value::Bool(true)}) {
    context_.schema = &schema_;
    context_.row = &row_;
  }

  Value EvalText(const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto v = Eval(**expr, context_);
    EXPECT_TRUE(v.ok()) << v.status();
    return *v;
  }

  Schema schema_;
  Row row_;
  EvalContext context_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(EvalText("a + 2").int64_value(), 8);
  EXPECT_EQ(EvalText("a - 10").int64_value(), -4);
  EXPECT_EQ(EvalText("a * a").int64_value(), 36);
  EXPECT_EQ(EvalText("a / 4").float64_value(), 1.5);
  EXPECT_EQ(EvalText("a % 4").int64_value(), 2);
  EXPECT_EQ(EvalText("a + b").float64_value(), 8.5);
  EXPECT_EQ(EvalText("-a").int64_value(), -6);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(EvalText("a = 6").bool_value());
  EXPECT_TRUE(EvalText("a <> 5").bool_value());
  EXPECT_TRUE(EvalText("b >= 2.5").bool_value());
  EXPECT_TRUE(EvalText("s = 'hi'").bool_value());
  EXPECT_FALSE(EvalText("s < 'aa'").bool_value());
  EXPECT_TRUE(EvalText("a > b").bool_value());
}

TEST_F(EvalTest, ThreeValuedLogic) {
  EXPECT_TRUE(EvalText("NULL IS NULL").bool_value());
  EXPECT_TRUE(EvalText("a IS NOT NULL").bool_value());
  EXPECT_TRUE(EvalText("NULL = 1").is_null());
  EXPECT_TRUE(EvalText("NULL AND TRUE").is_null());
  EXPECT_FALSE(EvalText("NULL AND FALSE").bool_value());
  EXPECT_TRUE(EvalText("NULL OR TRUE").bool_value());
  EXPECT_TRUE(EvalText("NULL OR FALSE").is_null());
  EXPECT_TRUE(EvalText("NOT NULL").is_null());
  EXPECT_TRUE(EvalText("NULL + 1").is_null());
}

TEST_F(EvalTest, StringFunctions) {
  EXPECT_EQ(EvalText("LENGTH(s)").int64_value(), 2);
  EXPECT_EQ(EvalText("UPPER(s)").varchar_value(), "HI");
  EXPECT_EQ(EvalText("s || '!'").varchar_value(), "hi!");
}

TEST_F(EvalTest, HashMatchesRowSegmentationHash) {
  uint64_t expected = storage::RowSegmentationHash(row_, {0, 2});
  EXPECT_EQ(EvalText("HASH(a, s)").int64_value(),
            RingHashToSigned(expected));
}

TEST_F(EvalTest, PredicateSemantics) {
  auto expr = ParseExpression("a > 100");
  EXPECT_FALSE(*EvalPredicate(**expr, context_));
  expr = ParseExpression("NULL = 1");  // NULL predicate filters out
  EXPECT_FALSE(*EvalPredicate(**expr, context_));
  expr = ParseExpression("a = 6");
  EXPECT_TRUE(*EvalPredicate(**expr, context_));
}

TEST_F(EvalTest, ErrorsSurface) {
  auto expr = ParseExpression("a / 0");
  EXPECT_FALSE(Eval(**expr, context_).ok());
  expr = ParseExpression("LENGTH(a)");
  EXPECT_FALSE(Eval(**expr, context_).ok());
  expr = ParseExpression("COUNT(a)");
  EXPECT_FALSE(Eval(**expr, context_).ok());
  expr = ParseExpression("nosuchcolumn");
  EXPECT_FALSE(Eval(**expr, context_).ok());
  expr = ParseExpression("NOSUCHFUNCTION(1)");
  EXPECT_FALSE(Eval(**expr, context_).ok());
}

TEST(SignedRingTest, MappingIsMonotoneAndInvertible) {
  std::vector<uint64_t> points = {0, 1, (1ULL << 63) - 1, 1ULL << 63,
                                  UINT64_MAX};
  int64_t prev = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    int64_t s = RingHashToSigned(points[i]);
    EXPECT_EQ(SignedToRingHash(s), points[i]);
    if (i > 0) {
      EXPECT_GT(s, prev);
    }
    prev = s;
  }
}

// -------------------------------------------------------------- analyzer

std::vector<std::string> SegCols() { return {"a", "b"}; }

RingRangeSet RangesOf(const std::string& where) {
  auto expr = ParseExpression(where);
  EXPECT_TRUE(expr.ok()) << expr.status();
  return ExtractHashRanges(**expr, SegCols());
}

TEST(AnalyzerTest, SimpleRange) {
  RingRangeSet ranges =
      RangesOf("HASH(a, b) >= 0 AND HASH(a, b) < 1000");
  EXPECT_FALSE(ranges.IsFull());
  EXPECT_TRUE(ranges.Contains(SignedToRingHash(500)));
  EXPECT_FALSE(ranges.Contains(SignedToRingHash(1000)));
  EXPECT_FALSE(ranges.Contains(SignedToRingHash(-1)));
}

TEST(AnalyzerTest, UnionOfRanges) {
  RingRangeSet ranges = RangesOf(
      "(HASH(a, b) >= 0 AND HASH(a, b) < 10) OR "
      "(HASH(a, b) >= 100 AND HASH(a, b) < 110)");
  EXPECT_EQ(ranges.num_ranges(), 2);
  EXPECT_TRUE(ranges.Contains(SignedToRingHash(5)));
  EXPECT_FALSE(ranges.Contains(SignedToRingHash(50)));
  EXPECT_TRUE(ranges.Contains(SignedToRingHash(105)));
}

TEST(AnalyzerTest, MixedPredicateKeepsRangeViaAnd) {
  RingRangeSet ranges =
      RangesOf("HASH(a, b) >= 0 AND HASH(a, b) < 10 AND x > 3");
  EXPECT_FALSE(ranges.IsFull());
  EXPECT_TRUE(ranges.Contains(SignedToRingHash(5)));
}

TEST(AnalyzerTest, OrWithNonRangeIsFull) {
  EXPECT_TRUE(RangesOf("HASH(a, b) < 10 OR x > 3").IsFull());
}

TEST(AnalyzerTest, WrongColumnsIgnored) {
  EXPECT_TRUE(RangesOf("HASH(b, a) < 10").IsFull());   // wrong order
  EXPECT_TRUE(RangesOf("HASH(a) < 10").IsFull());      // wrong arity
  EXPECT_TRUE(RangesOf("x < 10").IsFull());            // unrelated
}

TEST(AnalyzerTest, ReversedComparison) {
  RingRangeSet ranges = RangesOf("0 <= HASH(a, b) AND 10 > HASH(a, b)");
  EXPECT_TRUE(ranges.Contains(SignedToRingHash(5)));
  EXPECT_FALSE(ranges.Contains(SignedToRingHash(10)));
}

TEST(AnalyzerTest, NodeRangeIntersection) {
  auto node_ranges = EvenRingPartition(4);
  // A range inside segment 2 intersects only node 2.
  uint64_t mid = node_ranges[2].lower + 1000;
  int64_t lo = RingHashToSigned(mid);
  int64_t hi = RingHashToSigned(mid + 10);
  RingRangeSet ranges = RangesOf(
      StrCat("HASH(a, b) >= ", lo, " AND HASH(a, b) < ", hi));
  int hits = 0;
  for (int n = 0; n < 4; ++n) {
    if (ranges.Intersects(node_ranges[n])) {
      ++hits;
      EXPECT_EQ(n, 2);
    }
  }
  EXPECT_EQ(hits, 1);
}

// Property sweep: for any node count and partition count, the partition
// queries V2S would generate form a disjoint cover of the ring, and every
// hashed key lands in exactly one partition.
class RingCoverPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RingCoverPropertyTest, PartitionsCoverRingExactlyOnce) {
  auto [num_nodes, num_partitions] = GetParam();
  auto partition_ranges = EvenRingPartition(num_partitions);
  // Disjoint cover by construction: verify with sampled keys.
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t h = rng.NextUint64();
    int owner = -1;
    for (int p = 0; p < num_partitions; ++p) {
      if (partition_ranges[p].Contains(h)) {
        ASSERT_EQ(owner, -1) << "hash in two partitions";
        owner = p;
      }
    }
    ASSERT_NE(owner, -1) << "hash in no partition";
    EXPECT_EQ(owner, RingSegmentOf(h, num_partitions));
  }
  // And each partition range maps to exactly one node segment when
  // partitions >= nodes and nodes divide partitions evenly.
  if (num_partitions % num_nodes == 0) {
    for (int p = 0; p < num_partitions; ++p) {
      int node_lo = RingSegmentOf(partition_ranges[p].lower, num_nodes);
      uint64_t last = partition_ranges[p].upper == 0
                          ? UINT64_MAX
                          : partition_ranges[p].upper - 1;
      EXPECT_EQ(node_lo, RingSegmentOf(last, num_nodes));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingCoverPropertyTest,
    ::testing::Values(std::make_pair(4, 4), std::make_pair(4, 8),
                      std::make_pair(4, 2), std::make_pair(3, 7),
                      std::make_pair(8, 256), std::make_pair(2, 64),
                      std::make_pair(1, 1)));

}  // namespace
}  // namespace fabric::vertica::sql
