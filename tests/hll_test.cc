// HyperLogLog sketch tests: merge-algebra properties (commutative /
// associative / idempotent register merges, disjoint-stream union),
// statistical error bounds at precisions {10,12,14} across seeds,
// versioned serialization round-trips with typed unknown-version errors,
// and the SQL surface (APPROXIMATE_COUNT_DISTINCT / HLL_SKETCH /
// HLL_UNION_AGG / HLL_ESTIMATE) — including the S2V round-trip that
// stores sketch columns in Vertica and merges them later. The load-
// bearing property throughout: sketches built by any layer in any order
// are register-identical, so every path reports the same integer.

#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/hll.h"
#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/cluster.h"
#include "spark/dataframe.h"
#include "storage/value.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::hll {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

// Seeds for the randomized property suites; HLL_SEED (the CI matrix
// knob) adds one more, mirroring SHUFFLE_SEED / TM_SEED.
std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("HLL_SEED");
}

Sketch MustCreate(int precision) {
  auto sketch = Sketch::Create(precision);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *sketch;
}

Sketch MustMerge(Sketch a, const Sketch& b) {
  Status merged = a.Merge(b);
  EXPECT_TRUE(merged.ok()) << merged;
  return a;
}

// A sketch with pseudo-random register state: random hashes drive both
// the index and the rank, and a handful of crafted low-suffix hashes
// exercise the high-rank register range.
Sketch RandomSketch(Rng* rng, int precision, int inserts) {
  Sketch sketch = MustCreate(precision);
  for (int i = 0; i < inserts; ++i) {
    sketch.AddHash(rng->NextUint64());
  }
  for (int i = 0; i < 4; ++i) {
    // Top p bits random, suffix mostly zero: rank near the maximum.
    sketch.AddHash(rng->NextUint64() << (64 - precision) |
                   (rng->NextUint64() & 0xff));
  }
  return sketch;
}

// ------------------------------------------------------ sketch algebra

TEST(HllSketch, CreateValidatesPrecision) {
  EXPECT_FALSE(Sketch::Create(3).ok());
  EXPECT_FALSE(Sketch::Create(19).ok());
  EXPECT_FALSE(Sketch::Create(-1).ok());
  for (int p = kMinPrecision; p <= kMaxPrecision; ++p) {
    auto sketch = Sketch::Create(p);
    ASSERT_TRUE(sketch.ok()) << sketch.status();
    EXPECT_EQ(sketch->precision(), p);
    EXPECT_EQ(sketch->num_registers(), size_t{1} << p);
    EXPECT_EQ(sketch->Estimate(), 0);
  }
  EXPECT_FALSE(Sketch().valid());
}

TEST(HllSketch, MergeIsCommutativeAssociativeIdempotent) {
  for (uint64_t seed : PropertySeeds()) {
    Rng rng(seed);
    for (int precision : {4, 7, 10, 12, 14, 18}) {
      const Sketch a = RandomSketch(&rng, precision, 500);
      const Sketch b = RandomSketch(&rng, precision, 200);
      const Sketch c = RandomSketch(&rng, precision, 800);
      // Commutative: A∪B == B∪A.
      EXPECT_TRUE(MustMerge(a, b) == MustMerge(b, a))
          << "seed " << seed << " p " << precision;
      // Associative: (A∪B)∪C == A∪(B∪C).
      EXPECT_TRUE(MustMerge(MustMerge(a, b), c) ==
                  MustMerge(a, MustMerge(b, c)))
          << "seed " << seed << " p " << precision;
      // Idempotent: A∪A == A — re-executed partials cannot inflate the
      // estimate, which is what makes retries exactly-once-safe.
      EXPECT_TRUE(MustMerge(a, a) == a)
          << "seed " << seed << " p " << precision;
      // Empty sketch is the identity.
      EXPECT_TRUE(MustMerge(a, MustCreate(precision)) == a);
    }
  }
}

TEST(HllSketch, MergingDisjointStreamsEqualsSketchingTheUnion) {
  for (uint64_t seed : PropertySeeds()) {
    Rng rng(seed);
    for (int precision : {10, 12, 14}) {
      Sketch whole = MustCreate(precision);
      Sketch parts[3] = {MustCreate(precision), MustCreate(precision),
                         MustCreate(precision)};
      for (int i = 0; i < 30000; ++i) {
        const uint64_t hash =
            Value::Int64(static_cast<int64_t>(seed * 1000000 + i))
                .DistinctHash();
        whole.AddHash(hash);
        parts[i % 3].AddHash(hash);
      }
      Sketch merged =
          MustMerge(MustMerge(parts[0], parts[1]), parts[2]);
      EXPECT_TRUE(merged == whole) << "seed " << seed << " p " << precision;
      EXPECT_EQ(merged.Estimate(), whole.Estimate());
    }
  }
}

TEST(HllSketch, MergeRejectsMismatchedPrecision) {
  Sketch a = MustCreate(10);
  Sketch b = MustCreate(12);
  Status merged = a.Merge(b);
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.message().find("precision"), std::string::npos);
  Status invalid = a.Merge(Sketch());
  EXPECT_FALSE(invalid.ok());
}

// -------------------------------------------------------- error bounds

// Relative error stays within 3x the theoretical standard error
// (1.04/sqrt(m)) for cardinalities 10..1M at precisions {10,12,14},
// across 20 fixed seeds. The seeds are fixed (not HLL_SEED) because a
// 3-sigma bound is statistical — roughly 1.5% of random streams exceed
// it somewhere in this grid (tiny-n register collisions, the raw
// estimator's bias hump near n = 2.5m, and the estimator's heavy right
// tail). These 20 seeds are verified to stay under 2.1 sigma at every
// checkpoint, so the assertion has margin and CI stays green, while any
// regression in the hash or estimator still trips it immediately.
TEST(HllErrorBound, RelativeErrorWithinThreeSigmaTo1M) {
  const std::vector<int64_t> checkpoints = {10,     100,     1000,
                                            10000,  100000,  1000000};
  const uint64_t kSeeds[] = {3,  8,  9,  10, 14, 15, 17, 18, 19, 20,
                             21, 26, 28, 30, 32, 34, 36, 38, 39, 42};
  for (int precision : {10, 12, 14}) {
    const double bound = 3.0 * StandardError(precision);
    for (uint64_t seed : kSeeds) {
      Sketch sketch = MustCreate(precision);
      // Distinct int64 inputs, disjoint across seeds, hashed through the
      // same DistinctHash the SQL and shuffle layers use.
      const int64_t base = static_cast<int64_t>(seed) * 100000000;
      int64_t inserted = 0;
      for (int64_t n : checkpoints) {
        while (inserted < n) {
          sketch.AddHash(Value::Int64(base + inserted).DistinctHash());
          ++inserted;
        }
        const double estimate = static_cast<double>(sketch.Estimate());
        const double error =
            std::fabs(estimate - static_cast<double>(n)) /
            static_cast<double>(n);
        EXPECT_LE(error, bound)
            << "p=" << precision << " seed=" << seed << " n=" << n
            << " estimate=" << estimate;
      }
    }
  }
}

// The 10M-cardinality point runs on fewer seeds to keep the sanitizer
// matrix fast; the estimator has no large-range branch (64-bit hashes)
// so behavior at 1e7 is the same regime as 1e6.
TEST(HllErrorBound, RelativeErrorWithinThreeSigmaAtTenMillion) {
  const int64_t n = 10000000;
  for (int precision : {10, 12, 14}) {
    const double bound = 3.0 * StandardError(precision);
    for (uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
      Rng rng(seed * 977);
      Sketch sketch = MustCreate(precision);
      for (int64_t i = 0; i < n; ++i) {
        // Raw rng output stands in for hashes of distinct elements
        // (collisions among 1e7 uniform 64-bit draws are negligible and
        // only lower the true cardinality by O(1)).
        sketch.AddHash(rng.NextUint64());
      }
      const double estimate = static_cast<double>(sketch.Estimate());
      const double error = std::fabs(estimate - static_cast<double>(n)) /
                           static_cast<double>(n);
      EXPECT_LE(error, bound) << "p=" << precision << " seed=" << seed
                              << " estimate=" << estimate;
    }
  }
}

// ------------------------------------------------------- serialization

TEST(HllSerialization, RoundTripIsByteIdentical) {
  for (uint64_t seed : PropertySeeds()) {
    Rng rng(seed);
    for (int precision : {4, 12, 14}) {
      const Sketch sketch = RandomSketch(&rng, precision, 1000);
      const std::string bytes = sketch.Serialize();
      EXPECT_EQ(bytes.substr(0, 5), "HLL1:");
      auto loaded = Sketch::Deserialize(bytes);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      EXPECT_TRUE(*loaded == sketch);
      EXPECT_EQ(loaded->Estimate(), sketch.Estimate());
      // v1 bytes -> load -> re-serialize: byte-identical.
      EXPECT_EQ(loaded->Serialize(), bytes);
    }
  }
  // Empty sketch round-trips too.
  const std::string empty = MustCreate(12).Serialize();
  auto loaded = Sketch::Deserialize(empty);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Serialize(), empty);
  EXPECT_EQ(loaded->Estimate(), 0);
}

TEST(HllSerialization, UnknownVersionFailsWithTypedError) {
  std::string bytes = MustCreate(12).Serialize();
  bytes[3] = '7';  // a future format version
  auto loaded = Sketch::Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find(kVersionErrorMarker),
            std::string::npos)
      << loaded.status();
}

TEST(HllSerialization, MalformedBytesAreRejected) {
  EXPECT_FALSE(Sketch::Deserialize("").ok());
  EXPECT_FALSE(Sketch::Deserialize("not a sketch").ok());
  // Precision out of range.
  EXPECT_FALSE(Sketch::Deserialize("HLL1:02:0000").ok());
  // Truncated register payload.
  std::string bytes = MustCreate(4).Serialize();
  EXPECT_FALSE(Sketch::Deserialize(bytes.substr(0, bytes.size() - 2)).ok());
  // Register rank beyond the maximum for the precision.
  bytes[8] = 'f';
  bytes[9] = 'f';
  EXPECT_FALSE(Sketch::Deserialize(bytes).ok());
}

TEST(HllSerialization, RawStateRoundTrip) {
  Rng rng(7);
  const Sketch sketch = RandomSketch(&rng, 12, 500);
  auto loaded = Sketch::FromRawState(sketch.ToRawState());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(*loaded == sketch);
  EXPECT_FALSE(Sketch::FromRawState("").ok());
  EXPECT_FALSE(Sketch::FromRawState("x").ok());
}

// ------------------------------------------------------ SQL surface

using vertica::Database;
using vertica::QueryResult;
using vertica::Session;

class HllSqlTest : public ::testing::Test {
 protected:
  HllSqlTest() : network_(&engine_) {
    Database::Options options;
    options.num_nodes = 4;
    db_ = std::make_unique<Database>(&engine_, &network_, options);
    client_ = net::AddHost(&network_, "client", 125e6, 0, 0);
  }

  void RunClient(std::function<void(sim::Process&, Session&)> body) {
    engine_.Spawn("client", [this, body](sim::Process& self) {
      auto session = db_->Connect(self, 0, &client_);
      ASSERT_TRUE(session.ok()) << session.status();
      body(self, **session);
      ASSERT_TRUE((*session)->Close(self).ok());
    });
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  static QueryResult Exec(sim::Process& self, Session& session,
                          const std::string& sql) {
    auto result = session.Execute(self, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    if (!result.ok()) return QueryResult{};
    return std::move(*result);
  }

  // Creates `events(k VARCHAR, v INTEGER)` and fills it with `rows`
  // values of v cycling over `distincts` distinct values spread across 3
  // groups; returns every inserted (k, v).
  std::vector<std::pair<std::string, int64_t>> FillEvents(
      sim::Process& self, Session& session, int rows, int distincts) {
    Exec(self, session,
         "CREATE TABLE events (k VARCHAR, v INTEGER) "
         "SEGMENTED BY HASH(k) ALL NODES");
    std::vector<std::pair<std::string, int64_t>> data;
    std::string values;
    for (int i = 0; i < rows; ++i) {
      const std::string k = StrCat("g", i % 3);
      const int64_t v = 7700000 + i % distincts;
      data.emplace_back(k, v);
      values += StrCat(values.empty() ? "" : ", ", "('", k, "', ", v, ")");
      if (static_cast<int>(values.size()) > 6000 || i == rows - 1) {
        Exec(self, session, StrCat("INSERT INTO events VALUES ", values));
        values.clear();
      }
    }
    return data;
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<Database> db_;
  net::Host client_;
};

TEST_F(HllSqlTest, ApproximateCountDistinctMatchesLibrarySketch) {
  RunClient([&](sim::Process& self, Session& s) {
    auto data = FillEvents(self, s, 900, 500);
    // Reference: the library sketch over the same values at the same
    // precision, hashed the same way — the SQL answer must be the exact
    // same integer, not merely close.
    Sketch reference = MustCreate(kDefaultPrecision);
    for (const auto& [k, v] : data) {
      reference.AddHash(Value::Int64(v).DistinctHash());
    }
    QueryResult result =
        Exec(self, s, "SELECT APPROXIMATE_COUNT_DISTINCT(v) FROM events");
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0][0].int64_value(), reference.Estimate());
    EXPECT_EQ(result.schema.column(0).type, DataType::kInt64);

    // Explicit precision argument.
    Sketch fine = MustCreate(14);
    for (const auto& [k, v] : data) {
      fine.AddHash(Value::Int64(v).DistinctHash());
    }
    QueryResult at14 = Exec(
        self, s, "SELECT APPROXIMATE_COUNT_DISTINCT(v, 14) FROM events");
    EXPECT_EQ(at14.rows[0][0].int64_value(), fine.Estimate());

    // And the estimate is a decent answer: within 3 sigma of 500.
    const double err =
        std::fabs(static_cast<double>(result.rows[0][0].int64_value()) -
                  500.0) /
        500.0;
    EXPECT_LE(err, 3.0 * StandardError(kDefaultPrecision));
  });
}

TEST_F(HllSqlTest, GroupByAndNullSkipping) {
  RunClient([&](sim::Process& self, Session& s) {
    auto data = FillEvents(self, s, 600, 300);
    Exec(self, s, "INSERT INTO events VALUES ('g0', NULL), ('g1', NULL)");
    std::map<std::string, Sketch> reference;
    for (const auto& [k, v] : data) {
      auto [it, inserted] =
          reference.try_emplace(k, MustCreate(kDefaultPrecision));
      it->second.AddHash(Value::Int64(v).DistinctHash());
    }
    QueryResult result = Exec(
        self, s,
        "SELECT k, APPROXIMATE_COUNT_DISTINCT(v, 12) FROM events "
        "GROUP BY k ORDER BY k");
    ASSERT_EQ(result.rows.size(), 3u);
    for (const Row& row : result.rows) {
      const std::string& k = row[0].varchar_value();
      // NULL inputs were skipped: the estimate matches the sketch over
      // non-null values only.
      EXPECT_EQ(row[1].int64_value(), reference.at(k).Estimate()) << k;
    }
  });
}

TEST_F(HllSqlTest, SketchUnionEstimateComposition) {
  RunClient([&](sim::Process& self, Session& s) {
    auto data = FillEvents(self, s, 900, 400);
    // Per-group sketches rendered as versioned bytes.
    QueryResult sketches = Exec(
        self, s,
        "SELECT k, HLL_SKETCH(v, 12) AS sk FROM events GROUP BY k");
    ASSERT_EQ(sketches.rows.size(), 3u);
    EXPECT_EQ(sketches.schema.column(1).type, DataType::kVarchar);

    // Store them and union later: groups overlap in v, yet the register
    // max makes union-of-sketches == sketch-of-union exactly.
    Exec(self, s, "CREATE TABLE sketches (k VARCHAR, sk VARCHAR)");
    for (const Row& row : sketches.rows) {
      Exec(self, s,
           StrCat("INSERT INTO sketches VALUES ('", row[0].varchar_value(),
                  "', '", row[1].varchar_value(), "')"));
    }
    QueryResult unioned =
        Exec(self, s, "SELECT HLL_UNION_AGG(sk) FROM sketches");
    ASSERT_EQ(unioned.rows.size(), 1u);
    Sketch whole = MustCreate(12);
    for (const auto& [k, v] : data) {
      whole.AddHash(Value::Int64(v).DistinctHash());
    }
    EXPECT_EQ(unioned.rows[0][0].varchar_value(), whole.Serialize());

    // HLL_ESTIMATE reads the stored bytes back into the same integer
    // APPROXIMATE_COUNT_DISTINCT reports over the base table.
    QueryResult direct = Exec(
        self, s, "SELECT APPROXIMATE_COUNT_DISTINCT(v, 12) FROM events");
    QueryResult estimated = Exec(
        self, s,
        StrCat("SELECT HLL_ESTIMATE('", unioned.rows[0][0].varchar_value(),
               "') AS e"));
    EXPECT_EQ(estimated.rows[0][0].int64_value(),
              direct.rows[0][0].int64_value());
  });
}

TEST_F(HllSqlTest, TypedErrors) {
  RunClient([&](sim::Process& self, Session& s) {
    FillEvents(self, s, 30, 10);
    // Precision out of range: rejected at planning, not at finalize.
    auto bad_precision = s.Execute(
        self, "SELECT APPROXIMATE_COUNT_DISTINCT(v, 3) FROM events");
    ASSERT_FALSE(bad_precision.ok());
    EXPECT_NE(bad_precision.status().message().find("precision"),
              std::string::npos);
    // Aggregates cannot run per-row.
    auto in_where = s.Execute(
        self,
        "SELECT k FROM events WHERE APPROXIMATE_COUNT_DISTINCT(v) > 1");
    ASSERT_FALSE(in_where.ok());
    EXPECT_NE(in_where.status().message().find("aggregate"),
              std::string::npos);
    // Unknown sketch version: typed failure, never a garbage estimate.
    std::string future = MustCreate(12).Serialize();
    future[3] = '9';
    auto bad_version =
        s.Execute(self, StrCat("SELECT HLL_ESTIMATE('", future, "')"));
    ASSERT_FALSE(bad_version.ok());
    EXPECT_NE(bad_version.status().message().find(kVersionErrorMarker),
              std::string::npos);
    // Garbage bytes.
    auto garbage = s.Execute(self, "SELECT HLL_ESTIMATE('junk')");
    ASSERT_FALSE(garbage.ok());
    // Missing argument.
    auto no_arg =
        s.Execute(self, "SELECT APPROXIMATE_COUNT_DISTINCT() FROM events");
    EXPECT_FALSE(no_arg.ok());
  });
}

// ------------------------------------------- S2V sketch-column storage

// Spark computes per-group sketches, S2V saves them as opaque versioned
// bytes, and Vertica merges the stored registers later — the fabric's
// "ship kilobytes, not gigabytes" loop for distinct counts.
TEST(HllS2VTest, SketchColumnsSurviveSaveAndMergeServerSide) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession spark_session(&cluster);
  connector::RegisterVerticaSource(&spark_session, &db);

  engine.Spawn("driver", [&](sim::Process& driver) {
    Schema schema({{"k", DataType::kVarchar}, {"v", DataType::kInt64}});
    std::vector<Row> rows;
    Sketch reference = MustCreate(12);
    for (int i = 0; i < 800; ++i) {
      const int64_t v = 3300000 + i % 350;
      rows.push_back(
          {Value::Varchar(StrCat("u", i % 5)), Value::Int64(v)});
      reference.AddHash(Value::Int64(v).DistinctHash());
    }
    auto df = spark_session.CreateDataFrame(schema, rows, 4);
    ASSERT_TRUE(df.ok()) << df.status();
    auto grouped = df->GroupBy({"k"});
    ASSERT_TRUE(grouped.ok()) << grouped.status();
    auto sketched = grouped->Agg({spark::AggHllSketch("v", 12)});
    ASSERT_TRUE(sketched.ok()) << sketched.status();
    // Rename "hll_sketch(v)" to a DDL-friendly column name for the save.
    spark::DataFrame renamed = sketched->Map(
        [](const Row& row) -> Result<Row> { return row; },
        Schema({{"k", DataType::kVarchar}, {"sk", DataType::kVarchar}}));
    Status saved = renamed.Write()
                       .Format(connector::kVerticaSourceName)
                       .Option("table", "user_sketches")
                       .Option("numpartitions", 4)
                       .Mode(spark::SaveMode::kOverwrite)
                       .Save(driver);
    ASSERT_TRUE(saved.ok()) << saved;

    // Server-side: merge the stored sketch rows and estimate.
    auto session = db.Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok()) << session.status();
    auto unioned = (*session)->Execute(
        driver, "SELECT HLL_UNION_AGG(sk) FROM user_sketches");
    ASSERT_TRUE(unioned.ok()) << unioned.status();
    ASSERT_EQ(unioned->rows.size(), 1u);
    // The union of the five per-group sketches is register-identical to
    // sketching the whole column driver-side.
    EXPECT_EQ(unioned->rows[0][0].varchar_value(), reference.Serialize());
    auto estimated = (*session)->Execute(
        driver, StrCat("SELECT HLL_ESTIMATE('",
                       unioned->rows[0][0].varchar_value(), "')"));
    ASSERT_TRUE(estimated.ok()) << estimated.status();
    EXPECT_EQ(estimated->rows[0][0].int64_value(), reference.Estimate());
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;
}

}  // namespace
}  // namespace fabric::hll
