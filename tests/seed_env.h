#ifndef FABRIC_TESTS_SEED_ENV_H_
#define FABRIC_TESTS_SEED_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace fabric::testing {

// Seeds for the randomized property suites. Every suite starts from the
// same fixed trio so plain local runs are deterministic and fast; the CI
// seed matrix appends one more seed through the suite's environment knob
// (KSAFETY_SEED, TM_SEED, SHUFFLE_SEED, HLL_SEED, PIPELINE_SEED,
// WM_SEED). `fallback_var` lets one matrix knob fan into a second suite
// (the Tuple Mover suite also picks up KSAFETY_SEED so both matrices
// exercise it).
inline std::vector<uint64_t> PropertySeeds(
    const char* env_var, const char* fallback_var = nullptr) {
  std::vector<uint64_t> seeds = {11, 23, 47};
  const char* env = std::getenv(env_var);
  if (env == nullptr && fallback_var != nullptr) {
    env = std::getenv(fallback_var);
  }
  if (env != nullptr) {
    seeds.push_back(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
  }
  return seeds;
}

}  // namespace fabric::testing

#endif  // FABRIC_TESTS_SEED_ENV_H_
