// Workload manager tests: named hierarchical resource pools with
// priority admission queues, cascade borrowing, per-query memory grants
// and typed RESOURCE_EXHAUSTED errors; byte-identical results and (non-
// "wm") event traces with the manager on vs off; byte-identical GROUP
// BY / join results when tiny grants force grace-hash spilling on both
// engines; no admission deadlock under randomized pool topologies with
// node kills; bounded priority inversion; the MAX_CLIENT_SESSIONS typed
// error with connector backoff-retry; pool tagging through session
// options; and the v_monitor.resource_pool_status / resource_queues
// system tables.

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "connector/failover.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"
#include "vertica/wm/resource_pool.h"

namespace fabric::vertica::wm {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("WM_SEED");
}

// Serialized result rows: the byte-identity witness for WM-on/off and
// spill/no-spill comparisons.
std::string RowsToString(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (const Value& value : row) out += value.ToSqlLiteral() + ",";
    out += "\n";
  }
  return out;
}

// Event fingerprint without "wm"-category events and without tracer
// sequence numbers (wm events consume seqs, shifting later events').
std::string NonWmEvents(const obs::Tracer& tracer) {
  std::string out;
  for (const obs::Event& event : tracer.events()) {
    if (event.category == "wm") continue;
    out += StrCat(event.time, "|", static_cast<int>(event.phase), "|",
                  event.category, "|", event.name);
    for (const obs::Attr& attr : event.attrs) {
      out += StrCat("|", attr.key, "=", attr.value.ToJson());
    }
    out += "\n";
  }
  return out;
}

int64_t WmEventCount(const obs::Tracer& tracer) {
  int64_t count = 0;
  for (const obs::Event& event : tracer.events()) {
    if (event.category == "wm") ++count;
  }
  return count;
}

// ------------------------------------------------- direct manager tests

PoolConfig MakePool(const std::string& name) {
  PoolConfig pool;
  pool.name = name;
  return pool;
}

TEST(WorkloadManagerTest, QueueTimeoutIsTypedAndBoundsTheWait) {
  sim::Engine engine;
  WorkloadConfig config;
  PoolConfig tight = MakePool("tight");
  tight.max_concurrency = 1;
  tight.queue_timeout = 0.5;
  config.pools.push_back(tight);
  WorkloadManager wm(&engine, config, /*num_nodes=*/1);

  Status second_status;
  double second_failed_at = -1;
  engine.Spawn("holder", [&](sim::Process& self) {
    auto grant = wm.Admit(self, 0, "tight", 0);
    ASSERT_TRUE(grant.ok()) << grant.status();
    ASSERT_TRUE(self.Sleep(10.0).ok());
    wm.Release(*grant);
  });
  engine.Spawn("waiter", [&](sim::Process& self) {
    ASSERT_TRUE(self.Sleep(0.1).ok());
    auto grant = wm.Admit(self, 0, "tight", 0);
    second_status = grant.status();
    second_failed_at = self.Now();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_FALSE(second_status.ok());
  EXPECT_TRUE(IsQueueTimeoutError(second_status)) << second_status;
  EXPECT_EQ(second_status.code(), StatusCode::kResourceExhausted);
  // Queued at 0.1 with a 0.5s timeout: fails at exactly 0.6 virtual s.
  EXPECT_DOUBLE_EQ(second_failed_at, 0.6);
}

TEST(WorkloadManagerTest, OversizedRequestFailsFastWithTypedError) {
  sim::Engine engine;
  WorkloadConfig config;
  PoolConfig small = MakePool("small");
  small.memory_budget = 100;
  config.pools.push_back(small);
  WorkloadManager wm(&engine, config, 1);

  engine.Spawn("asker", [&](sim::Process& self) {
    auto grant = wm.Admit(self, 0, "small", 1000);
    ASSERT_FALSE(grant.ok());
    EXPECT_EQ(grant.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(grant.status().message().find(kRequestExceedsPoolToken),
              std::string::npos)
        << grant.status();
    EXPECT_FALSE(IsQueueTimeoutError(grant.status()));
    // Rejected immediately, not after a queue wait.
    EXPECT_DOUBLE_EQ(self.Now(), 0.0);
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(wm.PoolStatusRows()[wm.PoolIndex("small").value()].rejected, 1);
}

TEST(WorkloadManagerTest, CascadeBorrowsFromParentWhenFull) {
  sim::Engine engine;
  WorkloadConfig config;
  PoolConfig general = MakePool("general");
  general.max_concurrency = 2;
  config.pools.push_back(general);
  PoolConfig etl = MakePool("etl");
  etl.cascade_to = "general";
  etl.max_concurrency = 1;
  config.pools.push_back(etl);
  WorkloadManager wm(&engine, config, 1);

  engine.Spawn("loads", [&](sim::Process& self) {
    auto first = wm.Admit(self, 0, "etl", 0);
    auto second = wm.Admit(self, 0, "etl", 0);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    // Both granted without queueing (zero virtual time)...
    EXPECT_DOUBLE_EQ(self.Now(), 0.0);
    // ...the first from etl itself, the second borrowed from general.
    int etl_index = wm.PoolIndex("etl").value();
    int general_index = wm.PoolIndex("general").value();
    EXPECT_EQ(first->pool, etl_index);
    EXPECT_EQ(second->origin, etl_index);
    EXPECT_EQ(second->pool, general_index);
    wm.Release(*first);
    wm.Release(*second);
  });
  ASSERT_TRUE(engine.Run().ok());
  int64_t borrowed = 0;
  for (const auto& row : wm.PoolStatusRows()) borrowed += row.borrowed;
  EXPECT_EQ(borrowed, 1);
  for (const auto& row : wm.PoolStatusRows()) {
    EXPECT_EQ(row.running, 0) << row.pool;
    EXPECT_DOUBLE_EQ(row.memory_inuse, 0) << row.pool;
  }
}

// A high-priority arrival overtakes earlier low-priority waiters at the
// next release: its inversion is bounded by one running grant, never by
// the queue depth ahead of it.
TEST(WorkloadManagerTest, PriorityInversionBoundedByOneRunningGrant) {
  sim::Engine engine;
  WorkloadConfig config;
  PoolConfig shared = MakePool("shared");
  shared.memory_budget = 150;  // one 100-byte grant at a time
  config.pools.push_back(shared);
  PoolConfig high = MakePool("high");
  high.priority = 10;
  high.memory_budget = 1;  // never fits locally: always borrows
  high.cascade_to = "shared";
  config.pools.push_back(high);
  PoolConfig low = MakePool("low");
  low.priority = 0;
  low.memory_budget = 1;
  low.cascade_to = "shared";
  config.pools.push_back(low);
  WorkloadManager wm(&engine, config, 1);

  std::vector<std::string> grant_order;
  auto spawn = [&](const char* name, const char* pool, double start,
                   double hold) {
    engine.Spawn(name, [&wm, &grant_order, name, pool, start,
                        hold](sim::Process& self) {
      ASSERT_TRUE(self.Sleep(start).ok());
      auto grant = wm.Admit(self, 0, pool, 100);
      ASSERT_TRUE(grant.ok()) << grant.status();
      grant_order.push_back(StrCat(name, "@", self.Now()));
      ASSERT_TRUE(self.Sleep(hold).ok());
      wm.Release(*grant);
    });
  };
  spawn("low0", "low", 0.0, 0.3);    // granted at 0, releases at 0.3
  spawn("low1", "low", 0.1, 0.2);    // queues first...
  spawn("low2", "low", 0.15, 0.2);   // ...and second...
  spawn("high0", "high", 0.2, 0.2);  // ...but high overtakes both
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_EQ(grant_order.size(), 4u);
  EXPECT_EQ(grant_order[0], "low0@0");
  // high0 waited 0.1s (one running grant), not behind low1/low2.
  EXPECT_EQ(grant_order[1], "high0@0.3");
  EXPECT_EQ(grant_order[2], "low1@0.5");
  EXPECT_EQ(grant_order[3], "low2@0.7");
}

TEST(WorkloadManagerTest, NodeDownFailsQueuedWaitersUnavailable) {
  sim::Engine engine;
  WorkloadConfig config;
  PoolConfig tight = MakePool("tight");
  tight.max_concurrency = 1;
  config.pools.push_back(tight);
  WorkloadManager wm(&engine, config, 2);

  Status queued_status;
  engine.Spawn("holder", [&](sim::Process& self) {
    auto grant = wm.Admit(self, 0, "tight", 0);
    ASSERT_TRUE(grant.ok());
    ASSERT_TRUE(self.Sleep(1.0).ok());
    wm.Release(*grant);
  });
  engine.Spawn("waiter", [&](sim::Process& self) {
    ASSERT_TRUE(self.Sleep(0.1).ok());
    queued_status = wm.Admit(self, 0, "tight", 0).status();
  });
  engine.Spawn("killer", [&](sim::Process& self) {
    ASSERT_TRUE(self.Sleep(0.2).ok());
    wm.OnNodeDown(0);
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(queued_status.code(), StatusCode::kUnavailable)
      << queued_status;
}

// Random pool topologies (random cascade chains, budgets, concurrency
// caps, timeouts) under a random admit/hold/release workload with a
// mid-run node kill: every request must reach a terminal outcome — no
// admission deadlock — and all accounting must return to zero.
TEST(WorkloadManagerTest, RandomTopologyNoDeadlockUnderNodeKills) {
  for (uint64_t seed : PropertySeeds()) {
    Rng rng(seed);
    sim::Engine engine;
    WorkloadConfig config;
    const int num_pools = 2 + static_cast<int>(rng.NextUint64() % 4);
    for (int i = 0; i < num_pools; ++i) {
      PoolConfig pool = MakePool(StrCat("p", i));
      if (i > 0 && rng.NextUint64() % 2 == 0) {
        pool.cascade_to =
            StrCat("p", static_cast<int>(rng.NextUint64() %
                                         static_cast<uint64_t>(i)));
      }
      pool.priority = static_cast<int>(rng.NextUint64() % 3) * 5;
      pool.max_concurrency = static_cast<int>(rng.NextUint64() % 3);
      if (rng.NextUint64() % 2 == 0) {
        pool.memory_budget = 200 + static_cast<double>(rng.NextUint64() % 800);
      }
      if (rng.NextUint64() % 2 == 0) {
        pool.queue_timeout = 0.5 + static_cast<double>(rng.NextUint64() % 4);
      }
      config.pools.push_back(pool);
    }
    const int num_nodes = 3;
    WorkloadManager wm(&engine, config, num_nodes);

    const int num_workers = 40;
    int completed = 0;
    for (int w = 0; w < num_workers; ++w) {
      const uint64_t worker_seed = seed * 1000 + static_cast<uint64_t>(w);
      engine.Spawn(StrCat("worker", w), [&, worker_seed](sim::Process& self) {
        Rng wrng(worker_seed);
        for (int round = 0; round < 3; ++round) {
          ASSERT_TRUE(
              self.Sleep(static_cast<double>(wrng.NextUint64() % 100) / 100)
                  .ok());
          int node = static_cast<int>(wrng.NextUint64() %
                                      static_cast<uint64_t>(num_nodes));
          // Occasionally an unknown pool: must fail typed, not hang.
          std::string pool =
              wrng.NextUint64() % 10 == 0
                  ? "nosuchpool"
                  : StrCat("p", static_cast<int>(
                                    wrng.NextUint64() %
                                    static_cast<uint64_t>(num_pools)));
          double memory = static_cast<double>(wrng.NextUint64() % 300);
          auto grant = wm.Admit(self, node, pool, memory);
          if (grant.ok()) {
            ASSERT_TRUE(
                self.Sleep(0.01 + static_cast<double>(
                                      wrng.NextUint64() % 20) /
                                      100)
                    .ok());
            wm.Release(*grant);
          }
        }
        ++completed;
      });
    }
    engine.Spawn("killer", [&](sim::Process& self) {
      ASSERT_TRUE(self.Sleep(0.5).ok());
      wm.OnNodeDown(1);
    });
    Status run = engine.Run();
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": " << run;
    EXPECT_EQ(completed, num_workers) << "seed " << seed;
    for (const auto& row : wm.PoolStatusRows()) {
      EXPECT_EQ(row.running, 0) << "seed " << seed << " " << row.pool;
      EXPECT_EQ(row.queued, 0) << "seed " << seed << " " << row.pool;
      EXPECT_DOUBLE_EQ(row.memory_inuse, 0)
          << "seed " << seed << " " << row.pool;
    }
    EXPECT_TRUE(wm.QueueRows().empty()) << "seed " << seed;
  }
}

// --------------------------------------------- end-to-end trace identity

struct WorkloadOutcome {
  std::string non_wm_events;
  int64_t wm_events = 0;
  std::string sql_rows;
  std::string spark_rows;
  double end_time = 0;
};

// One mixed workload — SQL GROUP BY, V2S read, S2V overwrite — driven
// sequentially so neither the legacy semaphore nor the WM ever queues.
WorkloadOutcome RunMixedWorkload(const WorkloadConfig& workload) {
  sim::Engine engine;
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 2;
  vopts.workload = workload;
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 2;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession spark(&cluster);
  connector::RegisterVerticaSource(&spark, &db);

  WorkloadOutcome outcome;
  engine.Spawn("driver", [&](sim::Process& driver) {
    auto session = db.Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)
                    ->Execute(driver,
                              "CREATE TABLE facts (region INTEGER, "
                              "sales INTEGER) SEGMENTED BY HASH(region) "
                              "ALL NODES")
                    .ok());
    std::string values;
    for (int i = 0; i < 60; ++i) {
      values += StrCat(i ? ", " : "", "(", i % 7, ", ", i * 13 % 100, ")");
    }
    ASSERT_TRUE(
        (*session)
            ->Execute(driver, StrCat("INSERT INTO facts VALUES ", values))
            .ok());
    auto grouped = (*session)->Execute(
        driver,
        "SELECT region, COUNT(*), SUM(sales) FROM facts GROUP BY region "
        "ORDER BY region");
    ASSERT_TRUE(grouped.ok()) << grouped.status();
    outcome.sql_rows = RowsToString(grouped->rows);
    ASSERT_TRUE((*session)->Close(driver).ok());

    auto df = spark.Read()
                  .Format(connector::kVerticaSourceName)
                  .Option("table", "facts")
                  .Option("numpartitions", 2)
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    auto rows = df->Collect(driver);
    ASSERT_TRUE(rows.ok()) << rows.status();
    outcome.spark_rows = RowsToString(*rows);
    Status saved = df->Write()
                       .Format(connector::kVerticaSourceName)
                       .Option("table", "copy_out")
                       .Option("numpartitions", 2)
                       .Mode(spark::SaveMode::kOverwrite)
                       .Save(driver);
    ASSERT_TRUE(saved.ok()) << saved;
  });
  EXPECT_TRUE(engine.Run().ok());
  outcome.non_wm_events = NonWmEvents(tracer);
  outcome.wm_events = WmEventCount(tracer);
  outcome.end_time = engine.now();
  return outcome;
}

TEST(WorkloadTraceIdentityTest, UncontendedWmMatchesWmOffByteForByte) {
  WorkloadOutcome off = RunMixedWorkload(WorkloadConfig{});
  WorkloadConfig pools;
  pools.pools.push_back(MakePool("general"));
  pools.pools.push_back(MakePool("etl"));
  WorkloadOutcome on = RunMixedWorkload(pools);

  // Same results, same virtual end time, and — aside from "wm" events —
  // the same event trace, byte for byte.
  EXPECT_EQ(on.sql_rows, off.sql_rows);
  EXPECT_EQ(on.spark_rows, off.spark_rows);
  EXPECT_DOUBLE_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.non_wm_events, off.non_wm_events);
  EXPECT_GT(on.non_wm_events.size(), 1000u) << "trace suspiciously empty";
  // The WM-on run did route statements through admission...
  EXPECT_GT(on.wm_events, 0);
  // ...and the WM-off run has no workload manager at all.
  EXPECT_EQ(off.wm_events, 0);
}

// ----------------------------------------------------- spill identity

// GROUP BY through the SQL executor with a per-query grant far below the
// hash table's footprint: the aggregate must complete by spilling
// partitions to simulated local disk, byte-identical to the in-memory
// run.
TEST(SpillIdentityTest, SqlGroupBySpillsByteIdentically) {
  auto run = [](bool tiny_grant, double* spills_out) {
    sim::Engine engine;
    obs::Tracer tracer([&engine] { return engine.now(); });
    obs::ScopedTracer install(&tracer);
    net::Network network(&engine);
    Database::Options vopts;
    vopts.num_nodes = 2;
    if (tiny_grant) {
      PoolConfig tiny = MakePool("tiny");
      tiny.query_memory = 400;
      vopts.workload.pools.push_back(tiny);
    }
    Database db(&engine, &network, vopts);
    std::string rows;
    engine.Spawn("driver", [&](sim::Process& driver) {
      auto session = db.Connect(driver, 0, nullptr);
      ASSERT_TRUE(session.ok());
      if (tiny_grant) (*session)->set_resource_pool("tiny");
      ASSERT_TRUE((*session)
                      ->Execute(driver,
                                "CREATE TABLE facts (region INTEGER, "
                                "item INTEGER, sales INTEGER) SEGMENTED "
                                "BY HASH(region) ALL NODES")
                      .ok());
      std::string values;
      for (int i = 0; i < 300; ++i) {
        values += StrCat(i ? ", " : "", "(", i % 29, ", ", i, ", ",
                         i * 37 % 1000, ")");
      }
      ASSERT_TRUE(
          (*session)
              ->Execute(driver, StrCat("INSERT INTO facts VALUES ", values))
              .ok());
      auto grouped = (*session)->Execute(
          driver,
          "SELECT region, COUNT(*), SUM(sales), MIN(item), MAX(item) "
          "FROM facts GROUP BY region ORDER BY region");
      ASSERT_TRUE(grouped.ok()) << grouped.status();
      rows = RowsToString(grouped->rows);
    });
    EXPECT_TRUE(engine.Run().ok());
    *spills_out = tracer.metrics().counter("wm.spills");
    return rows;
  };
  double spills_off = 0, spills_on = 0;
  std::string rows_off = run(false, &spills_off);
  std::string rows_on = run(true, &spills_on);
  EXPECT_EQ(rows_on, rows_off);
  EXPECT_NE(rows_on, "");
  EXPECT_EQ(spills_off, 0);
  EXPECT_GT(spills_on, 0) << "tiny grant did not force spilling";
}

// The shuffle engine's hash aggregate and hash join under a tiny task
// memory budget: both spill partitioned runs to the worker's local disk
// and return rows byte-identical to the unbudgeted run.
TEST(SpillIdentityTest, SparkAggregateAndJoinSpillByteIdentically) {
  auto run = [](double task_memory, double* spills_out) {
    sim::Engine engine;
    obs::Tracer tracer([&engine] { return engine.now(); });
    obs::ScopedTracer install(&tracer);
    net::Network network(&engine);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 2;
    sopts.task_memory_bytes = task_memory;
    spark::SparkCluster cluster(&engine, &network, sopts);
    spark::SparkSession spark(&cluster);
    Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
    std::string agg_rows, join_rows;
    engine.Spawn("driver", [&](sim::Process& driver) {
      std::vector<Row> left, right;
      for (int i = 0; i < 400; ++i) {
        left.push_back({Value::Int64(i % 37), Value::Int64(i)});
      }
      for (int i = 0; i < 60; ++i) {
        right.push_back({Value::Int64(i % 37), Value::Int64(i * 11)});
      }
      auto ldf = spark.CreateDataFrame(schema, std::move(left), 4);
      auto rdf = spark.CreateDataFrame(schema, std::move(right), 4);
      ASSERT_TRUE(ldf.ok());
      ASSERT_TRUE(rdf.ok());
      auto agg = ldf->GroupBy({"k"})->Agg(
          {spark::AggCount(), spark::AggSum("v")});
      ASSERT_TRUE(agg.ok()) << agg.status();
      auto collected = agg->Collect(driver);
      ASSERT_TRUE(collected.ok()) << collected.status();
      agg_rows = RowsToString(*collected);
      auto joined = ldf->Join(*rdf, {"k"}, {"k"});
      ASSERT_TRUE(joined.ok()) << joined.status();
      auto joined_rows = joined->Collect(driver);
      ASSERT_TRUE(joined_rows.ok()) << joined_rows.status();
      join_rows = RowsToString(*joined_rows);
    });
    EXPECT_TRUE(engine.Run().ok());
    *spills_out = tracer.metrics().counter("spark.spills");
    return agg_rows + "----\n" + join_rows;
  };
  double spills_off = 0, spills_on = 0;
  std::string rows_off = run(0, &spills_off);
  std::string rows_on = run(600, &spills_on);
  EXPECT_EQ(rows_on, rows_off);
  EXPECT_NE(rows_on, "");
  EXPECT_EQ(spills_off, 0);
  EXPECT_GT(spills_on, 0) << "tiny task memory did not force spilling";
}

// ------------------------------------- sessions, tagging, system tables

TEST(WmSessionTest, MaxClientSessionsIsTypedAndFailoverBacksOff) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 1;
  vopts.max_client_sessions = 1;
  Database db(&engine, &network, vopts);

  engine.Spawn("first", [&](sim::Process& self) {
    auto held = db.Connect(self, 0, nullptr);
    ASSERT_TRUE(held.ok());
    // While the node is full, a direct connect fails with the typed
    // MAX_CLIENT_SESSIONS error...
    auto refused = db.Connect(self, 0, nullptr);
    ASSERT_FALSE(refused.ok());
    EXPECT_TRUE(IsMaxClientSessionsError(refused.status()))
        << refused.status();
    ASSERT_TRUE(self.Sleep(0.25).ok());
    ASSERT_TRUE((*held)->Close(self).ok());
  });
  engine.Spawn("second", [&](sim::Process& self) {
    ASSERT_TRUE(self.Sleep(0.01).ok());
    // ...while ConnectWithFailover retries the same node with
    // exponential backoff until the slot frees.
    auto session = connector::ConnectWithFailover(self, &db, 0, nullptr);
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_GE(self.Now(), 0.26);
    ASSERT_TRUE((*session)->Close(self).ok());
  });
  ASSERT_TRUE(engine.Run().ok());
}

TEST(WmSessionTest, PoolTaggingAndSystemTables) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 2;
  vopts.workload.pools.push_back(MakePool("general"));
  PoolConfig etl = MakePool("etl");
  etl.cascade_to = "general";
  vopts.workload.pools.push_back(etl);
  PoolConfig dashboard = MakePool("dashboard");
  dashboard.priority = 10;
  vopts.workload.pools.push_back(dashboard);
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 2;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession spark(&cluster);
  connector::RegisterVerticaSource(&spark, &db);

  engine.Spawn("driver", [&](sim::Process& driver) {
    auto session = db.Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok());
    (*session)->set_resource_pool("etl");
    ASSERT_TRUE((*session)
                    ->Execute(driver,
                              "CREATE TABLE t (a INTEGER, b INTEGER)")
                    .ok());
    ASSERT_TRUE(
        (*session)
            ->Execute(driver, "INSERT INTO t VALUES (1, 2), (3, 4)")
            .ok());

    // A V2S scan tagged to the dashboard pool admits there.
    auto df = spark.Read()
                  .Format(connector::kVerticaSourceName)
                  .Option("table", "t")
                  .Option("numpartitions", 2)
                  .Option("resource_pool", "dashboard")
                  .Load(driver);
    ASSERT_TRUE(df.ok()) << df.status();
    auto count = df->Count(driver);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 2);

    WorkloadManager* wm = db.workload_manager();
    ASSERT_NE(wm, nullptr);
    int64_t etl_admitted = 0, dashboard_admitted = 0;
    for (const auto& row : wm->PoolStatusRows()) {
      if (row.pool == "etl") etl_admitted += row.admitted;
      if (row.pool == "dashboard") dashboard_admitted += row.admitted;
    }
    EXPECT_GT(etl_admitted, 0);
    EXPECT_GT(dashboard_admitted, 0);

    // Both system tables answer through plain SQL.
    auto status_rows = (*session)->Execute(
        driver,
        "SELECT pool_name FROM v_monitor.resource_pool_status "
        "ORDER BY pool_name");
    ASSERT_TRUE(status_rows.ok()) << status_rows.status();
    std::set<std::string> pools;
    for (const Row& row : status_rows->rows) {
      pools.insert(row[0].varchar_value());
    }
    EXPECT_EQ(pools,
              (std::set<std::string>{"general", "etl", "dashboard"}));
    // 3 pools x 2 nodes.
    EXPECT_EQ(status_rows->rows.size(), 6u);
    auto queue_rows = (*session)->Execute(
        driver, "SELECT pool_name FROM v_monitor.resource_queues");
    ASSERT_TRUE(queue_rows.ok()) << queue_rows.status();
    EXPECT_TRUE(queue_rows->rows.empty());
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
  ASSERT_TRUE(engine.Run().ok());
}

}  // namespace
}  // namespace fabric::vertica::wm
