// Property tests for the vectorized scan engine: SegmentStore::Scan
// (min/max pruning, predicate kernels on encoded columns, selection
// vectors, late materialization) must agree exactly — rows, counters and
// cost profiles — with the row-at-a-time reference (ScanVisible + the
// SQL interpreter) across randomized schemas, encodings, null
// densities, delete-mark states and predicate shapes.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "storage/scan_kernels.h"
#include "storage/segment_store.h"
#include "vertica/sql_analyzer.h"
#include "vertica/sql_eval.h"
#include "vertica/sql_parser.h"

namespace fabric::vertica {
namespace {

using storage::DataProfile;
using storage::DataType;
using storage::Epoch;
using storage::Row;
using storage::Schema;
using storage::TxnId;
using storage::Value;

// ----------------------------------------------------- random tables

// Per-column data shape, chosen to exercise all three encodings via the
// size-based auto-chooser: long runs (RLE), shuffled low cardinality
// (dictionary), full-range random (plain).
enum class Shape { kRuns, kLowCard, kRandom };

Value RandomValue(Rng& rng, DataType type, Shape shape, double null_p,
                  int row) {
  if (rng.NextBool(null_p)) return Value::Null();
  switch (type) {
    case DataType::kInt64:
      switch (shape) {
        case Shape::kRuns:
          return Value::Int64((row / 17) % 7);
        case Shape::kLowCard:
          return Value::Int64(rng.NextInt64(0, 7));
        case Shape::kRandom:
          return Value::Int64(rng.NextInt64(-1000000, 1000000));
      }
      break;
    case DataType::kFloat64:
      switch (shape) {
        case Shape::kRuns:
          return Value::Float64(((row / 13) % 5) * 0.5);
        case Shape::kLowCard:
          return Value::Float64(rng.NextInt64(0, 7) * 0.25);
        case Shape::kRandom:
          return Value::Float64(rng.NextDouble());
      }
      break;
    case DataType::kVarchar:
      switch (shape) {
        case Shape::kRuns:
          return Value::Varchar(StrCat("run", (row / 11) % 6));
        case Shape::kLowCard:
          return Value::Varchar(StrCat("s", rng.NextInt64(0, 9)));
        case Shape::kRandom:
          return Value::Varchar(
              rng.NextString(1 + static_cast<int>(rng.NextUint64(12))));
      }
      break;
    case DataType::kBool:
      return Value::Bool(rng.NextBool(0.5));
  }
  return Value::Null();
}

struct RandomTable {
  Schema schema{std::vector<storage::ColumnDef>{}};
  std::vector<Shape> shapes;
  std::vector<double> null_p;
  std::unique_ptr<storage::SegmentStore> store;
  Epoch last_epoch = 0;
  std::vector<TxnId> open_txns;  // still pending at build end
};

// ASSERT-compatible (void) builder; on failure `t->store` stays null.
void BuildRandomTable(Rng& rng, RandomTable* out) {
  RandomTable& t = *out;
  // c0 is always a never-null int64 (hash/compare anchor); 2-4 more
  // columns of random type, shape and null density follow.
  std::vector<storage::ColumnDef> defs{{"c0", DataType::kInt64}};
  t.shapes.push_back(static_cast<Shape>(rng.NextUint64(3)));
  t.null_p.push_back(0);
  int extra = 2 + static_cast<int>(rng.NextUint64(3));
  const DataType kTypes[] = {DataType::kInt64, DataType::kFloat64,
                             DataType::kVarchar, DataType::kBool};
  const double kNullP[] = {0, 0.1, 0.5};
  for (int c = 1; c <= extra; ++c) {
    defs.push_back({StrCat("c", c), kTypes[rng.NextUint64(4)]});
    t.shapes.push_back(static_cast<Shape>(rng.NextUint64(3)));
    t.null_p.push_back(kNullP[rng.NextUint64(3)]);
  }
  t.schema = Schema(std::move(defs));
  t.store = std::make_unique<storage::SegmentStore>(t.schema);

  TxnId next_txn = 100;
  int batches = 2 + static_cast<int>(rng.NextUint64(3));
  int row_counter = 0;
  for (int b = 0; b < batches; ++b) {
    TxnId txn = next_txn++;
    int n = 30 + static_cast<int>(rng.NextUint64(90));
    std::vector<Row> rows;
    rows.reserve(n);
    for (int i = 0; i < n; ++i, ++row_counter) {
      Row row;
      for (int c = 0; c < t.schema.num_columns(); ++c) {
        row.push_back(RandomValue(rng, t.schema.column(c).type, t.shapes[c],
                                  t.null_p[c], row_counter));
      }
      rows.push_back(std::move(row));
    }
    if (rng.NextBool(0.6)) {
      ASSERT_TRUE(t.store->InsertPendingDirect(txn, std::move(rows)).ok())
          << "direct insert";
    } else {
      ASSERT_TRUE(t.store->InsertPending(txn, std::move(rows)).ok())
          << "wos insert";
    }
    double fate = rng.NextDouble();
    if (fate < 0.7) {
      t.store->CommitTxn(txn, ++t.last_epoch);
    } else if (fate < 0.85) {
      t.store->AbortTxn(txn);
    } else {
      t.open_txns.push_back(txn);
    }
    if (rng.NextBool(0.25)) {
      ASSERT_TRUE(t.store->Moveout().ok());
    }
  }

  // 0-2 delete rounds through the legacy row-at-a-time path, leaving a
  // mix of committed and pending delete marks behind.
  int deletes = static_cast<int>(rng.NextUint64(3));
  for (int d = 0; d < deletes; ++d) {
    TxnId txn = next_txn++;
    int64_t cut = rng.NextInt64(-5, 7);
    auto pred = [cut](const Row& row) {
      const Value& v = row[0];
      return !v.is_null() && v.int64_value() % 5 == cut % 5;
    };
    auto deleted = t.store->DeletePending(txn, t.last_epoch, pred);
    ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
    if (rng.NextBool(0.6)) {
      t.store->CommitTxn(txn, ++t.last_epoch);
    } else if (rng.NextBool(0.5)) {
      t.store->AbortTxn(txn);
    } else {
      t.open_txns.push_back(txn);
    }
  }
}

// ------------------------------------------------ predicate generation

// One random conjunct. Mixes kernel-compilable shapes (comparisons,
// IS [NOT] NULL, HASH ranges) with interpreter-only residual shapes
// (OR trees, arithmetic); all are error-free under strict evaluation.
std::string RandomConjunct(Rng& rng, const Schema& schema) {
  auto pick_column = [&](std::initializer_list<DataType> allowed) {
    for (int tries = 0; tries < 16; ++tries) {
      int c = static_cast<int>(rng.NextUint64(schema.num_columns()));
      for (DataType t : allowed) {
        if (schema.column(c).type == t) return c;
      }
    }
    return 0;  // c0 is int64
  };
  auto literal_for = [&](int c) -> std::string {
    switch (schema.column(c).type) {
      case DataType::kInt64:
        return StrCat(rng.NextInt64(-10, 10));
      case DataType::kFloat64:
        return StrCat(rng.NextInt64(0, 4), ".", rng.NextInt64(0, 9));
      default:
        return StrCat("'s", rng.NextInt64(0, 9), "'");
    }
  };
  const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
  switch (rng.NextUint64(6)) {
    case 0: {  // column <op> literal (compilable)
      int c = pick_column(
          {DataType::kInt64, DataType::kFloat64, DataType::kVarchar});
      return StrCat(schema.column(c).name, " ", kOps[rng.NextUint64(6)],
                    " ", literal_for(c));
    }
    case 1: {  // literal <op> column (compilable, flipped)
      int c = pick_column({DataType::kInt64, DataType::kFloat64});
      return StrCat(literal_for(c), " ", kOps[rng.NextUint64(6)], " ",
                    schema.column(c).name);
    }
    case 2: {  // IS [NOT] NULL (compilable)
      int c = static_cast<int>(rng.NextUint64(schema.num_columns()));
      return StrCat(schema.column(c).name,
                    rng.NextBool(0.5) ? " IS NULL" : " IS NOT NULL");
    }
    case 3: {  // HASH range (compilable, the V2S pushdown shape)
      std::string cols = "c0";
      if (rng.NextBool(0.4)) {
        int c = static_cast<int>(rng.NextUint64(schema.num_columns()));
        cols = StrCat(cols, ", ", schema.column(c).name);
      }
      const char* kRangeOps[] = {"=", "<", "<=", ">", ">="};
      return StrCat("HASH(", cols, ") ", kRangeOps[rng.NextUint64(5)], " ",
                    rng.NextInt64(int64_t{-4} << 60, int64_t{4} << 60));
    }
    case 4: {  // OR tree (residual)
      int a = pick_column({DataType::kInt64, DataType::kFloat64});
      int b = static_cast<int>(rng.NextUint64(schema.num_columns()));
      return StrCat("(", schema.column(a).name, " > ", literal_for(a),
                    " OR ", schema.column(b).name, " IS NULL)");
    }
    default: {  // arithmetic (residual)
      int c = pick_column({DataType::kInt64, DataType::kFloat64});
      return StrCat(schema.column(c).name, " + 1 > ", literal_for(c));
    }
  }
}

void CollectColumnRefs(const sql::Expr& expr, const Schema& schema,
                       std::set<int>* out) {
  if (expr.kind == sql::Expr::Kind::kColumnRef) {
    auto idx = schema.IndexOf(expr.column);
    ASSERT_TRUE(idx.ok()) << expr.column;
    out->insert(*idx);
    return;
  }
  for (const sql::ExprPtr& arg : expr.args) {
    CollectColumnRefs(*arg, schema, out);
  }
}

// Reference-side cost accounting: the per-row column composition the
// old scan loop charged (fields always count; bytes split by type).
void MeasureRowRef(const Row& row, const std::vector<int>& columns,
                   DataProfile* p) {
  for (int c : columns) {
    const Value& v = row[c];
    p->fields += 1;
    double size = v.RawSize();
    p->raw_bytes += size;
    if (!v.is_null() && v.type() == DataType::kVarchar) {
      p->string_bytes += size;
    } else {
      p->numeric_bytes += size;
    }
  }
}

// --------------------------------------------------------- the property

class ScanEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScanEngineProperty, VectorizedScanMatchesReference) {
  Rng rng(0xabc0 + GetParam());
  RandomTable t;
  BuildRandomTable(rng, &t);
  ASSERT_NE(t.store, nullptr);

  for (int query = 0; query < 8; ++query) {
    // Random snapshot: any epoch, sometimes through an open txn's eyes.
    Epoch as_of = rng.NextUint64(t.last_epoch + 1);
    TxnId txn = 0;
    if (!t.open_txns.empty() && rng.NextBool(0.4)) {
      txn = t.open_txns[rng.NextUint64(t.open_txns.size())];
    }

    // Random WHERE (sometimes absent) and projection.
    sql::ExprPtr where;
    int conjuncts = static_cast<int>(rng.NextUint64(4));  // 0 => no WHERE
    if (conjuncts > 0) {
      std::string text = RandomConjunct(rng, t.schema);
      for (int i = 1; i < conjuncts; ++i) {
        text = StrCat(text, " AND ", RandomConjunct(rng, t.schema));
      }
      auto parsed = sql::ParseExpression(text);
      ASSERT_TRUE(parsed.ok()) << text;
      where = std::move(parsed).value();
    }
    std::vector<int> projection;
    for (int c = 0; c < t.schema.num_columns(); ++c) {
      if (rng.NextBool(0.7)) projection.push_back(c);
    }
    bool all_columns = projection.empty() || rng.NextBool(0.3);
    std::vector<int> cost_columns;
    for (int c = 0; c < t.schema.num_columns(); ++c) {
      if (rng.NextBool(0.5)) cost_columns.push_back(c);
    }

    // Reference: row-at-a-time visibility + interpreter.
    std::vector<Row> ref_visible;
    Status walked = t.store->ScanVisible(
        as_of, txn, [&](const Row& row) -> Status {
          ref_visible.push_back(row);
          return Status::OK();
        });
    ASSERT_TRUE(walked.ok()) << walked.ToString();
    DataProfile ref_visible_profile;
    std::vector<Row> ref_rows;
    for (const Row& row : ref_visible) {
      MeasureRowRef(row, cost_columns, &ref_visible_profile);
      if (where != nullptr) {
        sql::EvalContext context;
        context.schema = &t.schema;
        context.row = &row;
        auto keep = sql::EvalPredicate(*where, context);
        ASSERT_TRUE(keep.ok()) << keep.status().ToString();
        if (!*keep) continue;
      }
      if (all_columns) {
        ref_rows.push_back(row);
      } else {
        Row masked(t.schema.num_columns());
        for (int c : projection) masked[c] = row[c];
        ref_rows.push_back(std::move(masked));
      }
    }
    ref_visible_profile.rows = static_cast<double>(ref_visible.size());

    // Vectorized: compile, scan, compare.
    sql::CompiledScan compiled;
    if (where != nullptr) {
      compiled = sql::CompileScanPredicate(*where, t.schema);
    }
    std::vector<int> residual_columns;
    if (compiled.residual != nullptr) {
      std::set<int> cols;
      CollectColumnRefs(*compiled.residual, t.schema, &cols);
      residual_columns.assign(cols.begin(), cols.end());
    }
    storage::ScanSpec spec;
    spec.as_of = as_of;
    spec.txn = txn;
    spec.predicate = &compiled.predicate;
    if (compiled.residual != nullptr) {
      spec.residual = [&](const Row& row) -> Result<bool> {
        sql::EvalContext context;
        context.schema = &t.schema;
        context.row = &row;
        return sql::EvalPredicate(*compiled.residual, context);
      };
      spec.residual_columns = &residual_columns;
    }
    spec.cost_columns = &cost_columns;
    if (!all_columns) spec.projection = &projection;
    storage::ScanStats stats;
    auto got = t.store->Scan(spec, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    ASSERT_EQ(got->size(), ref_rows.size()) << "query " << query;
    for (size_t i = 0; i < ref_rows.size(); ++i) {
      for (int c = 0; c < t.schema.num_columns(); ++c) {
        EXPECT_TRUE((*got)[i][c].Equals(ref_rows[i][c]))
            << "row " << i << " col " << c << ": "
            << (*got)[i][c].ToSqlLiteral() << " vs "
            << ref_rows[i][c].ToSqlLiteral();
      }
    }
    EXPECT_EQ(stats.rows_visible,
              static_cast<int64_t>(ref_visible.size()));
    EXPECT_EQ(stats.rows_emitted, static_cast<int64_t>(ref_rows.size()));
    // Cost parity: the vectorized path must charge exactly what the
    // row-at-a-time loop charged, pruning or not (the sizes are
    // integer-valued doubles, so sums are exact in either order).
    EXPECT_EQ(stats.visible_profile.rows, ref_visible_profile.rows);
    EXPECT_EQ(stats.visible_profile.fields, ref_visible_profile.fields);
    EXPECT_EQ(stats.visible_profile.raw_bytes,
              ref_visible_profile.raw_bytes);
    EXPECT_EQ(stats.visible_profile.numeric_bytes,
              ref_visible_profile.numeric_bytes);
    EXPECT_EQ(stats.visible_profile.string_bytes,
              ref_visible_profile.string_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanEngineProperty,
                         ::testing::Range(0, 24));

// ScanPredicate::Matches (the WOS/row fallback) must agree with the
// kernels; equivalently with the interpreter on compilable shapes.
class MatchesProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatchesProperty, RowMatchesAgreesWithInterpreter) {
  Rng rng(0x5ca1 + GetParam());
  Schema schema({{"c0", DataType::kInt64},
                 {"c1", DataType::kFloat64},
                 {"c2", DataType::kVarchar},
                 {"c3", DataType::kBool}});
  std::vector<Shape> shapes{Shape::kLowCard, Shape::kRandom, Shape::kLowCard,
                            Shape::kRandom};
  for (int iter = 0; iter < 50; ++iter) {
    std::string text = RandomConjunct(rng, schema);
    if (rng.NextBool(0.5)) {
      text = StrCat(text, " AND ", RandomConjunct(rng, schema));
    }
    auto parsed = sql::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    sql::CompiledScan compiled =
        sql::CompileScanPredicate(**parsed, schema);
    for (int r = 0; r < 20; ++r) {
      Row row;
      for (int c = 0; c < schema.num_columns(); ++c) {
        row.push_back(RandomValue(rng, schema.column(c).type, shapes[c],
                                  c == 0 ? 0.0 : 0.2, r));
      }
      sql::EvalContext context;
      context.schema = &schema;
      context.row = &row;
      bool interp = sql::EvalPredicateLenient(**parsed, context);
      bool compiled_pass =
          !compiled.predicate.always_false && compiled.predicate.Matches(row);
      if (compiled_pass && compiled.residual != nullptr) {
        compiled_pass =
            sql::EvalPredicateLenient(*compiled.residual, context);
      }
      EXPECT_EQ(compiled_pass, interp) << text << " on row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchesProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------- AT EPOCH

TEST(ScanEngineTest, AtEpochSnapshotIsolation) {
  Schema schema({{"c0", DataType::kInt64}, {"c1", DataType::kVarchar}});
  storage::SegmentStore store(schema);
  std::vector<Row> first;
  for (int i = 0; i < 40; ++i) {
    first.push_back({Value::Int64(i), Value::Varchar(StrCat("v", i % 4))});
  }
  ASSERT_TRUE(store.InsertPendingDirect(1, std::move(first)).ok());
  store.CommitTxn(1, 1);

  storage::ScanSpec spec;
  spec.as_of = 1;
  storage::ScanStats before;
  auto snapshot = store.Scan(spec, &before);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 40u);

  // Later commits — an insert at epoch 2, a delete at epoch 3 — must not
  // change what the epoch-1 snapshot sees.
  std::vector<Row> second;
  for (int i = 100; i < 120; ++i) {
    second.push_back({Value::Int64(i), Value::Varchar("late")});
  }
  ASSERT_TRUE(store.InsertPending(2, std::move(second)).ok());
  store.CommitTxn(2, 2);
  auto deleted = store.DeletePending(3, 2, [](const Row& row) {
    return row[0].int64_value() % 2 == 0;
  });
  ASSERT_TRUE(deleted.ok());
  store.CommitTxn(3, 3);

  storage::ScanStats after;
  auto again = store.Scan(spec, &after);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), snapshot->size());
  for (size_t i = 0; i < snapshot->size(); ++i) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      EXPECT_TRUE((*again)[i][c].Equals((*snapshot)[i][c]));
    }
  }
  EXPECT_EQ(after.rows_visible, before.rows_visible);
}

// The V2S partition query shape must compile with no residual: that is
// what lets connector pushdown scans run entirely in the kernels.
TEST(ScanEngineTest, V2SPartitionShapeFullyCompiles) {
  Schema schema({{"c0", DataType::kInt64}, {"c1", DataType::kFloat64}});
  auto parsed = sql::ParseExpression(
      "HASH(c0) >= -9223372036854775807 AND HASH(c0) < 42 AND c1 > 0.5");
  ASSERT_TRUE(parsed.ok());
  sql::CompiledScan compiled = sql::CompileScanPredicate(**parsed, schema);
  EXPECT_EQ(compiled.residual, nullptr);
  EXPECT_FALSE(compiled.predicate.always_false);
  ASSERT_EQ(compiled.predicate.hash_ranges.size(), 1u);
  EXPECT_EQ(compiled.predicate.compares.size(), 1u);
}

}  // namespace
}  // namespace fabric::vertica
