// INNER JOIN execution tests: the planned merge join on co-sorted
// projections (strategy choice, co-location, counters, EXPLAIN), byte
// identity between every join strategy and layout combination, the
// per-table forced-projection hint and the forced-join-strategy hook
// (typed errors), virtual-time ordering (merge beats hash on the same
// layouts), workload capture into v_monitor.query_requests, and a
// seeded chaos suite (JOIN_SEED) asserting byte-identical join answers
// across strategies through random DML and a node kill.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::vertica {
namespace {

using storage::Row;
using storage::Value;

std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("JOIN_SEED");
}

std::vector<std::string> Lines(const QueryResult& result) {
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::string PlanText(const QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    out += row[0].varchar_value();
    out += "\n";
  }
  return out;
}

// Session-tweaking hooks applied before a statement runs.
struct SessionHints {
  std::optional<std::string> join_strategy;
  // (table, projection) pairs for set_forced_projection.
  std::vector<std::pair<std::string, std::string>> table_projections;
};

class JoinTest : public ::testing::Test {
 protected:
  JoinTest() { Recreate(); }

  void Recreate() {
    db_.reset();
    network_.reset();
    engine_ = std::make_unique<sim::Engine>();
    network_ = std::make_unique<net::Network>(engine_.get());
    Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<Database>(engine_.get(), network_.get(), vopts);
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_->Spawn("driver", std::move(body));
    Status status = engine_->Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Result<QueryResult> Exec(sim::Process& driver, const std::string& sql,
                           const SessionHints& hints = {}) {
    auto session = db_->Connect(driver, 0, nullptr);
    if (!session.ok()) return session.status();
    (*session)->set_forced_join_strategy(hints.join_strategy);
    for (const auto& [table, projection] : hints.table_projections) {
      (*session)->set_forced_projection(table, projection);
    }
    auto result = (*session)->Execute(driver, sql);
    Status closed = (*session)->Close(driver);
    if (result.ok() && !closed.ok()) return closed;
    return result;
  }

  QueryResult ExecOk(sim::Process& driver, const std::string& sql,
                     const SessionHints& hints = {}) {
    auto result = Exec(driver, sql, hints);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  // fact(id, cust, amount) segmented by id; dim(cust_id, region)
  // segmented by cust_id. A few NULL join keys on each side exercise
  // the NULL-never-joins rule in every strategy.
  void LoadFixture(sim::Process& driver, int fact_rows, int dim_rows) {
    ExecOk(driver,
           "CREATE TABLE fact (id INTEGER, cust INTEGER, amount FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    ExecOk(driver,
           "CREATE TABLE dim (cust_id INTEGER, region VARCHAR) "
           "SEGMENTED BY HASH(cust_id) ALL NODES");
    static const char* kRegions[] = {"east", "west", "north", "south"};
    std::string values;
    for (int i = 0; i < fact_rows; ++i) {
      if (i % 50 == 0 && !values.empty()) {
        ExecOk(driver, StrCat("INSERT INTO fact VALUES ", values));
        values.clear();
      }
      std::string cust =
          i % 37 == 5 ? "NULL" : StrCat((i * 7) % (dim_rows + 8));
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", ", cust, ", ",
                       i % 13, ".5)");
    }
    if (!values.empty()) {
      ExecOk(driver, StrCat("INSERT INTO fact VALUES ", values));
    }
    values.clear();
    for (int i = 0; i < dim_rows; ++i) {
      // Duplicate keys every 9th row; one NULL key.
      std::string key = i == 3 ? "NULL" : StrCat(i % 9 == 0 ? i / 2 : i);
      values += StrCat(values.empty() ? "" : ", ", "(", key, ", '",
                       kRegions[i % 4], "')");
    }
    ExecOk(driver, StrCat("INSERT INTO dim VALUES ", values));
  }

  // Join-key-sorted layouts: both segmented by their key (co-located
  // merge) unless `colocate` is false, in which case the fact side keeps
  // its id segmentation (gathered merge).
  void CreateSortedProjections(sim::Process& driver, bool colocate) {
    ExecOk(driver, StrCat("CREATE PROJECTION fact_by_cust AS "
                          "SELECT cust, amount FROM fact ORDER BY cust ",
                          colocate ? "SEGMENTED BY HASH(cust)"
                                   : "UNSEGMENTED"));
    ExecOk(driver,
           "CREATE PROJECTION dim_by_cust AS SELECT cust_id, region "
           "FROM dim ORDER BY cust_id SEGMENTED BY HASH(cust_id)");
  }

  // Queries whose answers must not depend on the join strategy. All
  // carry a total ORDER BY so Lines() comparison is layout-stable.
  std::vector<std::string> JoinQueries() const {
    return {
        "SELECT region, SUM(amount) FROM fact JOIN dim "
        "ON cust = cust_id GROUP BY region ORDER BY region",
        "SELECT cust, region, amount FROM fact JOIN dim "
        "ON cust = cust_id WHERE amount > 3.0 "
        "ORDER BY cust, region, amount",
        "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id",
        "SELECT region, COUNT(*) FROM fact JOIN dim "
        "ON cust_id = cust GROUP BY region ORDER BY region",
    };
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Database> db_;
};

// ------------------------------------------------------ strategy choice

TEST_F(JoinTest, PlannerPicksMergeWheneverBothSidesAreSorted) {
  obs::Tracer tracer([this] { return engine_->now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 300, 40);

    // No sorted layouts yet: hash join.
    std::string plan = PlanText(ExecOk(
        driver, "EXPLAIN SELECT COUNT(*) FROM fact JOIN dim "
                "ON cust = cust_id"));
    EXPECT_NE(plan.find("join strategy: hash join"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(fact): super"), std::string::npos)
        << plan;
    ExecOk(driver, "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id");
    EXPECT_GT(tracer.metrics().counter("vertica.hash_joins"), 0.0);
    EXPECT_EQ(tracer.metrics().counter("vertica.merge_joins"), 0.0);

    // Both sides sorted on the join key and segmented by it: the
    // unforced planner must choose the co-located merge join.
    CreateSortedProjections(driver, /*colocate=*/true);
    plan = PlanText(ExecOk(
        driver, "EXPLAIN SELECT COUNT(*) FROM fact JOIN dim "
                "ON cust = cust_id"));
    EXPECT_NE(plan.find("join strategy: merge join (co-located)"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(fact): fact_by_cust"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(dim): dim_by_cust"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("join key: fact.cust = dim.cust_id"),
              std::string::npos)
        << plan;

    double merges = tracer.metrics().counter("vertica.merge_joins");
    ExecOk(driver, "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id");
    EXPECT_GT(tracer.metrics().counter("vertica.merge_joins"), merges);
  });
}

TEST_F(JoinTest, GatheredMergeWhenSortedButNotCoLocated) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 200, 30);
    // fact side sorted but replicated (not segmented by the key): merge
    // without co-location... except a replicated side co-locates with
    // any layout, so force the interesting case via the dim side.
    ExecOk(driver,
           "CREATE PROJECTION fact_by_cust AS SELECT id, cust, amount "
           "FROM fact ORDER BY cust SEGMENTED BY HASH(id)");
    ExecOk(driver,
           "CREATE PROJECTION dim_by_cust AS SELECT cust_id, region "
           "FROM dim ORDER BY cust_id SEGMENTED BY HASH(cust_id)");
    std::string plan = PlanText(ExecOk(
        driver, "EXPLAIN SELECT COUNT(*) FROM fact JOIN dim "
                "ON cust = cust_id"));
    EXPECT_NE(plan.find("join strategy: merge join"), std::string::npos)
        << plan;
    EXPECT_EQ(plan.find("(co-located)"), std::string::npos) << plan;
  });
}

// ------------------------------------------------------- byte identity

TEST_F(JoinTest, AllStrategiesReturnIdenticalBytes) {
  for (bool colocate : {false, true}) {
    SCOPED_TRACE(StrCat("colocate=", colocate));
    Recreate();
    RunDriver([&](sim::Process& driver) {
      LoadFixture(driver, 400, 50);

      // Baseline answers before any projections exist (legacy-planned
      // hash join over the super projections).
      std::vector<std::vector<std::string>> baseline;
      for (const std::string& q : JoinQueries()) {
        baseline.push_back(Lines(ExecOk(driver, q)));
      }

      CreateSortedProjections(driver, colocate);
      for (size_t i = 0; i < JoinQueries().size(); ++i) {
        const std::string q = JoinQueries()[i];
        SCOPED_TRACE(q);
        // Automatic (merge), forced hash, and forced merge must all
        // reproduce the pre-projection answer byte for byte.
        EXPECT_EQ(baseline[i], Lines(ExecOk(driver, q)));
        SessionHints hash;
        hash.join_strategy = "hash";
        EXPECT_EQ(baseline[i], Lines(ExecOk(driver, q, hash)));
        SessionHints merge;
        merge.join_strategy = "merge";
        EXPECT_EQ(baseline[i], Lines(ExecOk(driver, q, merge)));
        // Pinning both sides to the super projection (hash join) too.
        SessionHints supers;
        supers.table_projections = {{"fact", ""}, {"dim", ""}};
        EXPECT_EQ(baseline[i], Lines(ExecOk(driver, q, supers)));
      }
    });
  }
}

TEST_F(JoinTest, SelectStarJoinIsIdenticalAcrossStrategies) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 150, 25);
    const std::string q =
        "SELECT * FROM fact JOIN dim ON cust = cust_id "
        "ORDER BY id, cust_id, region";
    std::vector<std::string> baseline = Lines(ExecOk(driver, q));
    // SELECT * needs every column, so the narrow fact projection cannot
    // serve it — but the wide sorted pair still merges.
    ExecOk(driver,
           "CREATE PROJECTION fact_all AS SELECT id, cust, amount "
           "FROM fact ORDER BY cust SEGMENTED BY HASH(cust)");
    ExecOk(driver,
           "CREATE PROJECTION dim_all AS SELECT cust_id, region "
           "FROM dim ORDER BY cust_id SEGMENTED BY HASH(cust_id)");
    std::string plan = PlanText(
        ExecOk(driver, StrCat("EXPLAIN ", q)));
    EXPECT_NE(plan.find("merge join"), std::string::npos) << plan;
    EXPECT_EQ(baseline, Lines(ExecOk(driver, q)));
    SessionHints hash;
    hash.join_strategy = "hash";
    EXPECT_EQ(baseline, Lines(ExecOk(driver, q, hash)));
  });
}

// ------------------------------------------------- forced hints / errors

TEST_F(JoinTest, PerTableForcedProjectionHint) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 120, 20);
    CreateSortedProjections(driver, /*colocate=*/true);

    // A valid hint pins the side; EXPLAIN reflects it.
    SessionHints pin;
    pin.table_projections = {{"fact", "fact_by_cust"}};
    std::string plan = PlanText(
        ExecOk(driver,
               "EXPLAIN SELECT region, SUM(amount) FROM fact JOIN dim "
               "ON cust = cust_id GROUP BY region ORDER BY region",
               pin));
    EXPECT_NE(plan.find("projection(fact): fact_by_cust"),
              std::string::npos)
        << plan;

    // Single-table scans honor the hint too.
    SessionHints super_pin;
    super_pin.table_projections = {{"fact", ""}};
    obs::Tracer tracer([this] { return engine_->now(); });
    obs::ScopedTracer install(&tracer);
    ExecOk(driver, "SELECT cust, amount FROM fact WHERE amount > 4.0",
           super_pin);
    EXPECT_EQ(
        tracer.metrics().counter("vertica.projection_scans{fact_by_cust}"),
        0.0);

    // Unknown projection: typed FAILED_PRECONDITION, not a silent
    // fallback (the legacy session-wide hint's behavior).
    SessionHints unknown;
    unknown.table_projections = {{"fact", "nope"}};
    auto missing = Exec(
        driver, "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id",
        unknown);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kFailedPrecondition)
        << missing.status();
    EXPECT_NE(missing.status().ToString().find(kForcedProjectionToken),
              std::string::npos)
        << missing.status();

    // Ineligible projection (missing the referenced amount column).
    ExecOk(driver,
           "CREATE PROJECTION fact_thin AS SELECT cust FROM fact "
           "ORDER BY cust");
    SessionHints thin;
    thin.table_projections = {{"fact", "fact_thin"}};
    auto ineligible = Exec(
        driver, "SELECT SUM(amount) FROM fact JOIN dim ON cust = cust_id",
        thin);
    ASSERT_FALSE(ineligible.ok());
    EXPECT_NE(ineligible.status().ToString().find(kForcedProjectionToken),
              std::string::npos)
        << ineligible.status();
  });
}

TEST_F(JoinTest, ForcedMergeFailsWithoutSortedLayouts) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 80, 10);
    SessionHints merge;
    merge.join_strategy = "merge";
    auto result = Exec(
        driver, "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id",
        merge);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << result.status();
    EXPECT_NE(result.status().ToString().find(kForcedJoinStrategyToken),
              std::string::npos)
        << result.status();
    // EXPLAIN surfaces the same typed error.
    auto explain = Exec(
        driver,
        "EXPLAIN SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id",
        merge);
    ASSERT_FALSE(explain.ok());
    EXPECT_NE(explain.status().ToString().find(kForcedJoinStrategyToken),
              std::string::npos)
        << explain.status();
    // Forced hash always works.
    SessionHints hash;
    hash.join_strategy = "hash";
    ExecOk(driver, "SELECT COUNT(*) FROM fact JOIN dim ON cust = cust_id",
           hash);
  });
}

// --------------------------------------------------------- virtual time

TEST_F(JoinTest, MergeJoinIsFasterThanHashOnTheSameLayouts) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 1200, 160);
    CreateSortedProjections(driver, /*colocate=*/true);
    const std::string q =
        "SELECT region, SUM(amount) FROM fact JOIN dim ON cust = cust_id "
        "GROUP BY region ORDER BY region";
    // Same projection pair both times — only the join strategy differs.
    SessionHints hash;
    hash.join_strategy = "hash";
    hash.table_projections = {{"fact", "fact_by_cust"},
                              {"dim", "dim_by_cust"}};
    SessionHints merge = hash;
    merge.join_strategy = "merge";
    double start = engine_->now();
    QueryResult hash_result = ExecOk(driver, q, hash);
    double hash_elapsed = engine_->now() - start;
    start = engine_->now();
    QueryResult merge_result = ExecOk(driver, q, merge);
    double merge_elapsed = engine_->now() - start;
    EXPECT_EQ(Lines(hash_result), Lines(merge_result));
    EXPECT_LT(merge_elapsed, hash_elapsed)
        << "merge=" << merge_elapsed << " hash=" << hash_elapsed;
  });
}

// ----------------------------------------------------- workload capture

TEST_F(JoinTest, JoinsAreCapturedInQueryRequests) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 100, 15);
    CreateSortedProjections(driver, /*colocate=*/true);
    ExecOk(driver,
           "SELECT region, SUM(amount) FROM fact JOIN dim "
           "ON cust = cust_id GROUP BY region ORDER BY region");
    QueryResult captured = ExecOk(
        driver,
        "SELECT table_name, join_table, join_key_columns, strategy, "
        "duration_seconds FROM v_monitor.query_requests "
        "WHERE join_table <> '' ORDER BY table_name");
    ASSERT_EQ(captured.rows.size(), 2u);
    EXPECT_EQ(captured.rows[0][0].varchar_value(), "dim");
    EXPECT_EQ(captured.rows[0][1].varchar_value(), "fact");
    EXPECT_EQ(captured.rows[0][2].varchar_value(), "cust_id");
    EXPECT_EQ(captured.rows[0][3].varchar_value(), "merge");
    EXPECT_GT(captured.rows[0][4].float64_value(), 0.0);
    EXPECT_EQ(captured.rows[1][0].varchar_value(), "fact");
    EXPECT_EQ(captured.rows[1][2].varchar_value(), "cust");
    // Single-table scans land too (the INSERT-driven fixture plus the
    // join sides): the history keeps monotone ids.
    QueryResult ids = ExecOk(
        driver, "SELECT COUNT(*) FROM v_monitor.query_requests");
    EXPECT_GE(ids.rows[0][0].int64_value(), 2);
  });
}

// -------------------------------------------------------------- chaos

// Random DML between queries, a node kill and restart in the middle:
// automatic planning (merge when available), forced hash, and
// super-pinned hash must keep answering byte-identically.
TEST_F(JoinTest, ChaosKeepsStrategiesByteIdentical) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    Recreate();
    RunDriver([&](sim::Process& driver) {
      LoadFixture(driver, 160, 24);
      CreateSortedProjections(driver, /*colocate=*/(seed % 2 == 0));
      Rng rng(seed);
      int victim = static_cast<int>(rng.NextUint64(3)) + 1;
      int next_id = 50000;
      for (int step = 0; step < 16; ++step) {
        if (step == 5) ASSERT_TRUE(db_->KillNode(victim).ok());
        if (step == 11) ASSERT_TRUE(db_->RestartNode(victim).ok());
        switch (rng.NextUint64(3)) {
          case 0: {
            std::string values;
            for (int i = 0; i < 4; ++i, ++next_id) {
              values += StrCat(i ? ", " : "", "(", next_id, ", ",
                               rng.NextUint64(30), ", ",
                               rng.NextUint64(9), ".5)");
            }
            ExecOk(driver, StrCat("INSERT INTO fact VALUES ", values));
            break;
          }
          case 1:
            ExecOk(driver,
                   StrCat("UPDATE fact SET amount = amount + 1.0 "
                          "WHERE id % 11 = ",
                          rng.NextUint64(11)));
            break;
          default:
            ExecOk(driver, StrCat("DELETE FROM fact WHERE id % 19 = ",
                                  rng.NextUint64(19)));
            break;
        }
        const std::string q = JoinQueries()[step % JoinQueries().size()];
        SCOPED_TRACE(StrCat("step ", step, ": ", q));
        std::vector<std::string> expected = Lines(ExecOk(driver, q));
        SessionHints hash;
        hash.join_strategy = "hash";
        EXPECT_EQ(expected, Lines(ExecOk(driver, q, hash)));
        SessionHints supers;
        supers.table_projections = {{"fact", ""}, {"dim", ""}};
        EXPECT_EQ(expected, Lines(ExecOk(driver, q, supers)));
        ASSERT_TRUE(driver.Sleep(0.05).ok());
      }
      ASSERT_TRUE(
          db_->WaitForNodeState(driver, victim, NodeState::kUp).ok());
    });
  }
}

}  // namespace
}  // namespace fabric::vertica
