// Tests for the extension / future-work features (paper Section 5) and
// for the harsher failure scenarios: S2V pre-hashing, the V2S locality
// ablation switch, the two-stage (Redshift-style) save, and total-Spark-
// failure semantics around the permanent job-status table.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/two_stage.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "connector/s2v.h"
#include "hdfs/hdfs.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::connector {
namespace {

using spark::SaveMode;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64}, {"score", DataType::kFloat64}});
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 1.5)});
  }
  return rows;
}

std::multiset<int64_t> IdsOf(const std::vector<Row>& rows) {
  std::multiset<int64_t> ids;
  for (const Row& row : rows) ids.insert(row[0].int64_value());
  return ids;
}

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest() : network_(&engine_) {
    vertica::Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<vertica::Database>(&engine_, &network_, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 4;
    sopts.cost.spark_slots_per_worker = 8;
    cluster_ = std::make_unique<spark::SparkCluster>(&engine_, &network_,
                                                     sopts);
    session_ = std::make_unique<spark::SparkSession>(cluster_.get());
    RegisterVerticaSource(session_.get(), db_.get());
    hdfs_ = std::make_unique<hdfs::HdfsCluster>(
        &engine_, &network_,
        hdfs::HdfsCluster::Options{4, cluster_->cost()});
    hdfs::RegisterHdfsSource(session_.get(), hdfs_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  double InternalBytes() {
    double total = 0;
    for (int n = 0; n < db_->num_nodes(); ++n) {
      total += network_.LinkBytesCarried(db_->node_host(n).int_egress);
    }
    return total;
  }

  std::vector<Row> TableRows(sim::Process& driver,
                             const std::string& table) {
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    EXPECT_TRUE(session.ok());
    auto result =
        (*session)->Execute(driver, StrCat("SELECT * FROM ", table));
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE((*session)->Close(driver).ok());
    return result.ok() ? std::move(result->rows) : std::vector<Row>{};
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<vertica::Database> db_;
  std::unique_ptr<spark::SparkCluster> cluster_;
  std::unique_ptr<spark::SparkSession> session_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
};

TEST_F(ExtensionTest, PrehashEliminatesInternalRoutingAndStaysExact) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(400);
    double before = InternalBytes();
    auto df = session_->CreateDataFrame(TestSchema(), rows, 16);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(df->Write()
                    .Format(kVerticaSourceName)
                    .Option("table", "t")
                    .Option("numpartitions", 16)
                    .Option("prehash", "true")
                    .Mode(SaveMode::kOverwrite)
                    .Save(driver)
                    .ok());
    // Bulk data (400 rows x 16 B, ~3/4 of which would normally hop
    // between nodes) reached its primary node without internal routing.
    // What does cross the fabric is the k=1 buddy shipment — one copy of
    // every row to the ring successor (~6400 B), unavoidable at k-safety
    // — plus replication of the tiny unsegmented bookkeeping tables.
    double moved = InternalBytes() - before;
    EXPECT_LT(moved, 400 * 16 + 2500);
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
  });
}

TEST_F(ExtensionTest, PrehashExactlyOnceUnderKills) {
  spark::ScriptedFailureInjector injector;
  injector.KillAttempt(0, 0, 0.5).KillAttempt(3, 0, 2.0).KillAttempt(
      3, 1, 0.5);
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    auto df = session_->CreateDataFrame(TestSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(df->Write()
                    .Format(kVerticaSourceName)
                    .Option("table", "t")
                    .Option("numpartitions", 8)
                    .Option("prehash", "true")
                    .Mode(SaveMode::kOverwrite)
                    .Save(driver)
                    .ok());
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
  });
}

TEST_F(ExtensionTest, LocalityAblationShufflesButStaysCorrect) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    auto df = session_->CreateDataFrame(TestSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(df->Write()
                    .Format(kVerticaSourceName)
                    .Option("table", "t")
                    .Option("numpartitions", 8)
                    .Mode(SaveMode::kOverwrite)
                    .Save(driver)
                    .ok());
    double before = InternalBytes();
    auto loaded = session_->Read()
                      .Format(kVerticaSourceName)
                      .Option("table", "t")
                      .Option("numpartitions", 8)
                      .Option("locality", "false")
                      .Load(driver);
    ASSERT_TRUE(loaded.ok());
    auto collected = loaded->Collect(driver);
    ASSERT_TRUE(collected.ok());
    // Same rows, but the misaligned targeting forced internal shuffle.
    EXPECT_EQ(IdsOf(*collected), IdsOf(rows));
    EXPECT_GT(InternalBytes(), before);
  });
}

TEST_F(ExtensionTest, TwoStageSaveDeliversExactlyOnce) {
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(250);
    auto df = session_->CreateDataFrame(TestSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    auto timing = baselines::TwoStageSave(driver, session_.get(),
                                          hdfs_.get(), db_.get(), *df,
                                          "/landing", "t");
    ASSERT_TRUE(timing.ok()) << timing.status();
    EXPECT_GT(timing->stage1_write, 0);
    EXPECT_GT(timing->stage2_load, 0);
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
  });
}

TEST_F(ExtensionTest, AppendModeExactlyOnceUnderKills) {
  // Append is the harder commit path (INSERT...SELECT + conditional
  // finished-flag in one transaction); hammer it with kills.
  spark::ScriptedFailureInjector injector;
  injector.KillAttempt(1, 0, 1.0).KillAttempt(5, 0, 2.5).KillAttempt(
      5, 1, 0.2);
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> first = MakeRows(100);
    auto df1 = session_->CreateDataFrame(TestSchema(), first, 8);
    ASSERT_TRUE(df1.ok());
    ASSERT_TRUE(df1->Write()
                    .Format(kVerticaSourceName)
                    .Option("table", "t")
                    .Option("numpartitions", 8)
                    .Mode(SaveMode::kOverwrite)
                    .Save(driver)
                    .ok());
    std::vector<Row> second;
    for (int i = 1000; i < 1200; ++i) {
      second.push_back({Value::Int64(i), Value::Float64(i * 1.5)});
    }
    auto df2 = session_->CreateDataFrame(TestSchema(), second, 8);
    ASSERT_TRUE(df2.ok());
    ASSERT_TRUE(df2->Write()
                    .Format(kVerticaSourceName)
                    .Option("table", "t")
                    .Option("numpartitions", 8)
                    .Mode(SaveMode::kAppend)
                    .Save(driver)
                    .ok());
    std::multiset<int64_t> expected = IdsOf(first);
    for (const Row& row : second) expected.insert(row[0].int64_value());
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), expected);
  });
}

TEST_F(ExtensionTest, SaveCompletesEvenIfDriverDies) {
  // The five-phase protocol is entirely task-driven: once the tasks are
  // launched, the save promotes itself even when the driver (and with it
  // Finalize's cleanup) is gone. The permanent job-status table tells a
  // reconnecting user the job finished.
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    Status save_status;
    auto doomed = engine_.Spawn("doomed-driver", [&](sim::Process& inner) {
      auto df = session_->CreateDataFrame(TestSchema(), rows, 8);
      ASSERT_TRUE(df.ok());
      save_status = df->Write()
                        .Format(kVerticaSourceName)
                        .Option("table", "t")
                        .Option("numpartitions", 8)
                        .Option("jobname", "orphaned")
                        .Mode(SaveMode::kOverwrite)
                        .Save(inner);
    });
    // Kill the driver shortly after the job starts; the tasks live on.
    ASSERT_TRUE(driver.Sleep(3.0).ok());
    engine_.Kill(*doomed);
    // Give the orphaned tasks time to finish their protocol.
    ASSERT_TRUE(driver.Sleep(500.0).ok());
    EXPECT_EQ(save_status.code(), StatusCode::kCancelled);
    // Data landed exactly once and the permanent record says finished.
    EXPECT_EQ(IdsOf(TableRows(driver, "t")), IdsOf(rows));
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    ASSERT_TRUE(session.ok());
    auto final_row = (*session)->Execute(
        driver, StrCat("SELECT finished FROM ",
                       S2VRelation::kFinalStatusTable,
                       " WHERE job = 'orphaned'"));
    ASSERT_TRUE(final_row.ok());
    ASSERT_EQ(final_row->rows.size(), 1u);
    EXPECT_TRUE(final_row->rows[0][0].bool_value());
    // Finalize never ran, so the temporary tables are still around for
    // the DBA to inspect (and clean up).
    EXPECT_TRUE(db_->catalog().HasTable("s2v_task_status_orphaned"));
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
}

TEST_F(ExtensionTest, AbortedSaveLeavesPermanentUnfinishedRecord) {
  // Kill every attempt of task 2: the job aborts, the target is never
  // created, and the permanent record honestly says not-finished.
  spark::ScriptedFailureInjector injector;
  for (int attempt = 0; attempt < 8; ++attempt) {
    injector.KillAttempt(2, attempt, 0.5);
  }
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TestSchema(), MakeRows(100), 8);
    ASSERT_TRUE(df.ok());
    Status saved = df->Write()
                       .Format(kVerticaSourceName)
                       .Option("table", "t")
                       .Option("numpartitions", 8)
                       .Option("jobname", "doomed")
                       .Mode(SaveMode::kOverwrite)
                       .Save(driver);
    EXPECT_EQ(saved.code(), StatusCode::kAborted);
    EXPECT_FALSE(db_->catalog().HasTable("t"));
    auto session = db_->Connect(driver, 0, &cluster_->driver_host());
    ASSERT_TRUE(session.ok());
    auto final_row = (*session)->Execute(
        driver, StrCat("SELECT finished FROM ",
                       S2VRelation::kFinalStatusTable,
                       " WHERE job = 'doomed'"));
    ASSERT_TRUE(final_row.ok());
    ASSERT_EQ(final_row->rows.size(), 1u);
    EXPECT_FALSE(final_row->rows[0][0].bool_value());
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
}

}  // namespace
}  // namespace fabric::connector
