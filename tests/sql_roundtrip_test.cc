// Property test: Expr::ToSql and ParseExpression are mutual inverses up
// to one canonicalization round. For a generated expression e:
//
//   s1 = e.ToSql();  e2 = Parse(s1);  s2 = e2.ToSql();
//   e3 = Parse(s2);  s3 = e3.ToSql();
//
// s1 may differ from s2 (the parser folds "-5" into a negative integer
// literal and re-wraps "-2.5" as a unary minus), but s2 must be a fixed
// point (s2 == s3), and e, e2, e3 must all evaluate identically under
// SQL three-valued logic. This is the property that keeps pushed-down
// predicates — which cross the connector wire as SQL text — semantically
// identical to the DataFrame filters they came from.
//
// Targeted regressions cover the holes this property shook out:
// integral FLOAT literals rendering as INTEGER text, COUNT(*) rendering
// as "COUNT()", and unary minus against a negative literal rendering as
// a "--" line comment.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "vertica/sql_ast.h"
#include "vertica/sql_eval.h"
#include "vertica/sql_parser.h"

namespace fabric::vertica::sql {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

// ------------------------------------------------------------ generator

const Schema& TestSchema() {
  static const Schema* schema = new Schema({{"a", DataType::kInt64},
                                            {"b", DataType::kFloat64},
                                            {"s", DataType::kVarchar},
                                            {"flag", DataType::kBool},
                                            {"hole", DataType::kInt64}});
  return *schema;
}

const Row& TestRow() {
  static const Row* row =
      new Row({Value::Int64(7), Value::Float64(-2.5),
               Value::Varchar("it's"), Value::Bool(true), Value::Null()});
  return *row;
}

Value RandomLiteral(Rng& rng) {
  switch (rng.NextInt64(0, 4)) {
    case 0: {
      static const int64_t kInts[] = {0,  1,  -1, 42, -17, 1000000007,
                                      INT64_MAX, INT64_MIN};
      return Value::Int64(kInts[rng.NextInt64(0, 7)]);
    }
    case 1: {
      // Finite doubles only: "inf"/"nan" spellings do not re-lex. The
      // integral ones (2.0, -7.0) are the ToSqlLiteral regression case.
      static const double kDoubles[] = {0.0,  2.0,    -7.0,  0.1,
                                        -2.5, 1.5e300, 1e-7, 123.456};
      return Value::Float64(kDoubles[rng.NextInt64(0, 7)]);
    }
    case 2: {
      static const char* kStrings[] = {"",          "plain",    "it's",
                                       "a'b''c",    "'leading", "trailing'",
                                       "-- not a comment", "sp ace"};
      return Value::Varchar(kStrings[rng.NextInt64(0, 7)]);
    }
    case 3:
      return Value::Bool(rng.NextBool(0.5));
    default:
      return Value::Null();
  }
}

ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBool(0.3)) {
    if (rng.NextBool(0.4)) {
      static const char* kColumns[] = {"a", "b", "s", "flag", "hole"};
      return Expr::ColumnRef(kColumns[rng.NextInt64(0, 4)]);
    }
    return Expr::Literal(RandomLiteral(rng));
  }
  switch (rng.NextInt64(0, 2)) {
    case 0: {
      const char* op = rng.NextBool(0.5) ? "-" : "NOT";
      return Expr::Unary(op, RandomExpr(rng, depth - 1));
    }
    case 1: {
      static const char* kOps[] = {"OR", "AND", "=",  "<>", "<", "<=", ">",
                                   ">=", "+",   "-",  "*",  "/", "%",  "||"};
      const char* op = kOps[rng.NextInt64(0, 13)];
      return Expr::Binary(op, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    }
    default:
      return Expr::IsNull(RandomExpr(rng, depth - 1), rng.NextBool(0.5));
  }
}

// ------------------------------------------------------------ properties

// Two expressions are eval-equivalent when both error, or both succeed
// with the same (possibly NULL) value of the same type.
void ExpectSameEval(const Expr& want, const Expr& got,
                    const std::string& label) {
  EvalContext context;
  context.schema = &TestSchema();
  const Row& row = TestRow();
  context.row = &row;
  Result<Value> a = Eval(want, context);
  Result<Value> b = Eval(got, context);
  ASSERT_EQ(a.ok(), b.ok()) << label;
  if (!a.ok()) return;
  ASSERT_EQ(a->is_null(), b->is_null()) << label;
  if (a->is_null()) return;
  EXPECT_EQ(static_cast<int>(a->type()), static_cast<int>(b->type())) << label;
  EXPECT_EQ(a->ToDisplayString(), b->ToDisplayString()) << label;
}

TEST(SqlRoundTripTest, GeneratedExpressionsStabilizeAfterOneRoundTrip) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    for (int i = 0; i < 400; ++i) {
      ExprPtr e = RandomExpr(rng, 4);
      const std::string s1 = e->ToSql();
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " iter " << i << " sql " << s1);

      Result<ExprPtr> e2 = ParseExpression(s1);
      ASSERT_TRUE(e2.ok()) << e2.status().ToString();
      const std::string s2 = (*e2)->ToSql();

      Result<ExprPtr> e3 = ParseExpression(s2);
      ASSERT_TRUE(e3.ok()) << e3.status().ToString();
      const std::string s3 = (*e3)->ToSql();

      // One parse round canonicalizes; after that, rendering is a
      // fixed point.
      EXPECT_EQ(s2, s3);

      ExpectSameEval(*e, **e2, "original vs first reparse");
      ExpectSameEval(*e, **e3, "original vs second reparse");
    }
  }
}

TEST(SqlRoundTripTest, IntegralFloatLiteralsKeepTheirType) {
  // %.17g renders 2.0 as "2"; without the ".0" suffix the round trip
  // would silently retype the literal as INTEGER.
  EXPECT_EQ(Value::Float64(2.0).ToSqlLiteral(), "2.0");
  EXPECT_EQ(Value::Float64(-7.0).ToSqlLiteral(), "-7.0");
  EXPECT_EQ(Value::Float64(0.0).ToSqlLiteral(), "0.0");

  Result<ExprPtr> parsed = ParseExpression("2.0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ((*parsed)->kind, Expr::Kind::kLiteral);
  ASSERT_FALSE((*parsed)->literal.is_null());
  EXPECT_EQ((*parsed)->literal.type(), DataType::kFloat64);

  ExprPtr e = Expr::Literal(Value::Float64(-7.0));
  Result<ExprPtr> back = ParseExpression(e->ToSql());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameEval(*e, **back, "Float64(-7.0)");
}

TEST(SqlRoundTripTest, CountStarRendersAndReparses) {
  ExprPtr call = Expr::Call("COUNT", {});
  call->op = "*";
  EXPECT_EQ(call->ToSql(), "COUNT(*)");

  Result<ExprPtr> parsed = ParseExpression("COUNT(*)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)->kind, Expr::Kind::kCall);
  EXPECT_EQ((*parsed)->function, "COUNT");
  EXPECT_EQ((*parsed)->op, "*");
  // Eval rejects aggregates, so the property here is ToSql fixpoint only.
  EXPECT_EQ((*parsed)->ToSql(), "COUNT(*)");
}

TEST(SqlRoundTripTest, EmbeddedQuotesRoundTrip) {
  for (const char* raw : {"", "it's", "a'b''c", "'", "''", "don''t '"}) {
    ExprPtr e = Expr::Literal(Value::Varchar(raw));
    const std::string sql = e->ToSql();
    SCOPED_TRACE(sql);
    Result<ExprPtr> parsed = ParseExpression(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ((*parsed)->kind, Expr::Kind::kLiteral);
    EXPECT_TRUE((*parsed)->literal.Equals(Value::Varchar(raw)))
        << (*parsed)->literal.ToDisplayString();
  }
}

TEST(SqlRoundTripTest, NegativeIntegerExtremesRoundTrip) {
  for (int64_t v : {INT64_MIN, INT64_MIN + 1, int64_t{-1}, INT64_MAX}) {
    ExprPtr e = Expr::Literal(Value::Int64(v));
    SCOPED_TRACE(v);
    Result<ExprPtr> parsed = ParseExpression(e->ToSql());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ((*parsed)->kind, Expr::Kind::kLiteral);
    EXPECT_TRUE((*parsed)->literal.Equals(Value::Int64(v)));
  }
}

TEST(SqlRoundTripTest, CreateProjectionRendersAndReparses) {
  // Rendering is a parse fixed point for every segmentation spelling.
  for (const char* sql :
       {"CREATE PROJECTION p AS SELECT a, b FROM t ORDER BY b, a "
        "SEGMENTED BY HASH(a)",
        "CREATE PROJECTION p AS SELECT a FROM t UNSEGMENTED",
        "CREATE PROJECTION p AS SELECT * FROM t ORDER BY a"}) {
    SCOPED_TRACE(sql);
    Result<Statement> parsed = Parse(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto* stmt = std::get_if<CreateProjectionStmt>(&*parsed);
    ASSERT_NE(stmt, nullptr);
    EXPECT_EQ(stmt->ToSql(), sql);
    Result<Statement> again = Parse(stmt->ToSql());
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(std::get<CreateProjectionStmt>(*again).ToSql(), sql);
  }

  Result<Statement> parsed = Parse(
      "CREATE PROJECTION sales_by_region AS SELECT region, amount "
      "FROM sales ORDER BY region SEGMENTED BY HASH(region)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& stmt = std::get<CreateProjectionStmt>(*parsed);
  EXPECT_EQ(stmt.name, "sales_by_region");
  EXPECT_EQ(stmt.anchor, "sales");
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"region", "amount"}));
  EXPECT_EQ(stmt.order_by, (std::vector<std::string>{"region"}));
  EXPECT_EQ(stmt.segmentation_columns,
            (std::vector<std::string>{"region"}));
  EXPECT_FALSE(stmt.unsegmented);
  EXPECT_FALSE(stmt.star);
}

TEST(SqlRoundTripTest, JoinSelectsStabilizeAfterOneRoundTrip) {
  // INNER JOIN statements: parse -> ToSql -> parse must reach a render
  // fixed point, for hand-written spellings (INNER JOIN vs JOIN, either
  // key order, compound ON) and for generated ON expressions.
  for (const char* sql :
       {"SELECT * FROM t JOIN u ON a = x",
        "SELECT * FROM t INNER JOIN u ON x = a",
        "SELECT a, s FROM t JOIN u ON a = x WHERE b > 1.5 "
        "GROUP BY a, s ORDER BY a LIMIT 10",
        "SELECT COUNT(*) FROM t JOIN u ON a = x AND b < 2.0",
        "SELECT * FROM t JOIN u ON a = x AT EPOCH 3"}) {
    SCOPED_TRACE(sql);
    Result<Statement> parsed = Parse(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto* stmt = std::get_if<SelectStmt>(&*parsed);
    ASSERT_NE(stmt, nullptr);
    EXPECT_EQ(stmt->join, "u");
    ASSERT_NE(stmt->join_on, nullptr);
    const std::string s1 = stmt->ToSql();
    Result<Statement> again = Parse(s1);
    ASSERT_TRUE(again.ok()) << s1 << ": " << again.status().ToString();
    const std::string s2 = std::get<SelectStmt>(*again).ToSql();
    EXPECT_EQ(s1, s2) << "render is not a parse fixed point";
  }
  for (uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      SelectStmt select;
      SelectItem star;
      star.star = true;
      select.items.push_back(std::move(star));
      select.from = "t";
      select.join = "u";
      select.join_on = RandomExpr(rng, 3);
      const std::string s1 = select.ToSql();
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " iter " << i << " sql " << s1);
      Result<Statement> parsed = Parse(s1);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      auto& reparsed = std::get<SelectStmt>(*parsed);
      ASSERT_NE(reparsed.join_on, nullptr);
      const std::string s2 = reparsed.ToSql();
      Result<Statement> again = Parse(s2);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(s2, std::get<SelectStmt>(*again).ToSql());
      // The ON condition must survive the trip semantically: parse
      // canonicalization may re-wrap literals, so compare by eval.
      ExpectSameEval(*select.join_on, *reparsed.join_on, "join ON");
    }
  }
}

TEST(SqlRoundTripTest, JoinWithoutOnRendersParseableSql) {
  // The regression this pins: a programmatically built join with no ON
  // expression used to dereference null in ToSql. It now renders an
  // always-true condition that parses back cleanly.
  SelectStmt select;
  SelectItem star;
  star.star = true;
  select.items.push_back(std::move(star));
  select.from = "t";
  select.join = "u";
  const std::string sql = select.ToSql();
  EXPECT_NE(sql.find("JOIN u ON"), std::string::npos) << sql;
  Result<Statement> parsed = Parse(sql);
  ASSERT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
  EXPECT_NE(std::get<SelectStmt>(*parsed).join_on, nullptr);
}

TEST(SqlRoundTripTest, DropProjectionParses) {
  Result<Statement> parsed = Parse("DROP PROJECTION IF EXISTS p");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& stmt = std::get<DropStmt>(*parsed);
  EXPECT_TRUE(stmt.is_projection);
  EXPECT_TRUE(stmt.if_exists);
  EXPECT_EQ(stmt.name, "p");

  Result<Statement> plain = Parse("DROP PROJECTION p");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(std::get<DropStmt>(*plain).if_exists);
}

TEST(SqlRoundTripTest, UnaryMinusBeforeNegativeLiteralIsNotAComment) {
  // "(-" immediately against "-5" would render "(--5)": a line comment
  // that swallows the rest of the expression.
  ExprPtr e = Expr::Unary("-", Expr::Literal(Value::Int64(-5)));
  const std::string sql = e->ToSql();
  Result<ExprPtr> parsed = ParseExpression(sql);
  ASSERT_TRUE(parsed.ok()) << "sql was: " << sql << " — "
                           << parsed.status().ToString();
  EvalContext context;
  Result<Value> v = Eval(**parsed, context);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->Equals(Value::Int64(5))) << v->ToDisplayString();
}

}  // namespace
}  // namespace fabric::vertica::sql
