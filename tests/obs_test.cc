// Unit tests for the observability layer: the metrics registry, the
// tracer and its Chrome-trace export, the scoped installation helpers,
// and the TraceMatcher query utility the conformance tests build on.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"

namespace fabric::obs {
namespace {

// ------------------------------------------------------------- metrics

TEST(MetricsTest, CountersAccumulate) {
  Metrics metrics;
  EXPECT_EQ(metrics.counter("x"), 0);
  metrics.AddCounter("x");
  metrics.AddCounter("x", 2.5);
  EXPECT_DOUBLE_EQ(metrics.counter("x"), 3.5);
  EXPECT_EQ(metrics.counter("never_touched"), 0);
}

TEST(MetricsTest, GaugesKeepLastValue) {
  Metrics metrics;
  metrics.SetGauge("g", 7);
  metrics.SetGauge("g", -1.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("g"), -1.5);
}

TEST(MetricsTest, HistogramsTrackCountSumMinMax) {
  Metrics metrics;
  metrics.Observe("h", 2);
  metrics.Observe("h", 10);
  metrics.Observe("h", 0.5);
  Metrics::Histogram h = metrics.histogram("h");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 12.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 10);
  EXPECT_EQ(metrics.histogram("none").count, 0);
}

TEST(MetricsTest, JsonIsSortedAndOrderIndependent) {
  Metrics a;
  a.AddCounter("zeta", 1);
  a.AddCounter("alpha", 2);
  a.SetGauge("g", 3);
  Metrics b;
  b.SetGauge("g", 3);
  b.AddCounter("alpha", 2);
  b.AddCounter("zeta", 1);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  // Lexicographic key order regardless of touch order.
  EXPECT_LT(a.ToJson().find("\"alpha\""), a.ToJson().find("\"zeta\""));
}

TEST(JsonTest, NumbersRenderDeterministically) {
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-3), "-3");
  EXPECT_EQ(JsonNumber(1e15), "1000000000000000");
  // Non-integers round-trip; non-finite values become null.
  EXPECT_EQ(std::stod(JsonNumber(0.1)), 0.1);
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(JsonTest, StringsAreEscaped) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

// -------------------------------------------------------------- tracer

TEST(TracerTest, StampsEventsWithClockAndSequence) {
  double now = 1.5;
  Tracer tracer([&now] { return now; });
  tracer.Emit("cat", "first", {{"k", 1}});
  now = 2.25;
  tracer.Emit("cat", "second");
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].time, 1.5);
  EXPECT_EQ(tracer.events()[1].time, 2.25);
  EXPECT_LT(tracer.events()[0].seq, tracer.events()[1].seq);
  EXPECT_EQ(tracer.events()[0].IntAttr("k"), 1);
}

TEST(TracerTest, SpansShareAnIdAcrossBeginAndEnd) {
  double now = 0;
  Tracer tracer([&now] { return now; });
  uint64_t span = tracer.BeginSpan("cat", "work", {{"arg", "x"}});
  ASSERT_NE(span, 0u);
  now = 3;
  tracer.EndSpan(span, "cat", "work", {{"ok", true}});
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].phase, Event::Phase::kBegin);
  EXPECT_EQ(tracer.events()[1].phase, Event::Phase::kEnd);
  EXPECT_EQ(tracer.events()[0].span, tracer.events()[1].span);
  EXPECT_TRUE(tracer.events()[1].BoolAttr("ok"));
}

TEST(TracerTest, MetricsOnlyModeKeepsEventVectorEmpty) {
  Tracer tracer([] { return 0.0; },
                Tracer::Options{.capture_events = false});
  ScopedTracer install(&tracer);
  TraceEvent("cat", "dropped");
  uint64_t span = TraceBegin("cat", "span");
  EXPECT_NE(span, 0u);  // span ids still flow so call sites stay uniform
  TraceEnd(span, "cat", "span");
  IncrCounter("kept", 2);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_DOUBLE_EQ(tracer.metrics().counter("kept"), 2);
}

TEST(TracerTest, HelpersNoOpWithoutInstalledTracer) {
  ASSERT_EQ(CurrentTracer(), nullptr);
  TraceEvent("cat", "nobody-listening");
  EXPECT_EQ(TraceBegin("cat", "span"), 0u);
  TraceEnd(0, "cat", "span");
  IncrCounter("counter");
  ObserveValue("histogram", 1);
  SetGauge("gauge", 1);  // all must be safe no-ops
}

TEST(TracerTest, ScopedTracerNestsAndRestores) {
  Tracer outer([] { return 0.0; });
  Tracer inner([] { return 0.0; });
  EXPECT_EQ(CurrentTracer(), nullptr);
  {
    ScopedTracer first(&outer);
    EXPECT_EQ(CurrentTracer(), &outer);
    {
      ScopedTracer second(&inner);
      EXPECT_EQ(CurrentTracer(), &inner);
      TraceEvent("cat", "inner-event");
    }
    EXPECT_EQ(CurrentTracer(), &outer);
  }
  EXPECT_EQ(CurrentTracer(), nullptr);
  EXPECT_TRUE(outer.events().empty());
  EXPECT_EQ(inner.events().size(), 1u);
}

TEST(TracerTest, ChromeTraceJsonIsDeterministicAndWellFormed) {
  auto build = [] {
    double now = 0.5;
    Tracer tracer([&now] { return now; });
    uint64_t span = tracer.BeginSpan("s2v", "phase", {{"partition", 3}});
    now = 1.0;
    tracer.Emit("sim", "tick", {{"pi", 3.25}, {"label", "a\"b"}});
    tracer.EndSpan(span, "s2v", "phase");
    tracer.metrics().AddCounter("c", 2);
    return tracer.ToChromeTraceJson();
  };
  std::string json = build();
  EXPECT_EQ(json, build()) << "export must be byte-stable";
  // Spot structure: async span pair, instant, microsecond timestamps,
  // attached metrics.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"partition\":3"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
}

// ------------------------------------------------------------- matcher

Tracer MakeSampleTrace() {
  double now = 0;
  Tracer tracer([&now] { return now; });
  ScopedTracer install(&tracer);
  TraceEvent("s2v", "phase1.commit", {{"partition", 0}, {"attempt", 0}});
  now = 1;
  TraceEvent("s2v", "phase1.commit", {{"partition", 1}, {"attempt", 2}});
  TraceEvent("s2v", "phase1.duplicate", {{"partition", 1}});
  now = 2;
  TraceEvent("s2v", "phase5.promote", {{"partition", 1}});
  TraceEvent("net", "flow", {{"bytes", 100}});
  return tracer;
}

TEST(TraceMatcherTest, FiltersByCategoryNameAndAttr) {
  Tracer tracer = MakeSampleTrace();
  TraceMatcher trace(tracer);
  EXPECT_EQ(trace.count(), 5u);
  EXPECT_EQ(trace.Category("s2v").count(), 4u);
  EXPECT_EQ(trace.Name("phase1.commit").count(), 2u);
  EXPECT_EQ(trace.Name("phase1.commit").WithAttr("partition", 1).count(),
            1u);
  EXPECT_EQ(trace.WithAttrKey("bytes").count(), 1u);
  EXPECT_TRUE(trace.Name("no.such.event").empty());
}

TEST(TraceMatcherTest, TimeWindowsAndAccessors) {
  Tracer tracer = MakeSampleTrace();
  TraceMatcher trace(tracer);
  EXPECT_EQ(trace.Before(1.0).count(), 1u);
  EXPECT_EQ(trace.After(1.0).count(), 2u);
  EXPECT_EQ(trace.first().name, "phase1.commit");
  EXPECT_EQ(trace.last().name, "flow");
  const Event& promote = trace.Name("phase5.promote").only();
  EXPECT_EQ(promote.IntAttr("partition"), 1);
}

TEST(TraceMatcherTest, DistinctIntAttrSortsAndDedupes) {
  Tracer tracer = MakeSampleTrace();
  TraceMatcher trace(tracer);
  std::vector<int64_t> partitions =
      trace.Category("s2v").DistinctIntAttr("partition");
  EXPECT_EQ(partitions, (std::vector<int64_t>{0, 1}));
}

TEST(TraceMatcherTest, StrictlyBeforeComparesSequenceOrder) {
  Tracer tracer = MakeSampleTrace();
  TraceMatcher trace(tracer);
  EXPECT_TRUE(trace.Name("phase1.commit")
                  .StrictlyBefore(trace.Name("phase5.promote")));
  EXPECT_FALSE(trace.Name("phase5.promote")
                   .StrictlyBefore(trace.Name("phase1.commit")));
  // Vacuous on empty sides.
  EXPECT_TRUE(trace.Name("missing").StrictlyBefore(trace));
}

TEST(TraceMatcherTest, DescribeMentionsMatchedEvents) {
  Tracer tracer = MakeSampleTrace();
  std::string dump = TraceMatcher(tracer).Name("phase5.promote").Describe();
  EXPECT_NE(dump.find("phase5.promote"), std::string::npos);
  EXPECT_NE(dump.find("partition"), std::string::npos);
}

}  // namespace
}  // namespace fabric::obs
