// Repository-level properties of the simulation itself: bit-identical
// determinism of full connector workloads (the foundation for
// reproducible experiments), and max-min fairness of the flow network
// checked against a brute-force reference allocator.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

// Runs a full save+load workload with failure injection and returns
// (virtual end time, engine steps, loaded row count) plus the complete
// exported event trace — the strongest fingerprint: every spawn, kill,
// flow, txn and protocol phase, in order, with timestamps.
struct RunFingerprint {
  double end_time = 0;
  uint64_t steps = 0;
  int64_t rows = 0;
  std::string trace;  // Chrome-trace JSON of the whole run

  friend bool operator==(const RunFingerprint& a, const RunFingerprint& b) {
    return a.end_time == b.end_time && a.steps == b.steps &&
           a.rows == b.rows && a.trace == b.trace;
  }
};

RunFingerprint RunWorkload(uint64_t seed) {
  sim::Engine engine;
  net::Network network(&engine);
  vertica::Database::Options vopts;
  vopts.num_nodes = 4;
  vertica::Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession session(&cluster);
  connector::RegisterVerticaSource(&session, &db);
  spark::RandomFailureInjector injector(seed, 0.3, 3.0, 4);
  cluster.set_failure_injector(&injector);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  RunFingerprint fingerprint;
  engine.Spawn("driver", [&](sim::Process& driver) {
    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kFloat64}});
    std::vector<Row> rows;
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      rows.push_back({Value::Int64(i), Value::Float64(rng.NextDouble())});
    }
    auto df = session.CreateDataFrame(schema, std::move(rows), 8);
    ASSERT_TRUE(df.ok());
    Status saved = df->Write()
                       .Format(connector::kVerticaSourceName)
                       .Option("table", "t")
                       .Option("numpartitions", 8)
                       .Mode(spark::SaveMode::kOverwrite)
                       .Save(driver);
    if (saved.ok()) {
      auto loaded = session.Read()
                        .Format(connector::kVerticaSourceName)
                        .Option("table", "t")
                        .Option("numpartitions", 8)
                        .Load(driver);
      ASSERT_TRUE(loaded.ok());
      auto count = loaded->Materialize(driver);
      ASSERT_TRUE(count.ok());
      fingerprint.rows = *count;
    }
  });
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status;
  fingerprint.end_time = engine.now();
  fingerprint.steps = engine.steps();
  fingerprint.trace = tracer.ToChromeTraceJson();
  return fingerprint;
}

// The same seed must reproduce the run exactly — same virtual end time,
// same number of engine events, same data outcome — across process-local
// repetitions (host thread scheduling must not leak into the sim).
class DeterminismPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismPropertyTest, IdenticalRunsProduceIdenticalFingerprints) {
  RunFingerprint first = RunWorkload(GetParam());
  RunFingerprint second = RunWorkload(GetParam());
  EXPECT_EQ(first, second)
      << "t=" << first.end_time << "/" << second.end_time << " steps="
      << first.steps << "/" << second.steps;
  // Byte-identical traces: a weaker fingerprint could collide, but the
  // serialized trace records every event and timestamp.
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_GT(first.trace.size(), 1000u) << "trace suspiciously empty";
  EXPECT_EQ(first.rows, 200);
}

// Different seeds land kills differently; their traces must diverge
// (otherwise the injector's seed is not reaching the simulation).
TEST(DeterminismTest, DifferentSeedsProduceDifferentTraces) {
  EXPECT_NE(RunWorkload(1).trace, RunWorkload(7).trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismPropertyTest,
                         ::testing::Values(1, 7, 42, 1234));

// ------------------------------------------------ max-min reference check

// Brute-force progressive-filling reference: raise all unfrozen flows'
// rates together in tiny steps, freezing flows at their cap or when a
// link fills. O(steps * flows * links) but independent of the production
// implementation.
std::vector<double> ReferenceMaxMin(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>& caps) {
  size_t flows = paths.size();
  std::vector<double> rate(flows, 0);
  std::vector<bool> frozen(flows, false);
  for (int step = 0; step < 2000000; ++step) {
    // Find the max epsilon all unfrozen flows can add.
    double eps = 1e9;
    bool any = false;
    std::vector<double> used(capacities.size(), 0);
    for (size_t f = 0; f < flows; ++f) {
      for (int l : paths[f]) used[l] += rate[f];
    }
    std::vector<int> active(capacities.size(), 0);
    for (size_t f = 0; f < flows; ++f) {
      if (frozen[f]) continue;
      any = true;
      eps = std::min(eps, caps[f] - rate[f]);
      for (int l : paths[f]) active[l] = 1;
    }
    if (!any) break;
    for (size_t l = 0; l < capacities.size(); ++l) {
      if (active[l] == 0) continue;
      int unfrozen_here = 0;
      for (size_t f = 0; f < flows; ++f) {
        if (!frozen[f]) {
          for (int fl : paths[f]) {
            if (static_cast<size_t>(fl) == l) ++unfrozen_here;
          }
        }
      }
      if (unfrozen_here > 0) {
        eps = std::min(eps, (capacities[l] - used[l]) / unfrozen_here);
      }
    }
    if (eps < 1e-9) eps = 0;
    for (size_t f = 0; f < flows; ++f) {
      if (!frozen[f]) rate[f] += eps;
    }
    // Freeze flows at cap or on a saturated link.
    std::vector<double> now_used(capacities.size(), 0);
    for (size_t f = 0; f < flows; ++f) {
      for (int l : paths[f]) now_used[l] += rate[f];
    }
    for (size_t f = 0; f < flows; ++f) {
      if (frozen[f]) continue;
      if (rate[f] >= caps[f] - 1e-9) {
        frozen[f] = true;
        continue;
      }
      for (int l : paths[f]) {
        if (now_used[l] >= capacities[l] - 1e-9) {
          frozen[f] = true;
          break;
        }
      }
    }
    if (eps == 0) break;
  }
  return rate;
}

class MaxMinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinPropertyTest, MatchesBruteForceReference) {
  Rng rng(GetParam());
  // Random topology: 5 links, up to 8 flows with random 1-3 link paths
  // and random caps.
  std::vector<double> capacities;
  for (int l = 0; l < 5; ++l) {
    capacities.push_back(50.0 + static_cast<double>(rng.NextUint64(200)));
  }
  int flows = 2 + static_cast<int>(rng.NextUint64(7));
  std::vector<std::vector<int>> paths;
  std::vector<double> caps;
  for (int f = 0; f < flows; ++f) {
    std::vector<int> path;
    int hops = 1 + static_cast<int>(rng.NextUint64(3));
    for (int h = 0; h < hops; ++h) {
      int link = static_cast<int>(rng.NextUint64(capacities.size()));
      bool dup = false;
      for (int existing : path) dup = dup || existing == link;
      if (!dup) path.push_back(link);
    }
    paths.push_back(path);
    caps.push_back(rng.NextBool(0.4)
                       ? 10.0 + static_cast<double>(rng.NextUint64(60))
                       : 1e18);
  }
  std::vector<double> expected =
      ReferenceMaxMin(capacities, paths, caps);

  // Measure the production allocator's instantaneous rates by starting
  // all flows at t=0 and sampling immediately.
  sim::Engine engine;
  net::Network network(&engine);
  std::vector<net::LinkId> ids;
  for (double capacity : capacities) {
    ids.push_back(network.AddLink("l", capacity));
  }
  std::vector<double> measured(flows, -1);
  for (int f = 0; f < flows; ++f) {
    std::vector<net::LinkId> path;
    for (int l : paths[f]) path.push_back(ids[l]);
    engine.Spawn("flow", [&network, path, cap = caps[f], f,
                          &measured](sim::Process& self) {
      // Big enough that nothing completes before the sample.
      (void)network.Transfer(self, path, 1e12, cap);
      (void)f;
      (void)measured;
    });
  }
  engine.ScheduleAt(0.001, [&] {
    for (int l = 0; l < static_cast<int>(ids.size()); ++l) {
      double expected_load = 0;
      for (int f = 0; f < flows; ++f) {
        for (int fl : paths[f]) {
          if (fl == l) expected_load += expected[f];
        }
      }
      EXPECT_NEAR(network.LinkCurrentRate(ids[l]), expected_load,
                  std::max(1e-3, expected_load * 1e-3))
          << "link " << l;
    }
  });
  engine.set_max_steps(100000);
  // The run "deadlocks" by design (flows never finish); we only needed
  // the sample. The engine destructor cleans up.
  (void)engine.Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Values(3, 14, 159, 2653, 58979));

}  // namespace
}  // namespace fabric
