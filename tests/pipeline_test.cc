// Pipeline-compilation equivalence suite. The compiled vectorized path
// (src/exec, wired into the Vertica executor and the Spark shuffle map
// stage) must be a pure performance substitution: for every workload —
// random schemas, predicates, expressions and aggregates, with the Tuple
// Mover on or off, under node and executor kills — the compiled and
// interpreted fabrics return byte-identical results AND byte-identical
// event traces (same virtual-time charges, same event order). The
// randomized suites take an extra seed from PIPELINE_SEED (the CI matrix
// knob) on top of the fixed seeds.

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/host.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "spark/cluster.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;
using vertica::Database;
using vertica::QueryResult;
using vertica::Session;

std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("PIPELINE_SEED");
}

// The event stream of a trace, without the appended metrics snapshot:
// the pipeline counters (sql.compiled_pipelines etc.) intentionally
// differ between the two fabrics, but the virtual-time event log — every
// charge, flow and process step — must not.
std::string EventsOnly(const std::string& trace) {
  size_t cut = trace.find("],\"metrics\":");
  return cut == std::string::npos ? trace : trace.substr(0, cut);
}

// Canonical rendering of a statement outcome: the full error string, or
// the result schema plus every value with its exact runtime type — a
// representation two byte-identical results (and only those) share.
std::string Canon(const Result<QueryResult>& result) {
  if (!result.ok()) return StrCat("ERROR ", result.status().ToString());
  std::string out = "SCHEMA";
  for (const storage::ColumnDef& col : result->schema.columns()) {
    out += StrCat(" ", col.name, ":", storage::DataTypeName(col.type));
  }
  for (const Row& row : result->rows) {
    out += "\nROW";
    for (const Value& v : row) {
      if (v.is_null()) {
        out += " NULL";
      } else {
        out += StrCat(" ", storage::DataTypeName(v.type()), ":",
                      v.ToDisplayString());
      }
    }
  }
  return out;
}

// ----------------------------------------------------- Vertica SQL side

// The seeded query mix: every compilable shape (comparisons, Kleene
// AND/OR, IS NULL, arithmetic with / and %, string functions and ||,
// GROUP BY with builtin and UDx aggregates), plus shapes that must fall
// back (HASH) and shapes that must error identically on both paths
// (division by zero).
std::vector<std::string> MakeQueries(Rng& rng) {
  const int64_t k = rng.NextInt64(2, 5);
  const int64_t r = rng.NextInt64(0, k - 1);
  const double cut = rng.NextDouble();
  const int64_t mid = rng.NextInt64(10, 90);
  return {
      "SELECT * FROM t",
      StrCat("SELECT * FROM t WHERE score > ", cut),
      StrCat("SELECT id, score FROM t WHERE id % ", k, " = ", r,
             " AND score <= ", 1.0 - cut / 2),
      StrCat("SELECT id * 2 + 1 AS d, score / 2.5 AS h, UPPER(name) AS up,"
             " name || '_x' AS nx FROM t WHERE NOT (id < ", mid, ")"),
      StrCat("SELECT ABS(id - ", mid, ") AS a, FLOOR(score * 10) AS f,"
             " CEIL(score) AS c, LENGTH(name) AS l FROM t"
             " WHERE score >= ", cut / 4, " OR name IS NULL"),
      "SELECT name, COUNT(*) AS c, SUM(score) AS s, MIN(id) AS mn,"
      " MAX(score) AS mx, AVG(score) AS av FROM t GROUP BY name",
      StrCat("SELECT name, APPROXIMATE_COUNT_DISTINCT(id, 10) AS d FROM t"
             " WHERE id >= ", rng.NextInt64(0, 40), " GROUP BY name"),
      "SELECT COUNT(*) AS c FROM t WHERE name IS NOT NULL OR score < 0.5",
      StrCat("SELECT id FROM t WHERE name = '", rng.NextString(3),
             "' OR name IS NULL ORDER BY id DESC LIMIT 5"),
      StrCat("SELECT ", rng.NextInt64(1, 9), " + ", rng.NextInt64(1, 9),
             " * 3 AS x"),
      // Interpreter-only shape: HASH never compiles, so this query must
      // bump sql.interpreted_fallbacks on the compiled fabric.
      StrCat("SELECT HASH(id) AS h FROM t WHERE id > ", mid, " LIMIT 3"),
      // Error shapes: the compiled path bails mid-block and the rerun
      // interpreter must produce the identical error.
      "SELECT 10 / (id - id) AS boom FROM t",
      StrCat("SELECT id % (id - id) AS boom FROM t WHERE id = ", mid),
  };
}

struct SqlRun {
  std::vector<std::string> outcomes;
  std::string trace;
  double compiled = 0;
  double fallbacks = 0;
};

SqlRun RunSqlWorkload(uint64_t seed, bool compile_pipelines, bool tm_on,
                      bool kill_node) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  vopts.compile_pipelines = compile_pipelines;
  vopts.tuple_mover.enabled = tm_on;
  if (tm_on) {
    // Aggressive so moveout/mergeout interleave with the queries.
    vopts.tuple_mover.moveout_interval = 0.02;
    vopts.tuple_mover.mergeout_interval = 0.05;
    vopts.tuple_mover.strata_min_containers = 2;
  }
  Database db(&engine, &network, vopts);
  net::Host client = net::AddHost(&network, "client", 125e6, 0, 0);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  SqlRun run;
  engine.Spawn("client", [&](sim::Process& self) {
    auto connected = db.Connect(self, 0, &client);
    ASSERT_TRUE(connected.ok()) << connected.status();
    Session& s = **connected;
    auto exec = [&](const std::string& sql) {
      run.outcomes.push_back(Canon(s.Execute(self, sql)));
    };
    exec("CREATE TABLE t (id INTEGER, score FLOAT, name VARCHAR(40)) "
         "SEGMENTED BY HASH(id) ALL NODES");
    Rng rng(seed);
    std::string values;
    const int rows = 120;
    for (int i = 0; i < rows; ++i) {
      std::string score = rng.NextBool(0.15)
                              ? "NULL"
                              : StrCat(rng.NextDouble());
      std::string name =
          rng.NextBool(0.15)
              ? "NULL"
              : StrCat("'", rng.NextString(static_cast<int>(
                                rng.NextInt64(1, 4))), "'");
      values += StrCat(i % 24 == 0 ? "" : ", ", "(", i, ", ", score, ", ",
                       name, ")");
      if (i % 24 == 23 || i == rows - 1) {
        exec(StrCat("INSERT INTO t VALUES ", values));
        values.clear();
      }
    }
    if (kill_node) {
      ASSERT_TRUE(db.KillNode(2).ok());
    }
    for (const std::string& sql : MakeQueries(rng)) exec(sql);
    // Re-run a compilable query verbatim: the compiled fabric must serve
    // it from the fingerprint cache with the same bytes.
    exec("SELECT name, COUNT(*) AS c, SUM(score) AS s, MIN(id) AS mn,"
         " MAX(score) AS mx, AVG(score) AS av FROM t GROUP BY name");
    ASSERT_TRUE(s.Close(self).ok());
  });
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status;
  run.trace = tracer.ToChromeTraceJson();
  run.compiled = tracer.metrics().counter("sql.compiled_pipelines");
  run.fallbacks = tracer.metrics().counter("sql.interpreted_fallbacks");
  return run;
}

class PipelineSqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

void ExpectEquivalent(const SqlRun& on, const SqlRun& off) {
  ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
  for (size_t i = 0; i < on.outcomes.size(); ++i) {
    EXPECT_EQ(on.outcomes[i], off.outcomes[i]) << "statement #" << i;
  }
  // Byte-identical traces: the compiled path must add no events and no
  // virtual-time charges of its own.
  EXPECT_EQ(EventsOnly(on.trace), EventsOnly(off.trace));
  EXPECT_GT(on.compiled, 0) << "compiled fabric never took the fast path";
  EXPECT_GT(on.fallbacks, 0) << "fallback shapes never fell back";
  EXPECT_EQ(off.compiled, 0);
  EXPECT_EQ(off.fallbacks, 0);
}

TEST_P(PipelineSqlPropertyTest, CompiledMatchesInterpreted) {
  ExpectEquivalent(RunSqlWorkload(GetParam(), true, false, false),
                   RunSqlWorkload(GetParam(), false, false, false));
}

TEST_P(PipelineSqlPropertyTest, CompiledMatchesInterpretedWithTupleMover) {
  ExpectEquivalent(RunSqlWorkload(GetParam(), true, true, false),
                   RunSqlWorkload(GetParam(), false, true, false));
}

TEST_P(PipelineSqlPropertyTest, CompiledMatchesInterpretedUnderNodeKill) {
  ExpectEquivalent(RunSqlWorkload(GetParam(), true, true, true),
                   RunSqlWorkload(GetParam(), false, true, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSqlPropertyTest,
                         ::testing::ValuesIn(PropertySeeds()));

// ------------------------------------------------- Spark fused map side

struct SparkRun {
  std::string rows;
  std::string trace;
  double fused = 0;
};

// A parallelize → filter → select → filter → GROUP BY chain: the shape
// the fused map stage collapses (kParallelize leaves never fold their
// filters into a source, so the whole chain reaches the map stage).
SparkRun RunSparkWorkload(uint64_t seed, bool fuse, bool kills) {
  sim::Engine engine;
  net::Network network(&engine);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.fuse_map_stages = fuse;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession session(&cluster);
  spark::RandomFailureInjector injector(seed, 0.3, 3.0, 3);
  if (kills) cluster.set_failure_injector(&injector);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  SparkRun run;
  engine.Spawn("driver", [&](sim::Process& driver) {
    Schema schema({{"g", DataType::kVarchar},
                   {"v", DataType::kInt64},
                   {"w", DataType::kFloat64}});
    Rng rng(seed);
    std::vector<Row> rows;
    for (int i = 0; i < 400; ++i) {
      Value g = rng.NextBool(0.1) ? Value::Null()
                                  : Value::Varchar(StrCat(
                                        "g", rng.NextInt64(0, 6)));
      Value v = rng.NextBool(0.1) ? Value::Null()
                                  : Value::Int64(rng.NextInt64(0, 200));
      Value w = rng.NextBool(0.1) ? Value::Null()
                                  : Value::Float64(rng.NextDouble());
      rows.push_back({std::move(g), std::move(v), std::move(w)});
    }
    auto df = session.CreateDataFrame(schema, std::move(rows), 6);
    ASSERT_TRUE(df.ok()) << df.status();
    spark::ColumnPredicate keep_w{
        "w", spark::ColumnPredicate::Op::kGe,
        Value::Float64(rng.NextDouble() / 4)};
    spark::ColumnPredicate keep_v{
        "v", spark::ColumnPredicate::Op::kLt,
        Value::Int64(rng.NextInt64(120, 200))};
    auto selected = df->Filter(keep_w).Select({"g", "v"});
    ASSERT_TRUE(selected.ok()) << selected.status();
    auto grouped = selected->Filter(keep_v).GroupBy({"g"});
    ASSERT_TRUE(grouped.ok()) << grouped.status();
    auto agged = grouped->Agg({spark::AggCount(), spark::AggSum("v"),
                               spark::AggMin("v"), spark::AggMax("v"),
                               spark::AggApproxCountDistinct("v", 10)});
    ASSERT_TRUE(agged.ok()) << agged.status();
    auto collected = agged->Collect(driver);
    ASSERT_TRUE(collected.ok()) << collected.status();
    QueryResult rendered;
    rendered.schema = agged->schema();
    rendered.rows = *collected;
    run.rows = Canon(rendered);
  });
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status;
  run.trace = tracer.ToChromeTraceJson();
  run.fused = tracer.metrics().counter("spark.fused_map_stages");
  return run;
}

class PipelineSparkPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineSparkPropertyTest, FusedMatchesUnfused) {
  SparkRun on = RunSparkWorkload(GetParam(), true, false);
  SparkRun off = RunSparkWorkload(GetParam(), false, false);
  EXPECT_EQ(on.rows, off.rows);
  EXPECT_EQ(EventsOnly(on.trace), EventsOnly(off.trace));
  EXPECT_GT(on.fused, 0);
  EXPECT_EQ(off.fused, 0);
}

TEST_P(PipelineSparkPropertyTest, FusedMatchesUnfusedUnderExecutorKills) {
  SparkRun on = RunSparkWorkload(GetParam(), true, true);
  SparkRun off = RunSparkWorkload(GetParam(), false, true);
  EXPECT_EQ(on.rows, off.rows);
  EXPECT_EQ(EventsOnly(on.trace), EventsOnly(off.trace));
  EXPECT_GT(on.fused, 0);
  EXPECT_EQ(off.fused, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSparkPropertyTest,
                         ::testing::ValuesIn(PropertySeeds()));

// A V2S chain whose filter survives pushdown (the pushed LIMIT blocks
// folding it into the scan's WHERE), so the fused map stage runs over a
// real Vertica scan leaf: V2S-scan → filter → map-side combine.
SparkRun RunV2SWorkload(uint64_t seed, bool fuse) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.fuse_map_stages = fuse;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession session(&cluster);
  connector::RegisterVerticaSource(&session, &db);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  SparkRun run;
  engine.Spawn("driver", [&](sim::Process& driver) {
    Schema schema({{"id", DataType::kInt64},
                   {"score", DataType::kFloat64},
                   {"name", DataType::kVarchar}});
    Rng rng(seed);
    std::vector<Row> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back({Value::Int64(i), Value::Float64(rng.NextDouble()),
                      rng.NextBool(0.1)
                          ? Value::Null()
                          : Value::Varchar(StrCat("n", i % 7))});
    }
    auto df = session.CreateDataFrame(schema, std::move(rows), 4);
    ASSERT_TRUE(df.ok()) << df.status();
    Status saved = df->Write()
                       .Format(connector::kVerticaSourceName)
                       .Option("table", "t")
                       .Option("numpartitions", 4)
                       .Mode(spark::SaveMode::kOverwrite)
                       .Save(driver);
    ASSERT_TRUE(saved.ok()) << saved;
    auto loaded = session.Read()
                      .Format(connector::kVerticaSourceName)
                      .Option("table", "t")
                      .Option("numpartitions", 4)
                      .Load(driver);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    auto limited = loaded->Limit(250);
    ASSERT_TRUE(limited.ok()) << limited.status();
    spark::ColumnPredicate pred{"score", spark::ColumnPredicate::Op::kLe,
                                Value::Float64(0.8)};
    auto grouped = limited->Filter(pred).GroupBy({"name"});
    ASSERT_TRUE(grouped.ok()) << grouped.status();
    auto agged = grouped->Agg(
        {spark::AggCount(), spark::AggAvg("score"), spark::AggMax("id")});
    ASSERT_TRUE(agged.ok()) << agged.status();
    auto collected = agged->Collect(driver);
    ASSERT_TRUE(collected.ok()) << collected.status();
    QueryResult rendered;
    rendered.schema = agged->schema();
    rendered.rows = *collected;
    run.rows = Canon(rendered);
  });
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status;
  run.trace = tracer.ToChromeTraceJson();
  run.fused = tracer.metrics().counter("spark.fused_map_stages");
  return run;
}

TEST(PipelineV2STest, FusedScanFilterCombineMatchesUnfused) {
  SparkRun on = RunV2SWorkload(5, true);
  SparkRun off = RunV2SWorkload(5, false);
  EXPECT_EQ(on.rows, off.rows);
  EXPECT_EQ(EventsOnly(on.trace), EventsOnly(off.trace));
  EXPECT_GT(on.fused, 0);
  EXPECT_EQ(off.fused, 0);
}

// ------------------------------------------------------------- counters

// The observability contract: each counter fires exactly on the plans it
// names — compilable SELECTs, interpreter-residual fallbacks, fusable
// map stages — and the compiler's fingerprint cache serves repeats.
TEST(PipelineCounterTest, CountersFireOnExpectedPlans) {
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 2;
  Database db(&engine, &network, vopts);
  net::Host client = net::AddHost(&network, "client", 125e6, 0, 0);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  engine.Spawn("client", [&](sim::Process& self) {
    auto connected = db.Connect(self, 0, &client);
    ASSERT_TRUE(connected.ok()) << connected.status();
    Session& s = **connected;
    auto compiled = [&] {
      return tracer.metrics().counter("sql.compiled_pipelines");
    };
    auto fallbacks = [&] {
      return tracer.metrics().counter("sql.interpreted_fallbacks");
    };
    ASSERT_TRUE(s.Execute(self, "CREATE TABLE t (id INTEGER, v FLOAT)")
                    .ok());
    ASSERT_TRUE(
        s.Execute(self, "INSERT INTO t VALUES (1, 0.5), (2, NULL)").ok());
    EXPECT_EQ(compiled(), 0);

    // A compilable SELECT takes the fast path...
    ASSERT_TRUE(s.Execute(self, "SELECT id + 1 FROM t WHERE v > 0").ok());
    EXPECT_EQ(compiled(), 1);
    EXPECT_EQ(fallbacks(), 0);
    const int64_t misses = db.pipeline_compiler()->cache_misses();
    EXPECT_GT(misses, 0);

    // ...and its repeat is served from the fingerprint cache.
    ASSERT_TRUE(s.Execute(self, "SELECT id + 1 FROM t WHERE v > 0").ok());
    EXPECT_EQ(compiled(), 2);
    EXPECT_EQ(db.pipeline_compiler()->cache_misses(), misses);
    EXPECT_GT(db.pipeline_compiler()->cache_hits(), 0);

    // HASH is interpreter-only: the same statement must count a fallback
    // every time, never a compile.
    ASSERT_TRUE(s.Execute(self, "SELECT HASH(id) FROM t").ok());
    EXPECT_EQ(compiled(), 2);
    EXPECT_EQ(fallbacks(), 1);
    ASSERT_TRUE(s.Close(self).ok());
  });
  ASSERT_TRUE(engine.Run().ok());
}

}  // namespace
}  // namespace fabric
