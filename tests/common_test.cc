#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace fabric {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such table 't'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such table 't'");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  FABRIC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x * 2;
}

Result<int> UsesAssignOrReturn(int x) {
  FABRIC_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(5).value(), 11);
  EXPECT_EQ(UsesAssignOrReturn(-5).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
}

TEST(HashTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(HashTest, CombineIsOrderSensitive) {
  uint64_t ab = HashCombine(HashInt64(1), HashInt64(2));
  uint64_t ba = HashCombine(HashInt64(2), HashInt64(1));
  EXPECT_NE(ab, ba);
}

TEST(HashTest, RingDistributionIsRoughlyUniform) {
  // Bucket 100k hashed ints into 16 ring ranges; each bucket should hold
  // close to 1/16 of the keys. This is the property hash segmentation
  // relies on for "minimal data skew" (Section 3.1.2).
  constexpr int kKeys = 100000;
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    uint64_t h = HashInt64(i);
    counts[static_cast<int>(h / (UINT64_MAX / kBuckets + 1))]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kBuckets * 0.9);
    EXPECT_LT(c, kKeys / kBuckets * 1.1);
  }
}

TEST(RngTest, SeedsAreReproducible) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedDrawsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(99);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3);
  EXPECT_GT(heads, 2700);
  EXPECT_LT(heads, 3300);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("hash"), "HASH");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("v_catalog.nodes", "v_catalog."));
  EXPECT_TRUE(EndsWith("staging_tbl", "_tbl"));
}

TEST(StringUtilTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("n=", 42, ", f=", 1.5), "n=42, f=1.5");
}

TEST(StringUtilTest, HumanFormats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanCount(100000000), "100M");
  EXPECT_EQ(HumanCount(1460000000), "1.46B");
}

TEST(StringUtilTest, ParseNumbers) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64(" -42 ", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("4x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("2.5z", &d));
}

TEST(CsvTest, RoundTripSimple) {
  std::vector<std::string> fields = {"1", "hello", "2.5"};
  auto decoded = CsvDecodeRecord(CsvEncodeRecord(fields));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, fields);
}

TEST(CsvTest, RoundTripQuoting) {
  std::vector<std::string> fields = {"a,b", "say \"hi\"", "", "line\nbreak"};
  auto decoded = CsvDecodeRecord(CsvEncodeRecord(fields));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, fields);
}

TEST(CsvTest, RejectsUnbalancedQuote) {
  EXPECT_FALSE(CsvDecodeRecord("\"abc").ok());
}

TEST(CsvTest, EmptyLineIsOneEmptyField) {
  auto decoded = CsvDecodeRecord("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], "");
}

// Property sweep: CSV round-trips arbitrary generated records.
class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, RoundTripsRandomRecords) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> fields;
    int n = 1 + static_cast<int>(rng.NextUint64(8));
    for (int i = 0; i < n; ++i) {
      std::string f = rng.NextString(static_cast<int>(rng.NextUint64(20)));
      // Sprinkle in CSV-hostile characters.
      if (rng.NextBool(0.3)) f += ',';
      if (rng.NextBool(0.3)) f += '"';
      if (rng.NextBool(0.2)) f += '\n';
      fields.push_back(f);
    }
    auto decoded = CsvDecodeRecord(CsvEncodeRecord(fields));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fabric
