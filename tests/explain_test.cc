// EXPLAIN contract tests for join planning: the printed join strategy,
// projection pair and per-side candidate lists across the hash, merge,
// co-located and forced paths, plus the non-plannable fallbacks (views,
// system tables, complex ON) and AT EPOCH eligibility.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "sim/engine.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::vertica {
namespace {

using storage::Row;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() {
    engine_ = std::make_unique<sim::Engine>();
    network_ = std::make_unique<net::Network>(engine_.get());
    Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<Database>(engine_.get(), network_.get(), vopts);
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_->Spawn("driver", std::move(body));
    Status status = engine_->Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  QueryResult ExecOk(sim::Process& driver, const std::string& sql) {
    auto session = db_->Connect(driver, 0, nullptr);
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return QueryResult{};
    auto result = (*session)->Execute(driver, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    Status closed = (*session)->Close(driver);
    EXPECT_TRUE(closed.ok()) << closed;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::string Plan(sim::Process& driver, const std::string& select,
                   const std::vector<std::pair<std::string, std::string>>&
                       forced_projections = {}) {
    auto session = db_->Connect(driver, 0, nullptr);
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return "";
    for (const auto& [table, projection] : forced_projections) {
      (*session)->set_forced_projection(table, projection);
    }
    auto result = (*session)->Execute(driver, StrCat("EXPLAIN ", select));
    EXPECT_TRUE(result.ok()) << select << ": " << result.status();
    Status closed = (*session)->Close(driver);
    EXPECT_TRUE(closed.ok()) << closed;
    std::string out;
    if (result.ok()) {
      for (const Row& row : result->rows) {
        out += row[0].varchar_value();
        out += "\n";
      }
    }
    return out;
  }

  void LoadFixture(sim::Process& driver) {
    ExecOk(driver,
           "CREATE TABLE fact (id INTEGER, cust INTEGER, amount FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    ExecOk(driver,
           "CREATE TABLE dim (cust_id INTEGER, region VARCHAR) "
           "SEGMENTED BY HASH(cust_id) ALL NODES");
    ExecOk(driver, "INSERT INTO fact VALUES (1, 1, 2.5), (2, 2, 3.5)");
    ExecOk(driver, "INSERT INTO dim VALUES (1, 'east'), (2, 'west')");
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, JoinStrategyProjectionPairAndCandidates) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver);
    const std::string q =
        "SELECT region, SUM(amount) FROM fact JOIN dim ON cust = cust_id "
        "GROUP BY region";

    // Hash join over the super projections; both candidate lists print.
    std::string plan = Plan(driver, q);
    EXPECT_NE(plan.find("join strategy: hash join"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("join key: fact.cust = dim.cust_id"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(fact): super"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(dim): super"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("candidates(fact): super=1.0000"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("candidates(dim): super=1.0000"), std::string::npos)
        << plan;

    // Co-sorted, co-segmented projections flip the plan to a co-located
    // merge join and join the candidate lists.
    ExecOk(driver,
           "CREATE PROJECTION fact_by_cust AS SELECT cust, amount "
           "FROM fact ORDER BY cust SEGMENTED BY HASH(cust)");
    ExecOk(driver,
           "CREATE PROJECTION dim_by_cust AS SELECT cust_id, region "
           "FROM dim ORDER BY cust_id SEGMENTED BY HASH(cust_id)");
    plan = Plan(driver, q);
    EXPECT_NE(plan.find("join strategy: merge join (co-located)"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(fact): fact_by_cust"),
              std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(dim): dim_by_cust"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("candidates(fact): super=1.0000, fact_by_cust="),
              std::string::npos)
        << plan;

    // Forcing one side back to its super projection kills the merge.
    plan = Plan(driver, q, {{"dim", ""}});
    EXPECT_NE(plan.find("join strategy: hash join"), std::string::npos)
        << plan;
    EXPECT_NE(plan.find("projection(fact): "), std::string::npos) << plan;
    EXPECT_NE(plan.find("projection(dim): super"), std::string::npos)
        << plan;
  });
}

TEST_F(ExplainTest, NonPlannableJoinsFallBackToTheLegacyLine) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver);
    ExecOk(driver,
           "CREATE VIEW dim_view AS SELECT cust_id, region FROM dim");
    // View side: not plannable.
    std::string plan = Plan(
        driver,
        "SELECT COUNT(*) FROM fact JOIN dim_view ON cust = cust_id");
    EXPECT_NE(plan.find("join: n/a (not a plannable base-table join)"),
              std::string::npos)
        << plan;
    // Non-equality ON: not plannable.
    plan = Plan(driver,
                "SELECT COUNT(*) FROM fact JOIN dim ON cust < cust_id");
    EXPECT_NE(plan.find("join: n/a"), std::string::npos) << plan;
    // Self join: not plannable.
    plan = Plan(driver, "SELECT COUNT(*) FROM fact JOIN fact ON id = id");
    EXPECT_NE(plan.find("join: n/a"), std::string::npos) << plan;
  });
}

TEST_F(ExplainTest, AtEpochPredatingProjectionsPlansHash) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver);
    storage::Epoch before = db_->current_epoch();
    ExecOk(driver,
           "CREATE PROJECTION fact_by_cust AS SELECT cust, amount "
           "FROM fact ORDER BY cust SEGMENTED BY HASH(cust)");
    ExecOk(driver,
           "CREATE PROJECTION dim_by_cust AS SELECT cust_id, region "
           "FROM dim ORDER BY cust_id SEGMENTED BY HASH(cust_id)");
    // Current snapshot merges; a snapshot predating the projections
    // cannot use them and must plan a hash join over the supers.
    std::string now_plan = Plan(
        driver,
        "SELECT SUM(amount) FROM fact JOIN dim ON cust = cust_id");
    EXPECT_NE(now_plan.find("merge join"), std::string::npos) << now_plan;
    std::string hist_plan = Plan(
        driver,
        StrCat("SELECT SUM(amount) FROM fact JOIN dim ON cust = cust_id "
               "AT EPOCH ",
               static_cast<int64_t>(before)));
    EXPECT_NE(hist_plan.find("join strategy: hash join"), std::string::npos)
        << hist_plan;
    EXPECT_NE(hist_plan.find("projection(fact): super"), std::string::npos)
        << hist_plan;
  });
}

}  // namespace
}  // namespace fabric::vertica
