// Database-designer tests: workload capture drives deterministic
// proposals (SELECT DESIGN_PROPOSALS + v_monitor.design_proposals), the
// storage budget bounds what gets proposed, proposed DDL is executable
// and flips the planner to the proposed layouts, and a seeded
// chaos/property suite (DESIGNER_SEED) asserting (a) the designer is a
// pure function of the captured workload — two identically seeded runs
// propose identical DDL — and (b) adopting every proposal never changes
// any query's answer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "sim/engine.h"
#include "vertica/database.h"
#include "vertica/designer/designer.h"
#include "vertica/session.h"

namespace fabric::vertica {
namespace {

using storage::Row;
using storage::Value;

std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("DESIGNER_SEED");
}

std::vector<std::string> Lines(const QueryResult& result) {
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  return out;
}

class DesignerTest : public ::testing::Test {
 protected:
  DesignerTest() { Recreate(); }

  void Recreate() {
    db_.reset();
    network_.reset();
    engine_ = std::make_unique<sim::Engine>();
    network_ = std::make_unique<net::Network>(engine_.get());
    Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<Database>(engine_.get(), network_.get(), vopts);
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_->Spawn("driver", std::move(body));
    Status status = engine_->Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  QueryResult ExecOk(sim::Process& driver, const std::string& sql) {
    auto session = db_->Connect(driver, 0, nullptr);
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return QueryResult{};
    auto result = (*session)->Execute(driver, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    Status closed = (*session)->Close(driver);
    EXPECT_TRUE(closed.ok()) << closed;
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  void LoadFixture(sim::Process& driver, int fact_rows, int dim_rows) {
    ExecOk(driver,
           "CREATE TABLE fact (id INTEGER, cust INTEGER, amount FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");
    ExecOk(driver,
           "CREATE TABLE dim (cust_id INTEGER, region VARCHAR) "
           "SEGMENTED BY HASH(cust_id) ALL NODES");
    static const char* kRegions[] = {"east", "west", "north", "south"};
    std::string values;
    for (int i = 0; i < fact_rows; ++i) {
      if (i % 50 == 0 && !values.empty()) {
        ExecOk(driver, StrCat("INSERT INTO fact VALUES ", values));
        values.clear();
      }
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", ",
                       (i * 3) % dim_rows, ", ", i % 7, ".25)");
    }
    if (!values.empty()) {
      ExecOk(driver, StrCat("INSERT INTO fact VALUES ", values));
    }
    values.clear();
    for (int i = 0; i < dim_rows; ++i) {
      values += StrCat(values.empty() ? "" : ", ", "(", i, ", '",
                       kRegions[i % 4], "')");
    }
    ExecOk(driver, StrCat("INSERT INTO dim VALUES ", values));
  }

  // The workload the designer optimizes for: a repeated join plus a
  // single-table aggregate.
  std::vector<std::string> Workload() const {
    return {
        "SELECT region, SUM(amount) FROM fact JOIN dim "
        "ON cust = cust_id GROUP BY region ORDER BY region",
        "SELECT cust, SUM(amount) FROM fact GROUP BY cust ORDER BY cust",
    };
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Database> db_;
};

TEST_F(DesignerTest, ProposesAdoptableLayoutsThatFlipThePlanner) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 300, 30);
    for (int rep = 0; rep < 3; ++rep) {
      for (const std::string& q : Workload()) ExecOk(driver, q);
    }

    // The designer replays the captured history and proposes layouts.
    QueryResult summary = ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.8, 4)");
    ASSERT_EQ(summary.rows.size(), 1u);
    EXPECT_NE(summary.rows[0][0].varchar_value().find("proposals"),
              std::string::npos);

    QueryResult proposals = ExecOk(
        driver,
        "SELECT proposal_name, anchor_table, sort_columns, ddl "
        "FROM v_monitor.design_proposals ORDER BY proposal_name");
    ASSERT_GE(proposals.rows.size(), 1u);
    bool fact_sorted_on_cust = false;
    for (const Row& row : proposals.rows) {
      if (row[1].varchar_value() == "fact" &&
          StartsWith(row[2].varchar_value(), "cust")) {
        fact_sorted_on_cust = true;
      }
    }
    EXPECT_TRUE(fact_sorted_on_cust)
        << "expected a fact layout sorted on the join/group key";

    // Snapshot answers, adopt every proposal, re-check: byte-identical,
    // and the join now plans as a merge join.
    std::vector<std::vector<std::string>> before;
    for (const std::string& q : Workload()) {
      before.push_back(Lines(ExecOk(driver, q)));
    }
    for (const Row& row : proposals.rows) {
      ExecOk(driver, row[3].varchar_value());
    }
    for (size_t i = 0; i < Workload().size(); ++i) {
      EXPECT_EQ(before[i], Lines(ExecOk(driver, Workload()[i])))
          << Workload()[i];
    }
    QueryResult plan = ExecOk(
        driver, StrCat("EXPLAIN ", Workload()[0]));
    std::string plan_text;
    for (const Row& row : plan.rows) plan_text += row[0].varchar_value();
    EXPECT_NE(plan_text.find("merge join"), std::string::npos) << plan_text;
  });
}

TEST_F(DesignerTest, RepeatedRunsAreDeterministic) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 200, 20);
    for (const std::string& q : Workload()) ExecOk(driver, q);
    ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.8, 4)");
    QueryResult first = ExecOk(
        driver, "SELECT ddl FROM v_monitor.design_proposals");
    // Re-running over the same history (v_monitor reads and the
    // FROM-less designer call are not captured) proposes the same set.
    ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.8, 4)");
    QueryResult second = ExecOk(
        driver, "SELECT ddl FROM v_monitor.design_proposals");
    EXPECT_EQ(Lines(first), Lines(second));
    ASSERT_GE(first.rows.size(), 1u);
  });
}

TEST_F(DesignerTest, StorageBudgetBoundsProposals) {
  RunDriver([&](sim::Process& driver) {
    LoadFixture(driver, 200, 20);
    for (const std::string& q : Workload()) ExecOk(driver, q);

    // A near-zero budget cannot afford any projection.
    ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.000001, 4)");
    EXPECT_EQ(ExecOk(driver,
                     "SELECT proposal_name FROM v_monitor.design_proposals")
                  .rows.size(),
              0u);

    // A generous budget proposes within it: total estimated storage of
    // the proposals stays under budget_fraction x anchor raw bytes.
    ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.8, 4)");
    QueryResult rows = ExecOk(
        driver,
        "SELECT SUM(storage_bytes) FROM v_monitor.design_proposals");
    ASSERT_EQ(rows.rows.size(), 1u);
    double proposed = rows.rows[0][0].is_null()
                          ? 0.0
                          : rows.rows[0][0].float64_value();
    double anchors = 0;
    for (const std::string& table : {"fact", "dim"}) {
      auto storage = db_->GetStorage(table);
      ASSERT_TRUE(storage.ok());
      for (const auto& store : (*storage)->per_node) {
        anchors += store->TotalRawBytes();
      }
    }
    EXPECT_GT(proposed, 0.0);
    EXPECT_LE(proposed, 0.8 * anchors);

    // Bad arguments are rejected.
    auto session = db_->Connect(driver, 0, nullptr);
    ASSERT_TRUE(session.ok());
    auto bad = (*session)->Execute(driver, "SELECT DESIGN_PROPOSALS(-1.0)");
    EXPECT_FALSE(bad.ok());
    ASSERT_TRUE((*session)->Close(driver).ok());
  });
}

// ------------------------------------------------------------- property

// For each seed: build a random workload, run the designer twice in two
// identically seeded universes (fresh engine each) — the proposal DDL
// must match exactly — then adopt every proposal and verify no query's
// answer changed.
TEST_F(DesignerTest, SeededWorkloadsAreDeterministicAndAnswerPreserving) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    std::vector<std::string> ddl_runs[2];
    for (int run = 0; run < 2; ++run) {
      Recreate();
      RunDriver([&](sim::Process& driver) {
        Rng rng(seed);
        int fact_rows = 120 + static_cast<int>(rng.NextUint64(120));
        int dim_rows = 10 + static_cast<int>(rng.NextUint64(30));
        LoadFixture(driver, fact_rows, dim_rows);

        // Random query mix: joins, filters, aggregates.
        std::vector<std::string> queries;
        int count = 4 + static_cast<int>(rng.NextUint64(5));
        for (int i = 0; i < count; ++i) {
          switch (rng.NextUint64(3)) {
            case 0:
              queries.push_back(
                  "SELECT region, COUNT(*) FROM fact JOIN dim "
                  "ON cust = cust_id GROUP BY region ORDER BY region");
              break;
            case 1:
              queries.push_back(StrCat(
                  "SELECT cust, SUM(amount) FROM fact WHERE amount > ",
                  rng.NextUint64(5),
                  ".0 GROUP BY cust ORDER BY cust"));
              break;
            default:
              queries.push_back(StrCat(
                  "SELECT id, cust, amount FROM fact WHERE id % 9 = ",
                  rng.NextUint64(9), " ORDER BY id"));
              break;
          }
        }
        for (const std::string& q : queries) ExecOk(driver, q);

        ExecOk(driver, "SELECT DESIGN_PROPOSALS(0.7, 3)");
        QueryResult proposals = ExecOk(
            driver, "SELECT ddl FROM v_monitor.design_proposals");
        for (const Row& row : proposals.rows) {
          ddl_runs[run].push_back(row[0].varchar_value());
        }

        // Adoption never changes answers.
        std::vector<std::vector<std::string>> before;
        for (const std::string& q : queries) {
          before.push_back(Lines(ExecOk(driver, q)));
        }
        for (const std::string& ddl : ddl_runs[run]) ExecOk(driver, ddl);
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(before[i], Lines(ExecOk(driver, queries[i])))
              << queries[i];
        }
      });
    }
    EXPECT_EQ(ddl_runs[0], ddl_runs[1])
        << "designer proposals must be a pure function of the workload";
  }
}

}  // namespace
}  // namespace fabric::vertica
