#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/cluster.h"
#include "spark/dataframe.h"
#include "spark/types.h"

namespace fabric::spark {
namespace {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

Schema TwoColSchema() {
  return Schema({{"id", DataType::kInt64}, {"v", DataType::kFloat64}});
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 0.5)});
  }
  return rows;
}

class SparkTest : public ::testing::Test {
 protected:
  SparkTest() : network_(&engine_) {
    SparkCluster::Options options;
    options.num_workers = 4;
    options.cost.spark_slots_per_worker = 4;
    cluster_ = std::make_unique<SparkCluster>(&engine_, &network_, options);
    session_ = std::make_unique<SparkSession>(cluster_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<SparkCluster> cluster_;
  std::unique_ptr<SparkSession> session_;
};

TEST_F(SparkTest, CreateDataFrameAndCollect) {
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TwoColSchema(), MakeRows(100), 8);
    ASSERT_TRUE(df.ok());
    EXPECT_EQ(df->NumPartitions(), 8);
    auto rows = df->Collect(driver);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->size(), 100u);
  });
}

TEST_F(SparkTest, CountAndFilterAndSelect) {
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TwoColSchema(), MakeRows(100), 4);
    ASSERT_TRUE(df.ok());
    EXPECT_EQ(df->Count(driver).value(), 100);
    ColumnPredicate pred;
    pred.column = "id";
    pred.op = ColumnPredicate::Op::kGe;
    pred.literal = Value::Int64(90);
    DataFrame filtered = df->Filter(pred);
    EXPECT_EQ(filtered.Count(driver).value(), 10);
    auto selected = filtered.Select({"v"});
    ASSERT_TRUE(selected.ok());
    EXPECT_EQ(selected->schema().num_columns(), 1);
    auto rows = selected->Collect(driver);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 10u);
    EXPECT_EQ((*rows)[0].size(), 1u);
  });
}

TEST_F(SparkTest, MapAndUnionAndOpaqueFilter) {
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TwoColSchema(), MakeRows(10), 2);
    ASSERT_TRUE(df.ok());
    Schema mapped_schema({{"doubled", DataType::kInt64}});
    DataFrame mapped = df->Map(
        [](const Row& row) -> Result<Row> {
          return Row{Value::Int64(row[0].int64_value() * 2)};
        },
        mapped_schema);
    DataFrame odd = mapped.Filter([](const Row& row) -> Result<bool> {
      return row[0].int64_value() % 4 == 2;
    });
    auto unioned = mapped.Union(odd);
    ASSERT_TRUE(unioned.ok());
    EXPECT_EQ(unioned->Count(driver).value(), 10 + 5);
    // Union of mismatched schemas fails.
    EXPECT_FALSE(df->Union(mapped).ok());
  });
}

TEST_F(SparkTest, RepartitionCoalescePreservesRows) {
  RunDriver([&](sim::Process& driver) {
    auto df = session_->CreateDataFrame(TwoColSchema(), MakeRows(97), 16);
    ASSERT_TRUE(df.ok());
    auto coalesced = df->Repartition(5);
    ASSERT_TRUE(coalesced.ok());
    EXPECT_EQ(coalesced->NumPartitions(), 5);
    auto rows = coalesced->Collect(driver);
    ASSERT_TRUE(rows.ok());
    std::set<int64_t> ids;
    for (const Row& row : *rows) ids.insert(row[0].int64_value());
    EXPECT_EQ(ids.size(), 97u);
    // Widening driver-local data reslices it.
    auto widened = df->Repartition(32);
    ASSERT_TRUE(widened.ok());
    EXPECT_EQ(widened->NumPartitions(), 32);
    EXPECT_EQ(widened->Count(driver).value(), 97);
  });
}

TEST_F(SparkTest, PushDownPassFusesFiltersAndSelectsIntoScan) {
  // Build by hand: a scan plan wrapped by filter+select must collapse.
  auto scan = std::make_shared<Plan>();
  scan->kind = Plan::Kind::kScan;
  scan->schema = TwoColSchema();
  DataFrame df = session_->WrapPlan(scan);
  ColumnPredicate pred;
  pred.column = "id";
  pred.op = ColumnPredicate::Op::kLt;
  pred.literal = Value::Int64(5);
  auto chained = df.Filter(pred).Select({"v"});
  ASSERT_TRUE(chained.ok());
  auto fused = PushDownPass(chained->plan());
  ASSERT_EQ(fused->kind, Plan::Kind::kScan);
  ASSERT_EQ(fused->pushed.filters.size(), 1u);
  EXPECT_EQ(fused->pushed.filters[0].column, "id");
  EXPECT_EQ(fused->pushed.required_columns,
            std::vector<std::string>{"v"});
  EXPECT_EQ(fused->schema.num_columns(), 1);
}

TEST_F(SparkTest, OpaqueFilterBlocksPushdown) {
  auto scan = std::make_shared<Plan>();
  scan->kind = Plan::Kind::kScan;
  scan->schema = TwoColSchema();
  DataFrame df = session_->WrapPlan(scan);
  DataFrame opaque = df.Filter(
      [](const Row&) -> Result<bool> { return true; });
  ColumnPredicate pred;
  pred.column = "id";
  pred.op = ColumnPredicate::Op::kLt;
  pred.literal = Value::Int64(5);
  DataFrame mixed = opaque.Filter(pred);
  auto fused = PushDownPass(mixed.plan());
  // The pushable filter stays above the opaque one; the scan keeps no
  // pushed filters.
  EXPECT_EQ(fused->kind, Plan::Kind::kFilterPredicate);
}

TEST_F(SparkTest, JobUsesSlotsInWaves) {
  // 4 workers x 4 slots = 16 slots; 32 equal one-second tasks need two
  // waves.
  RunDriver([&](sim::Process& driver) {
    auto stats = cluster_->RunJob(driver, "waves", 32,
                                  [](TaskContext& task) -> Status {
                                    return task.process->Sleep(1.0);
                                  });
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->attempts_launched, 32);
    EXPECT_GE(stats->makespan, 2.0);
    EXPECT_LT(stats->makespan, 3.0);
  });
}

TEST_F(SparkTest, FailedTasksAreRetried) {
  ScriptedFailureInjector injector;
  injector.KillAttempt(3, 0, 0.2).KillAttempt(3, 1, 0.2);
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    auto stats = cluster_->RunJob(driver, "retry", 8,
                                  [](TaskContext& task) -> Status {
                                    return task.process->Sleep(1.0);
                                  });
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->attempts_failed, 2);
    EXPECT_EQ(stats->attempts_launched, 10);  // 8 + 2 retries
  });
}

TEST_F(SparkTest, JobAbortsAfterMaxFailures) {
  ScriptedFailureInjector injector;
  for (int attempt = 0; attempt < 8; ++attempt) {
    injector.KillAttempt(0, attempt, 0.1);
  }
  cluster_->set_failure_injector(&injector);
  RunDriver([&](sim::Process& driver) {
    auto stats = cluster_->RunJob(driver, "doomed", 4,
                                  [](TaskContext& task) -> Status {
                                    return task.process->Sleep(1.0);
                                  });
    EXPECT_EQ(stats.status().code(), StatusCode::kAborted);
  });
}

TEST_F(SparkTest, SpeculationDuplicatesStragglers) {
  RunDriver([&](sim::Process& driver) {
    // Task 0 (attempt 0) sleeps forever-ish; all others are quick. The
    // speculative copy (attempt 1) is fast, so the job finishes long
    // before the straggler would.
    auto stats = cluster_->RunJob(
        driver, "straggle", 8, [](TaskContext& task) -> Status {
          if (task.task == 0 && task.attempt == 0) {
            return task.process->Sleep(500.0);
          }
          return task.process->Sleep(1.0);
        });
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_GE(stats->speculative_launched, 1);
    // The straggler still runs to completion (the scheduler does not
    // preempt), but the duplicate finished the task.
    EXPECT_GE(stats->makespan, 1.0);
  });
}

TEST_F(SparkTest, SpeculativeDuplicatesBothExecute) {
  // Count executions per task: the speculated task's body runs twice —
  // the hazard S2V must tolerate.
  RunDriver([&](sim::Process& driver) {
    auto executions = std::make_shared<std::vector<int>>(8, 0);
    auto stats = cluster_->RunJob(
        driver, "dup", 8, [executions](TaskContext& task) -> Status {
          ++(*executions)[task.task];
          if (task.task == 0 && task.attempt == 0) {
            return task.process->Sleep(300.0);
          }
          return task.process->Sleep(1.0);
        });
    ASSERT_TRUE(stats.ok());
    EXPECT_GE((*executions)[0], 2);
  });
}

TEST(SourceOptionsTest, TypedAccess) {
  SourceOptions options;
  options.Set("Table", "t1").Set("NumPartitions", 32);
  EXPECT_TRUE(options.Has("table"));
  EXPECT_EQ(options.Get("TABLE").value(), "t1");
  EXPECT_EQ(options.GetInt("numpartitions").value(), 32);
  EXPECT_EQ(options.GetIntOr("missing", 7), 7);
  EXPECT_EQ(options.GetOr("missing", "x"), "x");
  EXPECT_FALSE(options.Get("missing").ok());
  options.Set("tolerance", "0.25");
  EXPECT_DOUBLE_EQ(options.GetDoubleOr("tolerance", 0), 0.25);
}

TEST(ColumnPredicateTest, MatchAndSql) {
  Schema schema({{"id", DataType::kInt64}, {"s", DataType::kVarchar}});
  Row row = {Value::Int64(5), Value::Varchar("x")};
  ColumnPredicate ge{"id", ColumnPredicate::Op::kGe, Value::Int64(5)};
  EXPECT_TRUE(ge.Matches(schema, row).value());
  EXPECT_EQ(ge.ToSqlCondition(), "id >= 5");
  ColumnPredicate null_check{"s", ColumnPredicate::Op::kIsNotNull,
                             Value::Null()};
  EXPECT_TRUE(null_check.Matches(schema, row).value());
  EXPECT_EQ(null_check.ToSqlCondition(), "s IS NOT NULL");
  Row with_null = {Value::Null(), Value::Varchar("x")};
  EXPECT_FALSE(ge.Matches(schema, with_null).value());
}

}  // namespace
}  // namespace fabric::spark
