#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/encoding.h"
#include "storage/schema.h"
#include "storage/segment_store.h"
#include "storage/value.h"

namespace fabric::storage {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"score", DataType::kFloat64},
                 {"name", DataType::kVarchar},
                 {"flag", DataType::kBool}});
}

Row MakeRow(int64_t id, double score, const std::string& name, bool flag) {
  return {Value::Int64(id), Value::Float64(score), Value::Varchar(name),
          Value::Bool(flag)};
}

TEST(ValueTest, NullSemantics) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_TRUE(null.Equals(Value::Null()));
  EXPECT_FALSE(null.Equals(Value::Int64(0)));
  EXPECT_EQ(null.RawSize(), 0);
  EXPECT_EQ(null.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, TypedAccessorsAndSizes) {
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_EQ(Value::Float64(2.5).float64_value(), 2.5);
  EXPECT_EQ(Value::Varchar("abc").varchar_value(), "abc");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(7).RawSize(), 8);
  EXPECT_EQ(Value::Float64(1.0).RawSize(), 8);
  EXPECT_EQ(Value::Varchar("abcd").RawSize(), 4);
  EXPECT_EQ(Value::Bool(false).RawSize(), 1);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_TRUE(Value::Int64(1).Equals(Value::Float64(1.0)));
  EXPECT_EQ(Value::Int64(1).Compare(Value::Float64(1.5)).value(), -1);
  EXPECT_EQ(Value::Float64(2.0).Compare(Value::Int64(2)).value(), 0);
}

TEST(ValueTest, VarcharComparison) {
  EXPECT_EQ(Value::Varchar("a").Compare(Value::Varchar("b")).value(), -1);
  EXPECT_FALSE(Value::Varchar("1").Compare(Value::Int64(1)).ok());
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_EQ(Value::Null().Compare(Value::Int64(-100)).value(), -1);
  EXPECT_EQ(Value::Int64(-100).Compare(Value::Null()).value(), 1);
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::Varchar("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Int64(-3).ToSqlLiteral(), "-3");
  EXPECT_EQ(Value::Bool(true).ToSqlLiteral(), "TRUE");
}

TEST(ValueTest, ParseAsRoundTrip) {
  EXPECT_EQ(Value::ParseAs(DataType::kInt64, "42")->int64_value(), 42);
  EXPECT_EQ(Value::ParseAs(DataType::kFloat64, "2.5")->float64_value(), 2.5);
  EXPECT_EQ(Value::ParseAs(DataType::kVarchar, "hi")->varchar_value(), "hi");
  EXPECT_TRUE(Value::ParseAs(DataType::kBool, "TRUE")->bool_value());
  EXPECT_FALSE(Value::ParseAs(DataType::kInt64, "4x").ok());
}

TEST(ValueTest, ParseDataTypeNames) {
  EXPECT_EQ(*ParseDataType("INTEGER"), DataType::kInt64);
  EXPECT_EQ(*ParseDataType("varchar(80)"), DataType::kVarchar);
  EXPECT_EQ(*ParseDataType("Double"), DataType::kFloat64);
  EXPECT_EQ(*ParseDataType("BOOLEAN"), DataType::kBool);
  EXPECT_FALSE(ParseDataType("blob").ok());
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.IndexOf("ID"), 0);
  EXPECT_EQ(*schema.IndexOf("Name"), 2);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
  EXPECT_TRUE(schema.Contains("flag"));
}

TEST(SchemaTest, ProjectionPreservesOrder) {
  Schema projected = TestSchema().Project({2, 0});
  ASSERT_EQ(projected.num_columns(), 2);
  EXPECT_EQ(projected.column(0).name, "name");
  EXPECT_EQ(projected.column(1).name, "id");
}

TEST(SchemaTest, DdlBody) {
  EXPECT_EQ(TestSchema().ToDdlBody(),
            "id INTEGER, score FLOAT, name VARCHAR, flag BOOLEAN");
}

TEST(SchemaTest, ValidateRow) {
  Schema schema = TestSchema();
  EXPECT_TRUE(ValidateRow(schema, MakeRow(1, 2.0, "x", true)).ok());
  // Int into float column widens.
  Row widened = {Value::Int64(1), Value::Int64(2), Value::Varchar("x"),
                 Value::Bool(true)};
  EXPECT_TRUE(ValidateRow(schema, widened).ok());
  // Nulls pass.
  Row nulls = {Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(ValidateRow(schema, nulls).ok());
  // Type mismatch fails.
  Row bad = {Value::Varchar("1"), Value::Float64(2), Value::Varchar("x"),
             Value::Bool(true)};
  EXPECT_FALSE(ValidateRow(schema, bad).ok());
  // Arity mismatch fails.
  EXPECT_FALSE(ValidateRow(schema, {Value::Int64(1)}).ok());
}

TEST(SchemaTest, SegmentationHashIsOrderSensitive) {
  Row row = MakeRow(1, 2.0, "x", true);
  EXPECT_NE(RowSegmentationHash(row, {0, 1}), RowSegmentationHash(row, {1, 0}));
  EXPECT_EQ(RowSegmentationHash(row, {0, 1}), RowSegmentationHash(row, {0, 1}));
}

std::vector<Value> Int64Column(const std::vector<int64_t>& v) {
  std::vector<Value> out;
  for (int64_t x : v) out.push_back(Value::Int64(x));
  return out;
}

TEST(EncodingTest, PlainRoundTripAllTypes) {
  for (DataType type : {DataType::kBool, DataType::kInt64,
                        DataType::kFloat64, DataType::kVarchar}) {
    std::vector<Value> values;
    for (int i = 0; i < 10; ++i) {
      switch (type) {
        case DataType::kBool:
          values.push_back(Value::Bool(i % 2 == 0));
          break;
        case DataType::kInt64:
          values.push_back(Value::Int64(i * 1000 - 5));
          break;
        case DataType::kFloat64:
          values.push_back(Value::Float64(i * 0.125));
          break;
        case DataType::kVarchar:
          values.push_back(Value::Varchar(std::string(i, 'x')));
          break;
      }
    }
    values.push_back(Value::Null());
    auto chunk = EncodeColumnAs(type, Encoding::kPlain, values);
    ASSERT_TRUE(chunk.ok());
    auto decoded = DecodeColumn(*chunk);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_TRUE((*decoded)[i].Equals(values[i]));
    }
  }
}

TEST(EncodingTest, RleCompressesRuns) {
  std::vector<Value> values;
  for (int run = 0; run < 5; ++run) {
    for (int i = 0; i < 100; ++i) values.push_back(Value::Int64(run));
  }
  auto plain = EncodeColumnAs(DataType::kInt64, Encoding::kPlain, values);
  auto rle = EncodeColumnAs(DataType::kInt64, Encoding::kRle, values);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(rle.ok());
  EXPECT_LT(rle->data.size() * 10, plain->data.size());
  auto decoded = DecodeColumn(*rle);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE((*decoded)[i].Equals(values[i]));
  }
}

TEST(EncodingTest, DictionaryCompressesLowCardinalityStrings) {
  std::vector<Value> values;
  const std::vector<std::string> words = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 300; ++i) {
    values.push_back(Value::Varchar(words[i % words.size()]));
  }
  auto plain = EncodeColumnAs(DataType::kVarchar, Encoding::kPlain, values);
  auto dict =
      EncodeColumnAs(DataType::kVarchar, Encoding::kDictionary, values);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(dict.ok());
  EXPECT_LT(dict->data.size(), plain->data.size());
  auto decoded = DecodeColumn(*dict);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE((*decoded)[i].Equals(values[i]));
  }
}

TEST(EncodingTest, AutoPickerNeverWorseThanPlain) {
  Rng rng(42);
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(Value::Int64(static_cast<int64_t>(rng.NextUint64(4))));
  }
  auto chosen = EncodeColumn(DataType::kInt64, values);
  auto plain = EncodeColumnAs(DataType::kInt64, Encoding::kPlain, values);
  ASSERT_TRUE(chosen.ok());
  EXPECT_LE(chosen->data.size(), plain->data.size());
}

TEST(EncodingTest, RejectsMixedTypes) {
  std::vector<Value> values = {Value::Int64(1), Value::Varchar("x")};
  EXPECT_FALSE(EncodeColumn(DataType::kInt64, values).ok());
}

TEST(EncodingTest, NullRunsRoundTrip) {
  std::vector<Value> values;
  for (int i = 0; i < 20; ++i) values.push_back(Value::Null());
  values.push_back(Value::Int64(1));
  for (Encoding e :
       {Encoding::kPlain, Encoding::kRle, Encoding::kDictionary}) {
    auto chunk = EncodeColumnAs(DataType::kInt64, e, values);
    ASSERT_TRUE(chunk.ok()) << EncodingName(e);
    auto decoded = DecodeColumn(*chunk);
    ASSERT_TRUE(decoded.ok()) << EncodingName(e);
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_TRUE((*decoded)[i].Equals(values[i])) << EncodingName(e);
    }
  }
}

// Property sweep: random typed columns round-trip through every encoding.
class EncodingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingPropertyTest, RandomColumnsRoundTrip) {
  Rng rng(GetParam());
  for (DataType type : {DataType::kBool, DataType::kInt64,
                        DataType::kFloat64, DataType::kVarchar}) {
    std::vector<Value> values;
    int n = 1 + static_cast<int>(rng.NextUint64(300));
    for (int i = 0; i < n; ++i) {
      if (rng.NextBool(0.1)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (type) {
        case DataType::kBool:
          values.push_back(Value::Bool(rng.NextBool(0.5)));
          break;
        case DataType::kInt64:
          values.push_back(Value::Int64(rng.NextInt64(-5, 5)));
          break;
        case DataType::kFloat64:
          values.push_back(Value::Float64(rng.NextDouble()));
          break;
        case DataType::kVarchar:
          values.push_back(
              Value::Varchar(rng.NextString(static_cast<int>(rng.NextUint64(12)))));
          break;
      }
    }
    for (Encoding e :
         {Encoding::kPlain, Encoding::kRle, Encoding::kDictionary}) {
      auto chunk = EncodeColumnAs(type, e, values);
      ASSERT_TRUE(chunk.ok());
      auto decoded = DecodeColumn(*chunk);
      ASSERT_TRUE(decoded.ok());
      ASSERT_EQ(decoded->size(), values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        ASSERT_TRUE((*decoded)[i].Equals(values[i]))
            << EncodingName(e) << " row " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingPropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47));

TEST(RosContainerTest, CreateComputesStats) {
  Schema schema = TestSchema();
  std::vector<Row> rows = {MakeRow(3, 1.0, "abc", true),
                           MakeRow(1, 2.0, "zz", false),
                           MakeRow(2, -1.0, "m", true)};
  auto ros = RosContainer::Create(schema, rows, /*txn=*/1);
  ASSERT_TRUE(ros.ok());
  EXPECT_EQ(ros->num_rows(), 3u);
  EXPECT_FALSE(ros->committed());
  EXPECT_EQ(ros->min_value(0).int64_value(), 1);
  EXPECT_EQ(ros->max_value(0).int64_value(), 3);
  EXPECT_EQ(ros->min_value(1).float64_value(), -1.0);
  EXPECT_EQ(ros->min_value(2).varchar_value(), "abc");
  // raw: 3 rows * (8 + 8 + len + 1)
  EXPECT_DOUBLE_EQ(ros->raw_bytes(), (17 + 3) + (17 + 2) + (17 + 1));
  auto decoded = ros->DecodeRows();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(RowsEqual((*decoded)[1], rows[1]));
}

class SegmentStoreTest : public ::testing::Test {
 protected:
  SegmentStoreTest() : store_(TestSchema()) {}
  SegmentStore store_;
};

TEST_F(SegmentStoreTest, PendingRowsInvisibleToOthers) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  EXPECT_EQ(store_.CountVisible(100, /*txn=*/0).value(), 0);
  EXPECT_EQ(store_.CountVisible(100, /*txn=*/10).value(), 1);
  EXPECT_EQ(store_.CountVisible(100, /*txn=*/11).value(), 0);
}

TEST_F(SegmentStoreTest, CommitMakesRowsVisibleAtEpoch) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, /*epoch=*/5);
  EXPECT_EQ(store_.CountVisible(4).value(), 0);   // before commit epoch
  EXPECT_EQ(store_.CountVisible(5).value(), 1);   // at commit epoch
  EXPECT_EQ(store_.CountVisible(99).value(), 1);  // after
}

TEST_F(SegmentStoreTest, AbortDiscardsPendingRows) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  ASSERT_TRUE(store_.InsertPendingDirect(10, {MakeRow(2, 2.0, "b", false)})
                  .ok());
  store_.AbortTxn(10);
  EXPECT_EQ(store_.CountVisible(100, 10).value(), 0);
  EXPECT_EQ(store_.num_wos_batches(), 0);
  EXPECT_EQ(store_.num_ros_containers(), 0);
}

TEST_F(SegmentStoreTest, DeleteRespectsEpochSnapshots) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true),
                                        MakeRow(2, 2.0, "b", false)})
                  .ok());
  store_.CommitTxn(10, 5);
  // Delete id=1 in txn 11, committed at epoch 7.
  auto deleted = store_.DeletePending(11, 6, [](const Row& row) {
    return row[0].int64_value() == 1;
  });
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1);
  // Before txn 11 commits, other readers still see both rows.
  EXPECT_EQ(store_.CountVisible(6).value(), 2);
  // The deleting txn no longer sees the row.
  EXPECT_EQ(store_.CountVisible(6, 11).value(), 1);
  store_.CommitTxn(11, 7);
  EXPECT_EQ(store_.CountVisible(6).value(), 2);  // old epoch: still there
  EXPECT_EQ(store_.CountVisible(7).value(), 1);  // new epoch: gone
}

TEST_F(SegmentStoreTest, DeleteAbortRestoresRow) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(store_.DeletePending(11, 5, [](const Row&) { return true; })
                  .ok());
  store_.AbortTxn(11);
  EXPECT_EQ(store_.CountVisible(5).value(), 1);
}

TEST_F(SegmentStoreTest, MoveoutPreservesEpochVisibility) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(store_.InsertPending(11, {MakeRow(2, 2.0, "b", false)}).ok());
  store_.CommitTxn(11, 8);
  ASSERT_TRUE(store_.InsertPending(12, {MakeRow(3, 3.0, "c", true)}).ok());
  // txn 12 still pending through moveout.
  ASSERT_TRUE(store_.Moveout().ok());
  EXPECT_EQ(store_.num_wos_batches(), 1);      // the pending batch stays
  // Both committed batches fold into one container; per-row epochs keep
  // AT EPOCH visibility exact.
  EXPECT_EQ(store_.num_ros_containers(), 1);
  EXPECT_EQ(store_.CountVisible(5).value(), 1);
  EXPECT_EQ(store_.CountVisible(8).value(), 2);
  EXPECT_EQ(store_.CountVisible(8, 12).value(), 3);
  store_.CommitTxn(12, 9);
  EXPECT_EQ(store_.CountVisible(9).value(), 3);
}

TEST_F(SegmentStoreTest, MoveoutKeepsDeleteMarks) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true),
                                        MakeRow(2, 2.0, "b", false)})
                  .ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(store_.DeletePending(11, 5, [](const Row& row) {
                     return row[0].int64_value() == 2;
                   }).ok());
  store_.CommitTxn(11, 6);
  ASSERT_TRUE(store_.Moveout().ok());
  EXPECT_EQ(store_.CountVisible(5).value(), 2);
  EXPECT_EQ(store_.CountVisible(6).value(), 1);
}

TEST_F(SegmentStoreTest, MergeRosContainersPreservesEpochVisibility) {
  // Two DIRECT loads committed at different epochs, one later delete.
  ASSERT_TRUE(
      store_.InsertPendingDirect(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(
      store_.InsertPendingDirect(11, {MakeRow(2, 2.0, "b", false)}).ok());
  store_.CommitTxn(11, 8);
  ASSERT_TRUE(store_.DeletePending(12, 8, [](const Row& row) {
                     return row[0].int64_value() == 1;
                   }).ok());
  store_.CommitTxn(12, 9);
  uint64_t fingerprint = store_.ContentFingerprint();
  auto merged = store_.MergeRosContainers({0, 1});
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(*merged, 0.0);
  EXPECT_EQ(store_.num_ros_containers(), 1);
  // Mergeout is content-preserving: the layout-blind fingerprint and all
  // AT EPOCH reads are unchanged.
  EXPECT_EQ(store_.ContentFingerprint(), fingerprint);
  EXPECT_EQ(store_.CountVisible(5).value(), 1);
  EXPECT_EQ(store_.CountVisible(8).value(), 2);
  EXPECT_EQ(store_.CountVisible(9).value(), 1);
}

TEST_F(SegmentStoreTest, MergeRejectsUncommittedContainers) {
  ASSERT_TRUE(
      store_.InsertPendingDirect(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(
      store_.InsertPendingDirect(11, {MakeRow(2, 2.0, "b", false)}).ok());
  EXPECT_FALSE(store_.MergeRosContainers({0, 1}).ok());
}

TEST_F(SegmentStoreTest, PurgeDropsOnlyAncientDeletes) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true),
                                        MakeRow(2, 2.0, "b", false)})
                  .ok());
  store_.CommitTxn(10, 5);
  ASSERT_TRUE(store_.Moveout().ok());
  ASSERT_TRUE(store_.DeletePending(11, 5, [](const Row& row) {
                     return row[0].int64_value() == 1;
                   }).ok());
  store_.CommitTxn(11, 6);
  ASSERT_TRUE(store_.DeletePending(12, 8, [](const Row& row) {
                     return row[0].int64_value() == 2;
                   }).ok());
  store_.CommitTxn(12, 9);
  // AHM = 7: only the delete committed at epoch 6 is ancient history.
  auto purged = store_.PurgeDeletedRows(7);
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 1);
  // Every read at or above the AHM is unchanged by the purge.
  EXPECT_EQ(store_.CountVisible(7).value(), 1);
  EXPECT_EQ(store_.CountVisible(8).value(), 1);
  EXPECT_EQ(store_.CountVisible(9).value(), 0);
  // Raising the AHM past the second delete reclaims the last row; the
  // empty container is dropped.
  purged = store_.PurgeDeletedRows(9);
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 1);
  EXPECT_EQ(store_.num_ros_containers(), 0);
}

TEST_F(SegmentStoreTest, SnapshotRowsMaterializesVisibleRows) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "a", true)}).ok());
  store_.CommitTxn(10, 5);
  auto rows = store_.SnapshotRows(5);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE(RowsEqual((*rows)[0], MakeRow(1, 1.0, "a", true)));
}

TEST_F(SegmentStoreTest, StatsTrackBytes) {
  ASSERT_TRUE(store_.InsertPending(10, {MakeRow(1, 1.0, "abc", true)}).ok());
  store_.CommitTxn(10, 1);
  EXPECT_DOUBLE_EQ(store_.TotalRawBytes(), 8 + 8 + 3 + 1);
  EXPECT_GT(store_.TotalEncodedBytes(), 0);
}

}  // namespace
}  // namespace fabric::storage
