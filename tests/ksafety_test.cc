// K-safety subsystem tests: buddy placement, node lifecycle, query/DML
// failover to buddy copies, epoch-based recovery convergence, connector
// behavior under node kills, and the automatic cluster shutdown when both
// copies of a segment are lost.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seed_env.h"

#include "common/random.h"
#include "common/string_util.h"
#include "connector/default_source.h"
#include "net/network.h"
#include "obs/trace.h"
#include "obs/trace_matcher.h"
#include "sim/engine.h"
#include "spark/dataframe.h"
#include "vertica/database.h"
#include "vertica/ksafety/ksafety.h"
#include "vertica/session.h"

namespace fabric::vertica {
namespace {

using connector::kVerticaSourceName;
using spark::DataFrame;
using spark::SaveMode;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64}, {"score", DataType::kFloat64}});
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(i * 1.5)});
  }
  return rows;
}

std::multiset<int64_t> IdsOf(const std::vector<Row>& rows) {
  std::multiset<int64_t> ids;
  for (const Row& row : rows) ids.insert(row[0].int64_value());
  return ids;
}

// Full-content multiset: every column of every row rendered to text, for
// byte-identical comparisons between loads served by different copies.
std::multiset<std::string> ContentsOf(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_null() ? "<null>" : v.ToDisplayString();
      line += "|";
    }
    out.insert(std::move(line));
  }
  return out;
}

// Seeds for the randomized suites; KSAFETY_SEED (the CI matrix knob) adds
// one more.
std::vector<uint64_t> PropertySeeds() {
  return fabric::testing::PropertySeeds("KSAFETY_SEED");
}

class KSafetyTest : public ::testing::Test {
 protected:
  KSafetyTest() : network_(&engine_) {
    Database::Options vopts;
    vopts.num_nodes = 4;
    db_ = std::make_unique<Database>(&engine_, &network_, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 8;
    sopts.cost.spark_slots_per_worker = 8;
    cluster_ = std::make_unique<spark::SparkCluster>(&engine_, &network_,
                                                     sopts);
    session_ = std::make_unique<spark::SparkSession>(cluster_.get());
    connector::RegisterVerticaSource(session_.get(), db_.get());
  }

  void RunDriver(std::function<void(sim::Process&)> body) {
    engine_.Spawn("driver", std::move(body));
    Status status = engine_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Status SaveRows(sim::Process& driver, const std::vector<Row>& rows,
                  const std::string& table, int partitions) {
    auto df = session_->CreateDataFrame(TestSchema(), rows, partitions);
    if (!df.ok()) return df.status();
    return df->Write()
        .Format(kVerticaSourceName)
        .Option("table", table)
        .Option("host", db_->node_address(0))
        .Option("numpartitions", partitions)
        .Mode(SaveMode::kOverwrite)
        .Save(driver);
  }

  // Executes one statement over a short-lived session on `node`.
  Result<QueryResult> Exec(sim::Process& driver, int node,
                           const std::string& sql) {
    auto session = db_->Connect(driver, node, &cluster_->driver_host());
    if (!session.ok()) return session.status();
    auto result = (*session)->Execute(driver, sql);
    Status closed = (*session)->Close(driver);
    if (result.ok() && !closed.ok()) return closed;
    return result;
  }

  QueryResult ExecOk(sim::Process& driver, int node,
                     const std::string& sql) {
    auto result = Exec(driver, node, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::vector<Row> TableRows(sim::Process& driver, int node,
                             const std::string& table) {
    return ExecOk(driver, node, StrCat("SELECT * FROM ", table)).rows;
  }

  // Loads `table` through V2S and returns the collected rows.
  Result<std::vector<Row>> LoadViaV2S(sim::Process& driver,
                                      const std::string& table,
                                      int partitions) {
    auto df = session_->Read()
                  .Format(kVerticaSourceName)
                  .Option("table", table)
                  .Option("host", db_->node_address(0))
                  .Option("numpartitions", partitions)
                  .Load(driver);
    FABRIC_RETURN_IF_ERROR(df.status());
    return df->Collect(driver);
  }

  // Asserts primary and buddy copies of every segment of `table` hold
  // identical contents (the recovery convergence checksum).
  void ExpectCopiesConverged(const std::string& table) {
    auto storage = db_->GetStorage(table);
    ASSERT_TRUE(storage.ok()) << storage.status();
    ASSERT_EQ((*storage)->buddy.size(), (*storage)->per_node.size());
    for (size_t s = 0; s < (*storage)->per_node.size(); ++s) {
      EXPECT_EQ((*storage)->per_node[s]->ContentFingerprint(),
                (*storage)->buddy[s]->ContentFingerprint())
          << table << " segment " << s << " diverged from its buddy";
    }
  }

  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<spark::SparkCluster> cluster_;
  std::unique_ptr<spark::SparkSession> session_;
};

// ------------------------------------------------------------- schedules

TEST(NodeFailureScheduleTest, RandomSchedulesAreDeterministic) {
  ksafety::RandomOutageOptions options;
  options.horizon = 20.0;
  options.max_outages = 3;
  for (uint64_t seed : PropertySeeds()) {
    ksafety::NodeFailureSchedule a =
        ksafety::RandomNodeOutages(seed, 4, options);
    ksafety::NodeFailureSchedule b =
        ksafety::RandomNodeOutages(seed, 4, options);
    ASSERT_EQ(a.outages().size(), b.outages().size());
    for (size_t i = 0; i < a.outages().size(); ++i) {
      EXPECT_EQ(a.outages()[i].node, b.outages()[i].node);
      EXPECT_DOUBLE_EQ(a.outages()[i].kill_at, b.outages()[i].kill_at);
      EXPECT_DOUBLE_EQ(a.outages()[i].restart_at,
                       b.outages()[i].restart_at);
    }
    // Outages are serialized: a node restarts (or the schedule ends)
    // before the next kill, so two copies of a segment are never down at
    // once and the cluster survives every schedule.
    double prev_end = 0;
    for (const ksafety::Outage& outage : a.outages()) {
      EXPECT_GE(outage.kill_at, prev_end);
      ASSERT_GE(outage.restart_at, outage.kill_at);
      prev_end = outage.restart_at;
    }
  }
  // Different seeds must eventually give different schedules.
  ksafety::NodeFailureSchedule s1 =
      ksafety::RandomNodeOutages(1, 4, options);
  ksafety::NodeFailureSchedule s2 =
      ksafety::RandomNodeOutages(2, 4, options);
  bool differ = s1.outages().size() != s2.outages().size();
  for (size_t i = 0; !differ && i < s1.outages().size(); ++i) {
    differ = s1.outages()[i].node != s2.outages()[i].node ||
             s1.outages()[i].kill_at != s2.outages()[i].kill_at;
  }
  EXPECT_TRUE(differ) << "seeds 1 and 2 produced identical schedules";
}

TEST(NodeFailureScheduleTest, SingleNodeClusterGetsNoOutages) {
  EXPECT_TRUE(ksafety::RandomNodeOutages(7, 1, {}).outages().empty());
}

// ------------------------------------------------------ lifecycle/catalog

TEST_F(KSafetyTest, CatalogExposesNodeStateAndBuddyPlacement) {
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 0,
           "CREATE TABLE t (id INTEGER, score FLOAT) "
           "SEGMENTED BY HASH(id) ALL NODES");

    QueryResult nodes = ExecOk(
        driver, 0, "SELECT node_name, state FROM v_catalog.nodes");
    ASSERT_EQ(nodes.rows.size(), 4u);
    for (const Row& row : nodes.rows) {
      EXPECT_EQ(row[1].varchar_value(), "UP");
    }

    QueryResult segments = ExecOk(
        driver, 0,
        "SELECT node_id, buddy_node_id, buddy_node_name FROM "
        "v_catalog.segments WHERE table_name = 't' ORDER BY node_id");
    ASSERT_EQ(segments.rows.size(), 4u);
    for (const Row& row : segments.rows) {
      int64_t node = row[0].int64_value();
      EXPECT_EQ(row[1].int64_value(), (node + 1) % 4);
      EXPECT_EQ(row[2].varchar_value(),
                db_->node_name(static_cast<int>((node + 1) % 4)));
    }

    ASSERT_TRUE(db_->KillNode(2).ok());
    EXPECT_EQ(db_->node_state(2), NodeState::kDown);
    nodes = ExecOk(driver, 0,
                   "SELECT node_name, state FROM v_catalog.nodes");
    EXPECT_EQ(nodes.rows[2][1].varchar_value(), "DOWN");
    EXPECT_EQ(nodes.rows[0][1].varchar_value(), "UP");

    // A DOWN node refuses connections.
    auto refused = db_->Connect(driver, 2, &cluster_->driver_host());
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

    ASSERT_TRUE(db_->RestartNode(2).ok());
    ASSERT_TRUE(db_->WaitForNodeState(driver, 2, NodeState::kUp).ok());
    nodes = ExecOk(driver, 0,
                   "SELECT node_name, state FROM v_catalog.nodes");
    EXPECT_EQ(nodes.rows[2][1].varchar_value(), "UP");
  });
}

TEST_F(KSafetyTest, KillBreaksOpenSessionsOnTheNode) {
  RunDriver([&](sim::Process& driver) {
    auto session = db_->Connect(driver, 1, &cluster_->driver_host());
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(
        (*session)->Execute(driver, "SELECT 1 AS x").ok());
    ASSERT_TRUE(db_->KillNode(1).ok());
    auto after = (*session)->Execute(driver, "SELECT 1 AS x");
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  });
}

// ------------------------------------------------------ failover serving

TEST_F(KSafetyTest, ScansAndWritesFailOverToBuddyCopies) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(200);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());

    ASSERT_TRUE(db_->KillNode(1).ok());

    // Reads: node 1's segment is served from its buddy on node 2.
    EXPECT_EQ(IdsOf(TableRows(driver, 0, "t")), IdsOf(rows));
    EXPECT_GT(tracer.metrics().counter("ksafety.scan_reroutes"), 0.0);

    // Writes while down: INSERT/UPDATE/DELETE land on the surviving
    // copies and report correct counts. (The UPDATE keeps the hash key
    // unchanged so no row migrates to another segment.)
    QueryResult ins = ExecOk(
        driver, 0, "INSERT INTO t VALUES (1000, 5.0), (1001, 6.0)");
    EXPECT_EQ(ins.affected, 2);
    QueryResult upd = ExecOk(
        driver, 0, "UPDATE t SET score = score WHERE id < 50");
    EXPECT_EQ(upd.affected, 50);
    QueryResult del = ExecOk(driver, 0,
                             "DELETE FROM t WHERE id >= 190 AND id < 300");
    EXPECT_EQ(del.affected, 10);
    EXPECT_EQ(
        ExecOk(driver, 0, "SELECT COUNT(*) FROM t").rows[0][0]
            .int64_value(),
        192);
  });
}

TEST_F(KSafetyTest, ReplicatedWritesCountCorrectlyWithDownReplica) {
  RunDriver([&](sim::Process& driver) {
    ExecOk(driver, 1,
           "CREATE TABLE r (id INTEGER, score FLOAT) "
           "UNSEGMENTED ALL NODES");
    ExecOk(driver, 1,
           "INSERT INTO r VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)");
    // Node 0 held the replica whose counts used to be the only ones
    // reported; with it down the surviving replicas must still report
    // the true affected-row counts.
    ASSERT_TRUE(db_->KillNode(0).ok());
    EXPECT_EQ(ExecOk(driver, 1, "UPDATE r SET score = 9.0").affected, 4);
    EXPECT_EQ(
        ExecOk(driver, 1, "DELETE FROM r WHERE id <= 2").affected, 2);
    EXPECT_EQ(
        ExecOk(driver, 1, "SELECT COUNT(*) FROM r").rows[0][0]
            .int64_value(),
        2);
  });
}

// --------------------------------------------------------------- recovery

TEST_F(KSafetyTest, RecoveryReplaysWritesMissedWhileDown) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(300);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 8).ok());

    ASSERT_TRUE(db_->KillNode(1).ok());
    ExecOk(driver, 0, "INSERT INTO t VALUES (2000, 1.0), (2001, 2.0)");
    ExecOk(driver, 0, "UPDATE t SET score = -1.0 WHERE id < 20");
    ExecOk(driver, 0, "DELETE FROM t WHERE id >= 290 AND id < 1000");

    ASSERT_TRUE(db_->RestartNode(1).ok());
    EXPECT_EQ(db_->node_state(1), NodeState::kRecovering);
    ASSERT_TRUE(db_->WaitForNodeState(driver, 1, NodeState::kUp).ok());

    // The recovered node holds exactly what it missed: every segment's
    // primary and buddy fingerprints match again.
    ExpectCopiesConverged("t");
    EXPECT_EQ(tracer.metrics().counter("ksafety.recoveries"), 1.0);
    EXPECT_GT(tracer.metrics().counter("ksafety.recovery_bytes"), 0.0);
    obs::TraceMatcher transfers =
        obs::TraceMatcher(tracer).Category("ksafety").Name(
            "recovery.transfer");
    EXPECT_EQ(transfers.count(), 2u);  // begin+end of one span

    // And the cluster serves the merged state from every node.
    QueryResult count = ExecOk(driver, 1, "SELECT COUNT(*) FROM t");
    EXPECT_EQ(count.rows[0][0].int64_value(), 292);
  });
}

TEST_F(KSafetyTest, RecoveryConvergesUnderRandomOutageSchedules) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    sim::Engine engine;
    net::Network network(&engine);
    Database::Options vopts;
    vopts.num_nodes = 4;
    Database db(&engine, &network, vopts);
    obs::Tracer tracer([&engine] { return engine.now(); });
    obs::ScopedTracer install(&tracer);

    ksafety::RandomOutageOptions options;
    options.horizon = 5.0;
    options.max_outages = 2;
    options.min_downtime = 0.5;
    options.max_downtime = 2.0;
    ksafety::NodeFailureSchedule schedule =
        ksafety::RandomNodeOutages(seed, 4, options);
    ASSERT_FALSE(schedule.outages().empty());
    schedule.Install(&db);

    engine.Spawn("driver", [&](sim::Process& driver) {
      // A console client (no network hop) on a node no schedule touches:
      // the writer survives every outage.
      std::set<int> victims;
      for (const ksafety::Outage& outage : schedule.outages()) {
        victims.insert(outage.node);
      }
      int safe_node = 0;
      while (victims.count(safe_node) > 0) ++safe_node;
      auto session = db.Connect(driver, safe_node, nullptr);
      ASSERT_TRUE(session.ok()) << session.status();
      ASSERT_TRUE((*session)
                      ->Execute(driver,
                                "CREATE TABLE t (id INTEGER, score FLOAT) "
                                "SEGMENTED BY HASH(id) ALL NODES")
                      .ok());
      // Write continuously across the whole outage horizon so every
      // kill lands with data behind it and every recovery has a delta
      // to pull.
      int next_id = 0;
      while (driver.Now() < options.horizon + options.max_downtime) {
        std::string values;
        for (int i = 0; i < 10; ++i, ++next_id) {
          values += StrCat(i ? ", " : "", "(", next_id, ", ",
                           next_id % 7, ".5)");
        }
        auto inserted = (*session)->Execute(
            driver, StrCat("INSERT INTO t VALUES ", values));
        ASSERT_TRUE(inserted.ok()) << inserted.status();
        ASSERT_TRUE(driver.Sleep(0.2).ok());
      }
      // Let every scheduled restart finish its recovery.
      for (const ksafety::Outage& outage : schedule.outages()) {
        if (outage.restart_at >= 0) {
          ASSERT_TRUE(
              db.WaitForNodeState(driver, outage.node, NodeState::kUp)
                  .ok());
        }
      }
      ASSERT_TRUE((*session)->Close(driver).ok());

      EXPECT_FALSE(db.cluster_is_down());
      auto storage = db.GetStorage("t");
      ASSERT_TRUE(storage.ok());
      for (size_t s = 0; s < (*storage)->per_node.size(); ++s) {
        EXPECT_EQ((*storage)->per_node[s]->ContentFingerprint(),
                  (*storage)->buddy[s]->ContentFingerprint())
            << "segment " << s << " diverged (seed " << seed << ")";
      }
      // All rows of all batches are visible.
      auto count =
          db.Connect(driver, safe_node, nullptr);
      ASSERT_TRUE(count.ok());
      auto result =
          (*count)->Execute(driver, "SELECT COUNT(*) FROM t");
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->rows[0][0].int64_value(), next_id);
      ASSERT_TRUE((*count)->Close(driver).ok());
    });
    Status status = engine.Run();
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_GT(tracer.metrics().counter("ksafety.recoveries"), 0.0);
  }
}

// -------------------------------------------------------- cluster shutdown

TEST_F(KSafetyTest, LosingBothCopiesOfASegmentShutsTheClusterDown) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    ASSERT_TRUE(db_->KillNode(1).ok());
    EXPECT_FALSE(db_->cluster_is_down());
    // Node 2 holds the buddy copy of node 1's segment: losing it loses
    // both copies, and Vertica shuts the whole cluster down.
    ASSERT_TRUE(db_->KillNode(2).ok());
    EXPECT_TRUE(db_->cluster_is_down());
    for (int n = 0; n < 4; ++n) {
      EXPECT_EQ(db_->node_state(n), NodeState::kDown);
    }
    EXPECT_EQ(tracer.metrics().counter("ksafety.cluster_shutdowns"), 1.0);

    auto refused = db_->Connect(driver, 0, &cluster_->driver_host());
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
    // A downed cluster does not come back node by node.
    EXPECT_EQ(db_->RestartNode(1).code(),
              StatusCode::kFailedPrecondition);
  });
}

// ------------------------------------------------------------- connectors

TEST_F(KSafetyTest, V2SLoadIsByteIdenticalUnderMidLoadNodeKill) {
  obs::Tracer tracer([this] { return engine_.now(); });
  obs::ScopedTracer install(&tracer);
  RunDriver([&](sim::Process& driver) {
    std::vector<Row> rows = MakeRows(400);
    ASSERT_TRUE(SaveRows(driver, rows, "t", 16).ok());

    auto baseline = LoadViaV2S(driver, "t", 16);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    // Kill node 3 just after the load starts: partitions targeting it
    // fail over to the ring successor and re-issue the same snapshot
    // query there.
    ksafety::NodeFailureSchedule schedule;
    schedule.KillNode(3, driver.Now() + 0.05);
    schedule.Install(db_.get());
    auto with_kill = LoadViaV2S(driver, "t", 16);
    ASSERT_TRUE(with_kill.ok()) << with_kill.status();

    EXPECT_EQ(ContentsOf(*with_kill), ContentsOf(*baseline))
        << "failover load returned different bytes";
    EXPECT_GT(tracer.metrics().counter("v2s.scan_failovers") +
                  tracer.metrics().counter("ksafety.scan_reroutes"),
              0.0);
    obs::TraceMatcher failovers =
        obs::TraceMatcher(tracer).Category("v2s").Name("scan.failover");
    EXPECT_EQ(static_cast<double>(failovers.count()),
              tracer.metrics().counter("v2s.scan_failovers"));
  });
}

TEST_F(KSafetyTest, V2SLoadSurvivesRandomOutageSchedules) {
  for (uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE(StrCat("seed=", seed));
    sim::Engine engine;
    net::Network network(&engine);
    Database::Options vopts;
    vopts.num_nodes = 4;
    Database db(&engine, &network, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 8;
    sopts.cost.spark_slots_per_worker = 8;
    spark::SparkCluster cluster(&engine, &network, sopts);
    spark::SparkSession spark(&cluster);
    connector::RegisterVerticaSource(&spark, &db);

    engine.Spawn("driver", [&](sim::Process& driver) {
      std::vector<Row> rows = MakeRows(240);
      auto df = spark.CreateDataFrame(TestSchema(), rows, 8);
      ASSERT_TRUE(df.ok());
      ASSERT_TRUE(df->Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "t")
                      .Option("numpartitions", 8)
                      .Mode(SaveMode::kOverwrite)
                      .Save(driver)
                      .ok());

      // Re-base the seeded schedule onto "now": the outages then land
      // during the loads below.
      ksafety::RandomOutageOptions options;
      options.horizon = 8.0;
      options.max_outages = 2;
      ksafety::NodeFailureSchedule seeded =
          ksafety::RandomNodeOutages(seed, 4, options);
      ksafety::NodeFailureSchedule rebased;
      for (const ksafety::Outage& outage : seeded.outages()) {
        rebased.KillAndRestart(outage.node,
                               driver.Now() + outage.kill_at,
                               driver.Now() + outage.restart_at);
      }
      rebased.Install(&db);

      // Load repeatedly across the outage window: every load must return
      // exactly the saved rows no matter which copies served it.
      for (int round = 0; round < 4; ++round) {
        auto loaded = spark.Read()
                          .Format(kVerticaSourceName)
                          .Option("table", "t")
                          .Option("numpartitions", 8)
                          .Load(driver);
        ASSERT_TRUE(loaded.ok()) << loaded.status();
        auto collected = loaded->Collect(driver);
        ASSERT_TRUE(collected.ok()) << collected.status();
        EXPECT_EQ(IdsOf(*collected), IdsOf(rows))
            << "round " << round << " lost or duplicated rows";
        ASSERT_TRUE(driver.Sleep(2.0).ok());
      }
      for (const ksafety::Outage& outage : rebased.outages()) {
        if (outage.restart_at >= 0) {
          ASSERT_TRUE(
              db.WaitForNodeState(driver, outage.node, NodeState::kUp)
                  .ok());
        }
      }
      EXPECT_FALSE(db.cluster_is_down());
    });
    Status status = engine.Run();
    ASSERT_TRUE(status.ok()) << status;
  }
}

// S2V exactly-once when a Vertica node dies at an arbitrary point of the
// five-phase protocol. The kill-time grid sweeps the whole save makespan
// (measured on a clean run), so kills land inside every phase; Spark's
// task retry plus the connector's conditional done-flag dedup must keep
// the result exactly-once, and the node's restart must converge.
class S2VNodeKillPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(S2VNodeKillPropertyTest, ExactlyOnceAcrossKillTimes) {
  constexpr int kGridPoints = 8;
  // Clean run: measure the save makespan.
  double makespan = 0;
  {
    sim::Engine engine;
    net::Network network(&engine);
    Database::Options vopts;
    vopts.num_nodes = 4;
    Database db(&engine, &network, vopts);
    spark::SparkCluster::Options sopts;
    sopts.num_workers = 4;
    sopts.cost.spark_slots_per_worker = 4;
    spark::SparkCluster cluster(&engine, &network, sopts);
    spark::SparkSession spark(&cluster);
    connector::RegisterVerticaSource(&spark, &db);
    engine.Spawn("driver", [&](sim::Process& driver) {
      auto df = spark.CreateDataFrame(TestSchema(), MakeRows(300), 8);
      ASSERT_TRUE(df.ok());
      double start = driver.Now();
      ASSERT_TRUE(df->Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "t")
                      .Option("numpartitions", 8)
                      .Mode(SaveMode::kOverwrite)
                      .Save(driver)
                      .ok());
      makespan = driver.Now() - start;
    });
    ASSERT_TRUE(engine.Run().ok());
    ASSERT_GT(makespan, 0);
  }

  double kill_at = makespan * (GetParam() + 0.5) / kGridPoints;
  sim::Engine engine;
  net::Network network(&engine);
  Database::Options vopts;
  vopts.num_nodes = 4;
  Database db(&engine, &network, vopts);
  spark::SparkCluster::Options sopts;
  sopts.num_workers = 4;
  sopts.cost.spark_slots_per_worker = 4;
  spark::SparkCluster cluster(&engine, &network, sopts);
  spark::SparkSession spark(&cluster);
  connector::RegisterVerticaSource(&spark, &db);
  obs::Tracer tracer([&engine] { return engine.now(); });
  obs::ScopedTracer install(&tracer);

  // Node 1 takes data partitions but not the driver's entry node, so the
  // kill hits worker sessions mid-phase.
  ksafety::NodeFailureSchedule schedule;
  schedule.KillAndRestart(1, kill_at, kill_at + makespan);
  schedule.Install(&db);

  Status save_status;
  std::vector<Row> rows = MakeRows(300);
  engine.Spawn("driver", [&](sim::Process& driver) {
    auto df = spark.CreateDataFrame(TestSchema(), rows, 8);
    ASSERT_TRUE(df.ok());
    save_status = df->Write()
                      .Format(kVerticaSourceName)
                      .Option("table", "t")
                      .Option("numpartitions", 8)
                      .Mode(SaveMode::kOverwrite)
                      .Save(driver);
    ASSERT_TRUE(
        db.WaitForNodeState(driver, 1, NodeState::kUp).ok());
    if (save_status.ok()) {
      auto session = db.Connect(driver, 0, &cluster.driver_host());
      ASSERT_TRUE(session.ok());
      auto result = (*session)->Execute(driver, "SELECT * FROM t");
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(IdsOf(result->rows), IdsOf(rows))
          << "kill at " << kill_at << " broke exactly-once";
      ASSERT_TRUE((*session)->Close(driver).ok());
      // Recovery caught the restarted node up with whatever the save
      // committed while it was down.
      auto storage = db.GetStorage("t");
      ASSERT_TRUE(storage.ok());
      for (size_t s = 0; s < (*storage)->per_node.size(); ++s) {
        EXPECT_EQ((*storage)->per_node[s]->ContentFingerprint(),
                  (*storage)->buddy[s]->ContentFingerprint());
      }
    } else {
      // A failed overwrite save must never publish the target.
      EXPECT_FALSE(db.catalog().HasTable("t"));
    }
  });
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status;

  // Five-phase trace invariants, kill or no kill: at most one durable
  // COPY commit per partition on success, no promotion on failure.
  obs::TraceMatcher s2v = obs::TraceMatcher(tracer).Category("s2v");
  obs::TraceMatcher commits = s2v.Name("phase1.commit");
  obs::TraceMatcher promotes = s2v.Name("phase5.promote");
  if (save_status.ok()) {
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(commits.WithAttr("partition", p).count(), 1u)
          << "partition " << p << " committed != once:\n"
          << commits.Describe();
    }
    EXPECT_EQ(promotes.count(), 1u) << promotes.Describe();
    EXPECT_TRUE(commits.StrictlyBefore(promotes));
  } else {
    EXPECT_TRUE(promotes.empty())
        << "failed save published data:\n" << promotes.Describe();
  }
}

INSTANTIATE_TEST_SUITE_P(KillTimeGrid, S2VNodeKillPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace fabric::vertica
