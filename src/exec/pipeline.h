#ifndef FABRIC_EXEC_PIPELINE_H_
#define FABRIC_EXEC_PIPELINE_H_

// The pipeline compiler's execution layer: a kernel-composition design
// (no codegen) that lowers scalar expressions and whole SELECT pipelines
// — filter, projected expressions, GROUP BY + aggregates — into typed
// vector programs evaluated over row blocks with selection vectors.
//
// Both engines lower into this IR: the Vertica SQL executor compiles its
// interpreter-residual expressions here (vertica/pipeline.h) and the
// Spark shuffle map stage fuses scan→filter→combine through the same
// Program type (spark/shuffle/exec.cc).
//
// The contract that makes the compiled path safe to cache and swap in
// transparently is *bail-out, never approximate*: a Program evaluates a
// block only when every value matches its statically inferred type and
// no operation errors. On any surprise — a row value whose dynamic type
// deviates from the schema, a division by zero, a UDx update failure —
// execution reports "not handled" and the caller re-runs the
// row-at-a-time interpreter, which is authoritative for both results and
// errors. Compiled success therefore implies byte-identical output to
// the interpreter by construction: the evaluation rules below replicate
// the interpreter's semantics exactly (Kleene short-circuit masking,
// numeric promotion through double, NULL-skipping aggregate folds in row
// order, display-string group keys, std::map group ordering).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fabric::exec {

// Rows per evaluation block: matches the storage scan batch so a block
// of gathered rows and a ColumnCursor batch vectorize identically.
inline constexpr size_t kBlockRows = 1024;

// Dense typed lanes over a row block. Only the vector for the lane type
// is sized; only positions named by the active selection hold defined
// values.
struct Lanes {
  storage::DataType type = storage::DataType::kBool;
  std::vector<uint8_t> nulls;  // 1 = SQL NULL
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;

  void Reset(size_t n, storage::DataType t);
  // Boxes lane `i` back into a Value (exactly the Value the interpreter
  // would have produced: same type, same bits).
  storage::Value Box(uint32_t i) const;
  // Value::AsDouble semantics for numeric lanes (never called on
  // varchar lanes; the compiler rejects those shapes).
  double Number(uint32_t i) const;
};

// One operation of a compiled expression tree. Nodes are stored in a
// flat vector (children before parents, root last); `a`/`b` index into
// it. Output types are inferred at compile time, so evaluation never
// dispatches on runtime types.
struct Node {
  enum class Op {
    kConst,    // constant (non-NULL literal)
    kColumn,   // input column load with declared-type check
    kNot,      // NOT (bool)
    kNegate,   // unary minus
    kIsNull,   // IS [NOT] NULL (negated)
    kAnd,      // Kleene AND with masked rhs (interpreter short-circuit)
    kOr,       // Kleene OR with masked rhs
    kCompare,  // = <> < <= > >= via Value::Compare's promotion rules
    kConcat,   // || on varchar lanes
    kAdd, kSub, kMul,  // int64 when both-int, else double
    kDiv,      // always double; bails on divisor == 0
    kMod,      // int64 %, bails on divisor == 0
    kAbs, kFloor, kCeil, kLength, kUpper, kLower,
  };
  enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

  Op op = Op::kConst;
  storage::DataType type = storage::DataType::kBool;  // static output type
  int a = -1;
  int b = -1;
  int column = -1;              // kColumn
  storage::Value constant;      // kConst
  Cmp cmp = Cmp::kEq;           // kCompare
  bool negated = false;         // kIsNull: IS NOT NULL
  bool int_arith = false;       // kAdd/kSub/kMul on int64 lanes
  bool string_compare = false;  // kCompare on varchar lanes
};

// Reusable per-evaluation scratch (lane frames and sub-selections);
// hoisted out of Program::Eval so block loops reuse capacity.
struct EvalState {
  std::vector<Lanes> frames;
  std::vector<std::vector<uint32_t>> masks;
};

// A compiled expression. Evaluation touches exactly the (row, node)
// pairs the interpreter would: AND/OR evaluate their right child only at
// positions the left child left undecided.
struct Program {
  std::vector<Node> nodes;

  storage::DataType out_type() const { return nodes.back().type; }

  // Evaluates over rows[i] for each active i (indices are relative to
  // `rows`, a block of at most kBlockRows — callers chunk larger
  // inputs). Returns false ("bail") on any dynamic type mismatch or
  // evaluation error; lane contents are then unspecified and the caller
  // must fall back to the interpreter.
  bool Eval(const storage::Row* rows, size_t block_rows,
            const std::vector<uint32_t>& active, EvalState* state) const;

  // The root's lanes after a successful Eval.
  const Lanes& root(const EvalState& state) const {
    return state.frames[nodes.size() - 1];
  }
};

// Strict predicate filter (the interpreter's EvalPredicate semantics:
// NULL is no-match). Appends surviving members of `active` to `out` in
// order. The program's out_type must be kBool (enforced at compile).
// Returns false on bail.
bool RunFilter(const Program& program, const storage::Row* rows,
               size_t block_rows, const std::vector<uint32_t>& active,
               EvalState* state, std::vector<uint32_t>* out);

// ---------------------------------------------------------------- SELECT

// Aggregate-UDx lifecycle hooks, copied from the engine's registered
// aggregate (engine-neutral so exec depends only on storage).
struct UdxHooks {
  std::function<Status(const storage::Value& input, std::string* state)>
      update;
  std::function<Result<storage::Value>(const std::string& state)> finalize;
};

// One output of an aggregate pipeline.
struct AggOutput {
  enum class Fn { kCount, kSum, kAvg, kMin, kMax, kUdx };
  bool is_group = false;
  int group_pos = 0;  // when is_group: index into CompiledSelect.group_cols
  Fn fn = Fn::kCount;
  int arg = -1;  // program index; -1 = COUNT(*)
  UdxHooks udx;
  std::string init_state;
};

// A whole compiled SELECT body (everything between the gathered rows and
// ORDER BY/LIMIT): filter → {projected expressions | grouped
// aggregation}. Pure and engine-neutral, so it caches per plan
// fingerprint.
struct CompiledSelect {
  std::optional<Program> filter;

  // Non-aggregate output: exactly one of passthrough (a positional
  // column copy, from SELECT *) or program is set.
  struct Output {
    int passthrough = -1;
    int program = -1;
  };
  bool aggregate = false;
  std::vector<Output> outputs;

  std::vector<int> group_cols;
  std::vector<AggOutput> agg_outputs;

  std::vector<Program> programs;
};

// Runs the compiled SELECT over `rows` in blocks of kBlockRows. Returns
// nullopt on bail (the caller re-runs the interpreted path, which
// reproduces the exact result or the exact error). On success the rows
// are byte-identical to the interpreter's: projection preserves row
// order; aggregation folds in row order and emits groups sorted by the
// interpreter's encoded group key.
std::optional<std::vector<storage::Row>> RunCompiledSelect(
    const CompiledSelect& select, const std::vector<storage::Row>& rows);

// The engines' shared group-key encoding (display string per column,
// NULL marked distinctly) — must stay identical to the Vertica executor
// and the Spark combiner.
std::string GroupKey(const storage::Row& row, const std::vector<int>& cols);

}  // namespace fabric::exec

#endif  // FABRIC_EXEC_PIPELINE_H_
