#include "exec/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/string_util.h"

namespace fabric::exec {

using storage::DataType;
using storage::Row;
using storage::Value;

void Lanes::Reset(size_t n, DataType t) {
  type = t;
  nulls.assign(n, 0);
  switch (t) {
    case DataType::kBool:
      bools.assign(n, 0);
      break;
    case DataType::kInt64:
      ints.assign(n, 0);
      break;
    case DataType::kFloat64:
      doubles.assign(n, 0.0);
      break;
    case DataType::kVarchar:
      if (strings.size() < n) strings.resize(n);
      break;
  }
}

Value Lanes::Box(uint32_t i) const {
  if (nulls[i]) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(bools[i] != 0);
    case DataType::kInt64:
      return Value::Int64(ints[i]);
    case DataType::kFloat64:
      return Value::Float64(doubles[i]);
    case DataType::kVarchar:
      return Value::Varchar(strings[i]);
  }
  return Value::Null();
}

double Lanes::Number(uint32_t i) const {
  switch (type) {
    case DataType::kBool:
      return bools[i] ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(ints[i]);
    default:
      return doubles[i];
  }
}

namespace {

bool KnownFalse(const Lanes& l, uint32_t i) {
  return !l.nulls[i] && !l.bools[i];
}

bool KnownTrue(const Lanes& l, uint32_t i) {
  return !l.nulls[i] && l.bools[i];
}

// Recursive masked evaluation over the flat node vector. Each node gets
// its own lane frame; AND/OR nodes additionally own a sub-selection in
// state->masks so their right child evaluates only where the left child
// left the answer undecided — exactly the (row, node) pairs the
// interpreter's short-circuit touches, which is what makes divide-by-zero
// and UDx-error behavior identical between the two paths.
class Evaluator {
 public:
  Evaluator(const Program& program, const Row* rows, size_t block_rows,
            EvalState* state)
      : nodes_(program.nodes),
        rows_(rows),
        block_rows_(block_rows),
        state_(state) {}

  bool EvalNode(int id, const std::vector<uint32_t>& active) {
    const Node& n = nodes_[id];
    Lanes& out = state_->frames[id];
    out.Reset(block_rows_, n.type);
    switch (n.op) {
      case Node::Op::kConst:
        return EvalConst(n, active, &out);
      case Node::Op::kColumn:
        return EvalColumn(n, active, &out);
      case Node::Op::kNot: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else {
            out.bools[i] = a.bools[i] ? 0 : 1;
          }
        }
        return true;
      }
      case Node::Op::kNegate: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else if (n.type == DataType::kInt64) {
            out.ints[i] = -a.ints[i];
          } else {
            out.doubles[i] = -a.Number(i);
          }
        }
        return true;
      }
      case Node::Op::kIsNull: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          bool is_null = a.nulls[i] != 0;
          out.bools[i] = (n.negated ? !is_null : is_null) ? 1 : 0;
        }
        return true;
      }
      case Node::Op::kAnd:
        return EvalAndOr(n, id, active, /*is_and=*/true, &out);
      case Node::Op::kOr:
        return EvalAndOr(n, id, active, /*is_and=*/false, &out);
      case Node::Op::kCompare:
        return EvalCompare(n, active, &out);
      case Node::Op::kConcat: {
        if (!EvalNode(n.a, active) || !EvalNode(n.b, active)) return false;
        const Lanes& a = state_->frames[n.a];
        const Lanes& b = state_->frames[n.b];
        for (uint32_t i : active) {
          if (a.nulls[i] || b.nulls[i]) {
            out.nulls[i] = 1;
          } else {
            out.strings[i] = StrCat(a.strings[i], b.strings[i]);
          }
        }
        return true;
      }
      case Node::Op::kAdd:
      case Node::Op::kSub:
      case Node::Op::kMul:
      case Node::Op::kDiv:
      case Node::Op::kMod:
        return EvalArith(n, active, &out);
      case Node::Op::kAbs: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else if (n.type == DataType::kInt64) {
            out.ints[i] = std::abs(a.ints[i]);
          } else {
            out.doubles[i] = std::fabs(a.Number(i));
          }
        }
        return true;
      }
      case Node::Op::kFloor:
      case Node::Op::kCeil: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else {
            double d = a.Number(i);
            out.doubles[i] =
                n.op == Node::Op::kFloor ? std::floor(d) : std::ceil(d);
          }
        }
        return true;
      }
      case Node::Op::kLength: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else {
            out.ints[i] = static_cast<int64_t>(a.strings[i].size());
          }
        }
        return true;
      }
      case Node::Op::kUpper:
      case Node::Op::kLower: {
        if (!EvalNode(n.a, active)) return false;
        const Lanes& a = state_->frames[n.a];
        for (uint32_t i : active) {
          if (a.nulls[i]) {
            out.nulls[i] = 1;
          } else {
            out.strings[i] = n.op == Node::Op::kUpper ? ToUpper(a.strings[i])
                                                      : ToLower(a.strings[i]);
          }
        }
        return true;
      }
    }
    return false;
  }

 private:
  bool EvalConst(const Node& n, const std::vector<uint32_t>& active,
                 Lanes* out) {
    const Value& c = n.constant;
    if (c.is_null()) return false;  // NULL literals are rejected at compile
    switch (n.type) {
      case DataType::kBool: {
        uint8_t v = c.bool_value() ? 1 : 0;
        for (uint32_t i : active) out->bools[i] = v;
        return true;
      }
      case DataType::kInt64: {
        int64_t v = c.int64_value();
        for (uint32_t i : active) out->ints[i] = v;
        return true;
      }
      case DataType::kFloat64: {
        double v = c.float64_value();
        for (uint32_t i : active) out->doubles[i] = v;
        return true;
      }
      case DataType::kVarchar: {
        for (uint32_t i : active) out->strings[i] = c.varchar_value();
        return true;
      }
    }
    return false;
  }

  bool EvalColumn(const Node& n, const std::vector<uint32_t>& active,
                  Lanes* out) {
    for (uint32_t i : active) {
      const Row& row = rows_[i];
      if (n.column >= static_cast<int>(row.size())) return false;
      const Value& v = row[n.column];
      if (v.is_null()) {
        out->nulls[i] = 1;
        continue;
      }
      // The declared type is the compiled static type; any drift between
      // a row value and its schema column is a bail, never a coercion.
      if (v.type() != n.type) return false;
      switch (n.type) {
        case DataType::kBool:
          out->bools[i] = v.bool_value() ? 1 : 0;
          break;
        case DataType::kInt64:
          out->ints[i] = v.int64_value();
          break;
        case DataType::kFloat64:
          out->doubles[i] = v.float64_value();
          break;
        case DataType::kVarchar:
          out->strings[i] = v.varchar_value();
          break;
      }
    }
    return true;
  }

  bool EvalAndOr(const Node& n, int id, const std::vector<uint32_t>& active,
                 bool is_and, Lanes* out) {
    if (!EvalNode(n.a, active)) return false;
    const Lanes& a = state_->frames[n.a];
    // The right child runs only where the left child did not decide the
    // answer (AND: left is true-or-null; OR: left is false-or-null).
    std::vector<uint32_t>& mask = state_->masks[id];
    mask.clear();
    for (uint32_t i : active) {
      bool decided = is_and ? KnownFalse(a, i) : KnownTrue(a, i);
      if (!decided) mask.push_back(i);
    }
    if (!EvalNode(n.b, mask)) return false;
    const Lanes& b = state_->frames[n.b];
    for (uint32_t i : active) {
      if (is_and) {
        if (KnownFalse(a, i)) {
          out->bools[i] = 0;
        } else if (KnownFalse(b, i)) {
          out->bools[i] = 0;
        } else if (!a.nulls[i] && !b.nulls[i]) {
          out->bools[i] = 1;
        } else {
          out->nulls[i] = 1;
        }
      } else {
        if (KnownTrue(a, i)) {
          out->bools[i] = 1;
        } else if (KnownTrue(b, i)) {
          out->bools[i] = 1;
        } else if (!a.nulls[i] && !b.nulls[i]) {
          out->bools[i] = 0;
        } else {
          out->nulls[i] = 1;
        }
      }
    }
    return true;
  }

  bool EvalCompare(const Node& n, const std::vector<uint32_t>& active,
                   Lanes* out) {
    if (!EvalNode(n.a, active) || !EvalNode(n.b, active)) return false;
    const Lanes& a = state_->frames[n.a];
    const Lanes& b = state_->frames[n.b];
    for (uint32_t i : active) {
      if (a.nulls[i] || b.nulls[i]) {
        out->nulls[i] = 1;
        continue;
      }
      int c;
      if (n.string_compare) {
        int r = a.strings[i].compare(b.strings[i]);
        c = r < 0 ? -1 : (r > 0 ? 1 : 0);
      } else {
        // Value::Compare's numeric path: both sides through AsDouble,
        // including int-int (so >2^53 integers lose precision here
        // exactly as they do in the interpreter).
        double x = a.Number(i);
        double y = b.Number(i);
        c = x < y ? -1 : (x > y ? 1 : 0);
      }
      bool v = false;
      switch (n.cmp) {
        case Node::Cmp::kEq:
          v = c == 0;
          break;
        case Node::Cmp::kNe:
          v = c != 0;
          break;
        case Node::Cmp::kLt:
          v = c < 0;
          break;
        case Node::Cmp::kLe:
          v = c <= 0;
          break;
        case Node::Cmp::kGt:
          v = c > 0;
          break;
        case Node::Cmp::kGe:
          v = c >= 0;
          break;
      }
      out->bools[i] = v ? 1 : 0;
    }
    return true;
  }

  bool EvalArith(const Node& n, const std::vector<uint32_t>& active,
                 Lanes* out) {
    if (!EvalNode(n.a, active) || !EvalNode(n.b, active)) return false;
    const Lanes& a = state_->frames[n.a];
    const Lanes& b = state_->frames[n.b];
    for (uint32_t i : active) {
      if (a.nulls[i] || b.nulls[i]) {
        out->nulls[i] = 1;
        continue;
      }
      if (n.op == Node::Op::kMod) {
        if (b.ints[i] == 0) return false;  // interpreter: division by zero
        out->ints[i] = a.ints[i] % b.ints[i];
        continue;
      }
      if (n.op == Node::Op::kDiv) {
        double y = b.Number(i);
        if (y == 0) return false;  // interpreter: division by zero
        out->doubles[i] = a.Number(i) / y;
        continue;
      }
      if (n.int_arith) {
        int64_t x = a.ints[i];
        int64_t y = b.ints[i];
        switch (n.op) {
          case Node::Op::kAdd:
            out->ints[i] = x + y;
            break;
          case Node::Op::kSub:
            out->ints[i] = x - y;
            break;
          default:
            out->ints[i] = x * y;
            break;
        }
      } else {
        double x = a.Number(i);
        double y = b.Number(i);
        switch (n.op) {
          case Node::Op::kAdd:
            out->doubles[i] = x + y;
            break;
          case Node::Op::kSub:
            out->doubles[i] = x - y;
            break;
          default:
            out->doubles[i] = x * y;
            break;
        }
      }
    }
    return true;
  }

  const std::vector<Node>& nodes_;
  const Row* rows_;
  size_t block_rows_;
  EvalState* state_;
};

}  // namespace

bool Program::Eval(const Row* rows, size_t block_rows,
                   const std::vector<uint32_t>& active,
                   EvalState* state) const {
  state->frames.resize(nodes.size());
  state->masks.resize(nodes.size());
  Evaluator evaluator(*this, rows, block_rows, state);
  return evaluator.EvalNode(static_cast<int>(nodes.size()) - 1, active);
}

bool RunFilter(const Program& program, const Row* rows, size_t block_rows,
               const std::vector<uint32_t>& active, EvalState* state,
               std::vector<uint32_t>* out) {
  if (!program.Eval(rows, block_rows, active, state)) return false;
  const Lanes& root = program.root(*state);
  for (uint32_t i : active) {
    if (!root.nulls[i] && root.bools[i]) out->push_back(i);
  }
  return true;
}

std::string GroupKey(const Row& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += row[c].is_null() ? std::string("\x01") : row[c].ToDisplayString();
    key.push_back('\x02');
  }
  return key;
}

namespace {

// Mirror of the SQL executor's AggPartial, folded with identical update
// rules (NULL skip, double accumulation in row order, keep-first min/max
// ties via strict comparisons, lazy UDx state init).
struct Partial {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min;
  Value max;
  double min_num = 0;  // cached Number(min/max) for numeric folds
  double max_num = 0;
  std::string udx_state;
};

bool FoldRow(const CompiledSelect& select, const Row& row, uint32_t i,
             const std::vector<EvalState>& states,
             std::vector<Partial>* partials) {
  for (size_t k = 0; k < select.agg_outputs.size(); ++k) {
    const AggOutput& a = select.agg_outputs[k];
    if (a.is_group) continue;
    Partial& p = (*partials)[k];
    const Lanes* lanes = nullptr;
    if (a.arg >= 0) {
      lanes = &select.programs[a.arg].root(states[a.arg]);
      if (lanes->nulls[i]) continue;  // SQL aggregates skip NULLs
    }
    // arg < 0: the interpreter folds a synthetic non-null Int64(1) per
    // row (COUNT(*), or any argless aggregate call).
    p.any = true;
    ++p.count;
    switch (a.fn) {
      case AggOutput::Fn::kCount:
        break;
      case AggOutput::Fn::kSum:
      case AggOutput::Fn::kAvg:
        p.sum += lanes != nullptr ? lanes->Number(i) : 1.0;
        break;
      case AggOutput::Fn::kMin: {
        if (lanes != nullptr && lanes->type == DataType::kVarchar) {
          if (p.min.is_null() ||
              lanes->strings[i].compare(p.min.varchar_value()) < 0) {
            p.min = lanes->Box(i);
          }
        } else {
          double v = lanes != nullptr ? lanes->Number(i) : 1.0;
          if (p.min.is_null() || v < p.min_num) {
            p.min = lanes != nullptr ? lanes->Box(i) : Value::Int64(1);
            p.min_num = v;
          }
        }
        break;
      }
      case AggOutput::Fn::kMax: {
        if (lanes != nullptr && lanes->type == DataType::kVarchar) {
          if (p.max.is_null() ||
              lanes->strings[i].compare(p.max.varchar_value()) > 0) {
            p.max = lanes->Box(i);
          }
        } else {
          double v = lanes != nullptr ? lanes->Number(i) : 1.0;
          if (p.max.is_null() || v > p.max_num) {
            p.max = lanes != nullptr ? lanes->Box(i) : Value::Int64(1);
            p.max_num = v;
          }
        }
        break;
      }
      case AggOutput::Fn::kUdx: {
        if (p.udx_state.empty()) p.udx_state = a.init_state;
        const Value v = lanes != nullptr ? lanes->Box(i) : Value::Int64(1);
        if (!a.udx.update(v, &p.udx_state).ok()) return false;
        break;
      }
    }
  }
  return true;
}

bool FinalizeGroup(const CompiledSelect& select, const Row& key_values,
                   const std::vector<Partial>& partials, Row* out) {
  out->reserve(select.agg_outputs.size());
  for (size_t k = 0; k < select.agg_outputs.size(); ++k) {
    const AggOutput& a = select.agg_outputs[k];
    if (a.is_group) {
      out->push_back(key_values[a.group_pos]);
      continue;
    }
    const Partial& p = partials[k];
    switch (a.fn) {
      case AggOutput::Fn::kCount:
        out->push_back(Value::Int64(p.count));
        break;
      case AggOutput::Fn::kSum:
        out->push_back(p.any ? Value::Float64(p.sum) : Value::Null());
        break;
      case AggOutput::Fn::kAvg:
        out->push_back(p.any ? Value::Float64(p.sum / p.count)
                             : Value::Null());
        break;
      case AggOutput::Fn::kMin:
        out->push_back(p.min);
        break;
      case AggOutput::Fn::kMax:
        out->push_back(p.max);
        break;
      case AggOutput::Fn::kUdx: {
        auto v = a.udx.finalize(p.udx_state.empty() ? a.init_state
                                                    : p.udx_state);
        if (!v.ok()) return false;
        out->push_back(std::move(*v));
        break;
      }
    }
  }
  return true;
}

}  // namespace

std::optional<std::vector<Row>> RunCompiledSelect(
    const CompiledSelect& select, const std::vector<Row>& rows) {
  std::vector<Row> out;
  EvalState filter_state;
  std::vector<EvalState> states(select.programs.size());
  std::map<std::string, std::pair<Row, std::vector<Partial>>> groups;

  int min_width = 0;
  for (int c : select.group_cols) min_width = std::max(min_width, c + 1);
  for (const CompiledSelect::Output& o : select.outputs) {
    if (o.passthrough >= 0) min_width = std::max(min_width, o.passthrough + 1);
  }

  std::vector<uint32_t> all;
  std::vector<uint32_t> filtered;
  const size_t n = rows.size();
  for (size_t base = 0; base < n; base += kBlockRows) {
    const size_t len = std::min(kBlockRows, n - base);
    const Row* block = rows.data() + base;
    all.resize(len);
    for (size_t i = 0; i < len; ++i) all[i] = static_cast<uint32_t>(i);
    const std::vector<uint32_t>* active = &all;
    if (select.filter.has_value()) {
      filtered.clear();
      if (!RunFilter(*select.filter, block, len, all, &filter_state,
                     &filtered)) {
        return std::nullopt;
      }
      active = &filtered;
    }

    if (!select.aggregate) {
      for (const CompiledSelect::Output& o : select.outputs) {
        if (o.program >= 0 &&
            !select.programs[o.program].Eval(block, len, *active,
                                             &states[o.program])) {
          return std::nullopt;
        }
      }
      for (uint32_t i : *active) {
        const Row& row = block[i];
        if (static_cast<int>(row.size()) < min_width) return std::nullopt;
        Row r;
        r.reserve(select.outputs.size());
        for (const CompiledSelect::Output& o : select.outputs) {
          if (o.passthrough >= 0) {
            r.push_back(row[o.passthrough]);
          } else {
            r.push_back(select.programs[o.program].root(states[o.program])
                            .Box(i));
          }
        }
        out.push_back(std::move(r));
      }
      continue;
    }

    for (const AggOutput& a : select.agg_outputs) {
      if (!a.is_group && a.arg >= 0 &&
          !select.programs[a.arg].Eval(block, len, *active,
                                       &states[a.arg])) {
        return std::nullopt;
      }
    }
    for (uint32_t i : *active) {
      const Row& row = block[i];
      if (static_cast<int>(row.size()) < min_width) return std::nullopt;
      auto [it, inserted] = groups.try_emplace(GroupKey(row, select.group_cols));
      if (inserted) {
        Row& key_values = it->second.first;
        key_values.reserve(select.group_cols.size());
        for (int c : select.group_cols) key_values.push_back(row[c]);
        it->second.second.resize(select.agg_outputs.size());
      }
      if (!FoldRow(select, row, i, states, &it->second.second)) {
        return std::nullopt;
      }
    }
  }

  if (!select.aggregate) return out;

  // Aggregate queries with no groups still return one row.
  if (groups.empty() && select.group_cols.empty()) {
    groups.try_emplace(
        "", std::make_pair(Row{},
                           std::vector<Partial>(select.agg_outputs.size())));
  }
  for (const auto& [key, group] : groups) {
    Row r;
    if (!FinalizeGroup(select, group.first, group.second, &r)) {
      return std::nullopt;
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace fabric::exec
