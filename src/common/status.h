#ifndef FABRIC_COMMON_STATUS_H_
#define FABRIC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fabric {

// Canonical error space, loosely following absl::StatusCode. Keep the set
// small: these are the codes the fabric libraries actually distinguish.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kNotFound,           // named entity (table, node, model, ...) absent
  kAlreadyExists,      // create of an entity that exists
  kFailedPrecondition, // system state forbids the operation
  kAborted,            // transaction / task aborted (conflict, conditional)
  kUnavailable,        // connection refused / dropped / node down
  kResourceExhausted,  // session or pool limits hit
  kOutOfRange,         // index/epoch outside valid range
  kInternal,           // invariant violation (bug)
  kUnimplemented,      // feature intentionally absent
  kCancelled,          // task killed by the scheduler / failure injector
};

// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// Value-type error carrier used across all fabric APIs instead of
// exceptions. A default-constructed Status is OK. Statuses are cheap to
// copy for the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such table 'foo'".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Constructors for each canonical error, mirroring absl's free functions.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);
Status ResourceExhaustedError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status CancelledError(std::string message);

}  // namespace fabric

// Evaluates `expr` (a Status or Result expression with a .status()) and
// returns from the enclosing function on error.
#define FABRIC_RETURN_IF_ERROR(expr)                       \
  do {                                                     \
    ::fabric::Status _fabric_status = (expr);              \
    if (!_fabric_status.ok()) return _fabric_status;       \
  } while (false)

#endif  // FABRIC_COMMON_STATUS_H_
