#include "common/hll.h"

#include <bit>
#include <cmath>

#include "common/string_util.h"

namespace fabric::hll {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

// Alpha constant of the raw HLL estimator (Flajolet et al., Figure 3).
double AlphaFor(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

double StandardError(int precision) {
  return 1.04 / std::sqrt(static_cast<double>(uint64_t{1} << precision));
}

Result<Sketch> Sketch::Create(int precision) {
  if (!ValidPrecision(precision)) {
    return InvalidArgumentError(
        StrCat("HLL precision must be in [", kMinPrecision, ", ",
               kMaxPrecision, "], got ", precision));
  }
  Sketch sketch;
  sketch.precision_ = precision;
  sketch.registers_.assign(size_t{1} << precision, 0);
  return sketch;
}

std::pair<size_t, int> Sketch::SlotFor(uint64_t hash, int precision) {
  // Top p bits index the register; the rank is the position of the first
  // set bit in the remaining 64-p bits (1-based, so an all-zero suffix
  // ranks 64-p+1). Ranks never exceed 61 at p>=4, so uint8_t holds.
  const size_t index = hash >> (64 - precision);
  const uint64_t suffix = hash << precision;
  const int rank =
      suffix == 0 ? 64 - precision + 1 : std::countl_zero(suffix) + 1;
  return {index, rank};
}

void Sketch::AddHash(uint64_t hash) {
  const auto [index, rank] = SlotFor(hash, precision_);
  if (static_cast<uint8_t>(rank) > registers_[index]) {
    registers_[index] = static_cast<uint8_t>(rank);
  }
}

Status Sketch::Merge(const Sketch& other) {
  if (!valid() || !other.valid()) {
    return FailedPreconditionError("cannot merge an invalid HLL sketch");
  }
  if (precision_ != other.precision_) {
    return InvalidArgumentError(
        StrCat("cannot merge HLL sketches of different precisions (",
               precision_, " vs ", other.precision_, ")"));
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

int64_t Sketch::Estimate() const {
  if (!valid()) return 0;
  const double m = static_cast<double>(registers_.size());
  double inverse_sum = 0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  double estimate = AlphaFor(registers_.size()) * m * m / inverse_sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting: below ~2.5m the raw estimator is biased and the
    // occupancy-based estimate is far more accurate.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  // With 64-bit hashes no large-range correction is needed. The register
  // contents fully determine the estimate, so any merge order that
  // produces the same registers produces the same integer.
  return std::llround(estimate);
}

std::string Sketch::Serialize() const {
  std::string out;
  out.reserve(8 + 2 * registers_.size());
  out += "HLL1:";
  out.push_back(kHexDigits[(precision_ >> 4) & 0xf]);
  out.push_back(kHexDigits[precision_ & 0xf]);
  out.push_back(':');
  for (uint8_t reg : registers_) {
    out.push_back(kHexDigits[(reg >> 4) & 0xf]);
    out.push_back(kHexDigits[reg & 0xf]);
  }
  return out;
}

namespace {

Result<int> HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return InvalidArgumentError(
      StrCat("invalid hex digit in HLL sketch: '", std::string(1, c), "'"));
}

}  // namespace

Result<Sketch> Sketch::Deserialize(std::string_view bytes) {
  if (bytes.size() < 8 || bytes.substr(0, 3) != "HLL") {
    return InvalidArgumentError(
        "not an HLL sketch (missing 'HLL' magic header)");
  }
  if (bytes[3] != '1' || bytes[4] != ':') {
    return FailedPreconditionError(
        StrCat(kVersionErrorMarker, ": sketch version '",
               std::string(1, bytes[3]),
               "' is not understood by this build (expected 1)"));
  }
  FABRIC_ASSIGN_OR_RETURN(int hi, HexNibble(bytes[5]));
  FABRIC_ASSIGN_OR_RETURN(int lo, HexNibble(bytes[6]));
  const int precision = (hi << 4) | lo;
  if (!ValidPrecision(precision)) {
    return InvalidArgumentError(
        StrCat("HLL sketch header carries invalid precision ", precision));
  }
  if (bytes[7] != ':') {
    return InvalidArgumentError("malformed HLL sketch header");
  }
  const std::string_view payload = bytes.substr(8);
  const size_t m = size_t{1} << precision;
  if (payload.size() != 2 * m) {
    return InvalidArgumentError(
        StrCat("HLL sketch payload holds ", payload.size() / 2,
               " registers, expected ", m));
  }
  FABRIC_ASSIGN_OR_RETURN(Sketch sketch, Create(precision));
  const int max_rank = 64 - precision + 1;
  for (size_t i = 0; i < m; ++i) {
    FABRIC_ASSIGN_OR_RETURN(int rh, HexNibble(payload[2 * i]));
    FABRIC_ASSIGN_OR_RETURN(int rl, HexNibble(payload[2 * i + 1]));
    const int rank = (rh << 4) | rl;
    if (rank > max_rank) {
      return InvalidArgumentError(
          StrCat("HLL register ", i, " holds rank ", rank,
                 ", beyond the maximum ", max_rank, " for precision ",
                 precision));
    }
    sketch.registers_[i] = static_cast<uint8_t>(rank);
  }
  return sketch;
}

std::string Sketch::ToRawState() const {
  std::string raw;
  raw.reserve(1 + registers_.size());
  raw.push_back(static_cast<char>(precision_));
  raw.append(reinterpret_cast<const char*>(registers_.data()),
             registers_.size());
  return raw;
}

Result<Sketch> Sketch::FromRawState(std::string_view raw) {
  if (raw.empty()) {
    return InvalidArgumentError("empty HLL raw state");
  }
  const int precision = static_cast<uint8_t>(raw[0]);
  if (!ValidPrecision(precision) ||
      raw.size() != 1 + (size_t{1} << precision)) {
    return InvalidArgumentError("malformed HLL raw state");
  }
  FABRIC_ASSIGN_OR_RETURN(Sketch sketch, Create(precision));
  for (size_t i = 0; i < sketch.registers_.size(); ++i) {
    sketch.registers_[i] = static_cast<uint8_t>(raw[1 + i]);
  }
  return sketch;
}

}  // namespace fabric::hll
