#ifndef FABRIC_COMMON_RANDOM_H_
#define FABRIC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace fabric {

// Deterministic, seedable PRNG (xoshiro256**). All randomized behaviour in
// the fabric (data generation, failure injection, speculative timing noise)
// draws from explicitly seeded Rng instances so every experiment and test
// is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  // Random lowercase-ASCII "word-ish" string of the given length.
  std::string NextString(int length);

  // Forks an independent stream (for per-task generators).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace fabric

#endif  // FABRIC_COMMON_RANDOM_H_
