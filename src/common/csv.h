#ifndef FABRIC_COMMON_CSV_H_
#define FABRIC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fabric {

// Minimal RFC-4180-ish CSV support: fields separated by commas, quoted with
// double quotes when they contain comma/quote/newline, embedded quotes
// doubled. The paper's datasets originate in HDFS as delimited text; this
// is the codec used by the HDFS simulator and the COPY baseline.

// Renders one record (no trailing newline).
std::string CsvEncodeRecord(const std::vector<std::string>& fields);

// Parses one record. Fails on unbalanced quotes.
Result<std::vector<std::string>> CsvDecodeRecord(std::string_view line);

}  // namespace fabric

#endif  // FABRIC_COMMON_CSV_H_
