#ifndef FABRIC_COMMON_LOGGING_H_
#define FABRIC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fabric {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                      kFatal = 4 };

// Process-wide minimum level for emitted log lines (default kWarning so
// tests and benches stay quiet; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style log line collector; emits on destruction. A kFatal line
// aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Lets the logging macros produce a void expression from a LogMessage
// stream chain (glog's "voidify" idiom): `&` binds looser than `<<`.
class Voidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace fabric

#define FABRIC_LOG(level)                                              \
  (static_cast<int>(::fabric::LogLevel::k##level) <                    \
   static_cast<int>(::fabric::GetLogLevel()))                          \
      ? (void)0                                                        \
      : ::fabric::internal::Voidify() &                                \
            ::fabric::internal::LogMessage(                            \
                ::fabric::LogLevel::k##level, __FILE__, __LINE__)

// Lazily-evaluated CHECK that aborts with the streamed message on failure.
#define FABRIC_CHECK(cond)                                             \
  (cond) ? (void)0                                                     \
         : ::fabric::internal::Voidify() &                             \
               ::fabric::internal::LogMessage(                         \
                   ::fabric::LogLevel::kFatal, __FILE__, __LINE__)     \
                   << "Check failed: " #cond " "

// Copies the checked value: `expr` is commonly `result.status()` on a
// temporary Result, and a reference would dangle once the temporary
// dies at the end of this declaration's full-expression.
#define FABRIC_CHECK_OK(expr)                                          \
  do {                                                                 \
    const auto _fabric_chk = (expr);                                   \
    FABRIC_CHECK(_fabric_chk.ok()) << _fabric_chk.ToString();          \
  } while (false)

#endif  // FABRIC_COMMON_LOGGING_H_
