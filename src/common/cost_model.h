#ifndef FABRIC_COMMON_COST_MODEL_H_
#define FABRIC_COMMON_COST_MODEL_H_

namespace fabric {

// Calibration constants for the virtual-time cost model. Defaults are
// fitted once against the paper's headline numbers (Section 4: 4 Vertica
// nodes / 8 Spark workers, 2x 1GbE, dataset D1 = 100 float columns x 100M
// rows) and then held fixed across every experiment; see DESIGN.md.
//
// All rates are bytes/second, all durations seconds, all CPU costs
// seconds of one core.
struct CostModel {
  // ---------------------------------------------------------- hardware
  double nic_bandwidth = 125e6;  // 1GbE per interface
  int vertica_cores = 16;        // physical cores per Vertica node
  int spark_cores_per_worker = 24;  // ~75% of 32 logical cores (Sec. 4.1)
  int spark_slots_per_worker = 24;  // task slots = cores given to Spark
  double disk_read_bandwidth = 150e6;   // local data disk
  double disk_write_bandwidth = 120e6;

  // --------------------------------------------- wire encodings (per raw
  // byte of column data). JDBC result sets ship a text-ish typed format;
  // Avro is a compact binary format (Section 3.2.2).
  double jdbc_numeric_inflation = 2.95;
  double jdbc_string_inflation = 1.1;
  double jdbc_per_row_bytes = 8;   // row header on the wire
  double avro_numeric_inflation = 1.0;
  double avro_string_inflation = 1.05;
  double avro_per_row_bytes = 4;

  // ------------------------------------- Vertica session and statements
  double connection_setup = 0.35;      // TCP + auth + session create
  double statement_overhead_cpu = 0.01;  // parse/plan on the initiator
  double ddl_overhead = 0.40;          // catalog ops (global commit)
  double commit_overhead = 0.05;       // txn commit latency
  double session_teardown = 0.02;

  // ----------------------------------------------- scans and streaming
  double scan_cpu_per_byte = 1.2e-9;   // decompress + evaluate, per raw byte
  double scan_cpu_per_row = 0.15e-6;
  // Fixed cost of opening one ROS container during a scan (catalog
  // lookup, fds, per-container column headers). This is what makes
  // container fragmentation expensive and the Tuple Mover's mergeout
  // worthwhile; not multiplied by data_scale (container count is a real,
  // not scaled, quantity).
  double ros_container_open_cpu = 1.5e-4;
  // GROUP BY aggregation CPU per input row on the scanning node. The
  // hash rate pays key hashing and probes; the sorted rate applies when
  // the chosen projection's sort order prefixes the grouping keys (equal
  // keys arrive adjacent: merge-style aggregation, no hash table).
  double group_by_hash_cpu_per_row = 4.0e-8;
  double group_by_sorted_cpu_per_row = 0.8e-8;
  // INNER JOIN CPU per input row (left + right). The hash rate pays
  // building and probing the hash table on the join key; the merge rate
  // applies when both sides scan projections sorted on the join key
  // (equal keys arrive adjacent on both inputs: streaming merge join, no
  // hash table). When the sorted projections are additionally co-located
  // — segmented identically on the join key, or replicated — the join
  // also runs node-local with no reshuffle of either input.
  double join_hash_cpu_per_row = 6.0e-7;
  double join_merge_cpu_per_row = 1.2e-7;
  // Per-JDBC-connection result serialization: the stream moves at most
  // stream_bytes_per_sec of wire data, and each row additionally costs
  // stream_row_overhead (these two produce the Fig. 9 shape).
  double result_stream_bytes_per_sec = 44.6e6;
  double result_row_overhead = 5.7e-6;
  // CPU behind the serialization cap above (telemetry: Table 2's CPU%).
  double result_serialize_cpu_per_byte = 2.7e-8;

  // ------------------------------------------------------ ingest (COPY)
  double copy_parse_cpu_per_byte = 1.2e-7;
  double copy_parse_cpu_per_row = 1.5e-6;
  double copy_parse_cpu_per_field = 0.1e-6;
  // Per-COPY-connection ingest serialization (mirror of the result
  // stream; COPY is faster than the query path per byte).
  double copy_stream_bytes_per_sec = 60e6;
  double copy_stream_row_overhead = 2.0e-6;

  // ------------------------------------------------------- Spark side
  double task_launch_overhead = 0.03;   // scheduler dispatch + deserialize
  double task_result_overhead = 0.01;
  double avro_encode_cpu_per_byte = 6.0e-9;
  double avro_encode_cpu_per_row = 4.0e-6;
  double avro_encode_cpu_per_field = 0.3e-6;
  double spark_row_process_cpu = 0.5e-6;  // generic per-row pipeline cost

  // ------------------------------------------------------------- HDFS
  double hdfs_block_bytes = 64e6;        // default block size (Sec. 4.1)
  int hdfs_replication = 3;
  double hdfs_open_overhead = 0.01;      // namenode lookup per block
  double parquet_decode_cpu_per_byte = 1.0e-9;
  double parquet_encode_cpu_per_byte = 1.0e-7;

  // ------------------------------------------------- simulation scaling
  // Real rows held in memory represent `data_scale` paper rows each; all
  // byte/row/field-proportional costs are multiplied by this. Protocol
  // logic always runs on real rows.
  double data_scale = 1.0;
  // Pipeline granularity for chunked scan/stream overlap.
  double chunk_bytes = 16e6;
};

}  // namespace fabric

#endif  // FABRIC_COMMON_COST_MODEL_H_
