#include "common/random.h"

#include "common/hash.h"
#include "common/logging.h"

namespace fabric {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes via splitmix64, per the xoshiro authors' advice.
  uint64_t s = seed;
  for (auto& lane : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    lane = Mix64(s);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  FABRIC_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  FABRIC_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Rng::NextString(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    // Spaces roughly every 6th character to look like text.
    if (i > 0 && NextUint64(6) == 0) {
      out.push_back(' ');
    } else {
      out.push_back(static_cast<char>('a' + NextUint64(26)));
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace fabric
