#ifndef FABRIC_COMMON_STRING_UTIL_H_
#define FABRIC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fabric {

// Splits `input` on `delimiter`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char delimiter);

// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// ASCII-only case mapping.
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Case-insensitive ASCII equality (SQL keywords, option names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Streams all arguments together (absl::StrCat stand-in).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Formats a byte count as "1.5 GB" etc. for logs and bench output.
std::string HumanBytes(double bytes);

// Formats row counts as "100M", "1.46B" etc. (paper-style labels).
std::string HumanCount(double count);

// Parses a signed integer / double; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace fabric

#endif  // FABRIC_COMMON_STRING_UTIL_H_
