#ifndef FABRIC_COMMON_RESULT_H_
#define FABRIC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace fabric {

// Result<T> holds either a value of type T or a non-OK Status, mirroring
// absl::StatusOr<T>. Accessing the value of an errored Result aborts the
// program (it is a caller bug, checked via FABRIC_CHECK).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit, so `return value;` and `return SomeError();`
  // both work inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FABRIC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FABRIC_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FABRIC_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FABRIC_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fabric

// Assigns the value of a Result-returning expression to `lhs`, or returns
// its status from the enclosing function. `lhs` may be a declaration.
#define FABRIC_ASSIGN_OR_RETURN(lhs, expr)                           \
  FABRIC_ASSIGN_OR_RETURN_IMPL_(                                     \
      FABRIC_RESULT_CONCAT_(_fabric_result_, __LINE__), lhs, expr)

#define FABRIC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define FABRIC_RESULT_CONCAT_(a, b) FABRIC_RESULT_CONCAT_IMPL_(a, b)
#define FABRIC_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // FABRIC_COMMON_RESULT_H_
