#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fabric {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes log lines; the sim engine is single-runnable but host threads
// back sim processes, so emission still needs a lock.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace fabric
