#ifndef FABRIC_COMMON_HLL_H_
#define FABRIC_COMMON_HLL_H_

// Mergeable HyperLogLog sketches (Flajolet et al. 2007) for approximate
// distinct counting, modeled on the Criteo vertica-hyperloglog UDx design:
// parameterized precision, dense register array, versioned serialization.
//
// A sketch with precision p holds m = 2^p one-byte registers. Adding a
// 64-bit hash uses the top p bits as the register index and stores the
// maximum rank (leading-zero count + 1) of the remaining bits. Merge is
// the element-wise register maximum, which makes it commutative,
// associative and idempotent — partial sketches can be combined in any
// order, any number of times (shuffle retries, failover re-execution)
// and still yield byte-identical registers, hence identical estimates.
//
// The standard error of the estimate is 1.04 / sqrt(m): ~3.2% at p=10,
// ~1.6% at p=12, ~0.8% at p=14.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace fabric::hll {

inline constexpr int kMinPrecision = 4;
inline constexpr int kMaxPrecision = 18;
inline constexpr int kDefaultPrecision = 12;

inline constexpr bool ValidPrecision(int precision) {
  return precision >= kMinPrecision && precision <= kMaxPrecision;
}

// 1.04 / sqrt(2^p), the theoretical relative standard error.
double StandardError(int precision);

// Serialized sketches carry a version header; loading bytes whose version
// this build does not understand fails with FailedPrecondition and this
// marker in the message, never a garbage estimate.
inline constexpr char kVersionErrorMarker[] = "HLL_VERSION_UNSUPPORTED";

class Sketch {
 public:
  // Default-constructed sketches are invalid placeholders (precision 0);
  // use Create or Deserialize.
  Sketch() = default;

  static Result<Sketch> Create(int precision);

  bool valid() const { return precision_ != 0; }
  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  // Folds one hashed element into the sketch. Callers hash values with a
  // fixed seed shared across all layers so sketches built on different
  // engines merge coherently.
  void AddHash(uint64_t hash);

  // The (register index, rank) a hash lands in at the given precision.
  // Exposed so aggregate executors can update a raw register buffer in
  // place without materializing a Sketch per row; AddHash uses the same
  // computation, which is what keeps all paths register-identical.
  static std::pair<size_t, int> SlotFor(uint64_t hash, int precision);

  // Element-wise register max. Fails on precision mismatch (register
  // arrays of different precisions are not alignable).
  Status Merge(const Sketch& other);

  // Bias-corrected cardinality estimate with the linear-counting
  // small-range correction. Deterministic in the register contents.
  int64_t Estimate() const;

  // Versioned, printable serialization (format v1): "HLL1:<pp>:<hex>"
  // where <pp> is the two-digit precision and <hex> holds two lowercase
  // hex digits per register. Printable bytes survive SQL literals, CSV
  // staging and display-string round-trips unmangled, and re-serializing
  // a deserialized sketch is byte-identical.
  std::string Serialize() const;
  static Result<Sketch> Deserialize(std::string_view bytes);

  // Compact in-memory form for aggregate accumulator states: one
  // precision byte followed by the m raw register bytes. Unlike
  // Serialize(), this form is unversioned and never leaves the process.
  std::string ToRawState() const;
  static Result<Sketch> FromRawState(std::string_view raw);

  friend bool operator==(const Sketch& a, const Sketch& b) {
    return a.precision_ == b.precision_ && a.registers_ == b.registers_;
  }

 private:
  int precision_ = 0;
  std::vector<uint8_t> registers_;
};

}  // namespace fabric::hll

#endif  // FABRIC_COMMON_HLL_H_
