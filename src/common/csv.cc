#include "common/csv.h"

namespace fabric {
namespace {

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string CsvEncodeRecord(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& field = fields[i];
    if (!NeedsQuoting(field)) {
      out += field;
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::vector<std::string>> CsvDecodeRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return InvalidArgumentError("CSV: quote inside unquoted field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) return InvalidArgumentError("CSV: unbalanced quote");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace fabric
