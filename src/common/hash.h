#ifndef FABRIC_COMMON_HASH_H_
#define FABRIC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace fabric {

// 64-bit hashing used for Vertica-style hash segmentation. Vertica's HASH()
// maps arbitrary column values onto a 2^64 ring, with contiguous ranges of
// the ring assigned to nodes (the "hash ring" of Section 3.1.2). We mimic
// that contract: uniform, deterministic, combinable across columns.

// Seed for multi-column segmentation hashes: RowSegmentationHash, the SQL
// HASH() builtin, and the vectorized hash-range kernels must all fold
// columns starting from this value to land on the same ring position.
inline constexpr uint64_t kSegmentationHashSeed = 0x5eed5eed5eed5eedULL;

// Mixes a 64-bit value (splitmix64 finalizer; strong avalanche).
uint64_t Mix64(uint64_t x);

// Hashes raw bytes (FNV-1a body + Mix64 finalizer).
uint64_t HashBytes(std::string_view bytes);

uint64_t HashInt64(int64_t value);
uint64_t HashDouble(double value);
uint64_t HashBool(bool value);

// Combines hashes of successive columns into one segmentation hash,
// order-sensitive, as Vertica's multi-column HASH(a, b, ...) is.
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace fabric

#endif  // FABRIC_COMMON_HASH_H_
