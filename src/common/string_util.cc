#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fabric {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

std::string FormatScaled(double value, const char* const* units,
                         int num_units, double step) {
  int unit = 0;
  while (value >= step && unit + 1 < num_units) {
    value /= step;
    ++unit;
  }
  char buf[64];
  if (value >= 100 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, units[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace

std::string HumanBytes(double bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  return FormatScaled(bytes, kUnits, 6, 1024.0);
}

std::string HumanCount(double count) {
  static const char* const kUnits[] = {"", "K", "M", "B", "T"};
  std::string out = FormatScaled(count, kUnits, 5, 1000.0);
  // Counts render tight ("1.46B"), unlike byte sizes ("1.46 GB").
  out.erase(std::remove(out.begin(), out.end(), ' '), out.end());
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace fabric
