#ifndef FABRIC_COMMON_BYTES_H_
#define FABRIC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace fabric {

// Little-endian append-only byte sink used by the columnar encodings and
// the Avro-style row codec.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view v) {
    PutU32(static_cast<uint32_t>(v.size()));
    buffer_.append(v.data(), v.size());
  }
  void PutRaw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked reader over an encoded buffer. All getters return
// OUT_OF_RANGE on a truncated buffer (FABRIC_RETURN_IF_ERROR works inside
// Result-returning functions because Result is implicitly constructible
// from Status).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    FABRIC_RETURN_IF_ERROR(Require(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() { return GetRaw<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetRaw<uint64_t>(); }
  Result<int64_t> GetI64() { return GetRaw<int64_t>(); }
  Result<double> GetDouble() { return GetRaw<double>(); }
  Result<std::string> GetString() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    FABRIC_RETURN_IF_ERROR(Require(*len));
    std::string out(data_.substr(pos_, *len));
    pos_ += *len;
    return out;
  }
  // Zero-copy variant for scan hot paths: the view aliases the underlying
  // buffer and is valid only while that buffer lives.
  Result<std::string_view> GetStringView() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    FABRIC_RETURN_IF_ERROR(Require(*len));
    std::string_view out = data_.substr(pos_, *len);
    pos_ += *len;
    return out;
  }
  // Skips `n` bytes without materializing them.
  Status Skip(size_t n) {
    FABRIC_RETURN_IF_ERROR(Require(n));
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Require(size_t n) {
    if (pos_ + n > data_.size()) {
      return OutOfRangeError("byte buffer truncated");
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> GetRaw() {
    FABRIC_RETURN_IF_ERROR(Require(sizeof(T)));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace fabric

#endif  // FABRIC_COMMON_BYTES_H_
