#include "common/hash.h"

#include <cstring>

namespace fabric {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return Mix64(h);
}

uint64_t HashInt64(int64_t value) {
  return Mix64(static_cast<uint64_t>(value));
}

uint64_t HashDouble(double value) {
  // Normalize -0.0 to +0.0 so equal values hash equally.
  if (value == 0.0) value = 0.0;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Mix64(bits);
}

uint64_t HashBool(bool value) { return Mix64(value ? 1u : 0u); }

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // boost::hash_combine widened to 64 bits.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace fabric
