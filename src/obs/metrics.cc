#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace fabric::obs {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  // Integers (the common case for counters) print without an exponent
  // or trailing zeros so the files stay humane.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

int BucketOf(double value) {
  // bucket i holds value <= 2^(i-1); i.e. ceil(log2(value)) + 1, clamped.
  if (value <= 0.5) return 0;
  int b = 1 + static_cast<int>(std::ceil(std::log2(value)));
  if (b < 0) b = 0;
  if (b >= Metrics::Histogram::kBuckets) b = Metrics::Histogram::kBuckets - 1;
  return b;
}

}  // namespace

void Metrics::AddCounter(std::string_view name, double delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Metrics::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  Histogram& h = it->second;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
  ++h.bucket[BucketOf(value)];
}

double Metrics::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Metrics::Histogram Metrics::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::string Metrics::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":" + JsonNumber(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":" + JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":{\"count\":" + JsonNumber(h.count) +
           ",\"sum\":" + JsonNumber(h.sum) + ",\"min\":" + JsonNumber(h.min) +
           ",\"max\":" + JsonNumber(h.max) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace fabric::obs
