#include "obs/trace_matcher.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::obs {

namespace {

std::vector<const Event*> AllOf(const std::vector<Event>& events) {
  std::vector<const Event*> out;
  out.reserve(events.size());
  for (const Event& event : events) out.push_back(&event);
  return out;
}

}  // namespace

TraceMatcher::TraceMatcher(const Tracer& tracer)
    : events_(AllOf(tracer.events())) {}

TraceMatcher::TraceMatcher(const std::vector<Event>& events)
    : events_(AllOf(events)) {}

TraceMatcher TraceMatcher::Category(std::string_view category) const {
  return FilterBy([&](const Event& e) { return e.category == category; });
}

TraceMatcher TraceMatcher::Name(std::string_view name) const {
  return FilterBy([&](const Event& e) { return e.name == name; });
}

TraceMatcher TraceMatcher::Phase(Event::Phase phase) const {
  return FilterBy([&](const Event& e) { return e.phase == phase; });
}

TraceMatcher TraceMatcher::WithAttr(std::string_view key,
                                    AttrValue value) const {
  return FilterBy([&](const Event& e) {
    const AttrValue* v = e.FindAttr(key);
    return v != nullptr && *v == value;
  });
}

TraceMatcher TraceMatcher::WithAttrKey(std::string_view key) const {
  return FilterBy([&](const Event& e) { return e.FindAttr(key) != nullptr; });
}

TraceMatcher TraceMatcher::Before(double time) const {
  return FilterBy([&](const Event& e) { return e.time < time; });
}

TraceMatcher TraceMatcher::After(double time) const {
  return FilterBy([&](const Event& e) { return e.time > time; });
}

const Event& TraceMatcher::at(size_t i) const {
  FABRIC_CHECK(i < events_.size())
      << "trace matcher index " << i << " out of " << events_.size();
  return *events_[i];
}

const Event& TraceMatcher::only() const {
  FABRIC_CHECK(events_.size() == 1)
      << "expected exactly one event, got " << events_.size() << ":\n"
      << Describe();
  return *events_[0];
}

std::vector<int64_t> TraceMatcher::DistinctIntAttr(
    std::string_view key) const {
  std::vector<int64_t> values;
  for (const Event* event : events_) {
    const AttrValue* v = event->FindAttr(key);
    if (v != nullptr && v->kind() == AttrValue::Kind::kInt) {
      values.push_back(v->int_value());
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

bool TraceMatcher::StrictlyBefore(const TraceMatcher& other) const {
  if (events_.empty() || other.events_.empty()) return true;
  uint64_t max_seq = 0;
  for (const Event* event : events_) {
    max_seq = std::max(max_seq, event->seq);
  }
  uint64_t min_seq = other.events_.front()->seq;
  for (const Event* event : other.events_) {
    min_seq = std::min(min_seq, event->seq);
  }
  return max_seq < min_seq;
}

std::string TraceMatcher::Describe(size_t limit) const {
  std::string out;
  size_t shown = 0;
  for (const Event* event : events_) {
    if (shown++ >= limit) {
      out += StrCat("... (", events_.size() - limit, " more)\n");
      break;
    }
    out += event->ToString() + "\n";
  }
  if (events_.empty()) out = "(no events)\n";
  return out;
}

}  // namespace fabric::obs
