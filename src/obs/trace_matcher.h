#ifndef FABRIC_OBS_TRACE_MATCHER_H_
#define FABRIC_OBS_TRACE_MATCHER_H_

// Query utility over a recorded trace, for protocol-conformance tests:
//
//   obs::TraceMatcher trace(tracer);
//   auto commits = trace.Category("s2v").Name("phase1.commit");
//   EXPECT_EQ(commits.WithAttr("task", 3).count(), 1u);
//   EXPECT_TRUE(commits.StrictlyBefore(trace.Name("phase5.promote")));
//
// Matchers are cheap filtered views (pointers into the tracer's event
// vector); the tracer must outlive them.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace fabric::obs {

class TraceMatcher {
 public:
  explicit TraceMatcher(const Tracer& tracer);
  explicit TraceMatcher(const std::vector<Event>& events);

  // Filters (each returns a narrowed view, original unchanged).
  TraceMatcher Category(std::string_view category) const;
  TraceMatcher Name(std::string_view name) const;
  TraceMatcher Phase(Event::Phase phase) const;
  TraceMatcher WithAttr(std::string_view key, AttrValue value) const;
  TraceMatcher WithAttrKey(std::string_view key) const;
  TraceMatcher Before(double time) const;  // strictly earlier virtual time
  TraceMatcher After(double time) const;   // strictly later virtual time

  size_t count() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& at(size_t i) const;
  const Event& first() const { return at(0); }
  const Event& last() const { return at(events_.size() - 1); }
  // The single matching event; dies (with a dump) unless count() == 1.
  const Event& only() const;

  // Distinct values of an integer attribute across the matched events,
  // sorted ascending (events missing the attr are skipped).
  std::vector<int64_t> DistinctIntAttr(std::string_view key) const;

  // True when every matched event is sequenced before every event of
  // `other`. Vacuously true when either side is empty.
  bool StrictlyBefore(const TraceMatcher& other) const;

  // Multi-line dump of the matched events (assertion messages).
  std::string Describe(size_t limit = 32) const;

 private:
  explicit TraceMatcher(std::vector<const Event*> events)
      : events_(std::move(events)) {}

  template <typename Pred>
  TraceMatcher FilterBy(Pred pred) const {
    std::vector<const Event*> kept;
    for (const Event* event : events_) {
      if (pred(*event)) kept.push_back(event);
    }
    return TraceMatcher(std::move(kept));
  }

  std::vector<const Event*> events_;
};

}  // namespace fabric::obs

#endif  // FABRIC_OBS_TRACE_MATCHER_H_
