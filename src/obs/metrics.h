#ifndef FABRIC_OBS_METRICS_H_
#define FABRIC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace fabric::obs {

// Deterministic JSON rendering of a double: shortest round-trippable
// form, fixed across platforms for a given bit pattern (%.17g trimmed).
std::string JsonNumber(double value);

// Escapes and quotes `s` as a JSON string literal.
std::string JsonString(std::string_view s);

// A metrics registry: counters (monotonic sums), gauges (last value) and
// histograms (count/sum/min/max plus power-of-two buckets). Names are
// created on first touch; iteration order is lexicographic, so two runs
// that touch the same names in any order export identical JSON.
//
// All values are doubles — the simulator's byte counts and virtual
// durations are fractional, and integer counters embed exactly.
class Metrics {
 public:
  struct Histogram {
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // bucket[i] counts observations with value <= 2^(i-1), the last
    // bucket is unbounded; chosen so latencies (seconds) and sizes
    // (bytes) both spread usefully.
    static constexpr int kBuckets = 40;
    int64_t bucket[kBuckets] = {0};
  };

  void AddCounter(std::string_view name, double delta = 1);
  void SetGauge(std::string_view name, double value);
  void Observe(std::string_view name, double value);

  // Reads return the zero value for names never touched.
  double counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  Histogram histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  // "sum":..,"min":..,"max":..}}}, keys sorted. Byte-identical across
  // runs that record the same values.
  std::string ToJson() const;

 private:
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace fabric::obs

#endif  // FABRIC_OBS_METRICS_H_
