#ifndef FABRIC_OBS_TRACE_H_
#define FABRIC_OBS_TRACE_H_

// Deterministic structured tracing for the simulated fabric.
//
// A Tracer records point events and spans, each stamped with the sim
// engine's virtual time plus a tracer-local sequence number. Because the
// engine is deterministic — wake-ups ordered by (time, seq), one runnable
// at a time — two runs with the same seed produce byte-identical traces,
// which turns the trace into a testable artifact: protocol-conformance
// tests query it with TraceMatcher (trace_matcher.h) instead of poking at
// end state.
//
// Call sites use the free helpers (TraceEvent / TraceBegin / TraceEnd /
// IncrCounter / ObserveValue / SetGauge) which no-op unless a tracer is
// installed via ScopedTracer, so production paths pay one pointer check
// when observability is off.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace fabric::obs {

// A typed attribute value: int64, double, bool or string.
class AttrValue {
 public:
  enum class Kind { kInt, kDouble, kBool, kString };

  AttrValue(int64_t v) : kind_(Kind::kInt), int_(v) {}
  AttrValue(int v) : AttrValue(static_cast<int64_t>(v)) {}
  AttrValue(uint64_t v) : AttrValue(static_cast<int64_t>(v)) {}
  AttrValue(double v) : kind_(Kind::kDouble), double_(v) {}
  AttrValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  AttrValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  AttrValue(std::string_view v) : kind_(Kind::kString), string_(v) {}
  AttrValue(const char* v) : kind_(Kind::kString), string_(v) {}

  Kind kind() const { return kind_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  bool bool_value() const { return bool_; }
  const std::string& string_value() const { return string_; }

  bool operator==(const AttrValue& other) const;
  bool operator!=(const AttrValue& other) const { return !(*this == other); }

  std::string ToJson() const;  // a JSON literal

 private:
  Kind kind_;
  int64_t int_ = 0;
  double double_ = 0;
  bool bool_ = false;
  std::string string_;
};

struct Attr {
  std::string key;
  AttrValue value;
};

using Attrs = std::vector<Attr>;

// One trace record. Spans appear as a Begin/End pair sharing a span id.
struct Event {
  enum class Phase { kInstant, kBegin, kEnd };

  Phase phase = Phase::kInstant;
  double time = 0;    // virtual seconds
  uint64_t seq = 0;   // total order within the tracer
  uint64_t span = 0;  // nonzero links a Begin to its End
  std::string category;
  std::string name;
  Attrs attrs;

  // First attribute with `key`, or nullptr.
  const AttrValue* FindAttr(std::string_view key) const;
  // Typed accessors with defaults (missing/mistyped attr returns `fallback`).
  int64_t IntAttr(std::string_view key, int64_t fallback = 0) const;
  double DoubleAttr(std::string_view key, double fallback = 0) const;
  bool BoolAttr(std::string_view key, bool fallback = false) const;
  std::string StrAttr(std::string_view key,
                      std::string_view fallback = "") const;

  std::string ToString() const;  // one-line debug form
};

// The tracer. `clock` supplies virtual time (typically the sim engine's
// now()); it must be monotone for the exported trace to be well-formed.
class Tracer {
 public:
  struct Options {
    // When false, Emit/BeginSpan/EndSpan only update metrics — the event
    // vector stays empty. Benchmarks run metrics-only to keep multi-GB
    // workloads from materializing million-event traces.
    bool capture_events = true;
  };

  // Two overloads rather than a defaulted Options argument: GCC cannot
  // evaluate a nested struct's member initializers in a default argument
  // of the enclosing class.
  explicit Tracer(std::function<double()> clock);
  Tracer(std::function<double()> clock, Options options);

  void Emit(std::string_view category, std::string_view name,
            Attrs attrs = {});
  // Returns the span id to pass to EndSpan (0 is never returned).
  uint64_t BeginSpan(std::string_view category, std::string_view name,
                     Attrs attrs = {});
  void EndSpan(uint64_t span, std::string_view category,
               std::string_view name, Attrs attrs = {});

  const std::vector<Event>& events() const { return events_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  bool capture_events() const { return options_.capture_events; }

  // Chrome trace-event format ("traceEvents" array: instants as ph:"i",
  // spans as async ph:"b"/"e"), loadable in chrome://tracing / Perfetto.
  // Deterministic: same events in, same bytes out.
  std::string ToChromeTraceJson() const;

 private:
  std::function<double()> clock_;
  Options options_;
  uint64_t next_seq_ = 1;
  uint64_t next_span_ = 1;
  std::vector<Event> events_;
  Metrics metrics_;
};

// The process-wide current tracer (nullptr when none installed). The sim
// engine serializes all simulation activity, so a plain pointer suffices.
Tracer* CurrentTracer();

// Installs `tracer` for the scope's lifetime, restoring the previous one
// on destruction (scopes nest; the innermost wins).
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

// ------------------------------------------------- call-site helpers
// All no-ops when no tracer is installed.

inline void TraceEvent(std::string_view category, std::string_view name,
                       Attrs attrs = {}) {
  if (Tracer* t = CurrentTracer()) t->Emit(category, name, std::move(attrs));
}

inline uint64_t TraceBegin(std::string_view category, std::string_view name,
                           Attrs attrs = {}) {
  Tracer* t = CurrentTracer();
  return t == nullptr ? 0 : t->BeginSpan(category, name, std::move(attrs));
}

inline void TraceEnd(uint64_t span, std::string_view category,
                     std::string_view name, Attrs attrs = {}) {
  if (span == 0) return;
  if (Tracer* t = CurrentTracer()) {
    t->EndSpan(span, category, name, std::move(attrs));
  }
}

inline void IncrCounter(std::string_view name, double delta = 1) {
  if (Tracer* t = CurrentTracer()) t->metrics().AddCounter(name, delta);
}

inline void SetGauge(std::string_view name, double value) {
  if (Tracer* t = CurrentTracer()) t->metrics().SetGauge(name, value);
}

inline void ObserveValue(std::string_view name, double value) {
  if (Tracer* t = CurrentTracer()) t->metrics().Observe(name, value);
}

}  // namespace fabric::obs

#endif  // FABRIC_OBS_TRACE_H_
