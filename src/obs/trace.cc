#include "obs/trace.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::obs {

namespace {
Tracer* g_current_tracer = nullptr;
}  // namespace

bool AttrValue::operator==(const AttrValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

std::string AttrValue::ToJson() const {
  switch (kind_) {
    case Kind::kInt:
      return StrCat(int_);
    case Kind::kDouble:
      return JsonNumber(double_);
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kString:
      return JsonString(string_);
  }
  return "null";
}

const AttrValue* Event::FindAttr(std::string_view key) const {
  for (const Attr& attr : attrs) {
    if (attr.key == key) return &attr.value;
  }
  return nullptr;
}

int64_t Event::IntAttr(std::string_view key, int64_t fallback) const {
  const AttrValue* v = FindAttr(key);
  return v != nullptr && v->kind() == AttrValue::Kind::kInt ? v->int_value()
                                                            : fallback;
}

double Event::DoubleAttr(std::string_view key, double fallback) const {
  const AttrValue* v = FindAttr(key);
  if (v == nullptr) return fallback;
  if (v->kind() == AttrValue::Kind::kDouble) return v->double_value();
  if (v->kind() == AttrValue::Kind::kInt) {
    return static_cast<double>(v->int_value());
  }
  return fallback;
}

bool Event::BoolAttr(std::string_view key, bool fallback) const {
  const AttrValue* v = FindAttr(key);
  return v != nullptr && v->kind() == AttrValue::Kind::kBool ? v->bool_value()
                                                             : fallback;
}

std::string Event::StrAttr(std::string_view key,
                           std::string_view fallback) const {
  const AttrValue* v = FindAttr(key);
  return v != nullptr && v->kind() == AttrValue::Kind::kString
             ? v->string_value()
             : std::string(fallback);
}

std::string Event::ToString() const {
  std::string out =
      StrCat("[t=", time, " #", seq, "] ", category, ".", name,
             phase == Phase::kBegin  ? " BEGIN"
             : phase == Phase::kEnd ? " END"
                                    : "");
  for (const Attr& attr : attrs) {
    out += StrCat(" ", attr.key, "=", attr.value.ToJson());
  }
  return out;
}

Tracer::Tracer(std::function<double()> clock)
    : Tracer(std::move(clock), Options{}) {}

Tracer::Tracer(std::function<double()> clock, Options options)
    : clock_(std::move(clock)), options_(options) {
  FABRIC_CHECK(clock_ != nullptr) << "tracer needs a clock";
}

void Tracer::Emit(std::string_view category, std::string_view name,
                  Attrs attrs) {
  if (!options_.capture_events) return;
  Event event;
  event.phase = Event::Phase::kInstant;
  event.time = clock_();
  event.seq = next_seq_++;
  event.category = category;
  event.name = name;
  event.attrs = std::move(attrs);
  events_.push_back(std::move(event));
}

uint64_t Tracer::BeginSpan(std::string_view category, std::string_view name,
                           Attrs attrs) {
  uint64_t span = next_span_++;
  if (!options_.capture_events) return span;
  Event event;
  event.phase = Event::Phase::kBegin;
  event.time = clock_();
  event.seq = next_seq_++;
  event.span = span;
  event.category = category;
  event.name = name;
  event.attrs = std::move(attrs);
  events_.push_back(std::move(event));
  return span;
}

void Tracer::EndSpan(uint64_t span, std::string_view category,
                     std::string_view name, Attrs attrs) {
  if (!options_.capture_events) return;
  Event event;
  event.phase = Event::Phase::kEnd;
  event.time = clock_();
  event.seq = next_seq_++;
  event.span = span;
  event.category = category;
  event.name = name;
  event.attrs = std::move(attrs);
  events_.push_back(std::move(event));
}

std::string Tracer::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) out += ",\n";
    first = false;
    const char* ph = event.phase == Event::Phase::kBegin  ? "b"
                     : event.phase == Event::Phase::kEnd ? "e"
                                                         : "i";
    out += StrCat("{\"name\":", JsonString(event.name).c_str(),
                  ",\"cat\":", JsonString(event.category).c_str(),
                  ",\"ph\":\"", ph, "\",\"ts\":",
                  JsonNumber(event.time * 1e6).c_str(),
                  ",\"pid\":1,\"tid\":1");
    if (event.span != 0) out += StrCat(",\"id\":", event.span);
    if (event.phase == Event::Phase::kInstant) out += ",\"s\":\"g\"";
    out += ",\"args\":{\"seq\":" + StrCat(event.seq);
    for (const Attr& attr : event.attrs) {
      out += "," + JsonString(attr.key) + ":" + attr.value.ToJson();
    }
    out += "}}";
  }
  out += "],\"metrics\":" + metrics_.ToJson() + "}";
  return out;
}

Tracer* CurrentTracer() { return g_current_tracer; }

ScopedTracer::ScopedTracer(Tracer* tracer) : previous_(g_current_tracer) {
  g_current_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_current_tracer = previous_; }

}  // namespace fabric::obs
