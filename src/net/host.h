#ifndef FABRIC_NET_HOST_H_
#define FABRIC_NET_HOST_H_

#include <string>

#include "net/network.h"

namespace fabric::net {

// Convenience bundle of the links belonging to one machine. Mirrors the
// paper's hardware: every machine has a client-facing 1GbE interface; the
// Vertica machines additionally have a second interface dedicated to
// intra-cluster traffic (Section 4.1), and CPU capacity is modeled as one
// more shared "link" whose bytes are microseconds of work.
struct Host {
  std::string name;
  LinkId ext_egress = -1;
  LinkId ext_ingress = -1;
  LinkId int_egress = -1;   // -1 when the host has no internal fabric NIC
  LinkId int_ingress = -1;
  LinkId cpu = -1;          // -1 when CPU is not modeled for this host
  LinkId disk = -1;         // shared data-disk bandwidth (-1: unmodeled)

  bool has_internal_nic() const { return int_egress >= 0; }
  bool has_cpu() const { return cpu >= 0; }
  bool has_disk() const { return disk >= 0; }
};

// Microseconds of CPU work per second delivered by one core.
inline constexpr double kCpuUnitsPerCore = 1e6;

// A single operation can use at most one core (sequential code).
inline constexpr double kSingleCoreRate = kCpuUnitsPerCore;

// Creates the links for one machine. `internal_bandwidth` <= 0 skips the
// internal NIC; `cores` <= 0 skips the CPU link.
Host AddHost(Network* network, const std::string& name,
             double external_bandwidth, double internal_bandwidth,
             int cores, double disk_bandwidth = 0);

// Blocks `self` for `cpu_seconds` of work on the host's shared CPU,
// competing fairly with other work on that host, at most one core's worth
// of speed (the work is sequential).
Status RunCpu(sim::Process& self, Network* network, const Host& host,
              double cpu_seconds);

}  // namespace fabric::net

#endif  // FABRIC_NET_HOST_H_
