#ifndef FABRIC_NET_NETWORK_H_
#define FABRIC_NET_NETWORK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::net {

// Identifies a link within a Network.
using LinkId = int;

inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

// Fluid-flow network model. Links are unidirectional capacity-constrained
// resources (typically one egress and one ingress link per NIC); a flow
// traverses an ordered list of links and receives a max-min fair share of
// every link it crosses, additionally bounded by an optional per-flow rate
// cap (used to model per-connection processing limits, e.g. a JDBC result
// stream bounded by per-row CPU cost rather than the wire).
//
// All methods must be called from simulation context (a running process or
// an engine callback); the engine guarantees single-runnability.
class Network {
 public:
  explicit Network(sim::Engine* engine) : engine_(engine) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Adds a link with `capacity` in bytes/second. Returns its id.
  LinkId AddLink(std::string name, double capacity);

  int num_links() const { return static_cast<int>(links_.size()); }
  const std::string& link_name(LinkId id) const { return links_[id].name; }
  double link_capacity(LinkId id) const { return links_[id].capacity; }

  // Total bytes that have crossed the link so far (telemetry).
  double LinkBytesCarried(LinkId id);

  // Instantaneous aggregate rate on the link, bytes/second (telemetry for
  // the Table 2 resource plots).
  double LinkCurrentRate(LinkId id) const;

  // Number of flows currently crossing the link.
  int LinkActiveFlows(LinkId id) const;

  // Moves `bytes` across `path`, blocking `self` in virtual time until the
  // transfer completes under fair-share dynamics. Returns CANCELLED if the
  // process is killed mid-transfer (the flow is torn down; bytes already
  // "on the wire" stay accounted to link telemetry, mirroring a dropped
  // TCP connection).
  Status Transfer(sim::Process& self, const std::vector<LinkId>& path,
                  double bytes, double rate_cap = kUnlimitedRate);

  // Recomputed on every flow arrival/departure; exposed for tests.
  int num_active_flows() const { return static_cast<int>(flows_.size()); }

  // Debug: one line per active flow (rate, remaining, path).
  std::string DebugDumpFlows() const;

  // Telemetry-only credit to a link's byte counter (work that is already
  // paced by something else — e.g. result-stream serialization CPU, whose
  // pace is the per-connection rate cap — but should still show up in
  // utilization sampling).
  void CreditLink(LinkId id, double bytes);

 private:
  struct Flow {
    std::vector<LinkId> path;
    double total = 0;  // original size (for relative completion slack)
    double remaining = 0;
    double cap = kUnlimitedRate;
    double rate = 0;
    bool done = false;
    std::unique_ptr<sim::Condition> cond;
  };

  // Remaining bytes below this count as delivered. Relative to the flow
  // size: accumulated floating-point error on a multi-GB flow can leave
  // microscopic residues whose completion horizon underflows the time
  // resolution at large timestamps.
  static double CompletionSlack(const Flow& flow) {
    return std::max(1e-6, flow.total * 1e-9);
  }

  struct Link {
    std::string name;
    double capacity = 0;
    double bytes_carried = 0;
  };

  // Credits elapsed-time progress to all flows and link telemetry.
  void Advance();

  // Runs max-min water-filling over active flows, then (re)schedules the
  // next completion callback.
  void Recompute();

  // Timer fired at a predicted completion instant.
  void OnTimer(uint64_t generation);

  sim::Engine* engine_;
  std::vector<Link> links_;
  std::list<Flow> flows_;
  double last_update_ = 0;
  uint64_t timer_generation_ = 0;
};

}  // namespace fabric::net

#endif  // FABRIC_NET_NETWORK_H_
