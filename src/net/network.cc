#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace fabric::net {

LinkId Network::AddLink(std::string name, double capacity) {
  FABRIC_CHECK(capacity > 0) << "link capacity must be positive";
  links_.push_back(Link{std::move(name), capacity, 0});
  return static_cast<LinkId>(links_.size() - 1);
}

double Network::LinkBytesCarried(LinkId id) {
  Advance();
  return links_[id].bytes_carried;
}

double Network::LinkCurrentRate(LinkId id) const {
  double rate = 0;
  for (const Flow& flow : flows_) {
    for (LinkId link : flow.path) {
      if (link == id) {
        rate += flow.rate;
        break;
      }
    }
  }
  return rate;
}

int Network::LinkActiveFlows(LinkId id) const {
  int count = 0;
  for (const Flow& flow : flows_) {
    for (LinkId link : flow.path) {
      if (link == id) {
        ++count;
        break;
      }
    }
  }
  return count;
}

Status Network::Transfer(sim::Process& self, const std::vector<LinkId>& path,
                         double bytes, double rate_cap) {
  FABRIC_RETURN_IF_ERROR(self.CheckAlive());
  if (bytes <= 0) return Status::OK();
  FABRIC_CHECK(rate_cap > 0) << "rate cap must be positive";
  for (LinkId id : path) {
    FABRIC_CHECK(id >= 0 && id < num_links()) << "bad link id " << id;
  }

  flows_.emplace_back();
  auto it = std::prev(flows_.end());
  it->path = path;
  it->total = bytes;
  it->remaining = bytes;
  it->cap = rate_cap;
  it->cond = std::make_unique<sim::Condition>(engine_);
  uint64_t span = 0;
  if (obs::CurrentTracer() != nullptr) {
    std::string links;
    for (LinkId id : path) {
      if (!links.empty()) links += ",";
      links += links_[id].name;
    }
    span = obs::TraceBegin("net", "flow",
                           {{"links", links}, {"bytes", bytes}});
    obs::IncrCounter("net.flows_opened");
    obs::IncrCounter("net.bytes_requested", bytes);
  }
  Recompute();

  Status status = it->cond->WaitUntil(self, [&] { return it->done; });
  if (!status.ok()) {
    // Killed mid-transfer: tear the flow down and re-rate the rest.
    obs::TraceEnd(span, "net", "flow",
                  {{"ok", false}, {"remaining", it->remaining}});
    obs::IncrCounter("net.flows_cancelled");
    if (!it->done) {
      flows_.erase(it);
      Recompute();
    } else {
      flows_.erase(it);
    }
    return status;
  }
  obs::TraceEnd(span, "net", "flow", {{"ok", true}});
  flows_.erase(it);
  return Status::OK();
}

std::string Network::DebugDumpFlows() const {
  std::string out;
  for (const Flow& flow : flows_) {
    out += StrCat("flow rate=", flow.rate, " remaining=", flow.remaining,
                  " cap=", flow.cap, " done=", flow.done, " path=");
    for (LinkId id : flow.path) out += StrCat(links_[id].name, " ");
    out += "\n";
  }
  return out;
}

void Network::CreditLink(LinkId id, double bytes) {
  Advance();
  links_[id].bytes_carried += bytes;
}

void Network::Advance() {
  double now = engine_->now();
  double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (Flow& flow : flows_) {
    if (flow.done || flow.rate <= 0) continue;
    double moved = std::min(flow.remaining, flow.rate * dt);
    flow.remaining -= moved;
    for (LinkId id : flow.path) links_[id].bytes_carried += moved;
  }
}

void Network::Recompute() {
  Advance();
  // Every arrival/departure re-rates the whole fleet of flows; the count
  // (not per-flow spam) is the useful observability signal.
  obs::IncrCounter("net.recomputes");

  // Max-min fair allocation with per-flow caps (progressive filling).
  std::vector<double> avail(links_.size());
  std::vector<int> active(links_.size(), 0);
  for (size_t i = 0; i < links_.size(); ++i) avail[i] = links_[i].capacity;

  std::vector<Flow*> unfrozen;
  for (Flow& flow : flows_) {
    if (flow.done) continue;
    flow.rate = 0;
    unfrozen.push_back(&flow);
    for (LinkId id : flow.path) ++active[id];
  }

  while (!unfrozen.empty()) {
    // The binding rate this round: the smallest of (a) any link's equal
    // share among its unfrozen flows, (b) any unfrozen flow's cap.
    double round_rate = kUnlimitedRate;
    for (size_t i = 0; i < links_.size(); ++i) {
      if (active[i] > 0) {
        round_rate = std::min(round_rate, avail[i] / active[i]);
      }
    }
    for (Flow* flow : unfrozen) {
      round_rate = std::min(round_rate, flow->cap);
    }
    FABRIC_CHECK(round_rate > 0 && round_rate < kUnlimitedRate);

    // Freeze every flow bound at round_rate: capped flows whose cap equals
    // the round rate, plus all flows crossing a link saturated at it.
    std::vector<bool> link_bottleneck(links_.size(), false);
    for (size_t i = 0; i < links_.size(); ++i) {
      if (active[i] > 0 && avail[i] / active[i] <= round_rate * (1 + 1e-12)) {
        link_bottleneck[i] = true;
      }
    }
    std::vector<Flow*> still_unfrozen;
    bool froze_any = false;
    for (Flow* flow : unfrozen) {
      bool bound = flow->cap <= round_rate * (1 + 1e-12);
      if (!bound) {
        for (LinkId id : flow->path) {
          if (link_bottleneck[id]) {
            bound = true;
            break;
          }
        }
      }
      if (bound) {
        flow->rate = round_rate;
        froze_any = true;
        for (LinkId id : flow->path) {
          avail[id] -= round_rate;
          if (avail[id] < 0) avail[id] = 0;
          --active[id];
        }
      } else {
        still_unfrozen.push_back(flow);
      }
    }
    FABRIC_CHECK(froze_any) << "water-filling failed to make progress";
    unfrozen.swap(still_unfrozen);
  }

  // Schedule the next completion. The horizon is floored at the engine's
  // effective time resolution so completions never stall on increments
  // that round to zero at large timestamps.
  double horizon = kUnlimitedRate;
  double time_floor = std::max(1e-9, engine_->now() * 1e-12);
  for (Flow& flow : flows_) {
    if (flow.done) continue;
    if (flow.remaining <= CompletionSlack(flow)) {
      horizon = 0;
      break;
    }
    if (flow.rate > 0) {
      horizon = std::min(horizon,
                         std::max(flow.remaining / flow.rate, time_floor));
    }
  }
  ++timer_generation_;
  if (horizon < kUnlimitedRate) {
    uint64_t generation = timer_generation_;
    engine_->ScheduleAt(engine_->now() + horizon,
                        [this, generation] { OnTimer(generation); });
  }
}

void Network::OnTimer(uint64_t generation) {
  if (generation != timer_generation_) return;  // superseded by a re-rate
  Advance();
  double time_floor = std::max(1e-9, engine_->now() * 1e-12);
  bool completed_any = false;
  for (Flow& flow : flows_) {
    if (flow.done) continue;
    // Complete on byte slack, or when the residual transfer time is below
    // the time resolution (so it could never elapse).
    bool finished = flow.remaining <= CompletionSlack(flow) ||
                    (flow.rate > 0 &&
                     flow.remaining / flow.rate < time_floor);
    if (finished) {
      flow.done = true;
      flow.rate = 0;
      flow.remaining = 0;
      completed_any = true;
      flow.cond->NotifyAll();
    }
  }
  // Always re-rate and re-arm: even without completions the timer must
  // make forward progress rather than silently dropping the flow.
  if (completed_any || num_active_flows() > 0) {
    Recompute();
  }
}

}  // namespace fabric::net
