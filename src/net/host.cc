#include "net/host.h"

#include "common/string_util.h"

namespace fabric::net {

Host AddHost(Network* network, const std::string& name,
             double external_bandwidth, double internal_bandwidth,
             int cores, double disk_bandwidth) {
  Host host;
  host.name = name;
  host.ext_egress = network->AddLink(StrCat(name, ":ext_out"),
                                     external_bandwidth);
  host.ext_ingress = network->AddLink(StrCat(name, ":ext_in"),
                                      external_bandwidth);
  if (internal_bandwidth > 0) {
    host.int_egress =
        network->AddLink(StrCat(name, ":int_out"), internal_bandwidth);
    host.int_ingress =
        network->AddLink(StrCat(name, ":int_in"), internal_bandwidth);
  }
  if (cores > 0) {
    host.cpu = network->AddLink(StrCat(name, ":cpu"),
                                cores * kCpuUnitsPerCore);
  }
  if (disk_bandwidth > 0) {
    host.disk = network->AddLink(StrCat(name, ":disk"), disk_bandwidth);
  }
  return host;
}

Status RunCpu(sim::Process& self, Network* network, const Host& host,
              double cpu_seconds) {
  if (cpu_seconds <= 0) return self.CheckAlive();
  if (!host.has_cpu()) return self.Sleep(cpu_seconds);
  return network->Transfer(self, {host.cpu}, cpu_seconds * kCpuUnitsPerCore,
                           kSingleCoreRate);
}

}  // namespace fabric::net
