#include "pmml/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace fabric::pmml {

const XmlElement* XmlElement::Child(std::string_view tag) const {
  for (const auto& child : children) {
    if (child->name == tag) return child.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(
    std::string_view tag) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children) {
    if (child->name == tag) out.push_back(child.get());
  }
  return out;
}

std::string XmlElement::Attr(std::string_view key) const {
  auto it = attributes.find(std::string(key));
  return it == attributes.end() ? "" : it->second;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string XmlUnescape(std::string_view text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    auto try_entity = [&](std::string_view entity, char replacement) {
      if (text.substr(i, entity.size()) == entity) {
        out.push_back(replacement);
        i += entity.size();
        return true;
      }
      return false;
    };
    if (try_entity("&lt;", '<') || try_entity("&gt;", '>') ||
        try_entity("&amp;", '&') || try_entity("&quot;", '"') ||
        try_entity("&apos;", '\'')) {
      continue;
    }
    out.push_back(text[i++]);
  }
  return out;
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XmlElement>> Parse() {
    SkipProlog();
    FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root,
                            ParseElement());
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("XML: trailing content after root");
    }
    return std::move(root);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void SkipProlog() {
    SkipSpace();
    while (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
           (text_[pos_ + 1] == '?' || text_[pos_ + 1] == '!')) {
      size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) return;
      pos_ = end + 1;
      SkipSpace();
    }
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return InvalidArgumentError("XML: expected '<'");
    }
    ++pos_;
    auto element = std::make_unique<XmlElement>();
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '>' && text_[pos_] != '/') {
      element->name.push_back(text_[pos_++]);
    }
    if (element->name.empty()) {
      return InvalidArgumentError("XML: empty tag name");
    }
    // Attributes.
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("XML: unterminated tag");
      }
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
          return InvalidArgumentError("XML: bad self-close");
        }
        pos_ += 2;
        return std::move(element);
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      std::string key;
      while (pos_ < text_.size() && text_[pos_] != '=' &&
             !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        key.push_back(text_[pos_++]);
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return InvalidArgumentError(StrCat("XML: attribute '", key,
                                           "' missing '='"));
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return InvalidArgumentError("XML: attribute value not quoted");
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("XML: unterminated attribute value");
      }
      element->attributes[key] =
          XmlUnescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content: children and text until the closing tag.
    while (true) {
      size_t text_start = pos_;
      size_t lt = text_.find('<', pos_);
      if (lt == std::string_view::npos) {
        return InvalidArgumentError(
            StrCat("XML: missing </", element->name, ">"));
      }
      std::string chunk(Trim(text_.substr(text_start, lt - text_start)));
      if (!chunk.empty()) element->text += XmlUnescape(chunk);
      pos_ = lt;
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) {
          return InvalidArgumentError("XML: unterminated close tag");
        }
        std::string closing(
            Trim(text_.substr(pos_ + 2, end - pos_ - 2)));
        if (closing != element->name) {
          return InvalidArgumentError(StrCat("XML: expected </",
                                             element->name, ">, got </",
                                             closing, ">"));
        }
        pos_ = end + 1;
        return std::move(element);
      }
      FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                              ParseElement());
      element->children.push_back(std::move(child));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlElement::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = StrCat(pad, "<", name);
  for (const auto& [key, value] : attributes) {
    out += StrCat(" ", key, "=\"", XmlEscape(value), "\"");
  }
  if (children.empty() && text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text.empty()) out += XmlEscape(text);
  if (!children.empty()) {
    out += "\n";
    for (const auto& child : children) {
      out += child->ToString(indent + 1);
    }
    out += pad;
  }
  out += StrCat("</", name, ">\n");
  return out;
}

Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text) {
  XmlParser parser(text);
  return parser.Parse();
}

}  // namespace fabric::pmml
