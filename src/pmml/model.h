#ifndef FABRIC_PMML_MODEL_H_
#define FABRIC_PMML_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace fabric::pmml {

// A PMML 4.1-subset model document (Section 3.3): linear regression,
// logistic regression (RegressionModel) and k-means (ClusteringModel) —
// the generic numeric-vector-in, number-out family the paper's model
// evaluator covers.
struct PmmlModel {
  enum class Kind { kLinearRegression, kLogisticRegression, kKMeans };

  Kind kind = Kind::kLinearRegression;
  std::string name;
  std::vector<std::string> feature_names;

  // Regression family.
  std::vector<double> coefficients;
  double intercept = 0;

  // Clustering family.
  std::vector<std::vector<double>> centers;

  // Generic evaluator: numeric feature vector in, number out —
  // regression value, class-1 probability, or nearest-cluster index.
  Result<double> Evaluate(const std::vector<double>& features) const;

  // Serializes to a PMML document (Header, DataDictionary, model).
  std::string ToXml() const;

  // Parses a document produced by ToXml (or equivalent external PMML).
  static Result<PmmlModel> FromXml(std::string_view xml);
};

const char* PmmlKindName(PmmlModel::Kind kind);

}  // namespace fabric::pmml

#endif  // FABRIC_PMML_MODEL_H_
