#include "pmml/model.h"

#include <cmath>
#include <limits>

#include <cstdio>

#include "common/string_util.h"
#include "pmml/xml.h"

namespace fabric::pmml {
namespace {

// Full-precision rendering: model coefficients must survive the XML
// round trip bit-exactly (in-database scores are checked for parity with
// in-Spark predictions).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* PmmlKindName(PmmlModel::Kind kind) {
  switch (kind) {
    case PmmlModel::Kind::kLinearRegression:
      return "linear_regression";
    case PmmlModel::Kind::kLogisticRegression:
      return "logistic_regression";
    case PmmlModel::Kind::kKMeans:
      return "kmeans";
  }
  return "?";
}

Result<double> PmmlModel::Evaluate(
    const std::vector<double>& features) const {
  if (features.size() != feature_names.size()) {
    return InvalidArgumentError(
        StrCat("model '", name, "' expects ", feature_names.size(),
               " features, got ", features.size()));
  }
  switch (kind) {
    case Kind::kLinearRegression:
    case Kind::kLogisticRegression: {
      double z = intercept;
      for (size_t i = 0; i < features.size(); ++i) {
        z += coefficients[i] * features[i];
      }
      if (kind == Kind::kLinearRegression) return z;
      return 1.0 / (1.0 + std::exp(-z));
    }
    case Kind::kKMeans: {
      int best = -1;
      double best_distance = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centers.size(); ++c) {
        double distance = 0;
        for (size_t i = 0; i < features.size(); ++i) {
          double d = features[i] - centers[c][i];
          distance += d * d;
        }
        if (distance < best_distance) {
          best_distance = distance;
          best = static_cast<int>(c);
        }
      }
      return static_cast<double>(best);
    }
  }
  return InternalError("corrupt model");
}

std::string PmmlModel::ToXml() const {
  XmlElement root;
  root.name = "PMML";
  root.attributes["version"] = "4.1";
  root.attributes["xmlns"] = "http://www.dmg.org/PMML-4_1";

  auto header = std::make_unique<XmlElement>();
  header->name = "Header";
  header->attributes["description"] = PmmlKindName(kind);
  auto application = std::make_unique<XmlElement>();
  application->name = "Application";
  application->attributes["name"] = "fabric-mllib";
  header->children.push_back(std::move(application));
  root.children.push_back(std::move(header));

  auto dictionary = std::make_unique<XmlElement>();
  dictionary->name = "DataDictionary";
  dictionary->attributes["numberOfFields"] =
      StrCat(feature_names.size());
  for (const std::string& feature : feature_names) {
    auto field = std::make_unique<XmlElement>();
    field->name = "DataField";
    field->attributes["name"] = feature;
    field->attributes["optype"] = "continuous";
    field->attributes["dataType"] = "double";
    dictionary->children.push_back(std::move(field));
  }
  root.children.push_back(std::move(dictionary));

  if (kind == Kind::kKMeans) {
    auto model = std::make_unique<XmlElement>();
    model->name = "ClusteringModel";
    model->attributes["modelName"] = name;
    model->attributes["functionName"] = "clustering";
    model->attributes["numberOfClusters"] = StrCat(centers.size());
    for (const auto& center : centers) {
      auto cluster = std::make_unique<XmlElement>();
      cluster->name = "Cluster";
      auto array = std::make_unique<XmlElement>();
      array->name = "Array";
      array->attributes["type"] = "real";
      array->attributes["n"] = StrCat(center.size());
      std::vector<std::string> parts;
      for (double v : center) parts.push_back(FormatDouble(v));
      array->text = Join(parts, " ");
      cluster->children.push_back(std::move(array));
      model->children.push_back(std::move(cluster));
    }
    root.children.push_back(std::move(model));
  } else {
    auto model = std::make_unique<XmlElement>();
    model->name = "RegressionModel";
    model->attributes["modelName"] = name;
    model->attributes["functionName"] =
        kind == Kind::kLinearRegression ? "regression" : "classification";
    if (kind == Kind::kLogisticRegression) {
      model->attributes["normalizationMethod"] = "logit";
    }
    auto table = std::make_unique<XmlElement>();
    table->name = "RegressionTable";
    table->attributes["intercept"] = FormatDouble(intercept);
    for (size_t i = 0; i < feature_names.size(); ++i) {
      auto predictor = std::make_unique<XmlElement>();
      predictor->name = "NumericPredictor";
      predictor->attributes["name"] = feature_names[i];
      predictor->attributes["coefficient"] = FormatDouble(coefficients[i]);
      table->children.push_back(std::move(predictor));
    }
    model->children.push_back(std::move(table));
    root.children.push_back(std::move(model));
  }
  return StrCat("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n",
                root.ToString());
}

Result<PmmlModel> PmmlModel::FromXml(std::string_view xml) {
  FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseXml(xml));
  if (root->name != "PMML") {
    return InvalidArgumentError("not a PMML document");
  }
  PmmlModel model;
  const XmlElement* dictionary = root->Child("DataDictionary");
  if (dictionary != nullptr) {
    for (const XmlElement* field : dictionary->Children("DataField")) {
      model.feature_names.push_back(field->Attr("name"));
    }
  }
  if (const XmlElement* regression = root->Child("RegressionModel")) {
    model.name = regression->Attr("modelName");
    model.kind = regression->Attr("normalizationMethod") == "logit"
                     ? Kind::kLogisticRegression
                     : Kind::kLinearRegression;
    const XmlElement* table = regression->Child("RegressionTable");
    if (table == nullptr) {
      return InvalidArgumentError("PMML: missing RegressionTable");
    }
    double intercept = 0;
    if (!ParseDouble(table->Attr("intercept"), &intercept)) {
      return InvalidArgumentError("PMML: bad intercept");
    }
    model.intercept = intercept;
    for (const XmlElement* predictor :
         table->Children("NumericPredictor")) {
      double coefficient = 0;
      if (!ParseDouble(predictor->Attr("coefficient"), &coefficient)) {
        return InvalidArgumentError("PMML: bad coefficient");
      }
      model.coefficients.push_back(coefficient);
    }
    if (model.coefficients.size() != model.feature_names.size()) {
      return InvalidArgumentError(
          "PMML: coefficient / feature count mismatch");
    }
    return model;
  }
  if (const XmlElement* clustering = root->Child("ClusteringModel")) {
    model.name = clustering->Attr("modelName");
    model.kind = Kind::kKMeans;
    for (const XmlElement* cluster : clustering->Children("Cluster")) {
      const XmlElement* array = cluster->Child("Array");
      if (array == nullptr) {
        return InvalidArgumentError("PMML: Cluster missing Array");
      }
      std::vector<double> center;
      for (const std::string& piece : Split(array->text, ' ')) {
        if (piece.empty()) continue;
        double v = 0;
        if (!ParseDouble(piece, &v)) {
          return InvalidArgumentError("PMML: bad cluster coordinate");
        }
        center.push_back(v);
      }
      if (center.size() != model.feature_names.size()) {
        return InvalidArgumentError("PMML: center dimension mismatch");
      }
      model.centers.push_back(std::move(center));
    }
    return model;
  }
  return InvalidArgumentError("PMML: no supported model element");
}

}  // namespace fabric::pmml
