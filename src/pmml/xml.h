#ifndef FABRIC_PMML_XML_H_
#define FABRIC_PMML_XML_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fabric::pmml {

// Minimal XML DOM for PMML documents: elements with attributes, children
// and text. Good enough for machine-generated PMML (no CDATA, comments
// are skipped, entities limited to the five standard ones).
struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;

  // First child with the given tag, or nullptr.
  const XmlElement* Child(std::string_view tag) const;
  // All children with the given tag.
  std::vector<const XmlElement*> Children(std::string_view tag) const;
  // Attribute value or empty string.
  std::string Attr(std::string_view key) const;

  // Serializes with 2-space indentation and escaped text/attributes.
  std::string ToString(int indent = 0) const;
};

// Parses a single-rooted XML document.
Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text);

std::string XmlEscape(std::string_view text);

}  // namespace fabric::pmml

#endif  // FABRIC_PMML_XML_H_
