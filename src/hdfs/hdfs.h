#ifndef FABRIC_HDFS_HDFS_H_
#define FABRIC_HDFS_HDFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/result.h"
#include "net/host.h"
#include "net/network.h"
#include "spark/dataframe.h"
#include "spark/datasource.h"
#include "storage/schema.h"

namespace fabric::hdfs {

// Simulated HDFS cluster: a set of datanodes storing fixed-size blocks
// with replication (defaults: 64 MB blocks, 3x, Section 4.1). Used as the
// experiments' data origin and as the read/write baseline of Section
// 4.7.2. There is no consistency machinery — files are immutable once
// written, exactly the property the paper contrasts with a database.
class HdfsCluster {
 public:
  struct Options {
    int num_datanodes = 4;
    CostModel cost;
  };

  struct Block {
    int64_t rows = 0;
    double raw_bytes = 0;           // unscaled (real) bytes
    std::vector<int> replicas;      // datanode indices
    std::vector<storage::Row> data; // actual rows (first replica's copy)
  };

  struct File {
    storage::Schema schema;
    std::vector<Block> blocks;
  };

  HdfsCluster(sim::Engine* engine, net::Network* network, Options options);

  int num_datanodes() const { return options_.num_datanodes; }
  const net::Host& datanode_host(int i) const { return hosts_[i]; }
  const CostModel& cost() const { return options_.cost; }
  net::Network* network() const { return network_; }

  // Instantly materializes a file (test/bench fixture setup; no cost).
  // Blocks are cut so that scaled bytes per block ~= hdfs_block_bytes.
  Status PutFileForTest(const std::string& path, storage::Schema schema,
                        std::vector<storage::Row> rows);

  Result<const File*> GetFile(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  // Streams one block to `reader_host`, charging namenode lookup, the
  // datanode's egress and decode CPU on the reading side is the caller's
  // business. Returns the block's rows.
  Result<std::vector<storage::Row>> ReadBlock(sim::Process& self,
                                              const std::string& path,
                                              int block,
                                              const net::Host& reader_host);

  // Writes rows as a new block of `path` from `writer_host`, charging the
  // replication pipeline (writer -> dn1 -> dn2 -> ...). Creates the file
  // on first write. Concurrent per-task writes append distinct blocks
  // (like one file per task in a directory).
  Status WriteBlock(sim::Process& self, const std::string& path,
                    const storage::Schema& schema,
                    const std::vector<storage::Row>& rows,
                    const net::Host& writer_host);

 private:
  sim::Engine* engine_;
  net::Network* network_;
  Options options_;
  std::vector<net::Host> hosts_;
  std::map<std::string, File> files_;
  int next_replica_ = 0;  // round-robin placement cursor
};

// "parquet"-style Spark-native data source over an HdfsCluster: reads get
// one partition per block; writes emit one file per task. Options:
// "path".
class HdfsParquetSource : public spark::DataSourceProvider {
 public:
  HdfsParquetSource(HdfsCluster* hdfs, spark::SparkCluster* cluster)
      : hdfs_(hdfs), cluster_(cluster) {}

  Result<std::shared_ptr<spark::ScanRelation>> CreateScan(
      sim::Process& driver, const spark::SourceOptions& options) override;

  Result<std::shared_ptr<spark::WriteRelation>> CreateWrite(
      sim::Process& driver, const spark::SourceOptions& options,
      spark::SaveMode mode, const storage::Schema& schema) override;

 private:
  HdfsCluster* hdfs_;
  spark::SparkCluster* cluster_;
};

void RegisterHdfsSource(spark::SparkSession* session, HdfsCluster* hdfs);

}  // namespace fabric::hdfs

#endif  // FABRIC_HDFS_HDFS_H_
