#include "hdfs/hdfs.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/profile.h"

namespace fabric::hdfs {

using spark::PushDown;
using spark::TaskContext;
using storage::DataProfile;
using storage::Row;
using storage::Schema;

HdfsCluster::HdfsCluster(sim::Engine* engine, net::Network* network,
                         Options options)
    : engine_(engine), network_(network), options_(std::move(options)) {
  for (int i = 0; i < options_.num_datanodes; ++i) {
    hosts_.push_back(net::AddHost(network_, StrCat("hdfs-dn", i),
                                  options_.cost.nic_bandwidth, 0,
                                  options_.cost.vertica_cores));
  }
}

Status HdfsCluster::PutFileForTest(const std::string& path, Schema schema,
                                   std::vector<Row> rows) {
  if (files_.count(path) > 0) {
    return AlreadyExistsError(StrCat("HDFS file '", path, "' exists"));
  }
  File file;
  file.schema = std::move(schema);
  Block block;
  double scaled = 0;
  auto flush = [&] {
    if (block.rows == 0) return;
    for (int r = 0; r < options_.cost.hdfs_replication; ++r) {
      block.replicas.push_back((next_replica_ + r) % num_datanodes());
    }
    next_replica_ = (next_replica_ + 1) % num_datanodes();
    file.blocks.push_back(std::move(block));
    block = Block{};
    scaled = 0;
  };
  for (Row& row : rows) {
    double bytes = storage::RowRawSize(row);
    block.raw_bytes += bytes;
    scaled += bytes * options_.cost.data_scale;
    ++block.rows;
    block.data.push_back(std::move(row));
    if (scaled >= options_.cost.hdfs_block_bytes) flush();
  }
  flush();
  if (file.blocks.empty()) {
    // Empty file still has one (empty) block so scans see a partition.
    Block empty;
    empty.replicas.push_back(next_replica_);
    file.blocks.push_back(std::move(empty));
  }
  files_.emplace(path, std::move(file));
  return Status::OK();
}

Result<const HdfsCluster::File*> HdfsCluster::GetFile(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError(StrCat("no HDFS file '", path, "'"));
  }
  return &it->second;
}

bool HdfsCluster::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status HdfsCluster::Delete(const std::string& path) {
  if (files_.erase(path) == 0) {
    return NotFoundError(StrCat("no HDFS file '", path, "'"));
  }
  return Status::OK();
}

Result<std::vector<Row>> HdfsCluster::ReadBlock(
    sim::Process& self, const std::string& path, int block,
    const net::Host& reader_host) {
  FABRIC_ASSIGN_OR_RETURN(const File* file, GetFile(path));
  if (block < 0 || block >= static_cast<int>(file->blocks.size())) {
    return OutOfRangeError(StrCat("block ", block, " of '", path, "'"));
  }
  const Block& b = file->blocks[block];
  // Namenode lookup, then stream from one replica (the first; block
  // locality across clusters is not modeled — the paper's HDFS baseline
  // also reads across racks since HDFS is not co-located with Spark in
  // the 4:8 vs 4:8 comparison of Section 4.7.2).
  FABRIC_RETURN_IF_ERROR(self.Sleep(options_.cost.hdfs_open_overhead));
  double scaled_bytes = b.raw_bytes * options_.cost.data_scale;
  if (scaled_bytes > 0) {
    int dn = b.replicas.front();
    // Disk read on the datanode overlaps the wire; the slower of the two
    // governs, modeled as a rate cap at disk bandwidth.
    FABRIC_RETURN_IF_ERROR(network_->Transfer(
        self, {hosts_[dn].ext_egress, reader_host.ext_ingress},
        scaled_bytes, options_.cost.disk_read_bandwidth));
  }
  return b.data;
}

Status HdfsCluster::WriteBlock(sim::Process& self, const std::string& path,
                               const Schema& schema,
                               const std::vector<Row>& rows,
                               const net::Host& writer_host) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    File file;
    file.schema = schema;
    it = files_.emplace(path, std::move(file)).first;
  }
  DataProfile profile = storage::ProfileRows(rows);
  double scaled_bytes = profile.raw_bytes * options_.cost.data_scale;
  FABRIC_RETURN_IF_ERROR(self.Sleep(options_.cost.hdfs_open_overhead));
  // Replication pipeline: writer -> dn1 -> dn2 -> dn3. The pipeline is
  // approximately as slow as its slowest hop; charge each hop in
  // sequence at disk-write cap (pessimistic by at most the pipeline
  // depth over large files, where hops overlap across packets).
  Block block;
  block.rows = static_cast<int64_t>(rows.size());
  block.raw_bytes = profile.raw_bytes;
  block.data = rows;
  for (int r = 0; r < options_.cost.hdfs_replication; ++r) {
    block.replicas.push_back((next_replica_ + r) % num_datanodes());
  }
  next_replica_ = (next_replica_ + 1) % num_datanodes();
  if (scaled_bytes > 0) {
    // The client write blocks on the first pipeline hop; replication to
    // the remaining replicas streams on in the background (HDFS acks at
    // dfs.replication.min=1), so only the first hop is on the critical
    // path.
    const net::Host& primary = hosts_[block.replicas.front()];
    FABRIC_RETURN_IF_ERROR(network_->Transfer(
        self, {writer_host.ext_egress, primary.ext_ingress}, scaled_bytes,
        options_.cost.disk_write_bandwidth));
  }
  it->second.blocks.push_back(std::move(block));
  return Status::OK();
}

// ------------------------------------------------------------- provider

namespace {

class HdfsScan : public spark::ScanRelation {
 public:
  HdfsScan(HdfsCluster* hdfs, spark::SparkCluster* cluster,
           std::string path, const HdfsCluster::File* file)
      : hdfs_(hdfs), cluster_(cluster), path_(std::move(path)),
        schema_(file->schema),
        num_blocks_(static_cast<int>(file->blocks.size())) {}

  const Schema& schema() const override { return schema_; }
  int num_partitions() const override { return num_blocks_; }

  Result<PartitionData> ReadPartition(TaskContext& task, int partition,
                                      const PushDown& push) override {
    FABRIC_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        hdfs_->ReadBlock(*task.process, path_, partition,
                         task.worker_host()));
    // Decode (parquet) on the worker.
    DataProfile profile = storage::ProfileRows(rows);
    profile.ScaleBy(cluster_->cost().data_scale);
    FABRIC_RETURN_IF_ERROR(task.Compute(
        profile.raw_bytes * cluster_->cost().parquet_decode_cpu_per_byte));
    // HDFS has no pushdown: filters/pruning run in Spark after the read.
    PartitionData data;
    std::vector<int> projection;
    if (!push.required_columns.empty()) {
      for (const std::string& name : push.required_columns) {
        FABRIC_ASSIGN_OR_RETURN(int idx, schema_.IndexOf(name));
        projection.push_back(idx);
      }
    }
    for (Row& row : rows) {
      bool keep = true;
      for (const spark::ColumnPredicate& filter : push.filters) {
        FABRIC_ASSIGN_OR_RETURN(keep, filter.Matches(schema_, row));
        if (!keep) break;
      }
      if (!keep) continue;
      if (push.count_only) {
        ++data.count;
        continue;
      }
      if (projection.empty()) {
        data.rows.push_back(std::move(row));
      } else {
        Row projected;
        for (int idx : projection) projected.push_back(row[idx]);
        data.rows.push_back(std::move(projected));
      }
    }
    if (!push.count_only) {
      data.count = static_cast<int64_t>(data.rows.size());
    }
    return data;
  }

 private:
  HdfsCluster* hdfs_;
  spark::SparkCluster* cluster_;
  std::string path_;
  Schema schema_;
  int num_blocks_;
};

class HdfsWrite : public spark::WriteRelation {
 public:
  HdfsWrite(HdfsCluster* hdfs, spark::SparkCluster* cluster,
            std::string path, Schema schema)
      : hdfs_(hdfs), cluster_(cluster), path_(std::move(path)),
        schema_(std::move(schema)) {}

  Status Setup(sim::Process&, int) override { return Status::OK(); }

  Status WriteTaskPartition(TaskContext& task, int partition,
                            const std::vector<Row>& rows) override {
    // Parquet-encode on the worker, then one file per task. Duplicate
    // attempts overwrite their own part-file (idempotent), like Spark's
    // task-output committer.
    DataProfile profile = storage::ProfileRows(rows);
    profile.ScaleBy(cluster_->cost().data_scale);
    FABRIC_RETURN_IF_ERROR(task.Compute(
        profile.raw_bytes * cluster_->cost().parquet_encode_cpu_per_byte));
    std::string part = StrCat(path_, "/part-", partition);
    if (hdfs_->Exists(part)) {
      FABRIC_RETURN_IF_ERROR(hdfs_->Delete(part));
    }
    return hdfs_->WriteBlock(*task.process, part, schema_, rows,
                             task.worker_host());
  }

  Status Finalize(sim::Process&, Status job_status) override {
    return job_status;
  }

 private:
  HdfsCluster* hdfs_;
  spark::SparkCluster* cluster_;
  std::string path_;
  Schema schema_;
};

}  // namespace

Result<std::shared_ptr<spark::ScanRelation>> HdfsParquetSource::CreateScan(
    sim::Process& driver, const spark::SourceOptions& options) {
  (void)driver;
  FABRIC_ASSIGN_OR_RETURN(std::string path, options.Get("path"));
  FABRIC_ASSIGN_OR_RETURN(const HdfsCluster::File* file,
                          hdfs_->GetFile(path));
  return std::shared_ptr<spark::ScanRelation>(
      std::make_shared<HdfsScan>(hdfs_, cluster_, path, file));
}

Result<std::shared_ptr<spark::WriteRelation>>
HdfsParquetSource::CreateWrite(sim::Process& driver,
                               const spark::SourceOptions& options,
                               spark::SaveMode mode,
                               const storage::Schema& schema) {
  (void)driver;
  FABRIC_ASSIGN_OR_RETURN(std::string path, options.Get("path"));
  if (mode == spark::SaveMode::kErrorIfExists &&
      hdfs_->Exists(StrCat(path, "/part-0"))) {
    return AlreadyExistsError(StrCat("HDFS path '", path, "' exists"));
  }
  return std::shared_ptr<spark::WriteRelation>(
      std::make_shared<HdfsWrite>(hdfs_, cluster_, path, schema));
}

void RegisterHdfsSource(spark::SparkSession* session, HdfsCluster* hdfs) {
  session->RegisterFormat(
      "parquet",
      std::make_shared<HdfsParquetSource>(hdfs, session->cluster()));
}

}  // namespace fabric::hdfs
