#ifndef FABRIC_SPARK_DATAFRAME_H_
#define FABRIC_SPARK_DATAFRAME_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hll.h"
#include "common/result.h"
#include "spark/cluster.h"
#include "spark/datasource.h"
#include "spark/shuffle/aggregate.h"
#include "spark/types.h"
#include "storage/schema.h"

namespace fabric::spark {

class SparkSession;
class DataFrameWriter;
class GroupedDataFrame;

// Immutable logical plan node (the RDD lineage). DataFrames are cheap
// handles onto shared plans; transformations build new plans, actions
// (Collect/Count/Save) run jobs through the cluster scheduler.
struct Plan {
  enum class Kind {
    kParallelize,      // in-memory partitions (driver-created data)
    kScan,             // external source (with accumulated pushdowns)
    kFilterPredicate,  // pushable column-vs-literal filter
    kFilterFn,         // opaque row predicate (not pushable)
    kMapFn,            // opaque row transform (not pushable)
    kSelect,           // column pruning (pushable)
    kUnion,
    kCoalesce,         // merge partitions without shuffle
    kExchange,         // shuffle boundary (hash repartitioning)
    kHashAggregate,    // merge+finalize of shuffled aggregate partials
    kHashJoin,         // equi-join of two co-partitioned exchanges
    kLimit,            // per-partition row cap (global cap at the driver)
  };

  Kind kind;
  storage::Schema schema;  // output schema of this node

  // kParallelize
  std::shared_ptr<std::vector<std::vector<storage::Row>>> data;
  // kScan
  std::shared_ptr<ScanRelation> relation;
  PushDown pushed;
  // transforms
  std::shared_ptr<const Plan> child;
  std::shared_ptr<const Plan> other;  // kUnion
  ColumnPredicate predicate;          // kFilterPredicate
  std::function<Result<bool>(const storage::Row&)> filter_fn;
  std::function<Result<storage::Row>(const storage::Row&)> map_fn;
  std::vector<int> select_indices;  // kSelect
  int target_partitions = 0;        // kCoalesce
  // kExchange: how rows are hash-partitioned across the shuffle (and
  // optionally combined map-side). Shared between plan rewrites so the
  // assigned shuffle id (hence the committed blocks) is reused across
  // actions on the same lineage.
  std::shared_ptr<shuffle::ExchangeSpec> exchange;
  // kHashAggregate: the reduce-side merge+finalize. Its child is always
  // the kExchange carrying this aggregation's partials.
  std::shared_ptr<const shuffle::AggPlan> agg;
  // kHashJoin: key positions in the left (child) / right (other) rows.
  std::vector<int> join_left_keys;
  std::vector<int> join_right_keys;
  int64_t limit = -1;  // kLimit

  int NumPartitions() const;
  // Computes one partition inside a task (lineage recomputation: safe to
  // call repeatedly for the same index — that is what retries and
  // speculative duplicates do).
  Result<std::vector<storage::Row>> Compute(TaskContext& task,
                                            int partition) const;
};

// One aggregate a GroupBy().Agg() asks for; build with the AggCount /
// AggSum / AggAvg / AggMin / AggMax / AggApproxCountDistinct /
// AggHllSketch helpers below.
struct AggregateRequest {
  AggregateFn fn = AggregateFn::kCount;
  std::string column;  // empty: COUNT(*)
  // HLL precision for the sketch aggregates (hll::ValidPrecision).
  int precision = 0;
};

inline AggregateRequest AggCount() { return {AggregateFn::kCount, ""}; }
inline AggregateRequest AggCount(std::string column) {
  return {AggregateFn::kCount, std::move(column)};
}
inline AggregateRequest AggSum(std::string column) {
  return {AggregateFn::kSum, std::move(column)};
}
inline AggregateRequest AggAvg(std::string column) {
  return {AggregateFn::kAvg, std::move(column)};
}
inline AggregateRequest AggMin(std::string column) {
  return {AggregateFn::kMin, std::move(column)};
}
inline AggregateRequest AggMax(std::string column) {
  return {AggregateFn::kMax, std::move(column)};
}
// HyperLogLog distinct-count estimate (common/hll.h). Map-side combine
// merges partial sketches, so only registers cross the shuffle — and an
// eligible V2S scan evaluates the whole call inside Vertica with an
// estimate byte-identical to the shuffled path.
inline AggregateRequest AggApproxCountDistinct(
    std::string column, int precision = hll::kDefaultPrecision) {
  return {AggregateFn::kApproxCountDistinct, std::move(column), precision};
}
// Same state, finalized to the versioned serialized sketch (VARCHAR) so
// it can be stored via S2V and merged later with HLL_UNION_AGG.
inline AggregateRequest AggHllSketch(
    std::string column, int precision = hll::kDefaultPrecision) {
  return {AggregateFn::kHllSketch, std::move(column), precision};
}

// Spark DataFrame: schema'd, immutable, lazily evaluated.
class DataFrame {
 public:
  DataFrame() = default;
  DataFrame(SparkSession* session, std::shared_ptr<const Plan> plan)
      : session_(session), plan_(std::move(plan)) {}

  const storage::Schema& schema() const { return plan_->schema; }
  int NumPartitions() const { return plan_->NumPartitions(); }
  SparkSession* session() const { return session_; }
  const std::shared_ptr<const Plan>& plan() const { return plan_; }

  // ------------------------------------------------- transformations
  DataFrame Filter(ColumnPredicate predicate) const;
  DataFrame Filter(std::function<Result<bool>(const storage::Row&)> fn) const;
  Result<DataFrame> Select(const std::vector<std::string>& columns) const;
  DataFrame Map(std::function<Result<storage::Row>(const storage::Row&)> fn,
                storage::Schema out_schema) const;
  Result<DataFrame> Union(const DataFrame& other) const;
  // Coalesces to fewer partitions without shuffling. Widening reslices
  // driver-local data in place and inserts a shuffle (kExchange over all
  // columns) for everything else.
  Result<DataFrame> Repartition(int num_partitions) const;
  // Wide transformations (each inserts a shuffle boundary; see
  // src/spark/shuffle/). GroupBy keys a hash aggregation; Join is an
  // inner equi-join on left_on = right_on; Limit caps the row count.
  Result<GroupedDataFrame> GroupBy(
      const std::vector<std::string>& columns) const;
  Result<DataFrame> Join(const DataFrame& other,
                         const std::vector<std::string>& left_on,
                         const std::vector<std::string>& right_on) const;
  Result<DataFrame> Limit(int64_t n) const;

  // --------------------------------------------------------- actions
  Result<std::vector<storage::Row>> Collect(sim::Process& driver) const;
  Result<int64_t> Count(sim::Process& driver) const;
  // Computes every partition on the workers (full source read, nothing
  // shipped to the driver) and returns the row count — the "load into
  // Spark" measurement of Section 4 (Collect would bottleneck on the
  // driver's NIC instead).
  Result<int64_t> Materialize(sim::Process& driver) const;
  DataFrameWriter Write() const;

 private:
  SparkSession* session_ = nullptr;
  std::shared_ptr<const Plan> plan_;
};

// df.GroupBy(...) result: holds the grouping keys until Agg() names the
// aggregates and produces the grouped DataFrame (keys first, then one
// column per aggregate, named like "count(*)" / "sum(v)").
class GroupedDataFrame {
 public:
  GroupedDataFrame(DataFrame frame, std::vector<int> key_indices)
      : frame_(std::move(frame)), key_indices_(std::move(key_indices)) {}

  Result<DataFrame> Agg(const std::vector<AggregateRequest>& aggs) const;

 private:
  DataFrame frame_;
  std::vector<int> key_indices_;
};

// df.read()-style builder (Table 1's LOAD column).
class DataFrameReader {
 public:
  explicit DataFrameReader(SparkSession* session) : session_(session) {}

  DataFrameReader& Format(const std::string& format) {
    format_ = format;
    return *this;
  }
  DataFrameReader& Option(const std::string& key, const std::string& value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameReader& Option(const std::string& key, int64_t value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameReader& Options(const SourceOptions& options) {
    for (const auto& [k, v] : options.entries()) options_.Set(k, v);
    return *this;
  }

  Result<DataFrame> Load(sim::Process& driver);

 private:
  SparkSession* session_;
  std::string format_;
  SourceOptions options_;
};

// df.write()-style builder (Table 1's SAVE column).
class DataFrameWriter {
 public:
  DataFrameWriter(SparkSession* session, DataFrame frame)
      : session_(session), frame_(std::move(frame)) {}

  DataFrameWriter& Format(const std::string& format) {
    format_ = format;
    return *this;
  }
  DataFrameWriter& Option(const std::string& key, const std::string& value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameWriter& Option(const std::string& key, int64_t value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameWriter& Options(const SourceOptions& options) {
    for (const auto& [k, v] : options.entries()) options_.Set(k, v);
    return *this;
  }
  DataFrameWriter& Mode(SaveMode mode) {
    mode_ = mode;
    return *this;
  }

  Status Save(sim::Process& driver);

 private:
  SparkSession* session_;
  DataFrame frame_;
  std::string format_;
  SourceOptions options_;
  SaveMode mode_ = SaveMode::kErrorIfExists;
};

// Entry point tying the cluster, the data source registry and DataFrame
// construction together.
class SparkSession {
 public:
  explicit SparkSession(SparkCluster* cluster) : cluster_(cluster) {}

  SparkCluster* cluster() const { return cluster_; }

  void RegisterFormat(const std::string& name,
                      std::shared_ptr<DataSourceProvider> provider);
  Result<DataSourceProvider*> FindFormat(const std::string& name) const;

  DataFrameReader Read() { return DataFrameReader(this); }

  // Driver-local data, split round-robin into `num_partitions`.
  Result<DataFrame> CreateDataFrame(storage::Schema schema,
                                    std::vector<storage::Row> rows,
                                    int num_partitions);

  DataFrame WrapPlan(std::shared_ptr<const Plan> plan) {
    return DataFrame(this, std::move(plan));
  }

 private:
  SparkCluster* cluster_;
  std::map<std::string, std::shared_ptr<DataSourceProvider>> formats_;
};

// Collapses pushable Filter/Select chains into the underlying scan node
// (the planner pass behind the External Data Source API's pushdown),
// fuses a HashAggregate(Exchange(Scan)) stack into the scan when the
// source advertises aggregate pushdown (elides the whole shuffle), and
// pushes Limit into sources that honor per-partition row caps. Returns
// the original plan when nothing can be pushed.
std::shared_ptr<const Plan> PushDownPass(std::shared_ptr<const Plan> plan);

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_DATAFRAME_H_
