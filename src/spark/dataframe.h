#ifndef FABRIC_SPARK_DATAFRAME_H_
#define FABRIC_SPARK_DATAFRAME_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "spark/cluster.h"
#include "spark/datasource.h"
#include "spark/types.h"
#include "storage/schema.h"

namespace fabric::spark {

class SparkSession;
class DataFrameWriter;

// Immutable logical plan node (the RDD lineage). DataFrames are cheap
// handles onto shared plans; transformations build new plans, actions
// (Collect/Count/Save) run jobs through the cluster scheduler.
struct Plan {
  enum class Kind {
    kParallelize,      // in-memory partitions (driver-created data)
    kScan,             // external source (with accumulated pushdowns)
    kFilterPredicate,  // pushable column-vs-literal filter
    kFilterFn,         // opaque row predicate (not pushable)
    kMapFn,            // opaque row transform (not pushable)
    kSelect,           // column pruning (pushable)
    kUnion,
    kCoalesce,         // merge partitions without shuffle
  };

  Kind kind;
  storage::Schema schema;  // output schema of this node

  // kParallelize
  std::shared_ptr<std::vector<std::vector<storage::Row>>> data;
  // kScan
  std::shared_ptr<ScanRelation> relation;
  PushDown pushed;
  // transforms
  std::shared_ptr<const Plan> child;
  std::shared_ptr<const Plan> other;  // kUnion
  ColumnPredicate predicate;          // kFilterPredicate
  std::function<Result<bool>(const storage::Row&)> filter_fn;
  std::function<Result<storage::Row>(const storage::Row&)> map_fn;
  std::vector<int> select_indices;  // kSelect
  int target_partitions = 0;        // kCoalesce

  int NumPartitions() const;
  // Computes one partition inside a task (lineage recomputation: safe to
  // call repeatedly for the same index — that is what retries and
  // speculative duplicates do).
  Result<std::vector<storage::Row>> Compute(TaskContext& task,
                                            int partition) const;
};

// Spark DataFrame: schema'd, immutable, lazily evaluated.
class DataFrame {
 public:
  DataFrame() = default;
  DataFrame(SparkSession* session, std::shared_ptr<const Plan> plan)
      : session_(session), plan_(std::move(plan)) {}

  const storage::Schema& schema() const { return plan_->schema; }
  int NumPartitions() const { return plan_->NumPartitions(); }
  SparkSession* session() const { return session_; }
  const std::shared_ptr<const Plan>& plan() const { return plan_; }

  // ------------------------------------------------- transformations
  DataFrame Filter(ColumnPredicate predicate) const;
  DataFrame Filter(std::function<Result<bool>(const storage::Row&)> fn) const;
  Result<DataFrame> Select(const std::vector<std::string>& columns) const;
  DataFrame Map(std::function<Result<storage::Row>(const storage::Row&)> fn,
                storage::Schema out_schema) const;
  Result<DataFrame> Union(const DataFrame& other) const;
  // Coalesces to fewer partitions without shuffling; widening is only
  // possible on driver-local data (kParallelize roots).
  Result<DataFrame> Repartition(int num_partitions) const;

  // --------------------------------------------------------- actions
  Result<std::vector<storage::Row>> Collect(sim::Process& driver) const;
  Result<int64_t> Count(sim::Process& driver) const;
  // Computes every partition on the workers (full source read, nothing
  // shipped to the driver) and returns the row count — the "load into
  // Spark" measurement of Section 4 (Collect would bottleneck on the
  // driver's NIC instead).
  Result<int64_t> Materialize(sim::Process& driver) const;
  DataFrameWriter Write() const;

 private:
  SparkSession* session_ = nullptr;
  std::shared_ptr<const Plan> plan_;
};

// df.read()-style builder (Table 1's LOAD column).
class DataFrameReader {
 public:
  explicit DataFrameReader(SparkSession* session) : session_(session) {}

  DataFrameReader& Format(const std::string& format) {
    format_ = format;
    return *this;
  }
  DataFrameReader& Option(const std::string& key, const std::string& value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameReader& Option(const std::string& key, int64_t value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameReader& Options(const SourceOptions& options) {
    for (const auto& [k, v] : options.entries()) options_.Set(k, v);
    return *this;
  }

  Result<DataFrame> Load(sim::Process& driver);

 private:
  SparkSession* session_;
  std::string format_;
  SourceOptions options_;
};

// df.write()-style builder (Table 1's SAVE column).
class DataFrameWriter {
 public:
  DataFrameWriter(SparkSession* session, DataFrame frame)
      : session_(session), frame_(std::move(frame)) {}

  DataFrameWriter& Format(const std::string& format) {
    format_ = format;
    return *this;
  }
  DataFrameWriter& Option(const std::string& key, const std::string& value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameWriter& Option(const std::string& key, int64_t value) {
    options_.Set(key, value);
    return *this;
  }
  DataFrameWriter& Options(const SourceOptions& options) {
    for (const auto& [k, v] : options.entries()) options_.Set(k, v);
    return *this;
  }
  DataFrameWriter& Mode(SaveMode mode) {
    mode_ = mode;
    return *this;
  }

  Status Save(sim::Process& driver);

 private:
  SparkSession* session_;
  DataFrame frame_;
  std::string format_;
  SourceOptions options_;
  SaveMode mode_ = SaveMode::kErrorIfExists;
};

// Entry point tying the cluster, the data source registry and DataFrame
// construction together.
class SparkSession {
 public:
  explicit SparkSession(SparkCluster* cluster) : cluster_(cluster) {}

  SparkCluster* cluster() const { return cluster_; }

  void RegisterFormat(const std::string& name,
                      std::shared_ptr<DataSourceProvider> provider);
  Result<DataSourceProvider*> FindFormat(const std::string& name) const;

  DataFrameReader Read() { return DataFrameReader(this); }

  // Driver-local data, split round-robin into `num_partitions`.
  Result<DataFrame> CreateDataFrame(storage::Schema schema,
                                    std::vector<storage::Row> rows,
                                    int num_partitions);

  DataFrame WrapPlan(std::shared_ptr<const Plan> plan) {
    return DataFrame(this, std::move(plan));
  }

 private:
  SparkCluster* cluster_;
  std::map<std::string, std::shared_ptr<DataSourceProvider>> formats_;
};

// Collapses pushable Filter/Select chains into the underlying scan node
// (the planner pass behind the External Data Source API's pushdown).
// Returns the original plan when nothing can be pushed.
std::shared_ptr<const Plan> PushDownPass(std::shared_ptr<const Plan> plan);

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_DATAFRAME_H_
