#include "spark/shuffle/shuffle.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "storage/profile.h"

namespace fabric::spark::shuffle {

bool IsFetchFailure(const Status& status) {
  return !status.ok() &&
         status.message().find(kFetchFailedMarker) != std::string::npos;
}

int ShuffleManager::Register(int num_maps, int num_reduces) {
  FABRIC_CHECK(num_maps > 0 && num_reduces > 0);
  State state;
  state.num_maps = num_maps;
  state.num_reduces = num_reduces;
  state.maps.resize(num_maps);
  shuffles_.push_back(std::move(state));
  obs::IncrCounter("spark.shuffle.registered");
  return static_cast<int>(shuffles_.size()) - 1;
}

int ShuffleManager::num_maps(int shuffle) const {
  return shuffles_[shuffle].num_maps;
}

int ShuffleManager::num_reduces(int shuffle) const {
  return shuffles_[shuffle].num_reduces;
}

std::vector<int> ShuffleManager::MissingMaps(int shuffle) const {
  const State& state = shuffles_[shuffle];
  std::vector<int> missing;
  for (int m = 0; m < state.num_maps; ++m) {
    const MapOutput& out = state.maps[m];
    if (!out.committed || out.lost) missing.push_back(m);
  }
  return missing;
}

bool ShuffleManager::CommitMapOutput(
    int shuffle, int map, int worker,
    std::vector<std::vector<storage::Row>> blocks) {
  MapOutput& out = shuffles_[shuffle].maps[map];
  if (out.committed && !out.lost) return false;  // duplicate attempt
  out.committed = true;
  out.lost = false;
  out.worker = worker;
  out.blocks = std::move(blocks);
  out.block_bytes.clear();
  const double scale = cluster_->cost().data_scale;
  for (const auto& block : out.blocks) {
    out.block_bytes.push_back(
        storage::ProfileRows(block).ScaleBy(scale).raw_bytes);
  }
  obs::IncrCounter("spark.shuffle.map_outputs");
  obs::TraceEvent("spark", "shuffle.commit",
                  {{"shuffle", shuffle}, {"map", map}, {"worker", worker}});
  return true;
}

Result<std::vector<storage::Row>> ShuffleManager::FetchPartition(
    TaskContext& task, int shuffle, int reduce) {
  // Index rather than hold references across blocking calls: shuffles_
  // may grow (and reallocate) while this task sleeps or transfers.
  const int maps = shuffles_[shuffle].num_maps;
  const SparkCluster::Options& options = cluster_->options();
  if (options.shuffle_flaky_fetch_rate > 0 && flaky_rng_ == nullptr) {
    flaky_rng_ = std::make_unique<Rng>(options.shuffle_flaky_fetch_seed);
  }
  std::vector<storage::Row> out;
  for (int m = 0; m < maps; ++m) {
    bool fetched = false;
    for (int attempt = 0; !fetched; ++attempt) {
      const MapOutput& mo = shuffles_[shuffle].maps[m];
      bool ready = mo.committed && !mo.lost;
      bool flaky = ready && flaky_rng_ != nullptr &&
                   flaky_rng_->NextBool(options.shuffle_flaky_fetch_rate);
      if (ready && !flaky) {
        const int source = mo.worker;
        const double bytes = mo.block_bytes[reduce];
        if (bytes > 0) {
          if (source != task.worker) {
            FABRIC_RETURN_IF_ERROR(cluster_->network()->Transfer(
                *task.process,
                {cluster_->worker_host(source).ext_egress,
                 task.worker_host().ext_ingress},
                bytes));
          } else if (task.worker_host().has_disk()) {
            // Local fetch: the block is read back off this worker's disk.
            FABRIC_RETURN_IF_ERROR(cluster_->network()->Transfer(
                *task.process, {task.worker_host().disk}, bytes));
          }
          obs::IncrCounter("spark.shuffle.bytes", bytes);
        }
        // The transfer blocked in virtual time; the executor may have
        // died under it. Only consume the block if it is still there —
        // otherwise fall through to the retry/fail path.
        const MapOutput& now = shuffles_[shuffle].maps[m];
        if (now.committed && !now.lost && now.worker == source) {
          const auto& block = now.blocks[reduce];
          out.insert(out.end(), block.begin(), block.end());
          fetched = true;
        }
        continue;
      }
      if (attempt >= options.shuffle_fetch_retries) {
        obs::IncrCounter("spark.shuffle.fetch_failures");
        obs::TraceEvent("spark", "shuffle.fetch_failed",
                        {{"shuffle", shuffle}, {"map", m}, {"reduce", reduce}});
        return FailedPreconditionError(
            StrCat(kFetchFailedMarker, ": shuffle ", shuffle, " map ", m,
                   " reduce ", reduce, mo.lost ? " (executor lost)"
                                               : " (not committed)"));
      }
      obs::IncrCounter("spark.shuffle.fetch_retries");
      FABRIC_RETURN_IF_ERROR(
          task.process->Sleep(options.shuffle_fetch_backoff * (attempt + 1)));
    }
  }
  return out;
}

void ShuffleManager::KillExecutor(int worker) {
  ++executors_killed_;
  int blocks_lost = 0;
  for (State& state : shuffles_) {
    for (MapOutput& out : state.maps) {
      if (out.committed && !out.lost && out.worker == worker) {
        out.lost = true;
        out.blocks.clear();
        out.block_bytes.clear();
        ++blocks_lost;
      }
    }
  }
  obs::IncrCounter("spark.shuffle.executors_killed");
  obs::IncrCounter("spark.shuffle.map_outputs_lost", blocks_lost);
  obs::TraceEvent("spark", "shuffle.executor_lost",
                  {{"worker", worker}, {"map_outputs_lost", blocks_lost}});
}

}  // namespace fabric::spark::shuffle
