#include "spark/shuffle/aggregate.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "common/hll.h"
#include "common/string_util.h"

namespace fabric::spark::shuffle {
namespace {

using storage::Row;
using storage::Value;

// Running accumulator for one aggregate call within one group. `count`
// is the number of non-null inputs, so "any input seen" is count > 0
// (matching the Vertica engine's AggPartial).
struct Partial {
  int64_t count = 0;
  double sum = 0;
  Value min;
  Value max;
  // Sketch-call state; invalid until the first update/merge so the
  // precision comes from the call (or the incoming partial).
  hll::Sketch sketch;
};

Status UpdatePartial(const AggCall& call, const Row& row, Partial* p) {
  // COUNT(*) counts rows: a synthetic non-null input per row.
  const Value v = call.column < 0 ? Value::Int64(1) : row[call.column];
  if (v.is_null()) return Status::OK();  // SQL aggregates skip NULLs
  ++p->count;
  switch (call.fn) {
    case AggregateFn::kCount:
      break;
    case AggregateFn::kApproxCountDistinct:
    case AggregateFn::kHllSketch: {
      if (!p->sketch.valid()) {
        FABRIC_ASSIGN_OR_RETURN(p->sketch,
                                hll::Sketch::Create(call.precision));
      }
      p->sketch.AddHash(v.DistinctHash());
      break;
    }
    case AggregateFn::kSum:
    case AggregateFn::kAvg: {
      FABRIC_ASSIGN_OR_RETURN(double d, v.AsDouble());
      p->sum += d;
      break;
    }
    case AggregateFn::kMin: {
      if (p->min.is_null()) {
        p->min = v;
      } else {
        FABRIC_ASSIGN_OR_RETURN(int c, v.Compare(p->min));
        if (c < 0) p->min = v;
      }
      break;
    }
    case AggregateFn::kMax: {
      if (p->max.is_null()) {
        p->max = v;
      } else {
        FABRIC_ASSIGN_OR_RETURN(int c, v.Compare(p->max));
        if (c > 0) p->max = v;
      }
      break;
    }
  }
  return Status::OK();
}

Status MergePartialInto(const Partial& in, Partial* out) {
  out->count += in.count;
  out->sum += in.sum;
  if (in.sketch.valid()) {
    if (!out->sketch.valid()) {
      out->sketch = in.sketch;
    } else {
      FABRIC_RETURN_IF_ERROR(out->sketch.Merge(in.sketch));
    }
  }
  if (!in.min.is_null()) {
    if (out->min.is_null()) {
      out->min = in.min;
    } else {
      FABRIC_ASSIGN_OR_RETURN(int c, in.min.Compare(out->min));
      if (c < 0) out->min = in.min;
    }
  }
  if (!in.max.is_null()) {
    if (out->max.is_null()) {
      out->max = in.max;
    } else {
      FABRIC_ASSIGN_OR_RETURN(int c, in.max.Compare(out->max));
      if (c > 0) out->max = in.max;
    }
  }
  return Status::OK();
}

Result<Value> FinalizePartial(const AggCall& call, const Partial& p) {
  switch (call.fn) {
    case AggregateFn::kCount:
      return Value::Int64(p.count);
    case AggregateFn::kSum:
      return p.count > 0 ? Value::Float64(p.sum) : Value::Null();
    case AggregateFn::kAvg:
      return p.count > 0 ? Value::Float64(p.sum / p.count) : Value::Null();
    case AggregateFn::kMin:
      return p.min;
    case AggregateFn::kMax:
      return p.max;
    case AggregateFn::kApproxCountDistinct:
    case AggregateFn::kHllSketch: {
      hll::Sketch sketch = p.sketch;
      if (!sketch.valid()) {
        // Zero non-null inputs: an empty sketch (estimate 0), matching
        // the Vertica UDx's init-state finalize.
        FABRIC_ASSIGN_OR_RETURN(sketch, hll::Sketch::Create(call.precision));
      }
      if (call.fn == AggregateFn::kApproxCountDistinct) {
        return Value::Int64(sketch.Estimate());
      }
      return Value::Varchar(sketch.Serialize());
    }
  }
  return Value::Null();
}

// Serialized form of a call's sketch state for the partial row; empty
// states serialize as the empty sketch so the reduce side can always
// deserialize.
Result<Value> SketchPartialValue(const AggCall& call, const Partial& p) {
  if (p.sketch.valid()) return Value::Varchar(p.sketch.Serialize());
  FABRIC_ASSIGN_OR_RETURN(hll::Sketch empty,
                          hll::Sketch::Create(call.precision));
  return Value::Varchar(empty.Serialize());
}

// Ordered group table: encoded key -> (key values, one Partial per call).
// std::map iteration gives the canonical sorted-by-key output order.
using GroupMap = std::map<std::string, std::pair<Row, std::vector<Partial>>>;

std::pair<Row, std::vector<Partial>>* FindOrInsertGroup(
    GroupMap* groups, const std::string& key, const Row& row,
    const std::vector<int>& key_columns, size_t num_calls,
    bool* was_inserted = nullptr) {
  auto [it, inserted] = groups->try_emplace(key);
  if (inserted) {
    for (int k : key_columns) it->second.first.push_back(row[k]);
    it->second.second.resize(num_calls);
  }
  if (was_inserted != nullptr) *was_inserted = inserted;
  return &it->second;
}

// Estimated resident bytes of one group entry; coarse on purpose (the
// budget is a simulation knob, not a malloc audit).
double GroupBytesOf(const std::string& key,
                    const std::vector<AggCall>& calls) {
  double bytes = static_cast<double>(key.size()) + 48;
  for (const AggCall& call : calls) {
    bytes += IsSketchFn(call.fn)
                 ? 64 + static_cast<double>(1 << call.precision)
                 : 56;
  }
  return bytes;
}

// FNV-1a over the encoded group key: the spill partition function
// (shared with the Vertica executor's grace-hash aggregate).
int SpillPartitionOf(const std::string& key, int partitions) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<uint64_t>(partitions));
}

// Grace-hash spill bookkeeping shared by the map-side combiner and the
// reduce-side merge: groups pushed out of the resident table land in
// per-partition runs (chronological order preserved within each run) and
// merge back at finish time. Partitions hold disjoint key sets and the
// final collection map is key-ordered, so spilling never changes output.
struct SpillState {
  const SpillPolicy* policy = nullptr;
  std::vector<std::vector<std::pair<std::string,
                                    std::pair<Row, std::vector<Partial>>>>>
      runs;
  double resident_bytes = 0;
  bool spilled = false;

  bool active() const {
    return policy != nullptr && policy->budget_bytes > 0;
  }
  int partitions() const { return std::max(1, policy->partitions); }

  Status SpillResident(GroupMap* groups,
                       const std::vector<AggCall>& calls) {
    if (groups->empty()) return Status::OK();
    if (runs.empty()) runs.resize(partitions());
    double bytes = 0;
    for (auto& [key, group] : *groups) {
      bytes += GroupBytesOf(key, calls);
      runs[SpillPartitionOf(key, partitions())].emplace_back(
          key, std::move(group));
    }
    groups->clear();
    resident_bytes = 0;
    spilled = true;
    if (policy->charge_write) {
      FABRIC_RETURN_IF_ERROR(policy->charge_write(bytes));
    }
    if (policy->spills != nullptr) ++*policy->spills;
    if (policy->spilled_bytes != nullptr) *policy->spilled_bytes += bytes;
    return Status::OK();
  }

  // Accounts a freshly inserted group and spills when over budget.
  Status OnNewGroup(GroupMap* groups, const std::string& key,
                    const std::vector<AggCall>& calls) {
    resident_bytes += GroupBytesOf(key, calls);
    if (resident_bytes > policy->budget_bytes) {
      return SpillResident(groups, calls);
    }
    return Status::OK();
  }

  // Merges every run back into `groups` (which it first pushes out too,
  // so all state flows through the runs uniformly).
  Status Drain(GroupMap* groups, const std::vector<AggCall>& calls) {
    if (!spilled) return Status::OK();
    FABRIC_RETURN_IF_ERROR(SpillResident(groups, calls));
    for (auto& run : runs) {
      if (run.empty()) continue;
      double bytes = 0;
      for (auto& [key, group] : run) {
        bytes += GroupBytesOf(key, calls);
        auto [it, inserted] = groups->try_emplace(key);
        if (inserted) {
          it->second = std::move(group);
          continue;
        }
        for (size_t i = 0; i < calls.size(); ++i) {
          FABRIC_RETURN_IF_ERROR(
              MergePartialInto(group.second[i], &it->second.second[i]));
        }
      }
      run.clear();
      if (policy->charge_read) {
        FABRIC_RETURN_IF_ERROR(policy->charge_read(bytes));
      }
    }
    return Status::OK();
  }
};

}  // namespace

storage::Schema PartialSchema(const AggPlan& plan) {
  std::vector<storage::ColumnDef> defs;
  for (int k : plan.keys) defs.push_back(plan.in_schema.column(k));
  for (size_t i = 0; i < plan.calls.size(); ++i) {
    const AggCall& call = plan.calls[i];
    if (IsSketchFn(call.fn)) {
      defs.push_back({StrCat("p", i, "_sketch"),
                      storage::DataType::kVarchar});
      continue;
    }
    storage::DataType arg_type =
        call.column < 0 ? storage::DataType::kInt64
                        : plan.in_schema.column(call.column).type;
    defs.push_back({StrCat("p", i, "_count"), storage::DataType::kInt64});
    defs.push_back({StrCat("p", i, "_sum"), storage::DataType::kFloat64});
    defs.push_back({StrCat("p", i, "_min"), arg_type});
    defs.push_back({StrCat("p", i, "_max"), arg_type});
  }
  return storage::Schema(std::move(defs));
}

int PartialWidth(const AggCall& call) { return IsSketchFn(call.fn) ? 1 : 4; }

std::string GroupKeyOf(const Row& row, const std::vector<int>& keys) {
  // Same encoding as the Vertica engine's GROUP BY key: \x01 marks NULL
  // (distinct from any display string), \x02 separates columns.
  std::string key;
  for (int c : keys) {
    key += row[c].is_null() ? std::string("\x01") : row[c].ToDisplayString();
    key.push_back('\x02');
  }
  return key;
}

struct Combiner::Impl {
  const AggPlan* plan;
  GroupMap groups;
  SpillState spill;
};

Combiner::Combiner(const AggPlan* plan, const SpillPolicy* spill)
    : impl_(new Impl{plan, {}, {}}) {
  impl_->spill.policy = spill;
}
Combiner::~Combiner() = default;
Combiner::Combiner(Combiner&&) noexcept = default;
Combiner& Combiner::operator=(Combiner&&) noexcept = default;

Status Combiner::Add(const Row& row) {
  const AggPlan& plan = *impl_->plan;
  std::string key = GroupKeyOf(row, plan.keys);
  bool inserted = false;
  auto* group = FindOrInsertGroup(&impl_->groups, key, row, plan.keys,
                                  plan.calls.size(), &inserted);
  for (size_t i = 0; i < plan.calls.size(); ++i) {
    FABRIC_RETURN_IF_ERROR(
        UpdatePartial(plan.calls[i], row, &group->second[i]));
  }
  if (inserted && impl_->spill.active()) {
    FABRIC_RETURN_IF_ERROR(
        impl_->spill.OnNewGroup(&impl_->groups, key, plan.calls));
  }
  return Status::OK();
}

Result<std::vector<Row>> Combiner::Finish() {
  const AggPlan& plan = *impl_->plan;
  if (impl_->spill.active()) {
    FABRIC_RETURN_IF_ERROR(impl_->spill.Drain(&impl_->groups, plan.calls));
  }
  std::vector<Row> out;
  out.reserve(impl_->groups.size());
  for (auto& [key, group] : impl_->groups) {
    Row row = std::move(group.first);
    for (size_t i = 0; i < plan.calls.size(); ++i) {
      const AggCall& call = plan.calls[i];
      const Partial& p = group.second[i];
      if (IsSketchFn(call.fn)) {
        FABRIC_ASSIGN_OR_RETURN(Value sketch, SketchPartialValue(call, p));
        row.push_back(std::move(sketch));
        continue;
      }
      row.push_back(Value::Int64(p.count));
      row.push_back(Value::Float64(p.sum));
      row.push_back(p.min);
      row.push_back(p.max);
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> CombineToPartials(const std::vector<Row>& rows,
                                           const AggPlan& plan) {
  Combiner combiner(&plan);
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(combiner.Add(row));
  }
  return combiner.Finish();
}

Result<std::vector<Row>> MergePartials(const std::vector<Row>& partials,
                                       const AggPlan& plan,
                                       const SpillPolicy* spill) {
  const int k = static_cast<int>(plan.keys.size());
  std::vector<int> key_positions(k);
  std::iota(key_positions.begin(), key_positions.end(), 0);
  GroupMap groups;
  SpillState spill_state;
  spill_state.policy = spill;
  for (const Row& prow : partials) {
    std::string key = GroupKeyOf(prow, key_positions);
    bool inserted = false;
    auto* group = FindOrInsertGroup(&groups, key, prow, key_positions,
                                    plan.calls.size(), &inserted);
    // Partial rows have a variable per-call width (sketch calls carry a
    // single serialized-register field); walk the layout, never stride.
    int base = k;
    for (size_t i = 0; i < plan.calls.size(); ++i) {
      const AggCall& call = plan.calls[i];
      Partial in;
      if (IsSketchFn(call.fn)) {
        if (prow[base].type() != storage::DataType::kVarchar) {
          return InvalidArgumentError(
              "sketch partial field is not a serialized sketch");
        }
        FABRIC_ASSIGN_OR_RETURN(
            in.sketch, hll::Sketch::Deserialize(prow[base].varchar_value()));
      } else {
        in.count = prow[base].int64_value();
        in.sum = prow[base + 1].float64_value();
        in.min = prow[base + 2];
        in.max = prow[base + 3];
      }
      FABRIC_RETURN_IF_ERROR(MergePartialInto(in, &group->second[i]));
      base += PartialWidth(call);
    }
    if (inserted && spill_state.active()) {
      FABRIC_RETURN_IF_ERROR(
          spill_state.OnNewGroup(&groups, key, plan.calls));
    }
  }
  if (spill_state.active()) {
    FABRIC_RETURN_IF_ERROR(spill_state.Drain(&groups, plan.calls));
  }
  std::vector<Row> out;
  if (groups.empty() && plan.keys.empty()) {
    // SQL: an aggregate without GROUP BY yields one row even for empty
    // input (COUNT 0, SUM/AVG NULL, ...).
    Row row;
    for (const AggCall& call : plan.calls) {
      FABRIC_ASSIGN_OR_RETURN(Value v, FinalizePartial(call, Partial()));
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
    return out;
  }
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    Row row = std::move(group.first);
    for (size_t i = 0; i < plan.calls.size(); ++i) {
      FABRIC_ASSIGN_OR_RETURN(
          Value v, FinalizePartial(plan.calls[i], group.second[i]));
      row.push_back(std::move(v));
    }
    out.push_back(std::move(row));
  }
  return out;
}

int PartitionOf(const Row& row, const std::vector<int>& keys,
                int num_partitions) {
  uint64_t hash;
  if (keys.empty()) {
    std::vector<int> all(row.size());
    std::iota(all.begin(), all.end(), 0);
    hash = storage::RowSegmentationHash(row, all);
  } else {
    hash = storage::RowSegmentationHash(row, keys);
  }
  return static_cast<int>(hash % static_cast<uint64_t>(num_partitions));
}

}  // namespace fabric::spark::shuffle
