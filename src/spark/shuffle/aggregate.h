#ifndef FABRIC_SPARK_SHUFFLE_AGGREGATE_H_
#define FABRIC_SPARK_SHUFFLE_AGGREGATE_H_

// Hash-aggregation machinery shared by the shuffle map side (partial
// combine) and reduce side (merge + finalize). The semantics mirror the
// Vertica SQL engine's aggregate evaluation exactly — NULL inputs are
// skipped, COUNT(*) counts rows, SUM/AVG of zero non-null inputs is NULL,
// group keys encode NULL distinctly, output is sorted by encoded key —
// so a plan computed through the Spark shuffle and the same plan pushed
// into Vertica return byte-identical rows.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "spark/types.h"
#include "storage/schema.h"

namespace fabric::spark::shuffle {

// One aggregate over a column of the input schema (`column` < 0 means
// COUNT(*): counts every row). Sketch aggregates carry their HLL
// precision so every layer builds register-identical state.
struct AggCall {
  AggregateFn fn = AggregateFn::kCount;
  int column = -1;
  int precision = 0;
};

// A grouped aggregation: group by `keys` (indices into `in_schema`),
// evaluate `calls`, emit rows of `out_schema` (key columns first, then
// one column per call).
struct AggPlan {
  std::vector<int> keys;
  std::vector<AggCall> calls;
  storage::Schema in_schema;
  storage::Schema out_schema;
};

// Rows flowing between map-side combine and reduce-side merge carry the
// group keys followed by a per-call accumulator layout. Scalar calls
// contribute four fixed fields [count INTEGER, sum FLOAT, min <col
// type>, max <col type>] (`count` is the number of non-null inputs, so
// "any input seen" is exactly count > 0); sketch calls contribute one
// variable-length field [sketch VARCHAR] holding the serialized HLL
// registers. Consumers must walk the layout with PartialWidth — partial
// rows are NOT a fixed stride per call.
storage::Schema PartialSchema(const AggPlan& plan);

// Number of partial-row fields the call occupies (4 scalar, 1 sketch).
int PartialWidth(const AggCall& call);

// Group-key encoding shared with Vertica's GROUP BY: display string per
// key column, NULL marked distinctly, columns separated unambiguously.
// Sorting rows by this key is the canonical aggregate output order.
std::string GroupKeyOf(const storage::Row& row, const std::vector<int>& keys);

// Task memory budget for hash aggregation. When the resident group table
// exceeds `budget_bytes` the operator pushes it out as partitioned runs
// (grace hash) — `charge_write`/`charge_read` bill the simulated local
// disk of whatever worker runs the task — and merges the runs back at
// the end. Output is byte-identical to the unbudgeted run: partials are
// mergeable and the final collection re-sorts by encoded group key.
// A zero budget (or null policy) disables spilling entirely.
struct SpillPolicy {
  double budget_bytes = 0;
  int partitions = 8;
  std::function<Status(double bytes)> charge_write;
  std::function<Status(double bytes)> charge_read;
  // Telemetry sinks (optional): bumped on every spill event.
  int64_t* spills = nullptr;
  double* spilled_bytes = nullptr;
};

// Map-side combine: folds raw input rows into one partial row per group,
// sorted by encoded group key.
Result<std::vector<storage::Row>> CombineToPartials(
    const std::vector<storage::Row>& rows, const AggPlan& plan);

// Incremental map-side combine. The fused map stage (exec.cc) folds
// surviving scan rows one at a time instead of materializing the
// filtered/projected row vector first; CombineToPartials is implemented
// over this class, so fold rules and group ordering are identical by
// construction. Finish() emits one partial row per group, sorted by
// encoded group key.
class Combiner {
 public:
  // `plan` is borrowed and must outlive the combiner. Only `keys` and
  // `calls` are consulted, so a column-remapped copy works. `spill`
  // (borrowed, may be null) bounds the resident group table.
  explicit Combiner(const AggPlan* plan, const SpillPolicy* spill = nullptr);
  ~Combiner();
  Combiner(Combiner&&) noexcept;
  Combiner& operator=(Combiner&&) noexcept;

  Status Add(const storage::Row& row);
  Result<std::vector<storage::Row>> Finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Reduce-side merge: merges partial rows (keys at positions 0..k-1) and
// finalizes each call — COUNT -> INTEGER, SUM/AVG -> FLOAT or NULL when
// no non-null input, MIN/MAX -> the extremal value. Output is sorted by
// encoded group key. With no group keys, emits exactly one row (the SQL
// aggregate-without-GROUP-BY convention) even for empty input.
Result<std::vector<storage::Row>> MergePartials(
    const std::vector<storage::Row>& partials, const AggPlan& plan,
    const SpillPolicy* spill = nullptr);

// The shuffle partition a row hashes to. `keys` empty means hash over
// all columns (pure repartitioning).
int PartitionOf(const storage::Row& row, const std::vector<int>& keys,
                int num_partitions);

// Describes one exchange (shuffle boundary) in a plan. When `combine` is
// set the map side pre-aggregates, and the rows crossing the wire are
// PartialSchema rows whose group keys sit at positions 0..k-1.
struct ExchangeSpec {
  std::vector<int> keys;  // in the rows crossing this exchange
  int num_partitions = 0;
  std::shared_ptr<const AggPlan> combine;
  // Shuffle id assigned by the executor on first materialization; reused
  // by later actions on the same plan (blocks are served from the block
  // store until an executor loss invalidates them).
  mutable int shuffle_id = -1;
};

}  // namespace fabric::spark::shuffle

#endif  // FABRIC_SPARK_SHUFFLE_AGGREGATE_H_
