#ifndef FABRIC_SPARK_SHUFFLE_SHUFFLE_H_
#define FABRIC_SPARK_SHUFFLE_SHUFFLE_H_

// The cluster-wide shuffle service: map tasks commit hash-partitioned
// blocks into a per-worker block store; reduce tasks fetch every map's
// block for their partition over the network (or the local disk when
// colocated). Fetches retry with backoff; a block lost to an executor
// kill eventually surfaces a typed fetch failure, which the staged
// executor (exec.h) answers by re-running the lost map tasks from
// lineage — Spark's stage-resubmission protocol.

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "spark/cluster.h"
#include "storage/schema.h"

namespace fabric::spark::shuffle {

// Marker embedded in fetch-failure statuses; the executor's recovery
// loop keys on it (cf. the Vertica engine's typed HISTORY_PURGED).
inline constexpr char kFetchFailedMarker[] = "SHUFFLE_FETCH_FAILED";

bool IsFetchFailure(const Status& status);

class ShuffleManager {
 public:
  explicit ShuffleManager(SparkCluster* cluster) : cluster_(cluster) {}

  // Registers a new shuffle: `num_maps` producers, `num_reduces`
  // hash partitions. Returns its id.
  int Register(int num_maps, int num_reduces);

  int num_maps(int shuffle) const;
  int num_reduces(int shuffle) const;

  // Map outputs that still need (re-)execution: never committed, or
  // committed on an executor that has since been killed.
  std::vector<int> MissingMaps(int shuffle) const;

  // Publishes map `map`'s partitioned blocks, produced on `worker`.
  // First commit wins unless the previous copy was lost — duplicate
  // commits from speculative or retried attempts are dropped, so
  // downstream fetches observe exactly one copy. Returns whether this
  // commit was the one registered.
  bool CommitMapOutput(int shuffle, int map, int worker,
                       std::vector<std::vector<storage::Row>> blocks);

  // Fetches reduce partition `reduce` from every map output, charging
  // the network (remote) or disk (local) for each block. Retries a
  // missing/lost/flaky block up to Options::shuffle_fetch_retries times
  // with backoff, then fails with a status carrying kFetchFailedMarker.
  // Blocks arrive concatenated in map order.
  Result<std::vector<storage::Row>> FetchPartition(TaskContext& task,
                                                   int shuffle, int reduce);

  // Simulates losing executor `worker`: every committed map output it
  // holds is dropped (across all shuffles). In-flight and future fetches
  // of those blocks fail over to stage re-execution.
  void KillExecutor(int worker);

  int executors_killed() const { return executors_killed_; }

 private:
  struct MapOutput {
    bool committed = false;
    bool lost = false;
    int worker = -1;
    std::vector<std::vector<storage::Row>> blocks;  // one per reduce
    std::vector<double> block_bytes;                // scaled wire bytes
  };
  struct State {
    int num_maps = 0;
    int num_reduces = 0;
    std::vector<MapOutput> maps;
  };

  SparkCluster* cluster_;
  std::vector<State> shuffles_;
  int executors_killed_ = 0;
  std::unique_ptr<Rng> flaky_rng_;  // lazily seeded from Options
};

}  // namespace fabric::spark::shuffle

#endif  // FABRIC_SPARK_SHUFFLE_SHUFFLE_H_
