#ifndef FABRIC_SPARK_SHUFFLE_EXEC_H_
#define FABRIC_SPARK_SHUFFLE_EXEC_H_

// Staged execution over plans with exchanges. Before a job whose plan
// reads shuffled data runs, every exchange's map stage must have
// committed its blocks; when an executor kill loses blocks, the
// consuming job surfaces a fetch failure and the lost map tasks are
// re-executed from lineage (Spark's stage resubmission) before the job
// is retried — results are exactly-once regardless of failures.

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "spark/cluster.h"
#include "spark/dataframe.h"
#include "spark/shuffle/aggregate.h"

namespace fabric::spark::shuffle {

// True when the plan tree contains an exchange (wide dependency).
bool HasExchange(const Plan& plan);

// Spill policy bound to one running task attempt: budget from the
// cluster's task_memory_bytes, runs billed against the worker's local
// disk, spill events traced and counted (spark.spills /
// spark.spill_bytes). An unlimited cluster yields an inert policy.
SpillPolicy TaskSpillPolicy(const TaskContext& task);

// Runs `body` over `num_tasks` tasks with all of the plan's shuffle
// dependencies satisfied: registers/executes missing map stages first
// (post-order, so nested shuffles resolve inner-first), then runs the
// job, resubmitting lost map stages and retrying on fetch failures.
// Plans without exchanges go straight to the scheduler.
Result<SparkCluster::JobStats> RunPlanJob(
    sim::Process& driver, SparkCluster* cluster, const std::string& name,
    const std::shared_ptr<const Plan>& plan, int num_tasks,
    std::function<Status(TaskContext&)> body);

}  // namespace fabric::spark::shuffle

#endif  // FABRIC_SPARK_SHUFFLE_EXEC_H_
