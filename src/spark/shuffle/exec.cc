#include "spark/shuffle/exec.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/trace.h"
#include "spark/shuffle/aggregate.h"
#include "spark/shuffle/shuffle.h"
#include "storage/profile.h"

namespace fabric::spark::shuffle {
namespace {

// Bounds stage re-execution rounds: each round either finishes the job
// or re-runs map tasks lost to an executor kill; the bound only trips if
// executors keep dying faster than stages complete.
constexpr int kMaxStageRounds = 12;

void CollectExchangesPostOrder(const Plan* plan,
                               std::vector<const Plan*>* out) {
  if (plan == nullptr) return;
  CollectExchangesPostOrder(plan->child.get(), out);
  CollectExchangesPostOrder(plan->other.get(), out);
  if (plan->kind == Plan::Kind::kExchange) out->push_back(plan);
}

// Runs (or re-runs) the map stage of one exchange: every map whose
// output was never committed or was lost with its executor recomputes
// its input partition from lineage, hash-partitions (and optionally
// map-side combines) it, spills the blocks to local disk and commits
// them to the block store.
Status RunMapStage(sim::Process& driver, SparkCluster* cluster,
                   const Plan* node) {
  ShuffleManager* manager = cluster->shuffle_manager();
  const std::shared_ptr<ExchangeSpec>& spec = node->exchange;
  if (spec->shuffle_id < 0) {
    spec->shuffle_id =
        manager->Register(node->child->NumPartitions(), spec->num_partitions);
  }
  const int sid = spec->shuffle_id;
  auto missing =
      std::make_shared<const std::vector<int>>(manager->MissingMaps(sid));
  if (missing->empty()) return Status::OK();
  uint64_t span = obs::TraceBegin(
      "spark", "stage",
      {{"kind", "map"},
       {"shuffle", sid},
       {"tasks", static_cast<int>(missing->size())}});
  std::shared_ptr<const Plan> child = node->child;
  auto result = cluster->RunJob(
      driver, StrCat("shuffle-map-s", sid),
      static_cast<int>(missing->size()),
      [child, spec, missing, manager, sid](TaskContext& task) -> Status {
        const int map = (*missing)[task.task];
        FABRIC_ASSIGN_OR_RETURN(std::vector<storage::Row> rows,
                                child->Compute(task, map));
        const CostModel& cost = task.cluster->cost();
        // Hashing every row (plus the map-side combine when present).
        FABRIC_RETURN_IF_ERROR(task.Compute(
            rows.size() * cost.spark_row_process_cpu * cost.data_scale));
        if (spec->combine != nullptr) {
          FABRIC_ASSIGN_OR_RETURN(rows,
                                  CombineToPartials(rows, *spec->combine));
        }
        const double bytes = storage::ProfileRows(rows)
                                 .ScaleBy(cost.data_scale)
                                 .raw_bytes;
        std::vector<std::vector<storage::Row>> blocks(spec->num_partitions);
        for (storage::Row& row : rows) {
          blocks[PartitionOf(row, spec->keys, spec->num_partitions)]
              .push_back(std::move(row));
        }
        if (bytes > 0 && task.worker_host().has_disk()) {
          FABRIC_RETURN_IF_ERROR(task.cluster->network()->Transfer(
              *task.process, {task.worker_host().disk}, bytes));
        }
        manager->CommitMapOutput(sid, map, task.worker, std::move(blocks));
        return Status::OK();
      });
  obs::TraceEnd(span, "spark", "stage");
  return result.ok() ? Status::OK() : result.status();
}

// Materializes every missing map output under `plan`, inner exchanges
// first. A fetch failure inside a map stage (its input reads an inner
// shuffle that lost blocks mid-stage) restarts the sweep.
Status PrepareShuffles(sim::Process& driver, SparkCluster* cluster,
                       const std::shared_ptr<const Plan>& plan) {
  std::vector<const Plan*> exchanges;
  CollectExchangesPostOrder(plan.get(), &exchanges);
  if (exchanges.empty()) return Status::OK();
  Status last = Status::OK();
  for (int round = 0; round < kMaxStageRounds; ++round) {
    bool resubmit = false;
    for (const Plan* node : exchanges) {
      Status status = RunMapStage(driver, cluster, node);
      if (status.ok()) continue;
      if (!IsFetchFailure(status)) return status;
      last = status;
      resubmit = true;
      obs::IncrCounter("spark.shuffle.stage_resubmits");
      obs::TraceEvent("spark", "stage.resubmit",
                      {{"shuffle", node->exchange->shuffle_id}});
      break;
    }
    if (!resubmit) return Status::OK();
  }
  return last;
}

}  // namespace

bool HasExchange(const Plan& plan) {
  if (plan.kind == Plan::Kind::kExchange) return true;
  if (plan.child != nullptr && HasExchange(*plan.child)) return true;
  return plan.other != nullptr && HasExchange(*plan.other);
}

Result<SparkCluster::JobStats> RunPlanJob(
    sim::Process& driver, SparkCluster* cluster, const std::string& name,
    const std::shared_ptr<const Plan>& plan, int num_tasks,
    std::function<Status(TaskContext&)> body) {
  if (!HasExchange(*plan)) {
    return cluster->RunJob(driver, name, num_tasks, std::move(body));
  }
  Status last = Status::OK();
  for (int round = 0; round < kMaxStageRounds; ++round) {
    FABRIC_RETURN_IF_ERROR(PrepareShuffles(driver, cluster, plan));
    auto job = cluster->RunJob(driver, name, num_tasks, body);
    if (job.ok() || !IsFetchFailure(job.status())) return job;
    last = job.status();
    obs::IncrCounter("spark.shuffle.stage_resubmits");
    obs::TraceEvent("spark", "stage.resubmit", {{"job", name}});
  }
  return last;
}

}  // namespace fabric::spark::shuffle
