#include "spark/shuffle/exec.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "exec/pipeline.h"
#include "obs/trace.h"
#include "spark/shuffle/aggregate.h"
#include "spark/shuffle/shuffle.h"
#include "storage/profile.h"

namespace fabric::spark::shuffle {

SpillPolicy TaskSpillPolicy(const TaskContext& task) {
  SpillPolicy policy;
  policy.budget_bytes = task.cluster->options().task_memory_bytes;
  if (policy.budget_bytes <= 0) return policy;
  SparkCluster* cluster = task.cluster;
  sim::Process* process = task.process;
  const net::Host* host = &task.worker_host();
  int worker = task.worker;
  auto charge = [cluster, process, host, worker](double bytes) -> Status {
    obs::TraceEvent("spark", "task.spill",
                    {{"worker", worker}, {"bytes", bytes}});
    obs::IncrCounter("spark.spills");
    obs::IncrCounter("spark.spill_bytes", bytes);
    if (host->has_disk()) {
      return cluster->network()->Transfer(*process, {host->disk}, bytes);
    }
    return process->Sleep(bytes / cluster->cost().disk_read_bandwidth);
  };
  policy.charge_write = charge;
  // Reads flow back through the same local disk; traced under the same
  // event (the spill counter counts write events only).
  policy.charge_read = [cluster, process, host](double bytes) -> Status {
    if (host->has_disk()) {
      return cluster->network()->Transfer(*process, {host->disk}, bytes);
    }
    return process->Sleep(bytes / cluster->cost().disk_read_bandwidth);
  };
  return policy;
}

namespace {

// Bounds stage re-execution rounds: each round either finishes the job
// or re-runs map tasks lost to an executor kill; the bound only trips if
// executors keep dying faster than stages complete.
constexpr int kMaxStageRounds = 12;

void CollectExchangesPostOrder(const Plan* plan,
                               std::vector<const Plan*>* out) {
  if (plan == nullptr) return;
  CollectExchangesPostOrder(plan->child.get(), out);
  CollectExchangesPostOrder(plan->other.get(), out);
  if (plan->kind == Plan::Kind::kExchange) out->push_back(plan);
}

// ------------------------------------------------- fused map stage
//
// When an exchange combines map-side, the {filter|select}* chain between
// it and its scan/parallelize leaf can be collapsed: the filters compile
// into vector programs over the leaf columns (fabric::exec kernels), the
// selects reduce to a column remapping of the combine plan, and each
// surviving leaf row folds straight into the partial-aggregate table.
// No intermediate row vector is ever materialized. Every task.Compute
// charge of the unfused chain is replicated — same amounts, same order —
// so fused and unfused runs produce byte-identical traces; any stage
// whose predicate cannot be compiled (or whose row values defeat the
// static types at runtime) falls back to the interpreter's own
// ColumnPredicate::Matches over the same rows, keeping results and
// errors identical.

struct FusedMapStage {
  // The scan/parallelize node at the bottom of the chain; computed
  // unfused so source reads charge exactly as before.
  std::shared_ptr<const Plan> leaf;

  struct Filter {
    // The stage predicate with its column renamed to the leaf schema
    // (the per-row fallback path — identical code to the unfused stage).
    ColumnPredicate remapped;
    // A NULL comparison literal matches no row, whatever the value.
    bool const_false = false;
    exec::Program program;  // compiled over leaf columns
  };
  std::vector<Filter> filters;  // leaf-to-exchange order

  // spec->combine with keys/calls remapped to leaf columns; in_schema is
  // the leaf schema (used by the fallback predicate path).
  AggPlan combine;
};

// Compiles the chain below `node` (an exchange with a combine) into a
// fused stage, or returns nullptr when any piece is outside the fusable
// shape — the unfused path then runs and surfaces identical results or
// errors.
std::shared_ptr<const FusedMapStage> TryFuseMapStage(
    const Plan* node, const SparkCluster* cluster) {
  if (!cluster->options().fuse_map_stages) return nullptr;
  const ExchangeSpec& spec = *node->exchange;
  if (spec.combine == nullptr) return nullptr;
  std::vector<const Plan*> chain;  // top-down
  const Plan* leaf = node->child.get();
  while (leaf->kind == Plan::Kind::kFilterPredicate ||
         leaf->kind == Plan::Kind::kSelect) {
    chain.push_back(leaf);
    leaf = leaf->child.get();
  }
  if (chain.empty()) return nullptr;  // nothing to fuse away
  if (leaf->kind != Plan::Kind::kScan &&
      leaf->kind != Plan::Kind::kParallelize) {
    return nullptr;
  }
  const storage::Schema& leaf_schema = leaf->schema;
  // Position in the current stage's output -> leaf column.
  std::vector<int> colmap(leaf_schema.num_columns());
  std::iota(colmap.begin(), colmap.end(), 0);
  auto fused = std::make_shared<FusedMapStage>();
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Plan* stage = *it;
    if (stage->kind == Plan::Kind::kSelect) {
      std::vector<int> next;
      next.reserve(stage->select_indices.size());
      for (int idx : stage->select_indices) next.push_back(colmap[idx]);
      colmap = std::move(next);
      continue;
    }
    const ColumnPredicate& p = stage->predicate;
    auto idx = stage->child->schema.IndexOf(p.column);
    if (!idx.ok()) return nullptr;  // let Matches surface the error
    const int leaf_col = colmap[*idx];
    // The fallback resolves by name against the leaf schema; a duplicate
    // name that resolves elsewhere would change the predicate's column.
    const std::string& leaf_name = leaf_schema.column(leaf_col).name;
    auto back = leaf_schema.IndexOf(leaf_name);
    if (!back.ok() || *back != leaf_col) return nullptr;
    FusedMapStage::Filter f;
    f.remapped = p;
    f.remapped.column = leaf_name;
    const storage::DataType col_type = leaf_schema.column(leaf_col).type;
    exec::Node load;
    load.op = exec::Node::Op::kColumn;
    load.type = col_type;
    load.column = leaf_col;
    if (p.op == ColumnPredicate::Op::kIsNull ||
        p.op == ColumnPredicate::Op::kIsNotNull) {
      exec::Node is_null;
      is_null.op = exec::Node::Op::kIsNull;
      is_null.type = storage::DataType::kBool;
      is_null.a = 0;
      is_null.negated = p.op == ColumnPredicate::Op::kIsNotNull;
      f.program.nodes = {std::move(load), std::move(is_null)};
    } else if (p.literal.is_null()) {
      f.const_false = true;
    } else {
      // Value::Compare promotes every non-varchar through AsDouble, so
      // the only statically uncomparable shape is varchar vs. numeric.
      const bool col_str = col_type == storage::DataType::kVarchar;
      if (col_str != (p.literal.type() == storage::DataType::kVarchar)) {
        return nullptr;
      }
      exec::Node lit;
      lit.op = exec::Node::Op::kConst;
      lit.type = p.literal.type();
      lit.constant = p.literal;
      exec::Node cmp;
      cmp.op = exec::Node::Op::kCompare;
      cmp.type = storage::DataType::kBool;
      cmp.a = 0;
      cmp.b = 1;
      cmp.string_compare = col_str;
      switch (p.op) {
        case ColumnPredicate::Op::kEq:
          cmp.cmp = exec::Node::Cmp::kEq;
          break;
        case ColumnPredicate::Op::kNe:
          cmp.cmp = exec::Node::Cmp::kNe;
          break;
        case ColumnPredicate::Op::kLt:
          cmp.cmp = exec::Node::Cmp::kLt;
          break;
        case ColumnPredicate::Op::kLe:
          cmp.cmp = exec::Node::Cmp::kLe;
          break;
        case ColumnPredicate::Op::kGt:
          cmp.cmp = exec::Node::Cmp::kGt;
          break;
        case ColumnPredicate::Op::kGe:
          cmp.cmp = exec::Node::Cmp::kGe;
          break;
        default:
          return nullptr;
      }
      f.program.nodes = {std::move(load), std::move(lit), std::move(cmp)};
    }
    fused->filters.push_back(std::move(f));
  }
  fused->leaf = chain.back()->child;
  fused->combine = *spec.combine;
  fused->combine.in_schema = leaf_schema;
  for (int& k : fused->combine.keys) k = colmap[k];
  for (AggCall& call : fused->combine.calls) {
    if (call.column >= 0) call.column = colmap[call.column];
  }
  return fused;
}

// One fused map task: leaf rows -> selection-vector filtering -> partial
// rows, charging exactly what the unfused chain charges at each step.
Result<std::vector<storage::Row>> RunFusedMap(TaskContext& task,
                                              const FusedMapStage& fused,
                                              int map) {
  const CostModel& cost = task.cluster->cost();
  FABRIC_ASSIGN_OR_RETURN(std::vector<storage::Row> rows,
                          fused.leaf->Compute(task, map));
  std::vector<uint32_t> active(rows.size());
  std::iota(active.begin(), active.end(), 0);
  exec::EvalState state;
  std::vector<uint32_t> block_active, block_keep;
  for (const FusedMapStage::Filter& f : fused.filters) {
    // The unfused stage charges for every row entering it, before
    // filtering.
    FABRIC_RETURN_IF_ERROR(task.Compute(
        active.size() * cost.spark_row_process_cpu * cost.data_scale));
    if (f.const_false) {
      active.clear();
      continue;
    }
    std::vector<uint32_t> survivors;
    size_t i = 0;
    while (i < active.size()) {
      const size_t block_start =
          active[i] / exec::kBlockRows * exec::kBlockRows;
      const size_t block_len =
          std::min(exec::kBlockRows, rows.size() - block_start);
      block_active.clear();
      size_t j = i;
      while (j < active.size() && active[j] < block_start + block_len) {
        block_active.push_back(static_cast<uint32_t>(active[j] - block_start));
        ++j;
      }
      block_keep.clear();
      if (exec::RunFilter(f.program, rows.data() + block_start, block_len,
                          block_active, &state, &block_keep)) {
        for (uint32_t k : block_keep) {
          survivors.push_back(static_cast<uint32_t>(block_start) + k);
        }
      } else {
        // A row value in this block defeated the static types: decide
        // these rows with the stage's own predicate (identical
        // semantics, same first-error row).
        for (size_t k = i; k < j; ++k) {
          FABRIC_ASSIGN_OR_RETURN(
              bool keep,
              f.remapped.Matches(fused.combine.in_schema, rows[active[k]]));
          if (keep) survivors.push_back(active[k]);
        }
      }
      i = j;
    }
    active = std::move(survivors);
  }
  // The map task's own hash+combine charge: the rows reaching the
  // exchange, exactly as the unfused body counts them.
  FABRIC_RETURN_IF_ERROR(task.Compute(
      active.size() * cost.spark_row_process_cpu * cost.data_scale));
  SpillPolicy spill = TaskSpillPolicy(task);
  Combiner combiner(&fused.combine, &spill);
  for (uint32_t i : active) {
    FABRIC_RETURN_IF_ERROR(combiner.Add(rows[i]));
  }
  return combiner.Finish();
}

// Runs (or re-runs) the map stage of one exchange: every map whose
// output was never committed or was lost with its executor recomputes
// its input partition from lineage, hash-partitions (and optionally
// map-side combines) it, spills the blocks to local disk and commits
// them to the block store.
Status RunMapStage(sim::Process& driver, SparkCluster* cluster,
                   const Plan* node) {
  ShuffleManager* manager = cluster->shuffle_manager();
  const std::shared_ptr<ExchangeSpec>& spec = node->exchange;
  if (spec->shuffle_id < 0) {
    spec->shuffle_id =
        manager->Register(node->child->NumPartitions(), spec->num_partitions);
  }
  const int sid = spec->shuffle_id;
  auto missing =
      std::make_shared<const std::vector<int>>(manager->MissingMaps(sid));
  if (missing->empty()) return Status::OK();
  uint64_t span = obs::TraceBegin(
      "spark", "stage",
      {{"kind", "map"},
       {"shuffle", sid},
       {"tasks", static_cast<int>(missing->size())}});
  std::shared_ptr<const Plan> child = node->child;
  std::shared_ptr<const FusedMapStage> fused = TryFuseMapStage(node, cluster);
  if (fused != nullptr) obs::IncrCounter("spark.fused_map_stages");
  auto result = cluster->RunJob(
      driver, StrCat("shuffle-map-s", sid),
      static_cast<int>(missing->size()),
      [child, spec, missing, manager, sid, fused](TaskContext& task)
          -> Status {
        const int map = (*missing)[task.task];
        const CostModel& cost = task.cluster->cost();
        std::vector<storage::Row> rows;
        if (fused != nullptr) {
          FABRIC_ASSIGN_OR_RETURN(rows, RunFusedMap(task, *fused, map));
        } else {
          FABRIC_ASSIGN_OR_RETURN(rows, child->Compute(task, map));
          // Hashing every row (plus the map-side combine when present).
          FABRIC_RETURN_IF_ERROR(task.Compute(
              rows.size() * cost.spark_row_process_cpu * cost.data_scale));
          if (spec->combine != nullptr) {
            SpillPolicy spill = TaskSpillPolicy(task);
            Combiner combiner(&*spec->combine, &spill);
            for (const storage::Row& row : rows) {
              FABRIC_RETURN_IF_ERROR(combiner.Add(row));
            }
            FABRIC_ASSIGN_OR_RETURN(rows, combiner.Finish());
          }
        }
        const double bytes = storage::ProfileRows(rows)
                                 .ScaleBy(cost.data_scale)
                                 .raw_bytes;
        std::vector<std::vector<storage::Row>> blocks(spec->num_partitions);
        for (storage::Row& row : rows) {
          blocks[PartitionOf(row, spec->keys, spec->num_partitions)]
              .push_back(std::move(row));
        }
        if (bytes > 0 && task.worker_host().has_disk()) {
          FABRIC_RETURN_IF_ERROR(task.cluster->network()->Transfer(
              *task.process, {task.worker_host().disk}, bytes));
        }
        manager->CommitMapOutput(sid, map, task.worker, std::move(blocks));
        return Status::OK();
      });
  obs::TraceEnd(span, "spark", "stage");
  return result.ok() ? Status::OK() : result.status();
}

// Materializes every missing map output under `plan`, inner exchanges
// first. A fetch failure inside a map stage (its input reads an inner
// shuffle that lost blocks mid-stage) restarts the sweep.
Status PrepareShuffles(sim::Process& driver, SparkCluster* cluster,
                       const std::shared_ptr<const Plan>& plan) {
  std::vector<const Plan*> exchanges;
  CollectExchangesPostOrder(plan.get(), &exchanges);
  if (exchanges.empty()) return Status::OK();
  Status last = Status::OK();
  for (int round = 0; round < kMaxStageRounds; ++round) {
    bool resubmit = false;
    for (const Plan* node : exchanges) {
      Status status = RunMapStage(driver, cluster, node);
      if (status.ok()) continue;
      if (!IsFetchFailure(status)) return status;
      last = status;
      resubmit = true;
      obs::IncrCounter("spark.shuffle.stage_resubmits");
      obs::TraceEvent("spark", "stage.resubmit",
                      {{"shuffle", node->exchange->shuffle_id}});
      break;
    }
    if (!resubmit) return Status::OK();
  }
  return last;
}

}  // namespace

bool HasExchange(const Plan& plan) {
  if (plan.kind == Plan::Kind::kExchange) return true;
  if (plan.child != nullptr && HasExchange(*plan.child)) return true;
  return plan.other != nullptr && HasExchange(*plan.other);
}

Result<SparkCluster::JobStats> RunPlanJob(
    sim::Process& driver, SparkCluster* cluster, const std::string& name,
    const std::shared_ptr<const Plan>& plan, int num_tasks,
    std::function<Status(TaskContext&)> body) {
  if (!HasExchange(*plan)) {
    return cluster->RunJob(driver, name, num_tasks, std::move(body));
  }
  Status last = Status::OK();
  for (int round = 0; round < kMaxStageRounds; ++round) {
    FABRIC_RETURN_IF_ERROR(PrepareShuffles(driver, cluster, plan));
    auto job = cluster->RunJob(driver, name, num_tasks, body);
    if (job.ok() || !IsFetchFailure(job.status())) return job;
    last = job.status();
    obs::IncrCounter("spark.shuffle.stage_resubmits");
    obs::TraceEvent("spark", "stage.resubmit", {{"job", name}});
  }
  return last;
}

}  // namespace fabric::spark::shuffle
