#ifndef FABRIC_SPARK_TYPES_H_
#define FABRIC_SPARK_TYPES_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace fabric::spark {

// Key=value options passed through the External Data Source API
// (Table 1's `opts`: host, user, table, numpartitions, ...). Keys are
// case-insensitive (stored lower).
class SourceOptions {
 public:
  SourceOptions() = default;

  SourceOptions& Set(const std::string& key, const std::string& value);
  SourceOptions& Set(const std::string& key, int64_t value);

  bool Has(const std::string& key) const;
  Result<std::string> Get(const std::string& key) const;
  std::string GetOr(const std::string& key,
                    const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

// Simple column-vs-literal predicates, the shape Spark's External Data
// Source API can push down to sources.
struct ColumnPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kIsNotNull };
  std::string column;
  Op op = Op::kEq;
  storage::Value literal;

  // Evaluates against a row of `schema`. NULL comparisons are false
  // (SQL semantics).
  Result<bool> Matches(const storage::Schema& schema,
                       const storage::Row& row) const;

  // Renders as a SQL condition ("score >= 20") for sources that push
  // down by query rewriting.
  std::string ToSqlCondition() const;
};

// Aggregate functions a source may evaluate on the DataFrame's behalf.
// The set mirrors what both the Spark-side shuffle aggregation and the
// Vertica SQL engine implement, so a pushed and an unpushed plan agree.
// kApproxCountDistinct and kHllSketch carry mergeable HyperLogLog
// register state instead of scalar accumulators (common/hll.h); the
// former finalizes to the cardinality estimate, the latter to the
// versioned serialized sketch.
enum class AggregateFn {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kApproxCountDistinct,
  kHllSketch,
};

const char* AggregateFnName(AggregateFn fn);  // "COUNT", "SUM", ...

// True for the sketch-state aggregates (variable-width partial state).
bool IsSketchFn(AggregateFn fn);

// One aggregate call over a source column. An empty `column` means
// COUNT(*) (counts rows, including NULLs).
struct AggregateCall {
  AggregateFn fn = AggregateFn::kCount;
  std::string column;
  // HLL precision for the sketch aggregates (ignored otherwise).
  int precision = 0;

  // Renders as a SQL select item ("SUM(score)", "COUNT(*)",
  // "APPROXIMATE_COUNT_DISTINCT(user_id, 12)") for sources that push
  // down by query rewriting.
  std::string ToSqlExpr() const;
};

// A grouped aggregation pushed whole into the source: the source returns
// one row per group (keys first, then the finalized aggregates).
struct AggregatePushDown {
  std::vector<std::string> group_columns;
  std::vector<AggregateCall> calls;
};

// What an action pushed into a scan source: column pruning, filters,
// whether only the row count is needed, a row limit, and optionally a
// whole grouped aggregation.
struct PushDown {
  std::vector<std::string> required_columns;  // empty: all
  std::vector<ColumnPredicate> filters;
  bool count_only = false;
  // Per-partition row cap (< 0: none). Sound because a global LIMIT n
  // needs at most n rows from every partition.
  int64_t limit = -1;
  std::optional<AggregatePushDown> aggregate;
};

enum class SaveMode { kOverwrite, kAppend, kErrorIfExists };

const char* SaveModeName(SaveMode mode);

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_TYPES_H_
