#ifndef FABRIC_SPARK_TYPES_H_
#define FABRIC_SPARK_TYPES_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace fabric::spark {

// Key=value options passed through the External Data Source API
// (Table 1's `opts`: host, user, table, numpartitions, ...). Keys are
// case-insensitive (stored lower).
class SourceOptions {
 public:
  SourceOptions() = default;

  SourceOptions& Set(const std::string& key, const std::string& value);
  SourceOptions& Set(const std::string& key, int64_t value);

  bool Has(const std::string& key) const;
  Result<std::string> Get(const std::string& key) const;
  std::string GetOr(const std::string& key,
                    const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

// Simple column-vs-literal predicates, the shape Spark's External Data
// Source API can push down to sources.
struct ColumnPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kIsNotNull };
  std::string column;
  Op op = Op::kEq;
  storage::Value literal;

  // Evaluates against a row of `schema`. NULL comparisons are false
  // (SQL semantics).
  Result<bool> Matches(const storage::Schema& schema,
                       const storage::Row& row) const;

  // Renders as a SQL condition ("score >= 20") for sources that push
  // down by query rewriting.
  std::string ToSqlCondition() const;
};

// What an action pushed into a scan source: column pruning, filters, and
// whether only the row count is needed.
struct PushDown {
  std::vector<std::string> required_columns;  // empty: all
  std::vector<ColumnPredicate> filters;
  bool count_only = false;
};

enum class SaveMode { kOverwrite, kAppend, kErrorIfExists };

const char* SaveModeName(SaveMode mode);

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_TYPES_H_
