#ifndef FABRIC_SPARK_DATASOURCE_H_
#define FABRIC_SPARK_DATASOURCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "spark/cluster.h"
#include "spark/types.h"
#include "storage/schema.h"

namespace fabric::spark {

// ---------------------------------------------------------------- reads

// A relation produced by a data source's load() path. Implementations
// (the Vertica connector's V2S, the JDBC DefaultSource, HDFS files)
// receive the pushed-down projection/filters/count and serve individual
// partitions from inside running tasks.
class ScanRelation {
 public:
  virtual ~ScanRelation() = default;

  // Schema of the relation (resolved on the driver at load time).
  virtual const storage::Schema& schema() const = 0;

  // How many partitions (hence tasks) a scan of this relation uses given
  // the user options; called on the driver.
  virtual int num_partitions() const = 0;

  // Whether the source can evaluate `agg` itself (one result row per
  // group out of ReadPartition). Only sources whose partitions hold
  // disjoint group sets may say yes — the planner concatenates the
  // per-partition results without a merge.
  virtual bool SupportsAggregatePushdown(const AggregatePushDown& agg) const {
    (void)agg;
    return false;
  }

  // Whether the source honors `push.limit` (a per-partition row cap).
  virtual bool SupportsLimitPushdown() const { return false; }

  // Reads one partition from within a task. With `push.count_only`, rows
  // stays empty and `count` carries the partition's row count.
  struct PartitionData {
    std::vector<storage::Row> rows;
    int64_t count = 0;
  };
  virtual Result<PartitionData> ReadPartition(TaskContext& task,
                                              int partition,
                                              const PushDown& push) = 0;
};

// --------------------------------------------------------------- writes

// A sink produced by a data source's save() path. The driver calls
// Setup() once, then each task calls WriteTaskPartition() (possibly more
// than once per partition index, under retries and speculation!), and
// the driver calls Finalize() after the job ends.
class WriteRelation {
 public:
  virtual ~WriteRelation() = default;

  virtual Status Setup(sim::Process& driver, int num_partitions) = 0;

  // Optional row -> task-index partitioner the sink wants applied before
  // the save job (e.g. S2V's pre-hash optimization aligns each task's
  // rows with one Vertica segment, Section 5). Returning nullptr (the
  // default) keeps the DataFrame's own partitioning. Only applicable to
  // driver-local data; the writer ignores it otherwise.
  virtual std::function<int(const storage::Row&)> Partitioner(
      int num_partitions) {
    (void)num_partitions;
    return nullptr;
  }
  virtual Status WriteTaskPartition(TaskContext& task, int partition,
                                    const std::vector<storage::Row>& rows) = 0;
  // `job_status` is the scheduler's verdict; Finalize returns the save's
  // overall outcome.
  virtual Status Finalize(sim::Process& driver, Status job_status) = 0;
};

// -------------------------------------------------------------- provider

class DataFrame;

// A data source implementation, registered under its format name (e.g.
// "com.vertica.spark.datasource.DefaultSource"). Mirrors Spark's
// RelationProvider / CreatableRelationProvider.
class DataSourceProvider {
 public:
  virtual ~DataSourceProvider() = default;

  virtual Result<std::shared_ptr<ScanRelation>> CreateScan(
      sim::Process& driver, const SourceOptions& options) = 0;

  virtual Result<std::shared_ptr<WriteRelation>> CreateWrite(
      sim::Process& driver, const SourceOptions& options, SaveMode mode,
      const storage::Schema& schema) = 0;
};

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_DATASOURCE_H_
