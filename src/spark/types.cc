#include "spark/types.h"

#include "common/string_util.h"

namespace fabric::spark {

SourceOptions& SourceOptions::Set(const std::string& key,
                                  const std::string& value) {
  entries_[ToLower(key)] = value;
  return *this;
}

SourceOptions& SourceOptions::Set(const std::string& key, int64_t value) {
  return Set(key, StrCat(value));
}

bool SourceOptions::Has(const std::string& key) const {
  return entries_.count(ToLower(key)) > 0;
}

Result<std::string> SourceOptions::Get(const std::string& key) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end()) {
    return NotFoundError(StrCat("missing option '", key, "'"));
  }
  return it->second;
}

std::string SourceOptions::GetOr(const std::string& key,
                                 const std::string& fallback) const {
  auto it = entries_.find(ToLower(key));
  return it == entries_.end() ? fallback : it->second;
}

Result<int64_t> SourceOptions::GetInt(const std::string& key) const {
  FABRIC_ASSIGN_OR_RETURN(std::string text, Get(key));
  int64_t value = 0;
  if (!ParseInt64(text, &value)) {
    return InvalidArgumentError(
        StrCat("option '", key, "' is not an integer: '", text, "'"));
  }
  return value;
}

int64_t SourceOptions::GetIntOr(const std::string& key,
                                int64_t fallback) const {
  auto value = GetInt(key);
  return value.ok() ? *value : fallback;
}

double SourceOptions::GetDoubleOr(const std::string& key,
                                  double fallback) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end()) return fallback;
  double value = 0;
  if (!ParseDouble(it->second, &value)) return fallback;
  return value;
}

Result<bool> ColumnPredicate::Matches(const storage::Schema& schema,
                                      const storage::Row& row) const {
  FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(column));
  const storage::Value& v = row[idx];
  if (op == Op::kIsNull) return v.is_null();
  if (op == Op::kIsNotNull) return !v.is_null();
  if (v.is_null() || literal.is_null()) return false;
  FABRIC_ASSIGN_OR_RETURN(int c, v.Compare(literal));
  switch (op) {
    case Op::kEq:
      return c == 0;
    case Op::kNe:
      return c != 0;
    case Op::kLt:
      return c < 0;
    case Op::kLe:
      return c <= 0;
    case Op::kGt:
      return c > 0;
    case Op::kGe:
      return c >= 0;
    default:
      return InternalError("corrupt predicate");
  }
}

std::string ColumnPredicate::ToSqlCondition() const {
  switch (op) {
    case Op::kIsNull:
      return StrCat(column, " IS NULL");
    case Op::kIsNotNull:
      return StrCat(column, " IS NOT NULL");
    case Op::kEq:
      return StrCat(column, " = ", literal.ToSqlLiteral());
    case Op::kNe:
      return StrCat(column, " <> ", literal.ToSqlLiteral());
    case Op::kLt:
      return StrCat(column, " < ", literal.ToSqlLiteral());
    case Op::kLe:
      return StrCat(column, " <= ", literal.ToSqlLiteral());
    case Op::kGt:
      return StrCat(column, " > ", literal.ToSqlLiteral());
    case Op::kGe:
      return StrCat(column, " >= ", literal.ToSqlLiteral());
  }
  return "";
}

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kAvg:
      return "AVG";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
    case AggregateFn::kApproxCountDistinct:
      return "APPROXIMATE_COUNT_DISTINCT";
    case AggregateFn::kHllSketch:
      return "HLL_SKETCH";
  }
  return "?";
}

bool IsSketchFn(AggregateFn fn) {
  return fn == AggregateFn::kApproxCountDistinct ||
         fn == AggregateFn::kHllSketch;
}

std::string AggregateCall::ToSqlExpr() const {
  if (IsSketchFn(fn)) {
    // Render the precision explicitly so the pushed query sketches with
    // exactly the registers the Spark-side combine would build.
    return StrCat(AggregateFnName(fn), "(", column, ", ", precision, ")");
  }
  return StrCat(AggregateFnName(fn), "(", column.empty() ? "*" : column,
                ")");
}

const char* SaveModeName(SaveMode mode) {
  switch (mode) {
    case SaveMode::kOverwrite:
      return "Overwrite";
    case SaveMode::kAppend:
      return "Append";
    case SaveMode::kErrorIfExists:
      return "ErrorIfExists";
  }
  return "?";
}

}  // namespace fabric::spark
