#include "spark/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "spark/shuffle/shuffle.h"

namespace fabric::spark {

const net::Host& TaskContext::worker_host() const {
  return cluster->worker_host(worker);
}

Status TaskContext::Compute(double seconds) const {
  return net::RunCpu(*process, cluster->network(), worker_host(), seconds);
}

std::optional<double> RandomFailureInjector::PlanKill(const std::string&,
                                                      int, int) {
  if (kills_planned_ >= max_kills_) return std::nullopt;
  if (!rng_.NextBool(kill_probability_)) return std::nullopt;
  ++kills_planned_;
  // Kill anywhere within 1.5x the typical attempt duration, so kills land
  // before, during and just after the attempt's useful work.
  return rng_.NextDouble() * typical_duration_ * 1.5;
}

ScriptedFailureInjector& ScriptedFailureInjector::KillAttempt(
    int task, int attempt, double after_seconds) {
  entries_.push_back({task, attempt, after_seconds});
  return *this;
}

std::optional<double> ScriptedFailureInjector::PlanKill(const std::string&,
                                                        int task,
                                                        int attempt) {
  for (const Entry& entry : entries_) {
    if (entry.task == task && entry.attempt == attempt) return entry.after;
  }
  return std::nullopt;
}

SparkCluster::SparkCluster(sim::Engine* engine, net::Network* network,
                           Options options)
    : engine_(engine), network_(network), options_(std::move(options)) {
  FABRIC_CHECK(options_.num_workers > 0);
  driver_ = net::AddHost(network_, "spark-driver",
                         options_.cost.nic_bandwidth, 0,
                         options_.cost.spark_cores_per_worker);
  for (int i = 0; i < options_.num_workers; ++i) {
    // Workers carry a local disk: shuffle map outputs are written to and
    // served from it (vertica nodes model theirs the same way).
    workers_.push_back(net::AddHost(
        network_, StrCat("spark-worker", i), options_.cost.nic_bandwidth, 0,
        options_.cost.spark_cores_per_worker,
        options_.cost.disk_write_bandwidth));
  }
  slots_ = std::make_unique<sim::Semaphore>(engine_, total_slots());
  shuffle_ = std::make_unique<shuffle::ShuffleManager>(this);
}

SparkCluster::~SparkCluster() = default;

struct SparkCluster::JobState {
  SparkCluster* cluster = nullptr;
  std::string name;
  std::function<Status(TaskContext&)> body;
  int num_tasks = 0;
  double started_at = 0;
  std::vector<bool> done;
  std::vector<int> failures;
  std::vector<int> next_attempt;
  std::vector<int> running;
  std::vector<bool> speculated;
  std::vector<double> earliest_start;  // of the active attempt(s)
  std::vector<double> durations;       // completed task durations
  int done_count = 0;
  int active = 0;  // attempts queued or running
  bool aborted = false;
  Status abort_status;
  bool finished = false;  // job settled (drives the speculation timer off)
  JobStats stats;
  std::unique_ptr<sim::Condition> progress;
};

Result<SparkCluster::JobStats> SparkCluster::RunJob(
    sim::Process& driver, const std::string& name, int num_tasks,
    std::function<Status(TaskContext&)> body) {
  FABRIC_CHECK(num_tasks > 0);
  auto job = std::make_shared<JobState>();
  job->cluster = this;
  job->name = StrCat(name, "#", job_counter_++);
  job->body = std::move(body);
  job->num_tasks = num_tasks;
  job->started_at = engine_->now();
  job->done.assign(num_tasks, false);
  job->failures.assign(num_tasks, 0);
  job->next_attempt.assign(num_tasks, 0);
  job->running.assign(num_tasks, 0);
  job->speculated.assign(num_tasks, false);
  job->earliest_start.assign(num_tasks, 0);
  job->stats.tasks = num_tasks;
  job->progress = std::make_unique<sim::Condition>(engine_);

  uint64_t job_span = obs::TraceBegin(
      "spark", "job", {{"job", job->name}, {"tasks", num_tasks}});
  obs::IncrCounter("spark.jobs");

  for (int task = 0; task < num_tasks; ++task) {
    LaunchAttempt(job, task, /*speculative=*/false);
  }

  // Periodic speculation scan (Spark's speculation daemon).
  if (options_.speculation) {
    engine_->ScheduleAt(engine_->now() + 0.25,
                        [this, job]() { RearmSpeculation(job); });
  }

  // Wait for completion or abort, then drain stragglers so the caller's
  // captured state stays valid.
  FABRIC_RETURN_IF_ERROR(job->progress->WaitUntil(driver, [&] {
    return job->done_count == job->num_tasks || job->aborted;
  }));
  FABRIC_RETURN_IF_ERROR(
      job->progress->WaitUntil(driver, [&] { return job->active == 0; }));
  job->finished = true;
  job->stats.makespan = engine_->now() - job->started_at;
  obs::TraceEnd(job_span, "spark", "job",
                {{"job", job->name},
                 {"aborted", job->aborted},
                 {"attempts", job->stats.attempts_launched},
                 {"speculative", job->stats.speculative_launched}});
  obs::ObserveValue("spark.job_makespan", job->stats.makespan);
  if (job->aborted) return job->abort_status;
  return job->stats;
}

void SparkCluster::RearmSpeculation(const std::shared_ptr<JobState>& job) {
  // Self-terminate once the job has settled, even when the driver died
  // before marking it finished (orphaned jobs must not keep the timer —
  // and with it the simulation — alive forever).
  if (job->finished ||
      ((job->done_count == job->num_tasks || job->aborted) &&
       job->active == 0)) {
    job->finished = true;
    return;
  }
  MaybeSpeculate(job);
  engine_->ScheduleAt(engine_->now() + 0.25,
                      [this, job]() { RearmSpeculation(job); });
}

void SparkCluster::MaybeSpeculate(const std::shared_ptr<JobState>& job) {
  if (!options_.speculation || job->finished) return;
  if (job->done_count <
      static_cast<int>(options_.speculation_quantile * job->num_tasks)) {
    return;
  }
  if (job->durations.empty()) return;
  std::vector<double> sorted = job->durations;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  double median = sorted[sorted.size() / 2];
  double threshold = std::max(median * options_.speculation_multiplier,
                              median + 0.1);
  for (int task = 0; task < job->num_tasks; ++task) {
    if (job->done[task] || job->speculated[task]) continue;
    if (job->running[task] != 1) continue;  // queued or already duplicated
    if (engine_->now() - job->earliest_start[task] <= threshold) continue;
    job->speculated[task] = true;
    obs::TraceEvent("spark", "task.speculate",
                    {{"job", job->name},
                     {"task", task},
                     {"threshold", threshold}});
    obs::IncrCounter("spark.speculative_launched");
    LaunchAttempt(job, task, /*speculative=*/true);
  }
}

void SparkCluster::LaunchAttempt(std::shared_ptr<JobState> job, int task,
                                 bool speculative) {
  int attempt = job->next_attempt[task]++;
  ++job->stats.attempts_launched;
  if (speculative) ++job->stats.speculative_launched;
  ++job->active;
  ++total_attempts_;
  obs::IncrCounter("spark.attempts_launched");
  engine_->Spawn(
      StrCat(job->name, ":t", task, ".", attempt),
      [this, job, task, attempt, speculative](sim::Process& self) {
        uint64_t attempt_span = 0;
        Status status = [&]() -> Status {
          FABRIC_RETURN_IF_ERROR(slots_->Acquire(self));
          struct SlotGuard {
            sim::Semaphore* slots;
            ~SlotGuard() { slots->Release(); }
          } slot_guard{slots_.get()};
          if (job->aborted || job->done[task]) return Status::OK();

          int worker = next_worker_;
          next_worker_ = (next_worker_ + 1) % num_workers();
          attempt_span = obs::TraceBegin("spark", "task",
                                         {{"job", job->name},
                                          {"task", task},
                                          {"attempt", attempt},
                                          {"worker", worker},
                                          {"speculative", speculative}});
          ++job->running[task];
          struct RunGuard {
            JobState* job;
            int task;
            ~RunGuard() { --job->running[task]; }
          } run_guard{job.get(), task};
          double started = engine_->now();
          if (job->running[task] == 1) job->earliest_start[task] = started;

          // Arm the failure adversary for this attempt.
          if (injector_ != nullptr) {
            if (auto delay = injector_->PlanKill(job->name, task, attempt)) {
              obs::TraceEvent("spark", "task.kill_planned",
                              {{"job", job->name},
                               {"task", task},
                               {"attempt", attempt},
                               {"delay", *delay}});
              obs::IncrCounter("spark.kills_planned");
              sim::Process* victim = &self;
              engine_->ScheduleAt(engine_->now() + *delay,
                                  [this, victim] { engine_->Kill(*victim); });
            }
          }

          FABRIC_RETURN_IF_ERROR(
              self.Sleep(options_.cost.task_launch_overhead));
          TaskContext context;
          context.cluster = this;
          context.task = task;
          context.attempt = attempt;
          context.worker = worker;
          context.speculative = speculative;
          context.process = &self;
          FABRIC_RETURN_IF_ERROR(job->body(context));
          // Report task result to the driver.
          FABRIC_RETURN_IF_ERROR(
              self.Sleep(options_.cost.task_result_overhead));
          if (!job->done[task]) {
            job->done[task] = true;
            ++job->done_count;
            job->durations.push_back(engine_->now() - started);
          }
          return Status::OK();
        }();
        obs::TraceEnd(attempt_span, "spark", "task",
                      {{"job", job->name},
                       {"task", task},
                       {"attempt", attempt},
                       {"ok", status.ok()}});
        if (!status.ok()) obs::IncrCounter("spark.attempts_failed");
        if (!status.ok() && !job->aborted && !job->done[task]) {
          ++job->failures[task];
          ++job->stats.attempts_failed;
          if (job->failures[task] >= options_.max_task_failures) {
            job->aborted = true;
            job->abort_status = AbortedError(
                StrCat("job ", job->name, " aborted: task ", task,
                       " failed ", job->failures[task],
                       " times; last error: ", status.ToString()));
          } else {
            LaunchAttempt(job, task, /*speculative=*/false);
          }
        }
        --job->active;
        job->progress->NotifyAll();
      });
}

}  // namespace fabric::spark
