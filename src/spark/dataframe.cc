#include "spark/dataframe.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/profile.h"

namespace fabric::spark {

using storage::Row;
using storage::Schema;

// ------------------------------------------------------------------ Plan

int Plan::NumPartitions() const {
  switch (kind) {
    case Kind::kParallelize:
      return static_cast<int>(data->size());
    case Kind::kScan:
      return relation->num_partitions();
    case Kind::kUnion:
      return child->NumPartitions() + other->NumPartitions();
    case Kind::kCoalesce:
      return target_partitions;
    default:
      return child->NumPartitions();
  }
}

Result<std::vector<Row>> Plan::Compute(TaskContext& task,
                                       int partition) const {
  const CostModel& cost = task.cluster->cost();
  switch (kind) {
    case Kind::kParallelize:
      return (*data)[partition];
    case Kind::kScan: {
      FABRIC_ASSIGN_OR_RETURN(ScanRelation::PartitionData part,
                              relation->ReadPartition(task, partition,
                                                      pushed));
      return std::move(part.rows);
    }
    case Kind::kFilterPredicate: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      for (Row& row : rows) {
        FABRIC_ASSIGN_OR_RETURN(bool keep,
                                predicate.Matches(child->schema, row));
        if (keep) out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kFilterFn: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      for (Row& row : rows) {
        FABRIC_ASSIGN_OR_RETURN(bool keep, filter_fn(row));
        if (keep) out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kMapFn: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      out.reserve(rows.size());
      for (const Row& row : rows) {
        // Schema violations surface at the sink (as in Spark, where Row
        // contents are not checked until an action consumes them).
        FABRIC_ASSIGN_OR_RETURN(Row mapped, map_fn(row));
        out.push_back(std::move(mapped));
      }
      return out;
    }
    case Kind::kSelect: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      std::vector<Row> out;
      out.reserve(rows.size());
      for (const Row& row : rows) {
        Row projected;
        projected.reserve(select_indices.size());
        for (int idx : select_indices) projected.push_back(row[idx]);
        out.push_back(std::move(projected));
      }
      return out;
    }
    case Kind::kUnion: {
      int left = child->NumPartitions();
      if (partition < left) return child->Compute(task, partition);
      return other->Compute(task, partition - left);
    }
    case Kind::kCoalesce: {
      // Output partition p folds a contiguous run of child partitions.
      int source = child->NumPartitions();
      int per = source / target_partitions;
      int extra = source % target_partitions;
      int begin = partition * per + std::min(partition, extra);
      int count = per + (partition < extra ? 1 : 0);
      std::vector<Row> out;
      for (int i = begin; i < begin + count; ++i) {
        FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                child->Compute(task, i));
        for (Row& row : rows) out.push_back(std::move(row));
      }
      return out;
    }
  }
  return InternalError("corrupt plan");
}

// ------------------------------------------------------------- pushdown

std::shared_ptr<const Plan> PushDownPass(std::shared_ptr<const Plan> plan) {
  if (plan->kind == Plan::Kind::kFilterPredicate) {
    auto child = PushDownPass(plan->child);
    if (child->kind == Plan::Kind::kScan) {
      auto fused = std::make_shared<Plan>(*child);
      fused->pushed.filters.push_back(plan->predicate);
      fused->schema = plan->schema;
      return fused;
    }
    if (child != plan->child) {
      auto copy = std::make_shared<Plan>(*plan);
      copy->child = child;
      return copy;
    }
    return plan;
  }
  if (plan->kind == Plan::Kind::kSelect) {
    auto child = PushDownPass(plan->child);
    if (child->kind == Plan::Kind::kScan &&
        child->pushed.required_columns.empty()) {
      auto fused = std::make_shared<Plan>(*child);
      for (int idx : plan->select_indices) {
        fused->pushed.required_columns.push_back(
            child->schema.column(idx).name);
      }
      fused->schema = plan->schema;
      return fused;
    }
    if (child != plan->child) {
      auto copy = std::make_shared<Plan>(*plan);
      copy->child = child;
      return copy;
    }
    return plan;
  }
  return plan;
}

// ------------------------------------------------------------ DataFrame

DataFrame DataFrame::Filter(ColumnPredicate predicate) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kFilterPredicate;
  node->schema = plan_->schema;
  node->child = plan_;
  node->predicate = std::move(predicate);
  return DataFrame(session_, node);
}

DataFrame DataFrame::Filter(
    std::function<Result<bool>(const Row&)> fn) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kFilterFn;
  node->schema = plan_->schema;
  node->child = plan_;
  node->filter_fn = std::move(fn);
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& columns) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kSelect;
  node->child = plan_;
  for (const std::string& name : columns) {
    FABRIC_ASSIGN_OR_RETURN(int idx, plan_->schema.IndexOf(name));
    node->select_indices.push_back(idx);
  }
  node->schema = plan_->schema.Project(node->select_indices);
  return DataFrame(session_, node);
}

DataFrame DataFrame::Map(std::function<Result<Row>(const Row&)> fn,
                         Schema out_schema) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kMapFn;
  node->schema = std::move(out_schema);
  node->child = plan_;
  node->map_fn = std::move(fn);
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Union(const DataFrame& other) const {
  if (!(plan_->schema == other.plan_->schema)) {
    return InvalidArgumentError("UNION schemas differ");
  }
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kUnion;
  node->schema = plan_->schema;
  node->child = plan_;
  node->other = other.plan_;
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Repartition(int num_partitions) const {
  if (num_partitions <= 0) {
    return InvalidArgumentError("partitions must be positive");
  }
  int current = NumPartitions();
  if (num_partitions == current) return *this;
  if (num_partitions < current) {
    auto node = std::make_shared<Plan>();
    node->kind = Plan::Kind::kCoalesce;
    node->schema = plan_->schema;
    node->child = plan_;
    node->target_partitions = num_partitions;
    return DataFrame(session_, node);
  }
  // Widening requires a shuffle; supported only for driver-local data.
  if (plan_->kind != Plan::Kind::kParallelize) {
    return UnimplementedError(
        "increasing partitions of a non-local DataFrame requires a "
        "shuffle, which this connector workload never needs");
  }
  std::vector<Row> all;
  for (const auto& part : *plan_->data) {
    for (const Row& row : part) all.push_back(row);
  }
  return session_->CreateDataFrame(plan_->schema, std::move(all),
                                   num_partitions);
}

Result<std::vector<Row>> DataFrame::Collect(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  const CostModel& cost = session_->cluster()->cost();
  auto results = std::make_shared<std::vector<std::vector<Row>>>(parts);
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      session_->cluster()->RunJob(
          driver, "collect", parts,
          [plan, results, &cost](TaskContext& task) -> Status {
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            // Ship the partition to the driver.
            storage::DataProfile profile = storage::ProfileRows(rows);
            profile.ScaleBy(cost.data_scale);
            FABRIC_RETURN_IF_ERROR(task.cluster->network()->Transfer(
                *task.process,
                {task.worker_host().ext_egress,
                 task.cluster->driver_host().ext_ingress},
                profile.raw_bytes));
            (*results)[task.task] = std::move(rows);
            return Status::OK();
          }));
  (void)stats;
  std::vector<Row> all;
  for (auto& part : *results) {
    for (Row& row : part) all.push_back(std::move(row));
  }
  return all;
}

Result<int64_t> DataFrame::Count(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  auto counts = std::make_shared<std::vector<int64_t>>(parts, 0);
  bool count_pushdown = plan->kind == Plan::Kind::kScan;
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      session_->cluster()->RunJob(
          driver, "count", parts,
          [plan, counts, count_pushdown](TaskContext& task) -> Status {
            if (count_pushdown) {
              PushDown push = plan->pushed;
              push.count_only = true;
              FABRIC_ASSIGN_OR_RETURN(
                  ScanRelation::PartitionData part,
                  plan->relation->ReadPartition(task, task.task, push));
              (*counts)[task.task] = part.count;
              return Status::OK();
            }
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            (*counts)[task.task] = static_cast<int64_t>(rows.size());
            return Status::OK();
          }));
  (void)stats;
  int64_t total = 0;
  for (int64_t c : *counts) total += c;
  return total;
}

Result<int64_t> DataFrame::Materialize(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  auto counts = std::make_shared<std::vector<int64_t>>(parts, 0);
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      session_->cluster()->RunJob(
          driver, "materialize", parts,
          [plan, counts](TaskContext& task) -> Status {
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            (*counts)[task.task] = static_cast<int64_t>(rows.size());
            return Status::OK();
          }));
  (void)stats;
  int64_t total = 0;
  for (int64_t c : *counts) total += c;
  return total;
}

DataFrameWriter DataFrame::Write() const {
  return DataFrameWriter(session_, *this);
}

// --------------------------------------------------------------- reader

Result<DataFrame> DataFrameReader::Load(sim::Process& driver) {
  FABRIC_ASSIGN_OR_RETURN(DataSourceProvider * provider,
                          session_->FindFormat(format_));
  FABRIC_ASSIGN_OR_RETURN(std::shared_ptr<ScanRelation> relation,
                          provider->CreateScan(driver, options_));
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kScan;
  node->schema = relation->schema();
  node->relation = std::move(relation);
  return DataFrame(session_, node);
}

// --------------------------------------------------------------- writer

Status DataFrameWriter::Save(sim::Process& driver) {
  FABRIC_ASSIGN_OR_RETURN(DataSourceProvider * provider,
                          session_->FindFormat(format_));
  DataFrame frame = frame_;
  // The connector may repartition the DataFrame during setup to reach
  // the requested parallelism (Section 3.2).
  int64_t requested = options_.GetIntOr("numpartitions", 0);
  if (requested > 0 && requested != frame.NumPartitions()) {
    Result<DataFrame> repartitioned =
        frame.Repartition(static_cast<int>(requested));
    if (repartitioned.ok()) {
      frame = std::move(*repartitioned);
    } else if (repartitioned.status().code() !=
               StatusCode::kUnimplemented) {
      return repartitioned.status();
    }
    // Widening a non-local DataFrame needs a shuffle; keep the existing
    // partitioning in that case.
  }
  FABRIC_ASSIGN_OR_RETURN(std::shared_ptr<WriteRelation> relation,
                          provider->CreateWrite(driver, options_, mode_,
                                                frame.schema()));
  auto plan = PushDownPass(frame.plan());
  int parts = plan->NumPartitions();
  // Sink-directed pre-partitioning (S2V pre-hash): only driver-local
  // data can be re-split without a shuffle.
  if (auto partitioner = relation->Partitioner(parts);
      partitioner != nullptr && plan->kind == Plan::Kind::kParallelize) {
    auto data = std::make_shared<std::vector<std::vector<Row>>>(parts);
    for (const auto& part : *plan->data) {
      for (const Row& row : part) {
        int target = partitioner(row);
        FABRIC_CHECK(target >= 0 && target < parts);
        (*data)[target].push_back(row);
      }
    }
    auto node = std::make_shared<Plan>();
    node->kind = Plan::Kind::kParallelize;
    node->schema = plan->schema;
    node->data = std::move(data);
    plan = node;
  }
  FABRIC_RETURN_IF_ERROR(relation->Setup(driver, parts));
  Result<SparkCluster::JobStats> job = session_->cluster()->RunJob(
      driver, "save", parts,
      [plan, relation](TaskContext& task) -> Status {
        FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                plan->Compute(task, task.task));
        return relation->WriteTaskPartition(task, task.task, rows);
      });
  Status job_status = job.ok() ? Status::OK() : job.status();
  return relation->Finalize(driver, job_status);
}

// -------------------------------------------------------------- session

void SparkSession::RegisterFormat(
    const std::string& name, std::shared_ptr<DataSourceProvider> provider) {
  formats_[ToLower(name)] = std::move(provider);
}

Result<DataSourceProvider*> SparkSession::FindFormat(
    const std::string& name) const {
  auto it = formats_.find(ToLower(name));
  if (it == formats_.end()) {
    return NotFoundError(StrCat("no data source format '", name, "'"));
  }
  return it->second.get();
}

Result<DataFrame> SparkSession::CreateDataFrame(Schema schema,
                                                std::vector<Row> rows,
                                                int num_partitions) {
  if (num_partitions <= 0) {
    return InvalidArgumentError("partitions must be positive");
  }
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema, row));
  }
  auto data = std::make_shared<std::vector<std::vector<Row>>>(
      num_partitions);
  // Contiguous chunks (like parallelize's slicing).
  size_t per = rows.size() / num_partitions;
  size_t extra = rows.size() % num_partitions;
  size_t cursor = 0;
  for (int p = 0; p < num_partitions; ++p) {
    size_t count = per + (static_cast<size_t>(p) < extra ? 1 : 0);
    auto& part = (*data)[p];
    part.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      part.push_back(std::move(rows[cursor++]));
    }
  }
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kParallelize;
  node->schema = std::move(schema);
  node->data = std::move(data);
  return DataFrame(this, node);
}

}  // namespace fabric::spark
