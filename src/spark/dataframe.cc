#include "spark/dataframe.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "spark/shuffle/exec.h"
#include "spark/shuffle/shuffle.h"
#include "storage/profile.h"

namespace fabric::spark {

using storage::Row;
using storage::Schema;

// ------------------------------------------------------------------ Plan

int Plan::NumPartitions() const {
  switch (kind) {
    case Kind::kParallelize:
      return static_cast<int>(data->size());
    case Kind::kScan:
      return relation->num_partitions();
    case Kind::kUnion:
      return child->NumPartitions() + other->NumPartitions();
    case Kind::kCoalesce:
      return target_partitions;
    case Kind::kExchange:
      return exchange->num_partitions;
    default:
      return child->NumPartitions();
  }
}

Result<std::vector<Row>> Plan::Compute(TaskContext& task,
                                       int partition) const {
  const CostModel& cost = task.cluster->cost();
  switch (kind) {
    case Kind::kParallelize:
      return (*data)[partition];
    case Kind::kScan: {
      FABRIC_ASSIGN_OR_RETURN(ScanRelation::PartitionData part,
                              relation->ReadPartition(task, partition,
                                                      pushed));
      return std::move(part.rows);
    }
    case Kind::kFilterPredicate: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      for (Row& row : rows) {
        FABRIC_ASSIGN_OR_RETURN(bool keep,
                                predicate.Matches(child->schema, row));
        if (keep) out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kFilterFn: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      for (Row& row : rows) {
        FABRIC_ASSIGN_OR_RETURN(bool keep, filter_fn(row));
        if (keep) out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kMapFn: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      std::vector<Row> out;
      out.reserve(rows.size());
      for (const Row& row : rows) {
        // Schema violations surface at the sink (as in Spark, where Row
        // contents are not checked until an action consumes them).
        FABRIC_ASSIGN_OR_RETURN(Row mapped, map_fn(row));
        out.push_back(std::move(mapped));
      }
      return out;
    }
    case Kind::kSelect: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      std::vector<Row> out;
      out.reserve(rows.size());
      for (const Row& row : rows) {
        Row projected;
        projected.reserve(select_indices.size());
        for (int idx : select_indices) projected.push_back(row[idx]);
        out.push_back(std::move(projected));
      }
      return out;
    }
    case Kind::kUnion: {
      int left = child->NumPartitions();
      if (partition < left) return child->Compute(task, partition);
      return other->Compute(task, partition - left);
    }
    case Kind::kCoalesce: {
      // Output partition p folds a contiguous run of child partitions.
      int source = child->NumPartitions();
      int per = source / target_partitions;
      int extra = source % target_partitions;
      int begin = partition * per + std::min(partition, extra);
      int count = per + (partition < extra ? 1 : 0);
      std::vector<Row> out;
      for (int i = begin; i < begin + count; ++i) {
        FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                child->Compute(task, i));
        for (Row& row : rows) out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kExchange: {
      // The map stage committed this shuffle's blocks before the job
      // consuming it launched (shuffle::RunPlanJob); a task reaching an
      // unregistered exchange is a planner bug, not a runtime race.
      if (exchange->shuffle_id < 0) {
        return InternalError("exchange executed without a map stage");
      }
      return task.cluster->shuffle_manager()->FetchPartition(
          task, exchange->shuffle_id, partition);
    }
    case Kind::kHashAggregate: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute(rows.size() *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      shuffle::SpillPolicy spill = shuffle::TaskSpillPolicy(task);
      return shuffle::MergePartials(rows, *agg, &spill);
    }
    case Kind::kHashJoin: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> left,
                              child->Compute(task, partition));
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> right,
                              other->Compute(task, partition));
      FABRIC_RETURN_IF_ERROR(task.Compute((left.size() + right.size()) *
                                          cost.spark_row_process_cpu *
                                          cost.data_scale));
      // Build on the left, probe in right-row order: deterministic
      // output, and rows with any NULL key never match (SQL equi-join).
      auto has_null_key = [](const Row& row, const std::vector<int>& keys) {
        for (int k : keys) {
          if (row[k].is_null()) return true;
        }
        return false;
      };
      const double budget = task.cluster->options().task_memory_bytes;
      if (budget <= 0) {
        std::map<std::string, std::vector<size_t>> table;
        for (size_t i = 0; i < left.size(); ++i) {
          if (has_null_key(left[i], join_left_keys)) continue;
          table[shuffle::GroupKeyOf(left[i], join_left_keys)].push_back(i);
        }
        std::vector<Row> out;
        for (const Row& rrow : right) {
          if (has_null_key(rrow, join_right_keys)) continue;
          auto it = table.find(shuffle::GroupKeyOf(rrow, join_right_keys));
          if (it == table.end()) continue;
          for (size_t i : it->second) {
            Row row = left[i];
            row.insert(row.end(), rrow.begin(), rrow.end());
            out.push_back(std::move(row));
          }
        }
        return out;
      }
      // Budgeted join: multi-pass build (hybrid hash). Each pass builds
      // as much of the left side as the budget holds and probes the full
      // right side; on overflow the probe side is spilled once and
      // re-read per extra pass. Matches are collected as (right, left)
      // index pairs and sorted, which is exactly the unbudgeted output
      // order (right-row order, left indices ascending).
      shuffle::SpillPolicy spill = shuffle::TaskSpillPolicy(task);
      const double right_bytes = storage::ProfileRows(right)
                                     .ScaleBy(cost.data_scale)
                                     .raw_bytes;
      std::vector<std::pair<size_t, size_t>> matches;
      size_t start = 0;
      int pass = 0;
      bool spilled = false;
      do {
        std::map<std::string, std::vector<size_t>> table;
        double resident = 0;
        size_t i = start;
        for (; i < left.size(); ++i) {
          if (has_null_key(left[i], join_left_keys)) continue;
          std::string key = shuffle::GroupKeyOf(left[i], join_left_keys);
          resident += static_cast<double>(key.size()) + 64;
          table[std::move(key)].push_back(i);
          if (resident > budget && i + 1 < left.size()) {
            ++i;
            break;
          }
        }
        if (pass > 0 && spill.charge_read) {
          // Re-read the spilled probe side for this extra pass.
          FABRIC_RETURN_IF_ERROR(spill.charge_read(right_bytes));
        }
        for (size_t r = 0; r < right.size(); ++r) {
          if (has_null_key(right[r], join_right_keys)) continue;
          auto it =
              table.find(shuffle::GroupKeyOf(right[r], join_right_keys));
          if (it == table.end()) continue;
          for (size_t l : it->second) matches.emplace_back(r, l);
        }
        start = i;
        ++pass;
        if (start < left.size() && !spilled) {
          spilled = true;
          if (spill.charge_write) {
            FABRIC_RETURN_IF_ERROR(spill.charge_write(right_bytes));
          }
        }
      } while (start < left.size());
      std::sort(matches.begin(), matches.end());
      std::vector<Row> out;
      out.reserve(matches.size());
      for (const auto& [r, l] : matches) {
        Row row = left[l];
        row.insert(row.end(), right[r].begin(), right[r].end());
        out.push_back(std::move(row));
      }
      return out;
    }
    case Kind::kLimit: {
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              child->Compute(task, partition));
      if (static_cast<int64_t>(rows.size()) > limit) rows.resize(limit);
      return rows;
    }
  }
  return InternalError("corrupt plan");
}

// ------------------------------------------------------------- pushdown

namespace {

// Re-parents `plan` onto a rewritten child, sharing the original node
// when nothing below it changed.
std::shared_ptr<const Plan> WithChild(const std::shared_ptr<const Plan>& plan,
                                      std::shared_ptr<const Plan> child) {
  if (child == plan->child) return plan;
  auto copy = std::make_shared<Plan>(*plan);
  copy->child = std::move(child);
  return copy;
}

// A scan that already evaluates an aggregate or a row cap returns
// transformed rows; later filters/selects refer to those output rows and
// must not be folded into the scan's own WHERE/projection.
bool ScanAcceptsRowPushdowns(const Plan& scan) {
  return !scan.pushed.aggregate.has_value() && !scan.pushed.count_only;
}

}  // namespace

std::shared_ptr<const Plan> PushDownPass(std::shared_ptr<const Plan> plan) {
  switch (plan->kind) {
    case Plan::Kind::kFilterPredicate: {
      auto child = PushDownPass(plan->child);
      // A filter commutes with the scan's WHERE but not with a pushed
      // LIMIT (the cap samples rows before the filter would run).
      if (child->kind == Plan::Kind::kScan &&
          ScanAcceptsRowPushdowns(*child) && child->pushed.limit < 0) {
        auto fused = std::make_shared<Plan>(*child);
        fused->pushed.filters.push_back(plan->predicate);
        fused->schema = plan->schema;
        return fused;
      }
      return WithChild(plan, std::move(child));
    }
    case Plan::Kind::kSelect: {
      auto child = PushDownPass(plan->child);
      // Projection commutes with a pushed LIMIT (same rows, fewer
      // columns) but not with a pushed aggregate.
      if (child->kind == Plan::Kind::kScan &&
          ScanAcceptsRowPushdowns(*child) &&
          child->pushed.required_columns.empty()) {
        auto fused = std::make_shared<Plan>(*child);
        for (int idx : plan->select_indices) {
          fused->pushed.required_columns.push_back(
              child->schema.column(idx).name);
        }
        fused->schema = plan->schema;
        return fused;
      }
      return WithChild(plan, std::move(child));
    }
    case Plan::Kind::kLimit: {
      auto child = PushDownPass(plan->child);
      if (child->kind == Plan::Kind::kScan &&
          !child->pushed.count_only &&
          child->relation->SupportsLimitPushdown()) {
        auto fused = std::make_shared<Plan>(*child);
        fused->pushed.limit = fused->pushed.limit >= 0
                                  ? std::min(fused->pushed.limit, plan->limit)
                                  : plan->limit;
        return fused;
      }
      return WithChild(plan, std::move(child));
    }
    case Plan::Kind::kHashAggregate: {
      // The child is always this aggregation's exchange. When the scan
      // below it can evaluate the whole grouped aggregate (disjoint
      // group sets per partition), fuse the full stack into the scan —
      // the shuffle disappears.
      auto inner = PushDownPass(plan->child->child);
      if (inner->kind == Plan::Kind::kScan &&
          ScanAcceptsRowPushdowns(*inner) && inner->pushed.limit < 0) {
        AggregatePushDown spec;
        for (int k : plan->agg->keys) {
          spec.group_columns.push_back(plan->agg->in_schema.column(k).name);
        }
        for (const shuffle::AggCall& call : plan->agg->calls) {
          spec.calls.push_back(
              {call.fn,
               call.column < 0
                   ? std::string()
                   : plan->agg->in_schema.column(call.column).name,
               call.precision});
        }
        if (inner->relation->SupportsAggregatePushdown(spec)) {
          auto fused = std::make_shared<Plan>(*inner);
          fused->pushed.aggregate = std::move(spec);
          fused->schema = plan->schema;
          return fused;
        }
      }
      if (inner != plan->child->child) {
        auto exchange = std::make_shared<Plan>(*plan->child);
        exchange->child = std::move(inner);
        return WithChild(plan, std::move(exchange));
      }
      return plan;
    }
    case Plan::Kind::kExchange: {
      return WithChild(plan, PushDownPass(plan->child));
    }
    case Plan::Kind::kHashJoin: {
      // Recurse through both exchange inputs so filters/selects below
      // the join still reach their scans.
      auto left = PushDownPass(plan->child);
      auto right = PushDownPass(plan->other);
      if (left == plan->child && right == plan->other) return plan;
      auto copy = std::make_shared<Plan>(*plan);
      copy->child = std::move(left);
      copy->other = std::move(right);
      return copy;
    }
    default:
      return plan;
  }
}

// ------------------------------------------------------------ DataFrame

DataFrame DataFrame::Filter(ColumnPredicate predicate) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kFilterPredicate;
  node->schema = plan_->schema;
  node->child = plan_;
  node->predicate = std::move(predicate);
  return DataFrame(session_, node);
}

DataFrame DataFrame::Filter(
    std::function<Result<bool>(const Row&)> fn) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kFilterFn;
  node->schema = plan_->schema;
  node->child = plan_;
  node->filter_fn = std::move(fn);
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& columns) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kSelect;
  node->child = plan_;
  for (const std::string& name : columns) {
    FABRIC_ASSIGN_OR_RETURN(int idx, plan_->schema.IndexOf(name));
    node->select_indices.push_back(idx);
  }
  node->schema = plan_->schema.Project(node->select_indices);
  return DataFrame(session_, node);
}

DataFrame DataFrame::Map(std::function<Result<Row>(const Row&)> fn,
                         Schema out_schema) const {
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kMapFn;
  node->schema = std::move(out_schema);
  node->child = plan_;
  node->map_fn = std::move(fn);
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Union(const DataFrame& other) const {
  if (!(plan_->schema == other.plan_->schema)) {
    return InvalidArgumentError("UNION schemas differ");
  }
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kUnion;
  node->schema = plan_->schema;
  node->child = plan_;
  node->other = other.plan_;
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Repartition(int num_partitions) const {
  if (num_partitions <= 0) {
    return InvalidArgumentError("partitions must be positive");
  }
  int current = NumPartitions();
  if (num_partitions == current) return *this;
  if (num_partitions < current) {
    auto node = std::make_shared<Plan>();
    node->kind = Plan::Kind::kCoalesce;
    node->schema = plan_->schema;
    node->child = plan_;
    node->target_partitions = num_partitions;
    return DataFrame(session_, node);
  }
  // Widening driver-local data reslices it in place (no cluster work).
  if (plan_->kind == Plan::Kind::kParallelize) {
    std::vector<Row> all;
    for (const auto& part : *plan_->data) {
      for (const Row& row : part) all.push_back(row);
    }
    return session_->CreateDataFrame(plan_->schema, std::move(all),
                                     num_partitions);
  }
  // Everything else widens through a shuffle hashed over all columns.
  auto spec = std::make_shared<shuffle::ExchangeSpec>();
  spec->num_partitions = num_partitions;
  spec->keys.resize(plan_->schema.num_columns());
  std::iota(spec->keys.begin(), spec->keys.end(), 0);
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kExchange;
  node->schema = plan_->schema;
  node->child = plan_;
  node->exchange = std::move(spec);
  return DataFrame(session_, node);
}

Result<GroupedDataFrame> DataFrame::GroupBy(
    const std::vector<std::string>& columns) const {
  std::vector<int> keys;
  keys.reserve(columns.size());
  for (const std::string& name : columns) {
    FABRIC_ASSIGN_OR_RETURN(int idx, plan_->schema.IndexOf(name));
    keys.push_back(idx);
  }
  return GroupedDataFrame(*this, std::move(keys));
}

Result<DataFrame> GroupedDataFrame::Agg(
    const std::vector<AggregateRequest>& aggs) const {
  if (aggs.empty()) {
    return InvalidArgumentError("Agg() needs at least one aggregate");
  }
  const Schema& in_schema = frame_.schema();
  auto agg_plan = std::make_shared<shuffle::AggPlan>();
  agg_plan->keys = key_indices_;
  agg_plan->in_schema = in_schema;
  std::vector<storage::ColumnDef> out_defs;
  for (int k : key_indices_) out_defs.push_back(in_schema.column(k));
  for (const AggregateRequest& req : aggs) {
    int col = -1;
    if (req.column.empty()) {
      if (req.fn != AggregateFn::kCount) {
        return InvalidArgumentError(
            StrCat(AggregateFnName(req.fn), " needs a column argument"));
      }
    } else {
      FABRIC_ASSIGN_OR_RETURN(col, in_schema.IndexOf(req.column));
    }
    if (IsSketchFn(req.fn) && !hll::ValidPrecision(req.precision)) {
      return InvalidArgumentError(
          StrCat(AggregateFnName(req.fn), " precision must be in [",
                 hll::kMinPrecision, ", ", hll::kMaxPrecision, "], got ",
                 req.precision));
    }
    agg_plan->calls.push_back({req.fn, col, req.precision});
    storage::DataType out_type;
    switch (req.fn) {
      case AggregateFn::kCount:
      case AggregateFn::kApproxCountDistinct:
        out_type = storage::DataType::kInt64;
        break;
      case AggregateFn::kSum:
      case AggregateFn::kAvg:
        out_type = storage::DataType::kFloat64;
        break;
      case AggregateFn::kHllSketch:
        out_type = storage::DataType::kVarchar;
        break;
      default:
        out_type = in_schema.column(col).type;
    }
    out_defs.push_back(
        {StrCat(ToLower(AggregateFnName(req.fn)), "(",
                col < 0 ? "*" : in_schema.column(col).name, ")"),
         out_type});
  }
  agg_plan->out_schema = Schema(std::move(out_defs));

  auto spec = std::make_shared<shuffle::ExchangeSpec>();
  // Partial rows carry the group keys at positions 0..k-1. With no keys
  // every partial belongs to the single global group: one reducer.
  spec->keys.resize(key_indices_.size());
  std::iota(spec->keys.begin(), spec->keys.end(), 0);
  spec->num_partitions =
      key_indices_.empty() ? 1 : frame_.NumPartitions();
  spec->combine = agg_plan;

  auto exchange = std::make_shared<Plan>();
  exchange->kind = Plan::Kind::kExchange;
  exchange->schema = shuffle::PartialSchema(*agg_plan);
  exchange->child = frame_.plan();
  exchange->exchange = std::move(spec);

  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kHashAggregate;
  node->schema = agg_plan->out_schema;
  node->child = std::move(exchange);
  node->agg = std::move(agg_plan);
  return DataFrame(frame_.session(), node);
}

Result<DataFrame> DataFrame::Join(
    const DataFrame& other, const std::vector<std::string>& left_on,
    const std::vector<std::string>& right_on) const {
  if (left_on.empty() || left_on.size() != right_on.size()) {
    return InvalidArgumentError(
        "JOIN needs the same non-zero number of key columns on each side");
  }
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  for (const std::string& name : left_on) {
    FABRIC_ASSIGN_OR_RETURN(int idx, plan_->schema.IndexOf(name));
    left_keys.push_back(idx);
  }
  for (const std::string& name : right_on) {
    FABRIC_ASSIGN_OR_RETURN(int idx, other.plan_->schema.IndexOf(name));
    right_keys.push_back(idx);
  }
  // Both sides hash their key values into the same partition count, so
  // equal keys meet in the same reduce task.
  const int partitions =
      std::max(plan_->NumPartitions(), other.plan_->NumPartitions());
  auto make_exchange = [partitions](const std::shared_ptr<const Plan>& input,
                                    std::vector<int> keys) {
    auto spec = std::make_shared<shuffle::ExchangeSpec>();
    spec->num_partitions = partitions;
    spec->keys = std::move(keys);
    auto node = std::make_shared<Plan>();
    node->kind = Plan::Kind::kExchange;
    node->schema = input->schema;
    node->child = input;
    node->exchange = std::move(spec);
    return node;
  };
  // Output columns: left's then right's, with clashing right names
  // suffixed "_r" (and further "_r" until unique).
  std::set<std::string> taken;
  std::vector<storage::ColumnDef> out_defs;
  for (const auto& def : plan_->schema.columns()) {
    taken.insert(ToLower(def.name));
    out_defs.push_back(def);
  }
  for (const auto& def : other.plan_->schema.columns()) {
    std::string name = def.name;
    while (taken.count(ToLower(name)) > 0) name += "_r";
    taken.insert(ToLower(name));
    out_defs.push_back({std::move(name), def.type});
  }
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kHashJoin;
  node->schema = Schema(std::move(out_defs));
  node->child = make_exchange(plan_, left_keys);
  node->other = make_exchange(other.plan_, right_keys);
  node->join_left_keys = std::move(left_keys);
  node->join_right_keys = std::move(right_keys);
  return DataFrame(session_, node);
}

Result<DataFrame> DataFrame::Limit(int64_t n) const {
  if (n < 0) return InvalidArgumentError("LIMIT must be non-negative");
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kLimit;
  node->schema = plan_->schema;
  node->child = plan_;
  node->limit = n;
  return DataFrame(session_, node);
}

namespace {

// The row cap the action must re-apply globally after gathering the
// per-partition results (each partition was capped individually).
int64_t RootLimit(const Plan& plan) {
  if (plan.kind == Plan::Kind::kLimit) return plan.limit;
  if (plan.kind == Plan::Kind::kScan) return plan.pushed.limit;
  return -1;
}

}  // namespace

Result<std::vector<Row>> DataFrame::Collect(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  const CostModel& cost = session_->cluster()->cost();
  auto results = std::make_shared<std::vector<std::vector<Row>>>(parts);
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      shuffle::RunPlanJob(
          driver, session_->cluster(), "collect", plan, parts,
          [plan, results, &cost](TaskContext& task) -> Status {
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            // Ship the partition to the driver.
            storage::DataProfile profile = storage::ProfileRows(rows);
            profile.ScaleBy(cost.data_scale);
            FABRIC_RETURN_IF_ERROR(task.cluster->network()->Transfer(
                *task.process,
                {task.worker_host().ext_egress,
                 task.cluster->driver_host().ext_ingress},
                profile.raw_bytes));
            (*results)[task.task] = std::move(rows);
            return Status::OK();
          }));
  (void)stats;
  std::vector<Row> all;
  for (auto& part : *results) {
    for (Row& row : part) all.push_back(std::move(row));
  }
  // Each partition honored the cap locally; enforce it globally.
  int64_t cap = RootLimit(*plan);
  if (cap >= 0 && static_cast<int64_t>(all.size()) > cap) all.resize(cap);
  return all;
}

Result<int64_t> DataFrame::Count(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  auto counts = std::make_shared<std::vector<int64_t>>(parts, 0);
  // A scan already evaluating a pushed aggregate returns group rows; the
  // generic path counts those. (A pushed LIMIT is fine: the global
  // min() below makes the count exact either way.)
  bool count_pushdown = plan->kind == Plan::Kind::kScan &&
                        !plan->pushed.aggregate.has_value();
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      shuffle::RunPlanJob(
          driver, session_->cluster(), "count", plan, parts,
          [plan, counts, count_pushdown](TaskContext& task) -> Status {
            if (count_pushdown) {
              PushDown push = plan->pushed;
              push.count_only = true;
              FABRIC_ASSIGN_OR_RETURN(
                  ScanRelation::PartitionData part,
                  plan->relation->ReadPartition(task, task.task, push));
              (*counts)[task.task] = part.count;
              return Status::OK();
            }
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            (*counts)[task.task] = static_cast<int64_t>(rows.size());
            return Status::OK();
          }));
  (void)stats;
  int64_t total = 0;
  for (int64_t c : *counts) total += c;
  // Per-partition caps may add up past a global LIMIT; clamp. Exact:
  // min(sum_i min(p_i, L), L) == min(sum_i p_i, L).
  int64_t cap = RootLimit(*plan);
  if (cap >= 0) total = std::min(total, cap);
  return total;
}

Result<int64_t> DataFrame::Materialize(sim::Process& driver) const {
  auto plan = PushDownPass(plan_);
  int parts = plan->NumPartitions();
  auto counts = std::make_shared<std::vector<int64_t>>(parts, 0);
  FABRIC_ASSIGN_OR_RETURN(
      SparkCluster::JobStats stats,
      shuffle::RunPlanJob(
          driver, session_->cluster(), "materialize", plan, parts,
          [plan, counts](TaskContext& task) -> Status {
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                    plan->Compute(task, task.task));
            (*counts)[task.task] = static_cast<int64_t>(rows.size());
            return Status::OK();
          }));
  (void)stats;
  int64_t total = 0;
  for (int64_t c : *counts) total += c;
  int64_t cap = RootLimit(*plan);
  if (cap >= 0) total = std::min(total, cap);
  return total;
}

DataFrameWriter DataFrame::Write() const {
  return DataFrameWriter(session_, *this);
}

// --------------------------------------------------------------- reader

Result<DataFrame> DataFrameReader::Load(sim::Process& driver) {
  FABRIC_ASSIGN_OR_RETURN(DataSourceProvider * provider,
                          session_->FindFormat(format_));
  FABRIC_ASSIGN_OR_RETURN(std::shared_ptr<ScanRelation> relation,
                          provider->CreateScan(driver, options_));
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kScan;
  node->schema = relation->schema();
  node->relation = std::move(relation);
  return DataFrame(session_, node);
}

// --------------------------------------------------------------- writer

Status DataFrameWriter::Save(sim::Process& driver) {
  FABRIC_ASSIGN_OR_RETURN(DataSourceProvider * provider,
                          session_->FindFormat(format_));
  DataFrame frame = frame_;
  // The connector may repartition the DataFrame during setup to reach
  // the requested parallelism (Section 3.2).
  int64_t requested = options_.GetIntOr("numpartitions", 0);
  if (requested > 0 && requested != frame.NumPartitions()) {
    FABRIC_ASSIGN_OR_RETURN(frame,
                            frame.Repartition(static_cast<int>(requested)));
  }
  FABRIC_ASSIGN_OR_RETURN(std::shared_ptr<WriteRelation> relation,
                          provider->CreateWrite(driver, options_, mode_,
                                                frame.schema()));
  auto plan = PushDownPass(frame.plan());
  int parts = plan->NumPartitions();
  // Sink-directed pre-partitioning (S2V pre-hash): only driver-local
  // data can be re-split without a shuffle.
  if (auto partitioner = relation->Partitioner(parts);
      partitioner != nullptr && plan->kind == Plan::Kind::kParallelize) {
    auto data = std::make_shared<std::vector<std::vector<Row>>>(parts);
    for (const auto& part : *plan->data) {
      for (const Row& row : part) {
        int target = partitioner(row);
        FABRIC_CHECK(target >= 0 && target < parts);
        (*data)[target].push_back(row);
      }
    }
    auto node = std::make_shared<Plan>();
    node->kind = Plan::Kind::kParallelize;
    node->schema = plan->schema;
    node->data = std::move(data);
    plan = node;
  }
  FABRIC_RETURN_IF_ERROR(relation->Setup(driver, parts));
  Result<SparkCluster::JobStats> job = shuffle::RunPlanJob(
      driver, session_->cluster(), "save", plan, parts,
      [plan, relation](TaskContext& task) -> Status {
        FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                plan->Compute(task, task.task));
        return relation->WriteTaskPartition(task, task.task, rows);
      });
  Status job_status = job.ok() ? Status::OK() : job.status();
  return relation->Finalize(driver, job_status);
}

// -------------------------------------------------------------- session

void SparkSession::RegisterFormat(
    const std::string& name, std::shared_ptr<DataSourceProvider> provider) {
  formats_[ToLower(name)] = std::move(provider);
}

Result<DataSourceProvider*> SparkSession::FindFormat(
    const std::string& name) const {
  auto it = formats_.find(ToLower(name));
  if (it == formats_.end()) {
    return NotFoundError(StrCat("no data source format '", name, "'"));
  }
  return it->second.get();
}

Result<DataFrame> SparkSession::CreateDataFrame(Schema schema,
                                                std::vector<Row> rows,
                                                int num_partitions) {
  if (num_partitions <= 0) {
    return InvalidArgumentError("partitions must be positive");
  }
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema, row));
  }
  auto data = std::make_shared<std::vector<std::vector<Row>>>(
      num_partitions);
  // Contiguous chunks (like parallelize's slicing).
  size_t per = rows.size() / num_partitions;
  size_t extra = rows.size() % num_partitions;
  size_t cursor = 0;
  for (int p = 0; p < num_partitions; ++p) {
    size_t count = per + (static_cast<size_t>(p) < extra ? 1 : 0);
    auto& part = (*data)[p];
    part.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      part.push_back(std::move(rows[cursor++]));
    }
  }
  auto node = std::make_shared<Plan>();
  node->kind = Plan::Kind::kParallelize;
  node->schema = std::move(schema);
  node->data = std::move(data);
  return DataFrame(this, node);
}

}  // namespace fabric::spark
