#ifndef FABRIC_SPARK_CLUSTER_H_
#define FABRIC_SPARK_CLUSTER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/random.h"
#include "common/result.h"
#include "net/host.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::spark {

class SparkCluster;

namespace shuffle {
class ShuffleManager;
}  // namespace shuffle

// Context handed to the body of a running task attempt.
struct TaskContext {
  SparkCluster* cluster = nullptr;
  int task = 0;      // partition index
  int attempt = 0;   // 0 = original, >0 = retry or speculative duplicate
  int worker = 0;    // worker the attempt is running on
  bool speculative = false;
  sim::Process* process = nullptr;

  const net::Host& worker_host() const;
  // Charges `seconds` of CPU on this worker, sharing its cores fairly.
  Status Compute(double seconds) const;
};

// Decides whether (and when) to kill task attempts — the adversary that
// exercises the connector's exactly-once machinery. Implementations must
// be deterministic given their seed.
class FailureInjector {
 public:
  virtual ~FailureInjector() = default;

  // Called when an attempt starts; a returned value kills the attempt
  // that many virtual seconds later (if still running).
  virtual std::optional<double> PlanKill(const std::string& job, int task,
                                         int attempt) = 0;
};

// Kills each attempt with probability p at a random fraction of
// `typical_duration`, up to `max_kills` total.
class RandomFailureInjector : public FailureInjector {
 public:
  RandomFailureInjector(uint64_t seed, double kill_probability,
                        double typical_duration, int max_kills = 1 << 30)
      : rng_(seed),
        kill_probability_(kill_probability),
        typical_duration_(typical_duration),
        max_kills_(max_kills) {}

  std::optional<double> PlanKill(const std::string& job, int task,
                                 int attempt) override;

  int kills_planned() const { return kills_planned_; }

 private:
  Rng rng_;
  double kill_probability_;
  double typical_duration_;
  int max_kills_;
  int kills_planned_ = 0;
};

// Kills exactly the scripted (task, attempt) pairs after a fixed delay.
class ScriptedFailureInjector : public FailureInjector {
 public:
  ScriptedFailureInjector& KillAttempt(int task, int attempt,
                                       double after_seconds);

  std::optional<double> PlanKill(const std::string& job, int task,
                                 int attempt) override;

 private:
  struct Entry {
    int task;
    int attempt;
    double after;
  };
  std::vector<Entry> entries_;
};

// A Spark cluster: a driver plus N workers, each with an external NIC and
// a CPU pool, running a batch task scheduler with slot-based dispatch,
// bounded task retry and optional speculative execution (Section 2.1.2).
class SparkCluster {
 public:
  struct Options {
    int num_workers = 8;
    CostModel cost;
    bool speculation = true;
    // A running task becomes a speculation candidate once this fraction
    // of tasks has finished and its runtime exceeds the multiplier times
    // the median successful runtime (Spark's defaults).
    double speculation_quantile = 0.75;
    double speculation_multiplier = 1.5;
    int max_task_failures = 4;
    // How many times a reducer re-polls a missing/lost shuffle block
    // before surfacing a fetch failure (which triggers map-stage
    // re-execution), and the backoff between polls.
    int shuffle_fetch_retries = 3;
    double shuffle_fetch_backoff = 0.05;
    // Deterministic transient fetch-failure injection: each fetch
    // attempt fails with this probability (seeded), exercising the
    // per-fetch retry path without losing any blocks.
    double shuffle_flaky_fetch_rate = 0;
    uint64_t shuffle_flaky_fetch_seed = 7;
    // Fuse the map stage of a combining shuffle: a pushable
    // filter/select chain between the scan and the exchange is lowered
    // into vector kernels (src/exec) and surviving rows fold straight
    // into the partial-aggregate table, never materializing the
    // per-stage intermediate row vectors. Cost charges, traces and
    // results are identical to the unfused path (which remains the
    // fallback whenever a stage is not compilable).
    bool fuse_map_stages = true;
    // Per-task memory budget for hash operators (map-side combine,
    // reduce-side merge, hash-join build), bytes; 0 = unlimited. Over
    // budget the operator spills partitioned runs to the worker's
    // simulated local disk and merges them back — results are
    // byte-identical to the unbudgeted run (see shuffle::SpillPolicy).
    double task_memory_bytes = 0;
  };

  // Result of one job.
  struct JobStats {
    int tasks = 0;
    int attempts_launched = 0;
    int attempts_failed = 0;
    int speculative_launched = 0;
    double makespan = 0;
  };

  SparkCluster(sim::Engine* engine, net::Network* network, Options options);
  ~SparkCluster();

  sim::Engine* engine() const { return engine_; }
  net::Network* network() const { return network_; }
  const Options& options() const { return options_; }
  const CostModel& cost() const { return options_.cost; }

  int num_workers() const { return options_.num_workers; }
  const net::Host& worker_host(int worker) const { return workers_[worker]; }
  const net::Host& driver_host() const { return driver_; }
  int total_slots() const {
    return options_.num_workers * options_.cost.spark_slots_per_worker;
  }

  // Installs the failure adversary (nullptr disables). Not owned.
  void set_failure_injector(FailureInjector* injector) {
    injector_ = injector;
  }

  // Runs `num_tasks` independent tasks through the scheduler, blocking
  // the calling (driver) process until the job succeeds or is aborted.
  // `body` is the task closure: it must be safe to run the same task
  // index multiple times concurrently (speculation!). Returns ABORTED
  // after a task exhausts max_task_failures.
  Result<JobStats> RunJob(sim::Process& driver, const std::string& name,
                          int num_tasks,
                          std::function<Status(TaskContext&)> body);

  // Telemetry across all jobs.
  int64_t total_attempts() const { return total_attempts_; }

  // The cluster-wide shuffle block store (map outputs + fetch service).
  shuffle::ShuffleManager* shuffle_manager() const { return shuffle_.get(); }

 private:
  struct JobState;

  void LaunchAttempt(std::shared_ptr<JobState> job, int task,
                     bool speculative);
  void MaybeSpeculate(const std::shared_ptr<JobState>& job);
  void RearmSpeculation(const std::shared_ptr<JobState>& job);

  sim::Engine* engine_;
  net::Network* network_;
  Options options_;
  net::Host driver_;
  std::vector<net::Host> workers_;
  std::unique_ptr<sim::Semaphore> slots_;
  std::unique_ptr<shuffle::ShuffleManager> shuffle_;
  FailureInjector* injector_ = nullptr;
  int64_t total_attempts_ = 0;
  int64_t job_counter_ = 0;
  // Round-robin worker assignment cursor.
  int next_worker_ = 0;
};

}  // namespace fabric::spark

#endif  // FABRIC_SPARK_CLUSTER_H_
