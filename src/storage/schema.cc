#include "storage/schema.h"

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::storage {

Result<int> Schema::IndexOf(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return NotFoundError(StrCat("no column '", name, "'"));
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<ColumnDef> out;
  out.reserve(indices.size());
  for (int i : indices) {
    FABRIC_CHECK(i >= 0 && i < num_columns()) << "bad projection index";
    out.push_back(columns_[i]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToDdlBody() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

double RowRawSize(const Row& row) {
  double size = 0;
  for (const Value& v : row) size += v.RawSize();
  return size;
}

uint64_t RowSegmentationHash(const Row& row,
                             const std::vector<int>& column_indices) {
  uint64_t h = kSegmentationHashSeed;
  for (int i : column_indices) {
    FABRIC_CHECK(i >= 0 && i < static_cast<int>(row.size()));
    h = HashCombine(h, row[i].SegmentationHash());
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

void CoerceRow(const Schema& schema, Row* row) {
  for (int i = 0; i < schema.num_columns(); ++i) {
    Value& v = (*row)[i];
    if (!v.is_null() && schema.column(i).type == DataType::kFloat64 &&
        v.type() == DataType::kInt64) {
      v = Value::Float64(static_cast<double>(v.int64_value()));
    }
  }
}

Status ValidateRow(const Schema& schema, const Row& row) {
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return InvalidArgumentError(
        StrCat("row has ", row.size(), " values, schema has ",
               schema.num_columns(), " columns"));
  }
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (row[i].is_null()) continue;
    DataType expected = schema.column(i).type;
    DataType actual = row[i].type();
    if (actual == expected) continue;
    // Allow int64 into float columns (numeric widening on load).
    if (expected == DataType::kFloat64 && actual == DataType::kInt64) {
      continue;
    }
    return InvalidArgumentError(
        StrCat("column '", schema.column(i).name, "' expects ",
               DataTypeName(expected), ", got ", DataTypeName(actual)));
  }
  return Status::OK();
}

}  // namespace fabric::storage
