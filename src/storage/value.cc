#include "storage/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt64:
      return "INTEGER";
    case DataType::kFloat64:
      return "FLOAT";
    case DataType::kVarchar:
      return "VARCHAR";
  }
  return "?";
}

Result<DataType> ParseDataType(std::string_view name) {
  std::string lower = ToLower(name);
  // Strip a VARCHAR(n) length suffix if present.
  if (size_t paren = lower.find('('); paren != std::string::npos) {
    lower = lower.substr(0, paren);
  }
  if (lower == "bool" || lower == "boolean") return DataType::kBool;
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "long") {
    return DataType::kInt64;
  }
  if (lower == "float" || lower == "double" || lower == "real") {
    return DataType::kFloat64;
  }
  if (lower == "varchar" || lower == "string" || lower == "text" ||
      lower == "char") {
    return DataType::kVarchar;
  }
  return InvalidArgumentError(StrCat("unknown data type '", name, "'"));
}

DataType Value::type() const {
  FABRIC_CHECK(!is_null()) << "type() of NULL value";
  switch (data_.index()) {
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kFloat64;
    case 4:
      return DataType::kVarchar;
    default:
      break;
  }
  FABRIC_CHECK(false) << "corrupt value";
  return DataType::kBool;
}

Result<double> Value::AsDouble() const {
  if (is_null()) return InvalidArgumentError("NULL has no numeric value");
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kFloat64:
      return float64_value();
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kVarchar:
      return InvalidArgumentError("VARCHAR is not numeric");
  }
  return InternalError("corrupt value");
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (type() != other.type()) {
    // Numeric cross-type equality (1 == 1.0).
    auto a = AsDouble();
    auto b = other.AsDouble();
    if (a.ok() && b.ok()) return *a == *b;
    return false;
  }
  return data_ == other.data_;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (type() == DataType::kVarchar && other.type() == DataType::kVarchar) {
    int c = varchar_value().compare(other.varchar_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  auto a = AsDouble();
  auto b = other.AsDouble();
  if (a.ok() && b.ok()) {
    if (*a < *b) return -1;
    if (*a > *b) return 1;
    return 0;
  }
  return InvalidArgumentError(
      StrCat("cannot compare ", DataTypeName(type()), " with ",
             DataTypeName(other.type())));
}

uint64_t Value::SegmentationHash() const {
  if (is_null()) return Mix64(0xdeadULL);
  switch (type()) {
    case DataType::kBool:
      return HashBool(bool_value());
    case DataType::kInt64:
      return HashInt64(int64_value());
    case DataType::kFloat64:
      return HashDouble(float64_value());
    case DataType::kVarchar:
      return HashBytes(varchar_value());
  }
  return 0;
}

uint64_t Value::DistinctHash() const {
  return Mix64(SegmentationHash() ^ 0xc2b2ae3d27d4eb4fULL);
}

double Value::RawSize() const {
  if (is_null()) return 0;
  switch (type()) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kVarchar:
      return static_cast<double>(varchar_value().size());
  }
  return 0;
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return StrCat(int64_value());
    case DataType::kFloat64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", float64_value());
      std::string out = buf;
      // %.17g drops the point for integral values ("2", not "2.0") and
      // the lexer would hand that back as an Int64 literal; force a
      // float marker when the rendering is digits-only (inf/nan
      // spellings are left alone).
      if (out.find_first_not_of("-0123456789") == std::string::npos) {
        out += ".0";
      }
      return out;
    }
    case DataType::kVarchar: {
      std::string out = "'";
      for (char c : varchar_value()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return StrCat(int64_value());
    case DataType::kFloat64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", float64_value());
      return buf;
    }
    case DataType::kVarchar:
      return varchar_value();
  }
  return "NULL";
}

Result<Value> Value::ParseAs(DataType type, std::string_view text) {
  switch (type) {
    case DataType::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") return Bool(true);
      if (EqualsIgnoreCase(text, "false") || text == "0") return Bool(false);
      return InvalidArgumentError(StrCat("bad BOOLEAN literal '", text, "'"));
    }
    case DataType::kInt64: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return InvalidArgumentError(
            StrCat("bad INTEGER literal '", text, "'"));
      }
      return Int64(v);
    }
    case DataType::kFloat64: {
      double v = 0;
      if (!ParseDouble(text, &v)) {
        return InvalidArgumentError(StrCat("bad FLOAT literal '", text, "'"));
      }
      return Float64(v);
    }
    case DataType::kVarchar:
      return Varchar(std::string(text));
  }
  return InternalError("corrupt type");
}

}  // namespace fabric::storage
