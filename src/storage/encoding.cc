#include "storage/encoding.h"

#include <map>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::storage {
namespace {

// Nulls are carried as a bitmap ahead of the payload in every encoding.
void WriteNullBitmap(const std::vector<Value>& values, ByteWriter* writer) {
  uint8_t current = 0;
  int bit = 0;
  for (const Value& v : values) {
    if (v.is_null()) current |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      writer->PutU8(current);
      current = 0;
      bit = 0;
    }
  }
  if (bit != 0) writer->PutU8(current);
}

Result<std::vector<bool>> ReadNullBitmap(uint32_t num_rows,
                                         ByteReader* reader) {
  std::vector<bool> nulls(num_rows);
  uint8_t current = 0;
  for (uint32_t i = 0; i < num_rows; ++i) {
    if (i % 8 == 0) {
      FABRIC_ASSIGN_OR_RETURN(current, reader->GetU8());
    }
    nulls[i] = (current >> (i % 8)) & 1;
  }
  return nulls;
}

void WriteScalar(DataType type, const Value& value, ByteWriter* writer) {
  switch (type) {
    case DataType::kBool:
      writer->PutU8(value.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      writer->PutI64(value.int64_value());
      return;
    case DataType::kFloat64:
      writer->PutDouble(value.float64_value());
      return;
    case DataType::kVarchar:
      writer->PutString(value.varchar_value());
      return;
  }
  FABRIC_CHECK(false) << "corrupt type";
}

Result<Value> ReadScalar(DataType type, ByteReader* reader) {
  switch (type) {
    case DataType::kBool: {
      FABRIC_ASSIGN_OR_RETURN(uint8_t v, reader->GetU8());
      return Value::Bool(v != 0);
    }
    case DataType::kInt64: {
      FABRIC_ASSIGN_OR_RETURN(int64_t v, reader->GetI64());
      return Value::Int64(v);
    }
    case DataType::kFloat64: {
      FABRIC_ASSIGN_OR_RETURN(double v, reader->GetDouble());
      return Value::Float64(v);
    }
    case DataType::kVarchar: {
      FABRIC_ASSIGN_OR_RETURN(std::string v, reader->GetString());
      return Value::Varchar(std::move(v));
    }
  }
  return InternalError("corrupt type");
}

Status CheckTypes(DataType type, const std::vector<Value>& values) {
  for (const Value& v : values) {
    if (v.is_null()) continue;
    if (v.type() != type) {
      return InvalidArgumentError(
          StrCat("value of type ", DataTypeName(v.type()),
                 " in column of type ", DataTypeName(type)));
    }
  }
  return Status::OK();
}

// Key used to group equal values for RLE/dictionary. Display string is
// unambiguous per fixed type.
std::string GroupKey(const Value& v) {
  return v.is_null() ? std::string("\x01null") : v.ToDisplayString();
}

std::string EncodePlain(DataType type, const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  for (const Value& v : values) {
    if (!v.is_null()) WriteScalar(type, v, &writer);
  }
  return writer.Take();
}

std::string EncodeRle(DataType type, const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  size_t i = 0;
  uint32_t num_runs = 0;
  ByteWriter runs;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j].Equals(values[i]) &&
           values[j].is_null() == values[i].is_null()) {
      ++j;
    }
    runs.PutU32(static_cast<uint32_t>(j - i));
    if (!values[i].is_null()) {
      WriteScalar(type, values[i], &runs);
    }
    ++num_runs;
    i = j;
  }
  writer.PutU32(num_runs);
  writer.PutRaw(runs.buffer().data(), runs.size());
  return writer.Take();
}

std::string EncodeDictionary(DataType type,
                             const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  std::map<std::string, uint32_t> ids;
  std::vector<const Value*> dictionary;
  std::vector<uint32_t> indices;
  indices.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) continue;
    auto [it, inserted] =
        ids.emplace(GroupKey(v), static_cast<uint32_t>(dictionary.size()));
    if (inserted) dictionary.push_back(&v);
    indices.push_back(it->second);
  }
  writer.PutU32(static_cast<uint32_t>(dictionary.size()));
  for (const Value* v : dictionary) WriteScalar(type, *v, &writer);
  for (uint32_t idx : indices) writer.PutU32(idx);
  return writer.Take();
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDictionary:
      return "DICTIONARY";
  }
  return "?";
}

Result<ColumnChunk> EncodeColumnAs(DataType type, Encoding encoding,
                                   const std::vector<Value>& values) {
  FABRIC_RETURN_IF_ERROR(CheckTypes(type, values));
  ColumnChunk chunk;
  chunk.type = type;
  chunk.encoding = encoding;
  chunk.num_rows = static_cast<uint32_t>(values.size());
  switch (encoding) {
    case Encoding::kPlain:
      chunk.data = EncodePlain(type, values);
      break;
    case Encoding::kRle:
      chunk.data = EncodeRle(type, values);
      break;
    case Encoding::kDictionary:
      chunk.data = EncodeDictionary(type, values);
      break;
  }
  return chunk;
}

Result<ColumnChunk> EncodeColumn(DataType type,
                                 const std::vector<Value>& values) {
  FABRIC_RETURN_IF_ERROR(CheckTypes(type, values));
  Result<ColumnChunk> best = EncodeColumnAs(type, Encoding::kPlain, values);
  for (Encoding candidate : {Encoding::kRle, Encoding::kDictionary}) {
    auto chunk = EncodeColumnAs(type, candidate, values);
    if (chunk.ok() && chunk->data.size() < best->data.size()) {
      best = std::move(chunk);
    }
  }
  return best;
}

Result<std::vector<Value>> DecodeColumn(const ColumnChunk& chunk) {
  ByteReader reader(chunk.data);
  FABRIC_ASSIGN_OR_RETURN(std::vector<bool> nulls,
                          ReadNullBitmap(chunk.num_rows, &reader));
  std::vector<Value> values;
  values.reserve(chunk.num_rows);
  switch (chunk.encoding) {
    case Encoding::kPlain: {
      for (uint32_t i = 0; i < chunk.num_rows; ++i) {
        if (nulls[i]) {
          values.push_back(Value::Null());
        } else {
          FABRIC_ASSIGN_OR_RETURN(Value v, ReadScalar(chunk.type, &reader));
          values.push_back(std::move(v));
        }
      }
      break;
    }
    case Encoding::kRle: {
      FABRIC_ASSIGN_OR_RETURN(uint32_t num_runs, reader.GetU32());
      for (uint32_t r = 0; r < num_runs; ++r) {
        FABRIC_ASSIGN_OR_RETURN(uint32_t run, reader.GetU32());
        if (values.size() + run > chunk.num_rows) {
          return InvalidArgumentError("RLE runs exceed row count");
        }
        bool run_is_null = nulls[values.size()];
        Value v = Value::Null();
        if (!run_is_null) {
          FABRIC_ASSIGN_OR_RETURN(v, ReadScalar(chunk.type, &reader));
        }
        for (uint32_t k = 0; k < run; ++k) values.push_back(v);
      }
      break;
    }
    case Encoding::kDictionary: {
      FABRIC_ASSIGN_OR_RETURN(uint32_t dict_size, reader.GetU32());
      std::vector<Value> dictionary;
      dictionary.reserve(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        FABRIC_ASSIGN_OR_RETURN(Value v, ReadScalar(chunk.type, &reader));
        dictionary.push_back(std::move(v));
      }
      for (uint32_t i = 0; i < chunk.num_rows; ++i) {
        if (nulls[i]) {
          values.push_back(Value::Null());
          continue;
        }
        FABRIC_ASSIGN_OR_RETURN(uint32_t idx, reader.GetU32());
        if (idx >= dictionary.size()) {
          return InvalidArgumentError("dictionary index out of range");
        }
        values.push_back(dictionary[idx]);
      }
      break;
    }
  }
  if (values.size() != chunk.num_rows) {
    return InvalidArgumentError("decoded row count mismatch");
  }
  return values;
}

}  // namespace fabric::storage
