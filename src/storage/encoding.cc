#include "storage/encoding.h"

#include <map>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/column_cursor.h"

namespace fabric::storage {
namespace {

// Nulls are carried as a bitmap ahead of the payload in every encoding.
void WriteNullBitmap(const std::vector<Value>& values, ByteWriter* writer) {
  uint8_t current = 0;
  int bit = 0;
  for (const Value& v : values) {
    if (v.is_null()) current |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      writer->PutU8(current);
      current = 0;
      bit = 0;
    }
  }
  if (bit != 0) writer->PutU8(current);
}

void WriteScalar(DataType type, const Value& value, ByteWriter* writer) {
  switch (type) {
    case DataType::kBool:
      writer->PutU8(value.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      writer->PutI64(value.int64_value());
      return;
    case DataType::kFloat64:
      writer->PutDouble(value.float64_value());
      return;
    case DataType::kVarchar:
      writer->PutString(value.varchar_value());
      return;
  }
  FABRIC_CHECK(false) << "corrupt type";
}

Status CheckTypes(DataType type, const std::vector<Value>& values) {
  for (const Value& v : values) {
    if (v.is_null()) continue;
    if (v.type() != type) {
      return InvalidArgumentError(
          StrCat("value of type ", DataTypeName(v.type()),
                 " in column of type ", DataTypeName(type)));
    }
  }
  return Status::OK();
}

// Key used to group equal values for RLE/dictionary. Display string is
// unambiguous per fixed type.
std::string GroupKey(const Value& v) {
  return v.is_null() ? std::string("\x01null") : v.ToDisplayString();
}

std::string EncodePlain(DataType type, const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  for (const Value& v : values) {
    if (!v.is_null()) WriteScalar(type, v, &writer);
  }
  return writer.Take();
}

std::string EncodeRle(DataType type, const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  size_t i = 0;
  uint32_t num_runs = 0;
  ByteWriter runs;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j].Equals(values[i]) &&
           values[j].is_null() == values[i].is_null()) {
      ++j;
    }
    runs.PutU32(static_cast<uint32_t>(j - i));
    if (!values[i].is_null()) {
      WriteScalar(type, values[i], &runs);
    }
    ++num_runs;
    i = j;
  }
  writer.PutU32(num_runs);
  writer.PutRaw(runs.buffer().data(), runs.size());
  return writer.Take();
}

std::string EncodeDictionary(DataType type,
                             const std::vector<Value>& values) {
  ByteWriter writer;
  WriteNullBitmap(values, &writer);
  std::map<std::string, uint32_t> ids;
  std::vector<const Value*> dictionary;
  std::vector<uint32_t> indices;
  indices.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) continue;
    auto [it, inserted] =
        ids.emplace(GroupKey(v), static_cast<uint32_t>(dictionary.size()));
    if (inserted) dictionary.push_back(&v);
    indices.push_back(it->second);
  }
  writer.PutU32(static_cast<uint32_t>(dictionary.size()));
  for (const Value* v : dictionary) WriteScalar(type, *v, &writer);
  for (uint32_t idx : indices) writer.PutU32(idx);
  return writer.Take();
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDictionary:
      return "DICTIONARY";
  }
  return "?";
}

Result<ColumnChunk> EncodeColumnAs(DataType type, Encoding encoding,
                                   const std::vector<Value>& values) {
  FABRIC_RETURN_IF_ERROR(CheckTypes(type, values));
  ColumnChunk chunk;
  chunk.type = type;
  chunk.encoding = encoding;
  chunk.num_rows = static_cast<uint32_t>(values.size());
  switch (encoding) {
    case Encoding::kPlain:
      chunk.data = EncodePlain(type, values);
      break;
    case Encoding::kRle:
      chunk.data = EncodeRle(type, values);
      break;
    case Encoding::kDictionary:
      chunk.data = EncodeDictionary(type, values);
      break;
  }
  return chunk;
}

Result<ColumnChunk> EncodeColumn(DataType type,
                                 const std::vector<Value>& values) {
  FABRIC_RETURN_IF_ERROR(CheckTypes(type, values));
  Result<ColumnChunk> best = EncodeColumnAs(type, Encoding::kPlain, values);
  for (Encoding candidate : {Encoding::kRle, Encoding::kDictionary}) {
    auto chunk = EncodeColumnAs(type, candidate, values);
    if (chunk.ok() && chunk->data.size() < best->data.size()) {
      best = std::move(chunk);
    }
  }
  return best;
}

Result<std::vector<Value>> DecodeColumn(const ColumnChunk& chunk) {
  ColumnCursor cursor;
  FABRIC_RETURN_IF_ERROR(cursor.Open(&chunk));
  std::vector<Value> values;
  values.reserve(chunk.num_rows);
  ColumnBatch batch;
  while (true) {
    FABRIC_ASSIGN_OR_RETURN(bool more, cursor.Next(&batch));
    if (!more) break;
    switch (batch.layout) {
      case ColumnBatch::Layout::kPlainLayout: {
        size_t slot = 0;
        for (uint32_t i = batch.base; i < batch.base + batch.length; ++i) {
          values.push_back(batch.nulls[i]
                               ? Value::Null()
                               : batch.values.Box(chunk.type, slot++));
        }
        break;
      }
      case ColumnBatch::Layout::kRunLayout: {
        for (const RunSpan& span : batch.runs) {
          Value v = span.is_null ? Value::Null()
                                 : batch.values.Box(chunk.type, span.slot);
          for (uint32_t k = 0; k < span.length; ++k) values.push_back(v);
        }
        break;
      }
      case ColumnBatch::Layout::kCodeLayout: {
        size_t slot = 0;
        for (uint32_t i = batch.base; i < batch.base + batch.length; ++i) {
          if (batch.nulls[i]) {
            values.push_back(Value::Null());
          } else {
            values.push_back(cursor.dictionary().Box(
                chunk.type, batch.codes[slot++]));
          }
        }
        break;
      }
    }
  }
  if (values.size() != chunk.num_rows) {
    return InvalidArgumentError("decoded row count mismatch");
  }
  return values;
}

}  // namespace fabric::storage
