#ifndef FABRIC_STORAGE_SCAN_KERNELS_H_
#define FABRIC_STORAGE_SCAN_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column_cursor.h"
#include "storage/profile.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fabric::storage {

// Sorted (ascending) absolute row positions that survive the filters so
// far. Kernels refine a selection in place: every kernel reads the
// current selection and writes the surviving subset.
using SelectionVector = std::vector<uint32_t>;

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

// `column <op> literal` over one column. Numeric terms compare through
// double (matching Value::Compare's cross-type numeric semantics, bool
// included); string terms compare bytes. NULL rows never pass.
struct CompareTerm {
  int column = 0;
  CompareOp op = CompareOp::kEq;
  bool is_string = false;
  double number = 0;  // literal when !is_string
  std::string text;   // literal when is_string
};

// `column IS [NOT] NULL`.
struct NullTestTerm {
  int column = 0;
  bool negated = false;  // true => IS NOT NULL
};

// `HASH(columns...) BETWEEN lower AND upper` on the unsigned 2^64 ring
// (inclusive bounds). The shape V2S partition pushdown produces.
struct HashRangeTerm {
  std::vector<int> columns;
  uint64_t lower = 0;
  uint64_t upper = ~0ull;
};

// A conjunction of compiled filter terms. `always_false` short-circuits
// the whole scan (contradictory hash ranges).
struct ScanPredicate {
  std::vector<CompareTerm> compares;
  std::vector<NullTestTerm> null_tests;
  std::vector<HashRangeTerm> hash_ranges;
  bool always_false = false;

  bool empty() const {
    return compares.empty() && null_tests.empty() && hash_ranges.empty() &&
           !always_false;
  }

  // Row-at-a-time evaluation (WOS rows and the reference path in tests).
  bool Matches(const Row& row) const;
};

// True when `cmp(v, literal)` for scalar comparison semantics shared by
// every kernel: -1/0/1 three-way then op test.
bool ComparePasses(CompareOp op, int three_way);

// Container pruning: can any value in [min, max] satisfy the term?
// A null min means the column has no non-null rows => nothing passes.
bool CompareTermCanMatch(const CompareTerm& term, const Value& min,
                         const Value& max);

// --- Vectorized kernels -------------------------------------------------
// Each kernel refines `sel` (sorted absolute positions within the batch's
// rows) in place. Rows outside [batch.base, batch.base+length) must not
// appear in `sel`.

// Comparison filter evaluated on the encoded form: once per run for RLE,
// once per distinct dictionary value (pass-bitmap over the dictionary),
// tight loop for plain.
void FilterCompare(const CompareTerm& term, const ColumnCursor& cursor,
                   const ColumnBatch& batch, SelectionVector* sel);

// IS [NOT] NULL needs only the null flags; no payload decode at all.
void FilterNullTest(const NullTestTerm& term, const uint8_t* nulls,
                    SelectionVector* sel);

// Hash-range filter. `acc` holds the running per-row combined hash
// (seeded with kSegmentationHashSeed before the first column); call
// AccumulateHash once per term column in order, then FilterHashRange to
// apply the ring bounds. Hashes once per distinct dictionary value /
// once per run.
void AccumulateHash(const ColumnCursor& cursor, const ColumnBatch& batch,
                    const SelectionVector& sel, std::vector<uint64_t>* acc);
// Applies the ring bounds; `acc` is parallel to `sel` and both are
// compacted to the survivors.
void FilterHashRange(const HashRangeTerm& term, std::vector<uint64_t>* acc,
                     SelectionVector* sel);

// Late materialization: boxes the column's values at the selected
// positions into (*rows)[rows_offset + k][out_column] for sel[k].
// Dictionary batches box each distinct value at most once.
void GatherColumn(const ColumnCursor& cursor, const ColumnBatch& batch,
                  const SelectionVector& sel, int out_column,
                  std::vector<Row>* rows, size_t rows_offset = 0);

// Cost accounting without boxing: adds the ProfileRows contribution of
// this column at the selected positions (fields/raw/numeric/string
// bytes; rows stays 0 — the caller sets it once per row set).
void MeasureColumn(const ColumnCursor& cursor, const ColumnBatch& batch,
                   const SelectionVector& sel, DataProfile* profile);

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_SCAN_KERNELS_H_
