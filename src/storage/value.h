#ifndef FABRIC_STORAGE_VALUE_H_
#define FABRIC_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace fabric::storage {

// Column data types. VARCHAR covers all string data (the paper notes
// Vertica represents string data as VARCHAR columns).
enum class DataType { kBool, kInt64, kFloat64, kVarchar };

const char* DataTypeName(DataType type);

// Parses "int"/"integer"/"bigint", "float"/"double", "varchar"/"string",
// "bool"/"boolean" (case-insensitive, as the SQL layer sees them).
Result<DataType> ParseDataType(std::string_view name);

// A single nullable SQL value. Small, copyable; the fabric's lingua franca
// between Spark Rows, Vertica storage and the connectors.
class Value {
 public:
  // Null of unspecified type (SQL NULL).
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Float64(double v) { return Value(Repr(v)); }
  static Value Varchar(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }

  // Type of a non-null value; callers must not ask for a null's type.
  DataType type() const;

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double float64_value() const { return std::get<double>(data_); }
  const std::string& varchar_value() const {
    return std::get<std::string>(data_);
  }

  // Numeric view: int64 and float64 both read as double (SQL-style numeric
  // coercion in comparisons/arithmetic). Fails on other types.
  Result<double> AsDouble() const;

  // Unchecked numeric view for scan hot loops: callers must have
  // established the value is non-null bool/int/float (e.g. via column
  // type). Bool reads as 0/1 to match AsDouble()/Compare() semantics.
  double NumericValue() const {
    switch (data_.index()) {
      case 1:
        return std::get<bool>(data_) ? 1.0 : 0.0;
      case 2:
        return static_cast<double>(std::get<int64_t>(data_));
      default:
        return std::get<double>(data_);
    }
  }

  // Strict equality: null equals nothing (not even null) under
  // SqlEquals(); Equals() is structural (null == null) for storage and
  // test bookkeeping.
  bool Equals(const Value& other) const;

  // Three-way comparison for ORDER/min-max: nulls sort first; numeric
  // types compare by value across int/float; mismatched non-numeric types
  // are an error.
  Result<int> Compare(const Value& other) const;

  // Segmentation/ring hash of this value (see common/hash.h).
  uint64_t SegmentationHash() const;

  // 64-bit hash for HLL distinct-count sketches, salted away from the
  // segmentation hash so sketch quality is independent of how the data
  // happens to be placed on the ring. Every layer that feeds values into
  // a sketch (Vertica UDx, Spark shuffle combine) uses this hash, which
  // is what makes their sketches mergeable and byte-identical.
  uint64_t DistinctHash() const;

  // Bytes this value occupies "raw" (the cost model's notion of data
  // size): 8 for numerics, 1 for bool, string length for varchar, 0 null.
  double RawSize() const;

  // SQL literal rendering: 42, 2.5, 'text' (quotes doubled), TRUE, NULL.
  std::string ToSqlLiteral() const;

  // Unquoted rendering for CSV / display.
  std::string ToDisplayString() const;

  // Parses a display-string as `type` ("" parses to NULL for varchar it is
  // the empty string; use ParseNullableAs for explicit null markers).
  static Result<Value> ParseAs(DataType type, std::string_view text);

 private:
  using Repr =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : data_(std::move(repr)) {}

  Repr data_;
};

// Structural equality/ordering functors for containers of Values.
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.Equals(b);
  }
};

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_VALUE_H_
