#include "storage/profile.h"

namespace fabric::storage {

DataProfile& DataProfile::Add(const DataProfile& other) {
  rows += other.rows;
  fields += other.fields;
  raw_bytes += other.raw_bytes;
  numeric_bytes += other.numeric_bytes;
  string_bytes += other.string_bytes;
  return *this;
}

DataProfile& DataProfile::ScaleBy(double factor) {
  rows *= factor;
  fields *= factor;
  raw_bytes *= factor;
  numeric_bytes *= factor;
  string_bytes *= factor;
  return *this;
}

double DataProfile::JdbcWireBytes(const CostModel& cost) const {
  return numeric_bytes * cost.jdbc_numeric_inflation +
         string_bytes * cost.jdbc_string_inflation +
         rows * cost.jdbc_per_row_bytes;
}

double DataProfile::AvroWireBytes(const CostModel& cost) const {
  return numeric_bytes * cost.avro_numeric_inflation +
         string_bytes * cost.avro_string_inflation +
         rows * cost.avro_per_row_bytes;
}

double DataProfile::ScanCpu(const CostModel& cost) const {
  return raw_bytes * cost.scan_cpu_per_byte + rows * cost.scan_cpu_per_row;
}

double DataProfile::CopyParseCpu(const CostModel& cost) const {
  return raw_bytes * cost.copy_parse_cpu_per_byte +
         rows * cost.copy_parse_cpu_per_row +
         fields * cost.copy_parse_cpu_per_field;
}

double DataProfile::AvroEncodeCpu(const CostModel& cost) const {
  return raw_bytes * cost.avro_encode_cpu_per_byte +
         rows * cost.avro_encode_cpu_per_row +
         fields * cost.avro_encode_cpu_per_field;
}

double DataProfile::StreamRateCap(double byte_rate, double row_overhead,
                                  double wire_bytes) const {
  if (rows <= 0 || wire_bytes <= 0) return byte_rate;
  double wire_per_row = wire_bytes / rows;
  double seconds_per_row = wire_per_row / byte_rate + row_overhead;
  return wire_per_row / seconds_per_row;
}

DataProfile ProfileRow(const Row& row) {
  DataProfile p;
  p.rows = 1;
  p.fields = static_cast<double>(row.size());
  for (const Value& v : row) {
    double size = v.RawSize();
    p.raw_bytes += size;
    if (!v.is_null() && v.type() == DataType::kVarchar) {
      p.string_bytes += size;
    } else {
      p.numeric_bytes += size;
    }
  }
  return p;
}

DataProfile ProfileRows(const std::vector<Row>& rows) {
  DataProfile total;
  for (const Row& row : rows) total.Add(ProfileRow(row));
  return total;
}

}  // namespace fabric::storage
