#ifndef FABRIC_STORAGE_PROFILE_H_
#define FABRIC_STORAGE_PROFILE_H_

#include <cstdint>
#include <vector>

#include "common/cost_model.h"
#include "storage/schema.h"

namespace fabric::storage {

// Byte/row/field composition of a batch of rows, used by the cost model
// to derive wire sizes and CPU costs. Additive.
struct DataProfile {
  double rows = 0;
  double fields = 0;
  double raw_bytes = 0;      // sum of Value::RawSize
  double numeric_bytes = 0;  // int64 + float64 + bool portions
  double string_bytes = 0;

  DataProfile& Add(const DataProfile& other);
  DataProfile& ScaleBy(double factor);

  // Wire sizes under the two encodings the fabric uses.
  double JdbcWireBytes(const CostModel& cost) const;
  double AvroWireBytes(const CostModel& cost) const;

  // CPU costs.
  double ScanCpu(const CostModel& cost) const;
  double CopyParseCpu(const CostModel& cost) const;
  double AvroEncodeCpu(const CostModel& cost) const;

  // Effective per-connection rate cap (wire bytes/second) for a stream
  // whose per-row cost is row_overhead and whose byte rate is byte_rate.
  double StreamRateCap(double byte_rate, double row_overhead,
                       double wire_bytes) const;
};

DataProfile ProfileRow(const Row& row);
DataProfile ProfileRows(const std::vector<Row>& rows);

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_PROFILE_H_
