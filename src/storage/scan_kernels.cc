#include "storage/scan_kernels.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace fabric::storage {

namespace {

// Three-way compare of a scalar against the term literal. NaN compares
// "equal" (neither < nor >), matching Value::Compare.
inline int NumericThreeWay(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

inline int StringThreeWay(std::string_view a, std::string_view b) {
  int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

// Three-way of values slot `i` vs term literal (slot must be non-null;
// the analyzer guarantees is_string matches the column type).
inline int SlotThreeWay(const CompareTerm& term, const TypedVec& values,
                        DataType type, size_t i) {
  if (term.is_string) return StringThreeWay(values.StringAt(i), term.text);
  return NumericThreeWay(values.NumberAt(type, i), term.number);
}

// Maps each batch row to its TypedVec/code slot: slot_of[row - base] is
// the non-null ordinal, or UINT32_MAX for null rows.
std::vector<uint32_t> BuildSlotIndex(const ColumnBatch& batch) {
  std::vector<uint32_t> slot_of(batch.length, UINT32_MAX);
  uint32_t slot = 0;
  for (uint32_t i = 0; i < batch.length; ++i) {
    if (!batch.nulls[batch.base + i]) slot_of[i] = slot++;
  }
  return slot_of;
}

// Index of the RunSpan containing `pos`, advancing `*run` (positions are
// visited in ascending order).
inline const RunSpan& SpanAt(const std::vector<RunSpan>& runs, size_t* run,
                             uint32_t pos) {
  while (runs[*run].start + runs[*run].length <= pos) ++(*run);
  return runs[*run];
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ComparePasses(CompareOp op, int three_way) {
  switch (op) {
    case CompareOp::kEq:
      return three_way == 0;
    case CompareOp::kNe:
      return three_way != 0;
    case CompareOp::kLt:
      return three_way < 0;
    case CompareOp::kLe:
      return three_way <= 0;
    case CompareOp::kGt:
      return three_way > 0;
    case CompareOp::kGe:
      return three_way >= 0;
  }
  return false;
}

bool ScanPredicate::Matches(const Row& row) const {
  if (always_false) return false;
  for (const CompareTerm& t : compares) {
    const Value& v = row[t.column];
    if (v.is_null()) return false;
    int c = t.is_string ? StringThreeWay(v.varchar_value(), t.text)
                        : NumericThreeWay(v.NumericValue(), t.number);
    if (!ComparePasses(t.op, c)) return false;
  }
  for (const NullTestTerm& t : null_tests) {
    if (row[t.column].is_null() == t.negated) return false;
  }
  for (const HashRangeTerm& t : hash_ranges) {
    uint64_t h = RowSegmentationHash(row, t.columns);
    if (h < t.lower || h > t.upper) return false;
  }
  return true;
}

bool CompareTermCanMatch(const CompareTerm& term, const Value& min,
                         const Value& max) {
  // All-null column: comparisons never pass.
  if (min.is_null()) return false;
  int lo, hi;
  if (term.is_string) {
    if (min.type() != DataType::kVarchar) return true;  // mixed: no prune
    lo = StringThreeWay(min.varchar_value(), term.text);
    hi = StringThreeWay(max.varchar_value(), term.text);
  } else {
    if (min.type() == DataType::kVarchar) return true;  // mixed: no prune
    lo = NumericThreeWay(min.NumericValue(), term.number);
    hi = NumericThreeWay(max.NumericValue(), term.number);
  }
  switch (term.op) {
    case CompareOp::kEq:
      return lo <= 0 && hi >= 0;
    case CompareOp::kNe:
      return !(lo == 0 && hi == 0);
    case CompareOp::kLt:
      return lo < 0;
    case CompareOp::kLe:
      return lo <= 0;
    case CompareOp::kGt:
      return hi > 0;
    case CompareOp::kGe:
      return hi >= 0;
  }
  return true;
}

void FilterCompare(const CompareTerm& term, const ColumnCursor& cursor,
                   const ColumnBatch& batch, SelectionVector* sel) {
  const DataType type = cursor.type();
  SelectionVector out;
  out.reserve(sel->size());
  switch (batch.layout) {
    case ColumnBatch::Layout::kPlainLayout: {
      if (batch.values.size(type) == batch.length) {
        // No nulls in this batch: slot == row - base, tight loop.
        if (!term.is_string) {
          const double lit = term.number;
          for (uint32_t pos : *sel) {
            double a = batch.values.NumberAt(type, pos - batch.base);
            if (ComparePasses(term.op, NumericThreeWay(a, lit))) {
              out.push_back(pos);
            }
          }
        } else {
          for (uint32_t pos : *sel) {
            int c = StringThreeWay(batch.values.StringAt(pos - batch.base),
                                   term.text);
            if (ComparePasses(term.op, c)) out.push_back(pos);
          }
        }
      } else {
        std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
        for (uint32_t pos : *sel) {
          uint32_t slot = slot_of[pos - batch.base];
          if (slot == UINT32_MAX) continue;  // NULL never passes
          if (ComparePasses(term.op,
                            SlotThreeWay(term, batch.values, type, slot))) {
            out.push_back(pos);
          }
        }
      }
      break;
    }
    case ColumnBatch::Layout::kRunLayout: {
      // Evaluate once per run, then sweep the selection.
      std::vector<uint8_t> run_pass(batch.runs.size());
      for (size_t r = 0; r < batch.runs.size(); ++r) {
        const RunSpan& span = batch.runs[r];
        run_pass[r] =
            !span.is_null &&
            ComparePasses(term.op,
                          SlotThreeWay(term, batch.values, type, span.slot));
      }
      size_t run = 0;
      for (uint32_t pos : *sel) {
        while (batch.runs[run].start + batch.runs[run].length <= pos) ++run;
        if (run_pass[run]) out.push_back(pos);
      }
      break;
    }
    case ColumnBatch::Layout::kCodeLayout: {
      // Evaluate once per distinct value: a pass-bitmap over the
      // dictionary, then a code lookup per selected row.
      const TypedVec& dict = cursor.dictionary();
      std::vector<uint8_t> dict_pass(cursor.dictionary_size());
      for (size_t d = 0; d < dict_pass.size(); ++d) {
        dict_pass[d] =
            ComparePasses(term.op, SlotThreeWay(term, dict, type, d));
      }
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (uint32_t pos : *sel) {
        uint32_t slot = slot_of[pos - batch.base];
        if (slot == UINT32_MAX) continue;
        if (dict_pass[batch.codes[slot]]) out.push_back(pos);
      }
      break;
    }
  }
  sel->swap(out);
}

void FilterNullTest(const NullTestTerm& term, const uint8_t* nulls,
                    SelectionVector* sel) {
  SelectionVector out;
  out.reserve(sel->size());
  for (uint32_t pos : *sel) {
    if ((nulls[pos] != 0) != term.negated) out.push_back(pos);
  }
  sel->swap(out);
}

void AccumulateHash(const ColumnCursor& cursor, const ColumnBatch& batch,
                    const SelectionVector& sel, std::vector<uint64_t>* acc) {
  const DataType type = cursor.type();
  const uint64_t null_hash = Mix64(0xdeadULL);  // Value::SegmentationHash
  switch (batch.layout) {
    case ColumnBatch::Layout::kPlainLayout: {
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (size_t k = 0; k < sel.size(); ++k) {
        uint32_t slot = slot_of[sel[k] - batch.base];
        uint64_t h = slot == UINT32_MAX ? null_hash
                                        : batch.values.Hash(type, slot);
        (*acc)[k] = HashCombine((*acc)[k], h);
      }
      break;
    }
    case ColumnBatch::Layout::kRunLayout: {
      // Hash once per run.
      std::vector<uint64_t> run_hash(batch.runs.size());
      for (size_t r = 0; r < batch.runs.size(); ++r) {
        const RunSpan& span = batch.runs[r];
        run_hash[r] = span.is_null
                          ? null_hash
                          : batch.values.Hash(type, span.slot);
      }
      size_t run = 0;
      for (size_t k = 0; k < sel.size(); ++k) {
        while (batch.runs[run].start + batch.runs[run].length <= sel[k]) {
          ++run;
        }
        (*acc)[k] = HashCombine((*acc)[k], run_hash[run]);
      }
      break;
    }
    case ColumnBatch::Layout::kCodeLayout: {
      // Hash once per distinct value.
      const TypedVec& dict = cursor.dictionary();
      std::vector<uint64_t> dict_hash(cursor.dictionary_size());
      for (size_t d = 0; d < dict_hash.size(); ++d) {
        dict_hash[d] = dict.Hash(type, d);
      }
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (size_t k = 0; k < sel.size(); ++k) {
        uint32_t slot = slot_of[sel[k] - batch.base];
        uint64_t h =
            slot == UINT32_MAX ? null_hash : dict_hash[batch.codes[slot]];
        (*acc)[k] = HashCombine((*acc)[k], h);
      }
      break;
    }
  }
}

void FilterHashRange(const HashRangeTerm& term, std::vector<uint64_t>* acc,
                     SelectionVector* sel) {
  size_t kept = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    uint64_t h = (*acc)[k];
    if (h < term.lower || h > term.upper) continue;
    (*sel)[kept] = (*sel)[k];
    (*acc)[kept] = h;
    ++kept;
  }
  sel->resize(kept);
  acc->resize(kept);
}

void GatherColumn(const ColumnCursor& cursor, const ColumnBatch& batch,
                  const SelectionVector& sel, int out_column,
                  std::vector<Row>* rows, size_t rows_offset) {
  const DataType type = cursor.type();
  switch (batch.layout) {
    case ColumnBatch::Layout::kPlainLayout: {
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (size_t k = 0; k < sel.size(); ++k) {
        uint32_t slot = slot_of[sel[k] - batch.base];
        if (slot == UINT32_MAX) continue;  // stays NULL
        (*rows)[rows_offset + k][out_column] = batch.values.Box(type, slot);
      }
      break;
    }
    case ColumnBatch::Layout::kRunLayout: {
      // Box once per run, copy the Value to each selected row.
      size_t run = 0;
      size_t boxed_run = SIZE_MAX;
      Value boxed;
      for (size_t k = 0; k < sel.size(); ++k) {
        const RunSpan& span = SpanAt(batch.runs, &run, sel[k]);
        if (span.is_null) continue;
        if (run != boxed_run) {
          boxed = batch.values.Box(type, span.slot);
          boxed_run = run;
        }
        (*rows)[rows_offset + k][out_column] = boxed;
      }
      break;
    }
    case ColumnBatch::Layout::kCodeLayout: {
      // Box each distinct value at most once.
      const TypedVec& dict = cursor.dictionary();
      std::vector<uint8_t> have(cursor.dictionary_size());
      std::vector<Value> boxed(cursor.dictionary_size());
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (size_t k = 0; k < sel.size(); ++k) {
        uint32_t slot = slot_of[sel[k] - batch.base];
        if (slot == UINT32_MAX) continue;
        uint32_t code = batch.codes[slot];
        if (!have[code]) {
          boxed[code] = dict.Box(type, code);
          have[code] = 1;
        }
        (*rows)[rows_offset + k][out_column] = boxed[code];
      }
      break;
    }
  }
}

void MeasureColumn(const ColumnCursor& cursor, const ColumnBatch& batch,
                   const SelectionVector& sel, DataProfile* profile) {
  const DataType type = cursor.type();
  profile->fields += static_cast<double>(sel.size());
  // Fixed-width types need only the null flags: raw size is a constant
  // per non-null row.
  if (type != DataType::kVarchar) {
    double unit = type == DataType::kBool ? 1 : 8;
    size_t non_null = 0;
    for (uint32_t pos : sel) non_null += batch.nulls[pos] ? 0 : 1;
    double bytes = unit * static_cast<double>(non_null);
    profile->raw_bytes += bytes;
    profile->numeric_bytes += bytes;
    return;
  }
  // Varchar: byte counts come from the encoded payload.
  switch (batch.layout) {
    case ColumnBatch::Layout::kPlainLayout: {
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (uint32_t pos : sel) {
        uint32_t slot = slot_of[pos - batch.base];
        if (slot == UINT32_MAX) continue;
        double size = batch.values.RawSize(type, slot);
        profile->raw_bytes += size;
        profile->string_bytes += size;
      }
      break;
    }
    case ColumnBatch::Layout::kRunLayout: {
      size_t run = 0;
      for (uint32_t pos : sel) {
        const RunSpan& span = SpanAt(batch.runs, &run, pos);
        if (span.is_null) continue;
        double size = batch.values.RawSize(type, span.slot);
        profile->raw_bytes += size;
        profile->string_bytes += size;
      }
      break;
    }
    case ColumnBatch::Layout::kCodeLayout: {
      const TypedVec& dict = cursor.dictionary();
      std::vector<uint32_t> slot_of = BuildSlotIndex(batch);
      for (uint32_t pos : sel) {
        uint32_t slot = slot_of[pos - batch.base];
        if (slot == UINT32_MAX) continue;
        double size = dict.RawSize(type, batch.codes[slot]);
        profile->raw_bytes += size;
        profile->string_bytes += size;
      }
      break;
    }
  }
}

}  // namespace fabric::storage
