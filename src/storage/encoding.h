#ifndef FABRIC_STORAGE_ENCODING_H_
#define FABRIC_STORAGE_ENCODING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace fabric::storage {

// Column encodings used inside ROS containers (Vertica's Read Optimized
// Storage keeps columns compressed; we implement the three classic
// schemes and let the encoder pick the smallest).
enum class Encoding : uint8_t {
  kPlain = 0,       // values back to back
  kRle = 1,         // (run length, value) pairs
  kDictionary = 2,  // distinct values + per-row indices
};

const char* EncodingName(Encoding encoding);

// Bytes the null-bitmap prefix occupies ahead of the payload in every
// encoding (LSB-first, one bit per row).
inline constexpr size_t NullBitmapBytes(uint32_t num_rows) {
  return (num_rows + 7) / 8;
}

// An encoded column of `num_rows` values of `type` (with a null bitmap).
struct ColumnChunk {
  DataType type;
  Encoding encoding;
  uint32_t num_rows = 0;
  std::string data;

  double encoded_bytes() const { return static_cast<double>(data.size()); }
};

// Encodes `values` (all of `type` or null) choosing the smallest of the
// three encodings.
Result<ColumnChunk> EncodeColumn(DataType type,
                                 const std::vector<Value>& values);

// Encodes with a forced encoding (tests / benchmarks).
Result<ColumnChunk> EncodeColumnAs(DataType type, Encoding encoding,
                                   const std::vector<Value>& values);

// Decodes a chunk back to values. Implemented on top of ColumnCursor
// (storage/column_cursor.h), which is the streaming batch decoder; this
// is the materialize-everything convenience form.
Result<std::vector<Value>> DecodeColumn(const ColumnChunk& chunk);

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_ENCODING_H_
