#ifndef FABRIC_STORAGE_COLUMN_CURSOR_H_
#define FABRIC_STORAGE_COLUMN_CURSOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/encoding.h"
#include "storage/value.h"

namespace fabric::storage {

// Rows per scan batch. 1024 keeps a batch of one column (8 KiB of
// doubles plus selection vector) comfortably inside L1/L2 while
// amortizing per-batch dispatch over enough rows that the tight loops
// dominate.
inline constexpr uint32_t kScanBatchSize = 1024;

// Decodes only the null bitmap of a chunk (one flag per row). Cheap for
// every encoding: the bitmap is a fixed-size prefix of the payload.
Result<std::vector<uint8_t>> DecodeNullFlags(const ColumnChunk& chunk);

// One decoded batch worth of typed column data. Exactly one of the typed
// vectors is populated, per the chunk's DataType; slots correspond to
// non-null rows in batch order for kPlainLayout, to runs for kRunLayout,
// and to dictionary codes for kCodeLayout.
struct TypedVec {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;
  std::vector<std::string_view> strings;  // alias chunk.data; zero-copy

  size_t size(DataType type) const {
    switch (type) {
      case DataType::kBool:
        return bools.size();
      case DataType::kInt64:
        return ints.size();
      case DataType::kFloat64:
        return doubles.size();
      case DataType::kVarchar:
        return strings.size();
    }
    return 0;
  }

  void clear() {
    ints.clear();
    doubles.clear();
    bools.clear();
    strings.clear();
  }

  // Numeric view of slot `i` (callers guarantee a numeric type).
  double NumberAt(DataType type, size_t i) const {
    switch (type) {
      case DataType::kBool:
        return bools[i] ? 1.0 : 0.0;
      case DataType::kInt64:
        return static_cast<double>(ints[i]);
      default:
        return doubles[i];
    }
  }

  std::string_view StringAt(size_t i) const { return strings[i]; }

  // Boxes slot `i` back into a Value (late materialization endpoint).
  Value Box(DataType type, size_t i) const {
    switch (type) {
      case DataType::kBool:
        return Value::Bool(bools[i] != 0);
      case DataType::kInt64:
        return Value::Int64(ints[i]);
      case DataType::kFloat64:
        return Value::Float64(doubles[i]);
      case DataType::kVarchar:
        return Value::Varchar(std::string(strings[i]));
    }
    return Value::Null();
  }

  // Segmentation hash of slot `i` (matches Value::SegmentationHash).
  uint64_t Hash(DataType type, size_t i) const;

  // Cost-model raw size of slot `i` (matches Value::RawSize for non-null).
  double RawSize(DataType type, size_t i) const {
    switch (type) {
      case DataType::kBool:
        return 1;
      case DataType::kInt64:
      case DataType::kFloat64:
        return 8;
      case DataType::kVarchar:
        return static_cast<double>(strings[i].size());
    }
    return 0;
  }
};

// An RLE run clipped to the current batch, in absolute row coordinates.
// `slot` indexes the batch's TypedVec for the run value; is_null runs
// carry no slot.
struct RunSpan {
  uint32_t start = 0;   // absolute row index of first row in span
  uint32_t length = 0;  // rows covered within this batch
  uint32_t slot = 0;    // TypedVec slot of the run value (if !is_null)
  bool is_null = false;
};

// One batch of a column scan. Layout tells kernels which representation
// `values` uses; all row indices are absolute container coordinates
// [base, base + length).
struct ColumnBatch {
  enum class Layout : uint8_t {
    kPlainLayout,  // values slot k = k-th non-null row of the batch
    kRunLayout,    // runs[] spans; values slot per non-null run
    kCodeLayout,   // codes[k] = dictionary slot of k-th non-null row
  };

  Layout layout = Layout::kPlainLayout;
  uint32_t base = 0;    // absolute index of first row in batch
  uint32_t length = 0;  // rows in batch (<= kScanBatchSize)
  // Null flag per row of the whole column; index with absolute row ids.
  const uint8_t* nulls = nullptr;
  TypedVec values;             // kPlainLayout / kRunLayout payloads
  std::vector<RunSpan> runs;   // kRunLayout only
  std::vector<uint32_t> codes;  // kCodeLayout: slots into dictionary()
};

// Streams a ColumnChunk as fixed-size batches without materializing the
// whole column. The chunk must outlive the cursor (varchar slots alias
// its buffer). RLE runs crossing a batch boundary are split, carrying
// the in-progress run across Next() calls.
class ColumnCursor {
 public:
  Status Open(const ColumnChunk* chunk);

  // Fills `batch` with the next kScanBatchSize (or fewer) rows. Returns
  // false when the column is exhausted (batch is left untouched).
  Result<bool> Next(ColumnBatch* batch);

  bool Done() const { return next_row_ >= chunk_->num_rows; }

  DataType type() const { return chunk_->type; }
  Encoding encoding() const { return chunk_->encoding; }
  uint32_t num_rows() const { return chunk_->num_rows; }

  // Null flag per row, decoded once at Open().
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  // Dictionary values (kDictionary chunks only), decoded once at Open();
  // kCodeLayout batches index into this.
  const TypedVec& dictionary() const { return dictionary_; }
  uint32_t dictionary_size() const { return dict_size_; }

 private:
  // Last scalar read from the payload, kept unboxed so a run split
  // across batches can re-emit its value into the next batch's TypedVec.
  // The string_view aliases chunk data, which outlives the cursor.
  struct Scalar {
    int64_t i = 0;
    double d = 0;
    uint8_t b = 0;
    std::string_view s;
  };

  Status ReadScalar(Scalar* out);
  void PushScalar(const Scalar& s, TypedVec* out) const;

  const ColumnChunk* chunk_ = nullptr;
  std::vector<uint8_t> nulls_;
  TypedVec dictionary_;
  uint32_t dict_size_ = 0;
  uint32_t next_row_ = 0;

  // Payload read position (byte offset into chunk_->data).
  size_t payload_pos_ = 0;
  // RLE state carried across Next() calls.
  uint32_t runs_left_ = 0;      // encoded runs not yet started
  uint32_t run_remaining_ = 0;  // rows left in the current (split) run
  bool run_is_null_ = false;
  Scalar run_value_;            // value of the current run
};

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_COLUMN_CURSOR_H_
