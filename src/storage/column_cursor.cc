#include "storage/column_cursor.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"

namespace fabric::storage {

namespace {

Result<std::vector<uint8_t>> DecodeBitmap(const ColumnChunk& chunk) {
  size_t bytes = NullBitmapBytes(chunk.num_rows);
  if (chunk.data.size() < bytes) {
    return OutOfRangeError("null bitmap truncated");
  }
  std::vector<uint8_t> nulls(chunk.num_rows);
  for (uint32_t i = 0; i < chunk.num_rows; ++i) {
    nulls[i] = (static_cast<uint8_t>(chunk.data[i / 8]) >> (i % 8)) & 1;
  }
  return nulls;
}

}  // namespace

Result<std::vector<uint8_t>> DecodeNullFlags(const ColumnChunk& chunk) {
  return DecodeBitmap(chunk);
}

uint64_t TypedVec::Hash(DataType type, size_t i) const {
  switch (type) {
    case DataType::kBool:
      return HashBool(bools[i] != 0);
    case DataType::kInt64:
      return HashInt64(ints[i]);
    case DataType::kFloat64:
      return HashDouble(doubles[i]);
    case DataType::kVarchar:
      return HashBytes(strings[i]);
  }
  return 0;
}

Status ColumnCursor::ReadScalar(Scalar* out) {
  ByteReader reader(
      std::string_view(chunk_->data).substr(payload_pos_));
  size_t before = reader.remaining();
  switch (chunk_->type) {
    case DataType::kBool: {
      FABRIC_ASSIGN_OR_RETURN(out->b, reader.GetU8());
      break;
    }
    case DataType::kInt64: {
      FABRIC_ASSIGN_OR_RETURN(out->i, reader.GetI64());
      break;
    }
    case DataType::kFloat64: {
      FABRIC_ASSIGN_OR_RETURN(out->d, reader.GetDouble());
      break;
    }
    case DataType::kVarchar: {
      FABRIC_ASSIGN_OR_RETURN(out->s, reader.GetStringView());
      break;
    }
  }
  payload_pos_ += before - reader.remaining();
  return Status::OK();
}

void ColumnCursor::PushScalar(const Scalar& s, TypedVec* out) const {
  switch (chunk_->type) {
    case DataType::kBool:
      out->bools.push_back(s.b);
      return;
    case DataType::kInt64:
      out->ints.push_back(s.i);
      return;
    case DataType::kFloat64:
      out->doubles.push_back(s.d);
      return;
    case DataType::kVarchar:
      out->strings.push_back(s.s);
      return;
  }
}

Status ColumnCursor::Open(const ColumnChunk* chunk) {
  chunk_ = chunk;
  next_row_ = 0;
  dict_size_ = 0;
  dictionary_.clear();
  runs_left_ = 0;
  run_remaining_ = 0;
  run_is_null_ = false;
  FABRIC_ASSIGN_OR_RETURN(nulls_, DecodeBitmap(*chunk));
  payload_pos_ = NullBitmapBytes(chunk->num_rows);

  ByteReader reader(std::string_view(chunk_->data).substr(payload_pos_));
  size_t before = reader.remaining();
  switch (chunk_->encoding) {
    case Encoding::kPlain:
      break;
    case Encoding::kRle: {
      FABRIC_ASSIGN_OR_RETURN(runs_left_, reader.GetU32());
      break;
    }
    case Encoding::kDictionary: {
      FABRIC_ASSIGN_OR_RETURN(dict_size_, reader.GetU32());
      payload_pos_ += before - reader.remaining();
      Scalar s;
      for (uint32_t i = 0; i < dict_size_; ++i) {
        FABRIC_RETURN_IF_ERROR(ReadScalar(&s));
        PushScalar(s, &dictionary_);
      }
      return Status::OK();
    }
  }
  payload_pos_ += before - reader.remaining();
  return Status::OK();
}

Result<bool> ColumnCursor::Next(ColumnBatch* batch) {
  FABRIC_CHECK(chunk_ != nullptr) << "cursor not opened";
  if (next_row_ >= chunk_->num_rows) return false;
  uint32_t base = next_row_;
  uint32_t length =
      std::min(kScanBatchSize, chunk_->num_rows - base);

  batch->base = base;
  batch->length = length;
  batch->nulls = nulls_.data();
  batch->values.clear();
  batch->runs.clear();
  batch->codes.clear();

  switch (chunk_->encoding) {
    case Encoding::kPlain: {
      batch->layout = ColumnBatch::Layout::kPlainLayout;
      Scalar s;
      for (uint32_t i = base; i < base + length; ++i) {
        if (nulls_[i]) continue;
        FABRIC_RETURN_IF_ERROR(ReadScalar(&s));
        PushScalar(s, &batch->values);
      }
      break;
    }
    case Encoding::kRle: {
      batch->layout = ColumnBatch::Layout::kRunLayout;
      uint32_t row = base;
      while (row < base + length) {
        if (run_remaining_ == 0) {
          if (runs_left_ == 0) {
            return InvalidArgumentError("RLE runs exhausted early");
          }
          --runs_left_;
          ByteReader reader(
              std::string_view(chunk_->data).substr(payload_pos_));
          size_t before = reader.remaining();
          FABRIC_ASSIGN_OR_RETURN(run_remaining_, reader.GetU32());
          payload_pos_ += before - reader.remaining();
          if (row + 1 > chunk_->num_rows ||
              run_remaining_ > chunk_->num_rows - row) {
            return InvalidArgumentError("RLE runs exceed row count");
          }
          run_is_null_ = nulls_[row] != 0;
          if (!run_is_null_) {
            FABRIC_RETURN_IF_ERROR(ReadScalar(&run_value_));
          }
        }
        uint32_t take = std::min(run_remaining_, base + length - row);
        RunSpan span;
        span.start = row;
        span.length = take;
        span.is_null = run_is_null_;
        if (!run_is_null_) {
          span.slot =
              static_cast<uint32_t>(batch->values.size(chunk_->type));
          PushScalar(run_value_, &batch->values);
        }
        batch->runs.push_back(span);
        run_remaining_ -= take;
        row += take;
      }
      break;
    }
    case Encoding::kDictionary: {
      batch->layout = ColumnBatch::Layout::kCodeLayout;
      ByteReader reader(
          std::string_view(chunk_->data).substr(payload_pos_));
      size_t before = reader.remaining();
      for (uint32_t i = base; i < base + length; ++i) {
        if (nulls_[i]) continue;
        FABRIC_ASSIGN_OR_RETURN(uint32_t code, reader.GetU32());
        if (code >= dict_size_) {
          return InvalidArgumentError("dictionary index out of range");
        }
        batch->codes.push_back(code);
      }
      payload_pos_ += before - reader.remaining();
      break;
    }
  }

  next_row_ = base + length;
  return true;
}

}  // namespace fabric::storage
