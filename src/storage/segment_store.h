#ifndef FABRIC_STORAGE_SEGMENT_STORE_H_
#define FABRIC_STORAGE_SEGMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/encoding.h"
#include "storage/profile.h"
#include "storage/scan_kernels.h"
#include "storage/schema.h"

namespace fabric::storage {

// Transaction ids and epochs. Epochs advance on every commit; a query can
// read "AS OF" any past epoch (Vertica's epoch feature, which V2S uses to
// give all its parallel partition queries one consistent snapshot).
using Epoch = uint64_t;
using TxnId = uint64_t;

// Deletion mark on a stored row: absent, pending under a transaction, or
// committed at an epoch.
struct DeleteMark {
  enum class State : uint8_t { kNone, kPending, kCommitted };
  State state = State::kNone;
  Epoch epoch = 0;  // commit epoch when kCommitted
  TxnId txn = 0;    // owner when kPending
};

// Physical design of one store: the projection's sort order (schema
// column indices, major first) and optional forced per-column encodings
// chosen at CREATE PROJECTION time (RLE on sorted low-cardinality
// columns, dictionary elsewhere). An empty design — the default — keeps
// insertion order and lets EncodeColumn pick the smallest encoding,
// which is exactly the pre-projection behavior of every table store.
struct PhysicalDesign {
  std::vector<int> sort_columns;    // empty => insertion order
  std::vector<Encoding> encodings;  // empty => auto; else one per column

  bool sorted() const { return !sort_columns.empty(); }
};

// Read Optimized Storage container: one sorted(ish), encoded, epoch-
// stamped batch of rows on one node. Immutable after creation except for
// delete marks.
class RosContainer {
 public:
  // Encodes `rows` column by column. `pending_txn` != 0 marks the
  // container uncommitted (a DIRECT bulk load inside a transaction).
  // `encodings` (when non-null) forces the per-column encoding instead
  // of auto-picking the smallest.
  static Result<RosContainer> Create(
      const Schema& schema, const std::vector<Row>& rows, TxnId pending_txn,
      const std::vector<Encoding>* encodings = nullptr);

  uint32_t num_rows() const { return num_rows_; }
  bool committed() const { return pending_txn_ == 0; }
  TxnId pending_txn() const { return pending_txn_; }
  Epoch commit_epoch() const { return commit_epoch_; }
  double raw_bytes() const { return raw_bytes_; }
  double encoded_bytes() const;

  // Commit epoch of row `i`. Containers written by a single transaction
  // carry one epoch for every row; containers produced by moveout or
  // mergeout fold rows committed at different epochs and keep a per-row
  // epoch vector so AT EPOCH visibility survives compaction.
  Epoch row_epoch(uint32_t i) const {
    return row_epochs_.empty() ? commit_epoch_ : row_epochs_[i];
  }
  // Smallest row epoch in the container — the container-level epoch-
  // pruning bound (commit_epoch() is the largest).
  Epoch min_epoch() const {
    return row_epochs_.empty() ? commit_epoch_ : min_epoch_;
  }

  // Installs per-row commit epochs (the moveout/mergeout path) and marks
  // the container committed with commit_epoch() = max(epochs) and
  // min_epoch() = min(epochs). Must match num_rows().
  void AdoptRowEpochs(std::vector<Epoch> epochs);

  // Per-column min/max (null Values when the column had no non-null
  // rows) — used for scan pruning.
  const Value& min_value(int col) const { return min_values_[col]; }
  const Value& max_value(int col) const { return max_values_[col]; }

  // Encoded column payload (the vectorized scan path opens cursors on
  // individual columns instead of decoding all rows).
  const ColumnChunk& column(int col) const { return columns_[col]; }

  // Decodes all rows (visibility is applied by the caller via marks).
  Result<std::vector<Row>> DecodeRows() const;

  const std::vector<DeleteMark>& delete_marks() const {
    return delete_marks_;
  }
  std::vector<DeleteMark>& mutable_delete_marks() { return delete_marks_; }

  void MarkCommitted(Epoch epoch) {
    pending_txn_ = 0;
    commit_epoch_ = epoch;
  }

 private:
  RosContainer() = default;

  uint32_t num_rows_ = 0;
  TxnId pending_txn_ = 0;
  Epoch commit_epoch_ = 0;
  Epoch min_epoch_ = 0;             // meaningful only with row_epochs_
  std::vector<Epoch> row_epochs_;   // empty => every row at commit_epoch_
  double raw_bytes_ = 0;
  std::vector<ColumnChunk> columns_;
  std::vector<Value> min_values_;
  std::vector<Value> max_values_;
  std::vector<DeleteMark> delete_marks_;
};

// Write Optimized Storage batch: uncompressed row store for small commits
// (INSERT/UPDATE paths); moveout folds committed batches into ROS.
struct WosBatch {
  TxnId pending_txn = 0;  // 0 once committed
  Epoch commit_epoch = 0;
  std::vector<Row> rows;
  std::vector<DeleteMark> delete_marks;

  bool committed() const { return pending_txn == 0; }
};

// What a vectorized scan should do. Compiled predicate terms run on the
// encoded columns; `residual` (if set) is the row-at-a-time remainder of
// the WHERE clause, evaluated on rows with only `residual_columns`
// materialized. `cost_columns` are measured for every visible row and
// `projection` columns for every emitted row (the cost model's
// late-materialization accounting); emitted rows are schema-width with
// NULL outside the projection.
struct ScanSpec {
  Epoch as_of = 0;
  TxnId txn = 0;
  const ScanPredicate* predicate = nullptr;  // may be null (match all)
  std::function<Result<bool>(const Row&)> residual;  // may be empty
  // Optional vectorized residual (the pipeline compiler's batch path):
  // evaluates the residual over the whole scratch block at once,
  // appending the kept row indices (into `rows`, ascending) to `keep`.
  // Returns false when it cannot handle the block — a dynamic type
  // surprise or an evaluation error — in which case the caller falls
  // back to the row-at-a-time `residual`, which is authoritative.
  // Only consulted by Scan's ROS path; WOS rows and MarkDeletedPending
  // always use `residual`.
  std::function<bool(const std::vector<Row>& rows,
                     std::vector<uint32_t>* keep)>
      batch_residual;
  const std::vector<int>* residual_columns = nullptr;
  const std::vector<int>* cost_columns = nullptr;   // null => none
  const std::vector<int>* projection = nullptr;     // null => all columns
  // Stop after emitting this many rows (< 0: unlimited). Containers and
  // WOS rows past the cap are never visited — they contribute nothing to
  // the stats — which is what makes a pushed-down LIMIT cheap, not just
  // small. Honored by Scan only (never by MarkDeletedPending).
  int64_t limit = -1;
};

// Per-container statistics snapshot (v_monitor.storage_containers and the
// Tuple Mover's mergeout stratum policy read these).
struct ContainerStats {
  bool committed = false;
  TxnId pending_txn = 0;
  Epoch min_epoch = 0;
  Epoch max_epoch = 0;
  int64_t rows = 0;
  int64_t deleted_rows = 0;  // rows with a committed delete mark
  double raw_bytes = 0;
  double encoded_bytes = 0;
};

// Scan outcome counters and cost-model profiles. `visible_profile` is
// the cost_columns composition over all visible rows (rows field =
// rows_visible); `output_profile` is the projection composition over
// emitted rows (rows field = rows_emitted).
struct ScanStats {
  int64_t containers_scanned = 0;
  int64_t containers_pruned_epoch = 0;
  int64_t containers_pruned_minmax = 0;
  int64_t rows_visible = 0;
  int64_t rows_emitted = 0;
  DataProfile visible_profile;
  DataProfile output_profile;
};

// All stored data for one table segment on one node: a set of ROS
// containers plus the WOS, with MVCC visibility by (epoch, transaction).
//
// Not thread-safe in the host sense; always accessed from simulation
// context.
class SegmentStore {
 public:
  explicit SegmentStore(Schema schema) : schema_(std::move(schema)) {}
  SegmentStore(Schema schema, PhysicalDesign design)
      : schema_(std::move(schema)), design_(std::move(design)) {}

  const Schema& schema() const { return schema_; }
  const PhysicalDesign& design() const { return design_; }

  // Appends rows as a pending WOS batch owned by `txn`.
  Status InsertPending(TxnId txn, std::vector<Row> rows);

  // Appends rows as a pending ROS container owned by `txn` (bulk/DIRECT
  // load path used by COPY). Takes the rows by value: callers that are
  // done with them move, avoiding a full copy of the batch.
  Status InsertPendingDirect(TxnId txn, std::vector<Row> rows);

  // Marks visible rows matching `predicate` as deleted, pending under
  // `txn`. Rows already pending-deleted by other transactions are skipped
  // (the table lock prevents that situation anyway). Returns the number of
  // rows marked. `as_of` controls visibility (usually the latest epoch).
  Result<int64_t> DeletePending(TxnId txn, Epoch as_of,
                                const std::function<bool(const Row&)>& pred);

  // Commit/abort every pending change of `txn` in this store.
  void CommitTxn(TxnId txn, Epoch epoch);
  void AbortTxn(TxnId txn);

  // Vectorized scan: per-container min/max pruning, predicate kernels on
  // the encoded columns, selection-vector late materialization. Returns
  // the emitted rows in storage order (ROS containers, then WOS rows,
  // which are filtered row-at-a-time). Cost accounting in `stats` is
  // identical to the row-at-a-time reference: pruned containers still
  // measure their cost_columns for every visible row (the virtual-time
  // model charges the same scan work either way — only host time drops).
  Result<std::vector<Row>> Scan(const ScanSpec& spec,
                                ScanStats* stats) const;

  // Marks the rows Scan(spec) would emit as deleted, pending under
  // spec.txn (the UPDATE/DELETE write path). Shares the selection
  // pipeline with Scan so both pick exactly the same rows. When
  // `victims` != null it also materializes each marked row (schema
  // width) — the anchor-side capture that drives projection maintenance.
  Result<int64_t> MarkDeletedPending(const ScanSpec& spec,
                                     std::vector<Row>* victims = nullptr);

  // Marks visible rows matching the content multiset of `victims` as
  // deleted, pending under `txn` — the projection-side half of DELETE/
  // UPDATE: the anchor scan identifies the rows, and every projection
  // (whose columns may not cover the WHERE clause) deletes them by
  // value. Each victim row consumes the first not-yet-consumed visible
  // match in storage order, which is identical across buddy copies of
  // one projection (both apply the same batches, sorts and merges), so
  // indistinguishable duplicates resolve to the same physical rows and
  // fingerprints stay equal. Returns the number of rows marked.
  Result<int64_t> MarkDeletedPendingByContent(TxnId txn, Epoch as_of,
                                              const std::vector<Row>& victims);

  // Invokes `fn` for every row visible at `as_of` (plus `txn`'s own
  // pending rows when txn != 0), in storage order. Row-at-a-time
  // reference path (decodes whole containers); kept for tests and as the
  // baseline the vectorized Scan is verified against.
  Status ScanVisible(Epoch as_of, TxnId txn,
                     const std::function<Status(const Row&)>& fn) const;

  // Convenience: materializes the visible rows.
  Result<std::vector<Row>> SnapshotRows(Epoch as_of, TxnId txn = 0) const;

  Result<int64_t> CountVisible(Epoch as_of, TxnId txn = 0) const;

  // Folds every committed WOS batch into a single new ROS container with
  // per-row commit epochs (Vertica's moveout / Tuple Mover). Pending
  // batches stay in the WOS. No-op when nothing is committed.
  Status Moveout();

  // Merges the committed ROS containers at `indices` into one container
  // with per-row epochs and the delete marks carried over (the Tuple
  // Mover's mergeout). The merged container replaces the first merged
  // index, preserving relative storage order. Returns the raw bytes
  // rewritten (the cost-model size of the merge). Fails on out-of-range,
  // duplicate, or uncommitted indices.
  Result<double> MergeRosContainers(const std::vector<int>& indices);

  // Rewrites committed containers and WOS batches dropping every row
  // whose delete mark committed at an epoch <= `ahm` (the Ancient History
  // Mark): such rows are invisible at every snapshot >= ahm, so removing
  // them cannot change any legal read. Containers/batches left empty are
  // dropped. Returns the number of rows purged.
  Result<int64_t> PurgeDeletedRows(Epoch ahm);

  // Storage statistics (cost model / tests / Tuple Mover policy).
  double TotalRawBytes() const;
  double TotalEncodedBytes() const;
  int num_ros_containers() const { return static_cast<int>(ros_.size()); }
  int num_wos_batches() const { return static_cast<int>(wos_.size()); }
  int num_committed_wos_batches() const;
  double CommittedWosRawBytes() const;
  std::vector<ContainerStats> RosStats() const;

  // ------------------------------------------------- k-safety recovery
  // Raw bytes of content this store gained after `epoch`: containers and
  // WOS batches committed later, plus everything still pending. This is
  // the delta a rejoining node (last current at `epoch`) pulls from the
  // surviving copy.
  double RawBytesSince(Epoch epoch) const;

  // Logical-content checksum: a commutative fold over every stored row
  // with its commit epoch, pending owner and deletion state. Deliberately
  // blind to physical layout (WOS batch order, ROS container boundaries),
  // which differs between buddy copies written by interleaved
  // transactions. Two copies holding the same logical content fingerprint
  // equal; recovery tests compare primary against buddy with this.
  uint64_t ContentFingerprint() const;

  // Replaces this store's contents with a copy of `other`'s — the final,
  // atomic step of k-safety recovery (runs in one engine step; the
  // virtual-time transfer cost was charged separately).
  void CopyContentsFrom(const SegmentStore& other);

 private:
  // Shared selection pipeline for Scan/MarkDeletedPending: visibility
  // from delete marks, min/max pruning, predicate kernels, residual.
  // Returns selected row positions; when `emit` != null also gathers
  // projection columns into schema-width rows appended to *emit.
  Result<std::vector<uint32_t>> SelectRosRows(const RosContainer& container,
                                              const ScanSpec& spec,
                                              ScanStats* stats,
                                              std::vector<Row>* emit) const;

  // Applies the design's sort order to (rows, marks, epochs) in tandem
  // (stable, so equal keys keep arrival order — deterministic across
  // buddy copies). No-op for unsorted designs. `marks`/`epochs` may be
  // null when the caller has none.
  void SortForDesign(std::vector<Row>* rows, std::vector<DeleteMark>* marks,
                     std::vector<Epoch>* epochs) const;

  // RosContainer::Create with this store's forced encodings (if any).
  Result<RosContainer> CreateContainer(const std::vector<Row>& rows,
                                       TxnId pending_txn) const;

  Schema schema_;
  PhysicalDesign design_;
  std::vector<RosContainer> ros_;
  std::vector<WosBatch> wos_;
};

// True when the row version is visible at `as_of` for reader txn `txn`.
bool VersionVisible(TxnId owner_txn, Epoch commit_epoch,
                    const DeleteMark& mark, Epoch as_of, TxnId txn);

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_SEGMENT_STORE_H_
